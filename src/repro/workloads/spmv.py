"""Sparse matrix-vector multiplication, CSR format (Section VI-A-4).

``y = A @ x`` for a float32 CSR matrix.

- :func:`run_ocl` — the subgroup-based SIMT kernel: one subgroup per row,
  lanes strip-mine the row's nonzeros at the full dispatch width.  On
  matrices with short rows most lanes idle, yet every load/ALU op still
  costs a full SIMD16 message — the inefficiency the paper targets.
- :func:`run_cm` — each hardware thread handles a batch of rows and
  **dynamically selects the instruction SIMD width** (4/8/16) per row
  based on its nonzero count, and uses a boolean reduction (``all()``)
  to skip entirely-empty row batches.  Short rows run SIMD4, dense rows
  SIMD16.

Synthetic matrices reproduce the published structure of the paper's
inputs: ``make_protein``/``make_nd24k`` (~200 nnz/row, dense-ish) and
``make_webbase`` (power-law, ~3 nnz/row, many empty rows, high variance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import cm, ocl
from repro.sim.device import Device


@dataclass
class CSRMatrix:
    nrows: int
    ncols: int
    rowptr: np.ndarray  # uint32, len nrows+1
    cols: np.ndarray    # uint32, len nnz
    vals: np.ndarray    # float32, len nnz

    @property
    def nnz(self) -> int:
        return len(self.vals)


def _from_row_lengths(lengths: np.ndarray, ncols: int,
                      rng: np.random.Generator) -> CSRMatrix:
    nrows = len(lengths)
    rowptr = np.zeros(nrows + 1, dtype=np.uint32)
    np.cumsum(lengths, out=rowptr[1:])
    nnz = int(rowptr[-1])
    cols = np.empty(nnz, dtype=np.uint32)
    for r in range(nrows):
        lo, hi = int(rowptr[r]), int(rowptr[r + 1])
        take = hi - lo
        if take:
            cols[lo:hi] = np.sort(rng.choice(ncols, size=take, replace=False))
    vals = rng.standard_normal(nnz).astype(np.float32)
    return CSRMatrix(nrows, ncols, rowptr, cols, vals)


def make_protein(nrows: int = 2048, seed: int = 13) -> CSRMatrix:
    """~200 nnz/row, low variance (like the Protein matrix)."""
    rng = np.random.default_rng(seed)
    lengths = np.clip(rng.normal(200, 15, nrows), 64, 320).astype(np.int64)
    return _from_row_lengths(lengths, nrows, rng)


def make_nd24k(nrows: int = 2048, seed: int = 17) -> CSRMatrix:
    """~240 nnz/row with moderate variance (like Nd24k)."""
    rng = np.random.default_rng(seed)
    lengths = np.clip(rng.normal(240, 60, nrows), 16, 480).astype(np.int64)
    return _from_row_lengths(lengths, nrows, rng)


def make_webbase(nrows: int = 16384, seed: int = 19) -> CSRMatrix:
    """Power-law rows, mean ~3 nnz/row, many empties (like Webbase).

    Empty rows come in contiguous runs, as in real web-graph orderings
    (crawl order clusters dead pages) — which is what makes CM's
    batch-level empty skip effective.
    """
    rng = np.random.default_rng(seed)
    raw = rng.pareto(1.6, nrows) * 1.6
    lengths = np.minimum(raw.astype(np.int64), 512)
    run_starts = rng.random(nrows // 64) < 0.35
    empty = np.repeat(run_starts, 64)[:nrows]
    lengths[empty] = 0
    return _from_row_lengths(lengths, min(nrows, 4096), rng)


def reference(m: CSRMatrix, x: np.ndarray) -> np.ndarray:
    y = np.zeros(m.nrows, dtype=np.float64)
    for r in range(m.nrows):
        lo, hi = int(m.rowptr[r]), int(m.rowptr[r + 1])
        y[r] = np.dot(m.vals[lo:hi].astype(np.float64),
                      x[m.cols[lo:hi]].astype(np.float64))
    return y.astype(np.float32)


# -- CM implementation -------------------------------------------------------

#: Rows per CM hardware thread.
CM_ROWS_PER_THREAD = 8
#: Long rows are strip-mined at this many nonzeros per register block.
CM_ROW_BLOCK = 64


def _simd_width_for(nnz: int) -> int:
    """The dynamic per-row SIMD width selection (Section VI-A-4)."""
    if nnz <= 4:
        return 4
    if nnz <= 8:
        return 8
    return 16


@cm.cm_kernel
def _cm_spmv(rowptr, colbuf, valbuf, xbuf, ybuf, rows_per_thread,
             force_width=None):
    t = cm.thread_x()
    row0 = t * rows_per_thread
    rp = cm.vector(cm.uint, rows_per_thread + 1)
    cm.read_scattered(rowptr, row0, np.arange(rows_per_thread + 1), rp)
    starts = rp.select(rows_per_thread, 1, 0)
    ends = rp.select(rows_per_thread, 1, 1)
    # Boolean reduction: if every row in the batch is empty, skip it all.
    any_work = (ends - starts) > 0
    out = cm.vector(cm.float32, rows_per_thread, 0.0)
    if any_work.any():
        for r in range(rows_per_thread):
            lo = rp[r]
            hi = rp[r + 1]
            nnz = hi - lo
            if nnz == 0:
                continue
            if nnz <= 16:
                out[r] = _cm_short_row(colbuf, valbuf, xbuf, lo, nnz,
                                       force_width)
            else:
                out[r] = _cm_long_row(colbuf, valbuf, xbuf, lo, hi)
    cm.write_scattered(ybuf, row0, np.arange(rows_per_thread), out)


def _cm_short_row(colbuf, valbuf, xbuf, lo, nnz, force_width=None):
    """A short row at dynamically-selected SIMD width (4/8/16).

    ``force_width`` disables the dynamic selection (the ablation of the
    paper's variable-SIMD optimization).
    """
    w = force_width or _simd_width_for(nnz)
    cv = cm.vector(cm.uint, w)
    vv = cm.vector(cm.float32, w)
    xv = cm.vector(cm.float32, w)
    # cols/vals are contiguous: dword-aligned oword block reads, one each.
    cm.read(colbuf, lo * 4, cv, aligned=False)
    cm.read(valbuf, lo * 4, vv, aligned=False)
    cm.read_scattered(xbuf, 0, cv, xv)
    prod = vv * xv
    if nnz < w:
        prod.merge(0.0, np.arange(w) >= nnz)
    return cm.cm_sum(prod)


def _cm_long_row(colbuf, valbuf, xbuf, lo, hi):
    """A dense row, strip-mined in CM_ROW_BLOCK-nonzero register blocks.

    All loads of a block are issued before the multiply consumes them, so
    the gathers overlap (the latency hiding the paper attributes to the
    CM compiler's scheduling).
    """
    acc = cm.vector(cm.float32, 16, 0.0)
    for c0 in range(lo, hi, CM_ROW_BLOCK):
        take = min(CM_ROW_BLOCK, hi - c0)
        m = -(-take // 16) * 16  # pad to a SIMD16 multiple
        cv = cm.vector(cm.uint, m)
        vv = cm.vector(cm.float32, m)
        xv = cm.vector(cm.float32, m)
        cm.read(colbuf, c0 * 4, cv, aligned=False)
        cm.read(valbuf, c0 * 4, vv, aligned=False)
        for s0 in range(0, m, 16):
            cm.read_scattered(xbuf, 0, cv.select(16, 1, s0),
                              xv.select(16, 1, s0))
        prod = vv * xv
        if take < m:
            prod.merge(0.0, np.arange(m) >= take)
        acc += prod.format(cm.float32, m // 16, 16).row(0) if m == 16 \
            else _fold16(prod, m)
    return cm.cm_sum(acc)


def _fold16(prod: cm.Vector, m: int) -> cm.Vector:
    """Fold an m-element product down to 16 lanes with SIMD adds."""
    folded = cm.vector(cm.float32, 16, prod.select(16, 1, 0))
    for s0 in range(16, m, 16):
        folded += prod.select(16, 1, s0)
    return folded


def run_cm(device: Device, m: CSRMatrix, x: np.ndarray,
           rows_per_thread: int = CM_ROWS_PER_THREAD,
           force_width=None) -> np.ndarray:
    if m.nrows % rows_per_thread:
        raise ValueError("nrows must divide by rows_per_thread")
    rowptr = device.buffer(m.rowptr.copy())
    # Pad cols/vals so block reads of the final row stay on the surface.
    pad = CM_ROW_BLOCK
    cols = device.buffer(np.concatenate(
        [m.cols, np.zeros(pad, dtype=np.uint32)]))
    vals = device.buffer(np.concatenate(
        [m.vals, np.zeros(pad, dtype=np.float32)]))
    xb = device.buffer(np.ascontiguousarray(x, dtype=np.float32))
    yb = device.buffer(np.zeros(m.nrows, dtype=np.float32))
    device.run_cm(_cm_spmv, grid=(m.nrows // rows_per_thread,),
                  args=(rowptr, cols, vals, xb, yb, rows_per_thread,
                        force_width),
                  name="cm_spmv")
    return yb.to_numpy().copy()


# -- OpenCL implementation -----------------------------------------------------


def _ocl_spmv(rowptr, colbuf, valbuf, xbuf, ybuf):
    gid = ocl.get_global_id(0)
    simd = ocl.get_sub_group_size()
    row = int(gid.vals[0]) // simd  # one row per subgroup
    lane = ocl.get_sub_group_local_id()
    lo = ocl.load_uniform(rowptr, row, dtype=np.uint32)
    hi = ocl.load_uniform(rowptr, row + 1, dtype=np.uint32)
    acc = ocl.SimtValue.splat(0.0, simd, np.float32)
    for i0 in range(lo, hi, simd):
        idx = lane + i0
        active = idx < hi
        c = ocl.load(colbuf, idx, dtype=np.uint32, mask=active)
        v = ocl.load(valbuf, idx, dtype=np.float32, mask=active)
        xv = ocl.load(xbuf, c, dtype=np.float32, mask=active)
        acc = acc + ocl.where(active, v * xv, 0.0)
    total = ocl.sub_group_reduce_add(acc)
    ocl.store(ybuf, ocl.SimtValue.splat(row, simd, np.uint32), total,
              mask=lane == 0)


def run_ocl(device: Device, m: CSRMatrix, x: np.ndarray,
            simd: int = 16) -> np.ndarray:
    rowptr = device.buffer(m.rowptr.copy())
    cols = device.buffer(m.cols.copy())
    vals = device.buffer(m.vals.copy())
    xb = device.buffer(np.ascontiguousarray(x, dtype=np.float32))
    yb = device.buffer(np.zeros(m.nrows, dtype=np.float32))
    ocl.enqueue(device, _ocl_spmv, global_size=m.nrows * simd,
                local_size=8 * simd,
                args=(rowptr, cols, vals, xb, yb), simd=simd,
                name="ocl_spmv")
    return yb.to_numpy().copy()
