"""Stencil2D: 5-point Jacobi stencil, float32 (Table I row 5).

``out[y,x] = c0*in[y,x] + c1*(in[y-1,x]+in[y+1,x]+in[y,x-1]+in[y,x+1])``
over the interior of a padded grid.

- CM: each thread block-reads a (ROWS+2) x (COLS+2) tile once and forms
  the five taps as register selects (one mul + four mads per tile).
- OpenCL: one output point per work-item, five coalesced loads each —
  the vertical neighbours are re-read by every row of work-items.
"""

from __future__ import annotations

import numpy as np

from repro import cm, ocl
from repro.sim.device import Device

ROWS, COLS = 8, 16
C0, C1 = np.float32(0.5), np.float32(0.125)


def make_grid(width: int, height: int, seed: int = 37) -> np.ndarray:
    if width % COLS or height % ROWS:
        raise ValueError(f"interior must be a multiple of {COLS}x{ROWS}")
    rng = np.random.default_rng(seed)
    return rng.standard_normal((height + 2, width + 2)).astype(np.float32)


def reference(grid: np.ndarray) -> np.ndarray:
    out = grid.copy()
    c = grid[1:-1, 1:-1]
    out[1:-1, 1:-1] = (C0 * c
                       + C1 * (grid[:-2, 1:-1] + grid[2:, 1:-1]
                               + grid[1:-1, :-2] + grid[1:-1, 2:]))
    return out


@cm.cm_kernel
def _cm_stencil(src, dst):
    tx = cm.thread_x()
    ty = cm.thread_y()
    tile = cm.matrix(cm.float32, ROWS + 2, COLS + 2)
    cm.read(src, tx * COLS * 4, ty * ROWS, tile)
    acc = cm.matrix(cm.float32, ROWS, COLS)
    acc.assign(tile.select(ROWS, 1, COLS, 1, 1, 1) * C0)
    for (i, j) in ((0, 1), (2, 1), (1, 0), (1, 2)):
        acc += tile.select(ROWS, 1, COLS, 1, i, j) * C1
    out = cm.matrix(cm.float32, ROWS, COLS)
    out.assign(acc)
    cm.write(dst, (tx * COLS + 1) * 4, ty * ROWS + 1, out)


def run_cm(device: Device, grid: np.ndarray) -> np.ndarray:
    h2, w2 = grid.shape
    width, height = w2 - 2, h2 - 2
    src = device.image2d(grid.copy(), bytes_per_pixel=4)
    dst = device.image2d(grid.copy(), bytes_per_pixel=4)
    device.run_cm(_cm_stencil, grid=(width // COLS, height // ROWS),
                  args=(src, dst), name="cm_stencil2d")
    return dst.to_numpy().copy()


def _ocl_stencil(src, dst, w2):
    x = ocl.get_global_id(0) + 1
    y = ocl.get_global_id(1) + 1
    center = ocl.load(src, y * w2 + x, dtype=np.float32)
    up = ocl.load(src, (y - 1) * w2 + x, dtype=np.float32)
    down = ocl.load(src, (y + 1) * w2 + x, dtype=np.float32)
    left = ocl.load(src, y * w2 + x - 1, dtype=np.float32)
    right = ocl.load(src, y * w2 + x + 1, dtype=np.float32)
    out = center * float(C0) + (up + down + left + right) * float(C1)
    ocl.store(dst, y * w2 + x, out)


def run_ocl(device: Device, grid: np.ndarray, simd: int = 16) -> np.ndarray:
    h2, w2 = grid.shape
    width, height = w2 - 2, h2 - 2
    src = device.buffer(grid.copy())
    dst = device.buffer(grid.copy())
    ocl.enqueue(device, _ocl_stencil, global_size=(width, height),
                local_size=(simd, 1), args=(src, dst, w2), simd=simd,
                name="ocl_stencil2d")
    return dst.to_numpy().copy()
