"""Bitonic sort (Section VI-A-1).

Sorts ``n = 2^k`` uint32 keys ascending.

- :func:`run_ocl` — the SIMT baseline: the classic global-memory bitonic
  network, one kernel launch per (stage, pass) step, each work-item
  loading/comparing/storing key pairs.  ``k(k+1)/2`` launches, each a
  full pass over the array plus a global synchronization.
- :func:`run_cm` — each hardware thread holds **256 keys in registers**
  (1 KB of the 4 KB GRF) and runs every split step with stride <= 128
  locally; only strides >= 256 touch global memory.  This collapses the
  first 8 stages into one launch and the tail of every later stage into
  one launch, cutting both launches and memory passes — the effect the
  paper credits for the 1.6x-2.3x win.
"""

from __future__ import annotations

import numpy as np

from repro import cm, ocl
from repro.sim import context as ctx_mod
from repro.sim.device import Device

#: Keys held in registers per CM hardware thread.
LOCAL_SPAN = 256
#: Strides processed in registers (pairs within a LOCAL_SPAN block).
LOCAL_MAX_STRIDE = LOCAL_SPAN // 2


def make_input(log2n: int, seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**31, size=2**log2n, dtype=np.uint32)


def reference(keys: np.ndarray) -> np.ndarray:
    return np.sort(keys)


# -- CM implementation -------------------------------------------------------


def _asc_mask(size: int, stride: int, base: int, count: int) -> np.ndarray:
    """Direction per pair-lane: 1 where the enclosing size-block ascends."""
    a_idx = _a_indices(stride, base, count)
    return ((a_idx & size) == 0).astype(np.uint16)


def _a_indices(stride: int, base: int, count: int) -> np.ndarray:
    k = base + np.arange(count)
    return (k // stride) * 2 * stride + (k % stride)


@cm.cm_kernel
def _cm_local_sort(buf, sizes, n):
    """Sort a 256-key block in registers through the given split sizes."""
    t = cm.thread_x()
    base = t * LOCAL_SPAN
    v = cm.vector(cm.uint, LOCAL_SPAN)
    cm.read(buf, base * 4, v)
    for size in sizes:
        stride = min(size // 2, LOCAL_MAX_STRIDE)
        while stride >= 1:
            _cm_cmpxchg(v, size, stride, base)
            stride //= 2
    cm.write(buf, base * 4, v)


def _cm_cmpxchg(v: cm.Vector, size: int, stride: int, base: int) -> None:
    """One compare-exchange step on a register-resident block."""
    rows = LOCAL_SPAN // (2 * stride)
    m = v.format(cm.uint, rows, 2 * stride)
    lo = m.select(rows, 1, stride, 1, 0, 0)
    hi = m.select(rows, 1, stride, 1, 0, stride)
    mn = cm.cm_min(lo, hi)
    mx = cm.cm_max(lo, hi)
    mask = _asc_mask(size, stride, base // 2, LOCAL_SPAN // 2)
    mask2d = mask.reshape(rows, stride)
    lo.merge(mn, mx, mask2d)
    hi.merge(mx, mn, mask2d)


@cm.cm_kernel
def _cm_global_step(buf, size, stride, n):
    """One global split step (stride >= 128): 128 pairs per thread."""
    t = cm.thread_x()
    k = t * 128
    a_base = (k // stride) * 2 * stride + (k % stride)
    ascending = (a_base & size) == 0
    a = cm.vector(cm.uint, 128)
    b = cm.vector(cm.uint, 128)
    cm.read(buf, a_base * 4, a)
    cm.read(buf, (a_base + stride) * 4, b)
    mn = cm.cm_min(a, b)
    mx = cm.cm_max(a, b)
    if ascending:
        cm.write(buf, a_base * 4, mn)
        cm.write(buf, (a_base + stride) * 4, mx)
    else:
        cm.write(buf, a_base * 4, mx)
        cm.write(buf, (a_base + stride) * 4, mn)


def run_cm(device: Device, keys: np.ndarray) -> np.ndarray:
    n = len(keys)
    if n & (n - 1) or n < 2 * LOCAL_SPAN:
        raise ValueError(f"need a power-of-two size >= {2 * LOCAL_SPAN}")
    buf = device.buffer(keys.copy())
    threads = n // LOCAL_SPAN

    # Stages up to LOCAL_SPAN entirely in registers, one launch.
    local_sizes = [2 ** s for s in range(1, LOCAL_SPAN.bit_length())]
    device.run_cm(_cm_local_sort, grid=(threads,),
                  args=(buf, local_sizes, n), name="cm_bitonic_local")

    size = 2 * LOCAL_SPAN
    while size <= n:
        stride = size // 2
        while stride >= LOCAL_SPAN:
            device.run_cm(_cm_global_step, grid=(n // 256,),
                          args=(buf, size, stride, n),
                          name=f"cm_bitonic_g{size}_{stride}")
            stride //= 2
        # The rest of this stage (strides <= 128) runs in registers.
        device.run_cm(_cm_local_sort, grid=(threads,),
                      args=(buf, [size], n), name=f"cm_bitonic_l{size}")
        size *= 2
    return buf.to_numpy().copy()


# -- compiled divergent implementation ----------------------------------------
#
# The compare-exchange direction alternates between adjacent lanes, so a
# lane-packed bitonic step is *divergent*: half the lanes take the
# ascending branch, half the descending one.  The compiled path expresses
# that with masked SIMD control flow (``simd_if``/``simd_while``) and
# dispatches on the wide tier; the eager baseline below serializes the
# same work-items one lane at a time, which is what a per-thread
# interpreter must do without a masked-CF ISA.

#: Keys per hardware thread on the compiled divergent path.
CF_SPAN = 32
#: SIMD lanes per thread (= compare-exchange pairs per masked step).
CF_WIDTH = 16
#: Largest log2(stride) whose pairs stay inside one thread's 32-key span.
CF_LOCAL_MAX_LG = 4


def _cf_local_body(cmx, buf, t, lgs0, lgs1):
    """Run every split step of stages ``2**lgs0 .. 2**lgs1`` whose stride
    fits in the thread's 32-key span (strides 16..1), in one launch.

    ``lgs0``/``lgs1`` are scalar kernel parameters, so one compiled binary
    covers both the initial local sort (stages 2..32) and every later
    stage's local tail.  Both loops are ``simd_while`` loops with uniform
    trip counts; the per-lane divergence is the ascending/descending
    branch of the compare-exchange.
    """
    W = CF_WIDTH
    lane = cmx.vector(np.int32, W, np.arange(W, dtype=np.int32))
    one = cmx.vector(np.int32, W, 1)
    lgsize = cmx.vector(np.int32, W)
    lgsize.assign(lgs0)
    lglim = cmx.vector(np.int32, W)
    lglim.assign(lgs1)
    lg = cmx.vector(np.int32, W)
    a_idx = cmx.vector(np.int32, W)
    b_idx = cmx.vector(np.int32, W)
    va = cmx.vector(np.uint32, W)
    vb = cmx.vector(np.uint32, W)
    out_a = cmx.vector(np.uint32, W)
    out_b = cmx.vector(np.uint32, W)

    def stage():
        lg.assign(cmx.cm_min(lgsize - 1, CF_LOCAL_MAX_LG))

        def step():
            stride = one << lg
            a_loc = ((lane >> lg) << (lg + 1)) | (lane & (stride - 1))
            a_idx.assign(a_loc + t * CF_SPAN)
            b_idx.assign(a_idx + stride)
            cmx.read_scattered(buf, 0, a_idx, va)
            cmx.read_scattered(buf, 0, b_idx, vb)
            asc = ((a_idx >> lgsize) & 1) == 0
            with cmx.simd_if(asc) as br:
                out_a.assign(cmx.cm_min(va, vb))
                out_b.assign(cmx.cm_max(va, vb))
            with br.orelse():
                out_a.assign(cmx.cm_max(va, vb))
                out_b.assign(cmx.cm_min(va, vb))
            cmx.write_scattered(buf, 0, a_idx, out_a)
            cmx.write_scattered(buf, 0, b_idx, out_b)
            lg.assign(lg - 1)
            return lg >= 0

        cmx.simd_while(step)
        lgsize.assign(lgsize + 1)
        return lgsize <= lglim

    cmx.simd_while(stage)


_CF_GLOBAL_BODIES: dict = {}


def _cf_global_body(lg: int, lgsize: int):
    """One global split step (stride ``2**lg`` >= 32), 16 pairs per thread.

    The stride and stage are uniform per launch, so they are baked into
    the trace; the ascending/descending compare-exchange keeps its
    divergent ``simd_if`` (within a thread the direction happens to be
    uniform at these strides, but the masked form is what the ISA
    executes).  Memoized per ``(lg, lgsize)`` so the identity-keyed
    kernel caches hit across sorts.
    """
    cached = _CF_GLOBAL_BODIES.get((lg, lgsize))
    if cached is not None:
        return cached
    stride = 1 << lg

    def body(cmx, buf, t):
        W = CF_WIDTH
        lane = cmx.vector(np.int32, W, np.arange(W, dtype=np.int32))
        k = cmx.vector(np.int32, W)
        k.assign(lane + t * W)
        a_idx = cmx.vector(np.int32, W)
        a_idx.assign(((k >> lg) << (lg + 1)) | (k & (stride - 1)))
        b_idx = cmx.vector(np.int32, W)
        b_idx.assign(a_idx + stride)
        va = cmx.vector(np.uint32, W)
        vb = cmx.vector(np.uint32, W)
        cmx.read_scattered(buf, 0, a_idx, va)
        cmx.read_scattered(buf, 0, b_idx, vb)
        out_a = cmx.vector(np.uint32, W)
        out_b = cmx.vector(np.uint32, W)
        asc = ((a_idx >> lgsize) & 1) == 0
        with cmx.simd_if(asc) as br:
            out_a.assign(cmx.cm_min(va, vb))
            out_b.assign(cmx.cm_max(va, vb))
        with br.orelse():
            out_a.assign(cmx.cm_max(va, vb))
            out_b.assign(cmx.cm_min(va, vb))
        cmx.write_scattered(buf, 0, a_idx, out_a)
        cmx.write_scattered(buf, 0, b_idx, out_b)

    _CF_GLOBAL_BODIES[(lg, lgsize)] = body
    return body


_CF_SIG = [("buf", False)]


def run_cm_bitonic_compiled(device: Device, keys: np.ndarray,
                            wide=None, validate: str = "off") -> np.ndarray:
    """Sort via the compiled divergent kernels (wide-dispatch eligible).

    One local launch covers stages 2..32 (15 split steps); each later
    stage runs its >=32 strides as global steps and its 16..1 strides as
    one local-tail launch of the same compiled binary.
    """
    n = len(keys)
    if n & (n - 1) or n < CF_SPAN:
        raise ValueError(f"need a power-of-two size >= {CF_SPAN}")
    log2n = n.bit_length() - 1
    buf = device.buffer(keys.copy())
    threads = n // CF_SPAN
    local = device.compile(_cf_local_body, "cf_bitonic_local", _CF_SIG,
                           ["t", "lgs0", "lgs1"])

    def launch_local(lgs0: int, lgs1: int) -> None:
        device.run_compiled(
            local, grid=(threads,), surfaces=[buf],
            scalars=lambda tid, a=lgs0, b=lgs1: {"t": tid[0],
                                                 "lgs0": a, "lgs1": b},
            name="cf_bitonic_local", wide=wide, validate=validate)

    launch_local(1, min(5, log2n))
    for lgsize in range(6, log2n + 1):
        for lg in range(lgsize - 1, CF_LOCAL_MAX_LG, -1):
            name = f"cf_bitonic_g{lgsize}_{lg}"
            kern = device.compile(_cf_global_body(lg, lgsize), name,
                                  _CF_SIG, ["t"])
            device.run_compiled(
                kern, grid=(n // CF_SPAN,), surfaces=[buf],
                scalars=lambda tid: {"t": tid[0]},
                name=name, wide=wide, validate=validate)
        launch_local(lgsize, lgsize)
    return buf.to_numpy().view(np.uint32).copy()


# -- eager per-thread divergent baseline ---------------------------------------

#: Work-items (compare-exchange pairs) serialized per eager thread.
EAGER_PAIRS = 16


@cm.cm_kernel
def _cm_divergent_step_eager(buf, size, stride, n):
    """One split step with lane-serialized divergence.

    The per-thread eager interpreter has no masked-CF ISA, so the 16
    work-items the compiled path packs into SIMD lanes execute one at a
    time: scalar loads, a scalar compare-and-branch per pair, scalar
    stores.  This is the baseline the divergent benchmark measures the
    compiled path against.
    """
    t = cm.thread_x()
    log2s = stride.bit_length() - 1
    for j in range(EAGER_PAIRS):
        k = t * EAGER_PAIRS + j
        a_idx = ((k >> log2s) << (log2s + 1)) | (k & (stride - 1))
        b_idx = a_idx + stride
        ctx_mod.emit_scalar(4)  # per-work-item address arithmetic
        a = cm.vector(cm.uint, 1)
        b = cm.vector(cm.uint, 1)
        cm.read_scattered(buf, 0, [a_idx], a)
        cm.read_scattered(buf, 0, [b_idx], b)
        mn = cm.cm_min(a, b)
        mx = cm.cm_max(a, b)
        ctx_mod.emit_scalar(2)  # the diverging compare-and-branch
        if (a_idx & size) == 0:
            cm.write_scattered(buf, 0, [a_idx], mn)
            cm.write_scattered(buf, 0, [b_idx], mx)
        else:
            cm.write_scattered(buf, 0, [a_idx], mx)
            cm.write_scattered(buf, 0, [b_idx], mn)


def run_cm_bitonic_eager(device: Device, keys: np.ndarray) -> np.ndarray:
    """The eager per-thread path: full network, serialized divergence."""
    n = len(keys)
    if n & (n - 1) or n < 2 * EAGER_PAIRS:
        raise ValueError(f"need a power-of-two size >= {2 * EAGER_PAIRS}")
    buf = device.buffer(keys.copy())
    threads = n // 2 // EAGER_PAIRS
    size = 2
    while size <= n:
        stride = size // 2
        while stride >= 1:
            device.run_cm(_cm_divergent_step_eager, grid=(threads,),
                          args=(buf, size, stride, n),
                          name=f"cm_div_bitonic_{size}_{stride}")
            stride //= 2
        size *= 2
    return buf.to_numpy().view(np.uint32).copy()


# -- OpenCL implementation ----------------------------------------------------

#: Pairs handled per work-item (the sample's int4 vectorization).
_OCL_VEC = 4


def _ocl_bitonic_step(buf, size, stride, n):
    wid = ocl.get_global_id(0)
    log2s = stride.bit_length() - 1
    if stride >= _OCL_VEC:
        # The work-item's 4 a-indices (and 4 b-indices) are consecutive:
        # uint4 vector loads/stores, one message each (the int4
        # vectorization the paper credits the SIMT version with).
        k = wid * _OCL_VEC
        a_base = ((k >> log2s) << (log2s + 1)) | (k & (stride - 1))
        a4 = ocl.vload(buf, _OCL_VEC, a_base // _OCL_VEC, dtype=np.uint32)
        b_base = a_base | stride
        b4 = ocl.vload(buf, _OCL_VEC, b_base // _OCL_VEC, dtype=np.uint32)
        ascending = (a_base & size) == 0
        lo4, hi4 = [], []
        for a, b in zip(a4, b4):
            mn = ocl.min_(a, b)
            mx = ocl.max_(a, b)
            lo4.append(ocl.where(ascending, mn, mx))
            hi4.append(ocl.where(ascending, mx, mn))
        ocl.vstore(buf, _OCL_VEC, a_base // _OCL_VEC, lo4)
        ocl.vstore(buf, _OCL_VEC, b_base // _OCL_VEC, hi4)
        return
    # stride < 4: each work-item's 4 pairs live inside 8 consecutive
    # elements — two uint4 loads, compare-exchange between vector
    # components (register swizzles), two uint4 stores.
    base8 = wid * 2  # uint4-granular index of the first of two vectors
    lo4 = ocl.vload(buf, _OCL_VEC, base8, dtype=np.uint32)
    hi4 = ocl.vload(buf, _OCL_VEC, base8 + 1, dtype=np.uint32)
    elems = lo4 + hi4  # components 0..7 of the 8-element window
    first = wid * 2 * _OCL_VEC  # element index of component 0
    out = [None] * 8
    for k_off in range(_OCL_VEC):
        # Pair p within the window: positions computed from the stride.
        p = k_off
        a_off = (p // stride) * 2 * stride + (p % stride)
        b_off = a_off + stride
        a, b = elems[a_off], elems[b_off]
        ascending = ((first + a_off) & size) == 0
        mn = ocl.min_(a, b)
        mx = ocl.max_(a, b)
        out[a_off] = ocl.where(ascending, mn, mx)
        out[b_off] = ocl.where(ascending, mx, mn)
    # Component swizzles back into two uint4 registers cost a few movs.
    ctx_mod.emit_alu(16 * 8, cm.uint)
    ocl.vstore(buf, _OCL_VEC, base8, out[:4])
    ocl.vstore(buf, _OCL_VEC, base8 + 1, out[4:])


def run_ocl(device: Device, keys: np.ndarray, simd: int = 16) -> np.ndarray:
    n = len(keys)
    if n & (n - 1) or n < 2:
        raise ValueError("need a power-of-two input size")
    buf = device.buffer(keys.copy())
    items = n // 2 // _OCL_VEC
    size = 2
    while size <= n:
        stride = size // 2
        while stride >= 1:
            ocl.enqueue(device, _ocl_bitonic_step, global_size=items,
                        local_size=min(items, 8 * simd),
                        args=(buf, size, stride, n), simd=simd,
                        name=f"ocl_bitonic_{size}_{stride}")
            stride //= 2
        size *= 2
    return buf.to_numpy().copy()
