"""Systolic GEMM (Table I row 1).

The paper's systolic GEMM targets a systolic dot-product accumulate
(DPAS-style) unit on a future GPU.  That unit does not exist on Gen11, so
per the substitution rule we model it as a deeper-K register-blocked GEMM
whose accumulation chains stay in registers across a K-tile of 16 — the
data-movement structure (weights stationary in the register file,
activations streamed through block reads) is what differentiates the CM
and SIMT versions, and it is preserved by this mapping.
"""

from __future__ import annotations

import numpy as np

from repro.sim.device import Device
from repro.workloads import gemm

make_inputs = gemm.make_inputs
reference = gemm.reference


def run_cm(device: Device, a, b, c, alpha=1.0, beta=0.0) -> np.ndarray:
    return gemm._run_cm_typed(device, a, b, c, alpha, beta,
                              __import__("repro.cm", fromlist=["float32"])
                              .float32, gemm.CM_BM, gemm.CM_BN,
                              "cm_systolic_gemm")


def run_ocl(device: Device, a, b, c, alpha=1.0, beta=0.0) -> np.ndarray:
    return gemm._run_ocl_typed(device, a, b, c, alpha, beta,
                               gemm.OCL_BM, gemm.OCL_BN, 16,
                               "ocl_systolic_gemm")
