"""Systolic GEMM (Table I row 1).

The paper's systolic GEMM targets a systolic dot-product accumulate
(DPAS-style) unit on a future GPU.  That unit does not exist on Gen11,
so per the substitution rule we model it as a **deeper-K register-blocked
GEMM**: the B tile (the weights) for a K band is block-read once and
held stationary in the register file while A (the activations) streams
through, and the fp32 accumulation chains stay in registers across the
whole band — twice the K depth of :mod:`repro.workloads.gemm`'s kernel.
The data-movement structure (weights stationary, activations streamed
through block reads, accumulators never leaving the GRF) is what
differentiates the CM and SIMT versions, and it is preserved by this
mapping.

The K-band depth is a real knob: deeper bands mean fewer read messages
per element but more live registers per thread, so ``ktile`` (together
with the ``bm`` x ``bn`` accumulator block) is exposed to the autotuner
(:mod:`repro.tune`) — past a machine-dependent point the register
allocator runs out of GRF and the variant is inadmissible.
"""

from __future__ import annotations

import numpy as np

from repro import cm
from repro.sim.device import Device
from repro.workloads import gemm

#: Weights-stationary K-band depth (deeper than gemm.KTILE = 8).
SYS_KTILE = 16
#: Accumulator block per thread (eager path: explicit GRF management
#: affords the full 16x16 block, the paper's resource-headroom story).
SYS_BM, SYS_BN = 16, 16
#: Compiled-path block: the trace frontend keeps whole tiles live as
#: single virtual registers, so the register allocator caps the block
#: well below the hand-managed eager kernel (and the cap tightens with
#: K: more unrolled bands fragment the free-register space).
SYS_JIT_BM, SYS_JIT_BN = 8, 8

make_inputs = gemm.make_inputs
reference = gemm.reference


# -- CM implementation (eager) -------------------------------------------------


@cm.cm_kernel
def _cm_systolic(abuf, bbuf, cbuf, m, n, k, alpha, beta, bm, bn, ktile):
    tx = cm.thread_x()  # C-block column index
    ty = cm.thread_y()  # C-block row index
    row0, col0 = ty * bm, tx * bn
    acc = cm.matrix(cm.float32, bm, bn, 0.0)
    acc_flat = acc.format(cm.float32)
    for k0 in range(0, k, ktile):
        # Weights for this K band: read once, then stationary while the
        # activation rows stream through the mad chain below.
        btile = cm.matrix(cm.float32, ktile, bn)
        cm.read(bbuf, col0 * 4, k0, btile)
        atile = cm.matrix(cm.float32, bm, ktile)
        cm.read(abuf, k0 * 4, row0, atile)
        for kk in range(ktile):
            a_bcast = atile.column(kk).replicate(bm, 1, bn, 0)
            b_bcast = btile.row(kk).replicate(bm, 0, bn, 1)
            cm.cm_mul_add(acc_flat, a_bcast, b_bcast)
    ctile = cm.matrix(cm.float32, bm, bn)
    cm.read(cbuf, col0 * 4, row0, ctile)
    result = acc * alpha + ctile * beta
    ctile.assign(result)
    cm.write(cbuf, col0 * 4, row0, ctile)


def run_cm(device: Device, a, b, c, alpha=1.0, beta=0.0,
           bm: int = SYS_BM, bn: int = SYS_BN,
           ktile: int = SYS_KTILE) -> np.ndarray:
    m, k = a.shape
    n = b.shape[1]
    if m % bm or n % bn or k % ktile:
        raise ValueError(f"dims must divide {bm}x{bn} blocks, K by {ktile}")
    abuf = device.image2d(a.copy(), bytes_per_pixel=4)
    bbuf = device.image2d(b.copy(), bytes_per_pixel=4)
    cbuf = device.image2d(c.copy(), bytes_per_pixel=4)
    device.run_cm(_cm_systolic, grid=(n // bn, m // bm),
                  args=(abuf, bbuf, cbuf, m, n, k, alpha, beta, bm, bn,
                        ktile),
                  name="cm_systolic_gemm")
    return cbuf.to_numpy().copy()


# -- CM implementation, compiled path ------------------------------------------

#: One body per (k, bm, bn, ktile) so Device.compile's identity-keyed
#: cache hits across launches of the same variant.
_JIT_BODIES: dict = {}
_JIT_SIG = [("abuf", True), ("bbuf", True), ("cbuf", True)]


def _jit_systolic_body(k: int, bm: int, bn: int, ktile: int):
    key = (k, bm, bn, ktile)
    body = _JIT_BODIES.get(key)
    if body is not None:
        return body
    if k % ktile:
        raise ValueError(f"K={k} must divide the K band ({ktile})")

    def systolic_jit(cmx, abuf, bbuf, cbuf, tx, ty):
        row0 = ty * bm
        col0 = tx * bn
        acc = cmx.matrix(np.float32, bm, bn,
                         np.zeros(bm * bn, np.float32))
        for k0 in range(0, k, ktile):
            # Fresh per-band tiles: their live ranges end with the band,
            # so the linear-scan allocator recycles the registers — the
            # GRF cost of the kernel is one band, not the whole K.
            btile = cmx.matrix(np.float32, ktile, bn)
            cmx.read(bbuf, col0 * 4, k0, btile)
            atile = cmx.matrix(np.float32, bm, ktile)
            cmx.read(abuf, k0 * 4, row0, atile)
            for kk in range(ktile):
                a_bcast = atile.replicate(bm, ktile, bn, 0, kk)
                b_bcast = btile.replicate(bm, 0, bn, 1, kk * bn)
                acc += a_bcast * b_bcast
        ctile = cmx.matrix(np.float32, bm, bn)
        cmx.read(cbuf, col0 * 4, row0, ctile)
        out = cmx.matrix(np.float32, bm, bn)
        out.assign(acc + ctile)
        cmx.write(cbuf, col0 * 4, row0, out)

    _JIT_BODIES[key] = systolic_jit
    return systolic_jit


def run_cm_compiled(device: Device, a, b, c,
                    bm: int = SYS_JIT_BM, bn: int = SYS_JIT_BN,
                    ktile: int = SYS_KTILE) -> np.ndarray:
    """C = A@B + C through the compile pipeline + batch engine."""
    m, k = a.shape
    n = b.shape[1]
    if m % bm or n % bn or k % ktile:
        raise ValueError(f"dims must divide {bm}x{bn} blocks, K by {ktile}")
    abuf = device.image2d(a.copy(), bytes_per_pixel=4)
    bbuf = device.image2d(b.copy(), bytes_per_pixel=4)
    cbuf = device.image2d(c.copy(), bytes_per_pixel=4)
    kern = device.compile(_jit_systolic_body(k, bm, bn, ktile),
                          f"cm_systolic_jit_b{bm}x{bn}k{ktile}",
                          _JIT_SIG, ["tx", "ty"])
    device.run_compiled(kern, grid=(n // bn, m // bm),
                        surfaces=[abuf, bbuf, cbuf],
                        scalars=lambda tid: {"tx": tid[0], "ty": tid[1]},
                        name=f"cm_systolic_jit_b{bm}x{bn}k{ktile}")
    return cbuf.to_numpy().copy()


# -- OpenCL baseline -----------------------------------------------------------


def run_ocl(device: Device, a, b, c, alpha=1.0, beta=0.0) -> np.ndarray:
    return gemm._run_ocl_typed(device, a, b, c, alpha, beta,
                               gemm.OCL_BM, gemm.OCL_BN, 16,
                               "ocl_systolic_gemm")
