"""3x3 box (linear) filter — the paper's running example (Sections III-V).

Input/output are RGB images, 3 bytes per pixel, with a 1-pixel padding
border so that every 3x3 neighbourhood read stays on the surface (real CM
deployments pad or clamp the same way).  The interior is ``width`` x
``height`` pixels with ``width % 8 == 0`` and ``height % 6 == 0``.

Three implementations:

- :func:`run_cm` — Algorithm 2: each hardware thread block-reads an
  8x32-byte matrix, accumulates nine shifted 6x24 selects in float, scales
  by 0.1111 and block-writes 6x24 bytes (6x8 pixels per thread).
- :func:`run_ocl` — Algorithm 1: the straightforward SIMT kernel, one
  pixel per work-item, nine sampler gathers per pixel.
- :func:`run_ocl_optimized` — the tuned SIMT version using
  ``cl_intel_media_block_io``: a subgroup block-reads rows once, but must
  shuffle the AoS lanes into SoA before computing (Section III), and
  still reaches less than half of CM's throughput.
"""

from __future__ import annotations

import numpy as np

from repro import cm, ocl
from repro.sim import context as ctx_mod
from repro.sim.device import Device

SCALE = np.float32(0.1111)


def make_image(width: int, height: int, seed: int = 7) -> np.ndarray:
    """Random padded RGB image of interior ``width`` x ``height`` pixels."""
    _check_dims(width, height)
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(height + 2, (width + 2) * 3),
                        dtype=np.uint8)


def _check_dims(width: int, height: int) -> None:
    if width % 8 or height % 6:
        raise ValueError("interior must be a multiple of 8x6 pixels")


def reference(img: np.ndarray) -> np.ndarray:
    """Numpy oracle: 3x3 box blur of the interior, float32 accumulate."""
    h2, wb = img.shape
    w2 = wb // 3
    px = img.reshape(h2, w2, 3).astype(np.float32)
    acc = np.zeros_like(px)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            acc[1:-1, 1:-1] += px[1 + dy:h2 - 1 + dy, 1 + dx:w2 - 1 + dx]
    out = img.copy().reshape(h2, w2, 3)
    out[1:-1, 1:-1] = (acc[1:-1, 1:-1] * SCALE).astype(np.uint8)
    return out.reshape(h2, wb)


# -- CM implementation (Algorithm 2) ---------------------------------------


@cm.cm_kernel
def _cm_linear(inbuf, outbuf):
    hpos = cm.thread_x()
    vpos = cm.thread_y()
    in_m = cm.matrix(cm.uchar, 8, 32)
    cm.read(inbuf, hpos * 24, vpos * 6, in_m)
    m = cm.matrix(cm.float32, 6, 24)
    m.assign(in_m.select(6, 1, 24, 1, 1, 3))
    m += in_m.select(6, 1, 24, 1, 0, 0)
    m += in_m.select(6, 1, 24, 1, 0, 3)
    m += in_m.select(6, 1, 24, 1, 0, 6)
    m += in_m.select(6, 1, 24, 1, 1, 0)
    m += in_m.select(6, 1, 24, 1, 1, 6)
    m += in_m.select(6, 1, 24, 1, 2, 0)
    m += in_m.select(6, 1, 24, 1, 2, 3)
    m += in_m.select(6, 1, 24, 1, 2, 6)
    out = cm.matrix(cm.uchar, 6, 24)
    out.assign(m * SCALE)
    cm.write(outbuf, hpos * 24 + 3, vpos * 6 + 1, out)


def run_cm(device: Device, img: np.ndarray) -> np.ndarray:
    h2, wb = img.shape
    width, height = wb // 3 - 2, h2 - 2
    _check_dims(width, height)
    inbuf = device.image2d(img.copy(), bytes_per_pixel=3)
    outbuf = device.image2d(img.copy(), bytes_per_pixel=3)
    device.run_cm(_cm_linear, grid=(width // 8, height // 6),
                  args=(inbuf, outbuf), name="cm_linear")
    return outbuf.to_numpy()


# -- OpenCL implementation (Algorithm 1) -------------------------------------


def _ocl_linear(src, dst, width, height):
    x = ocl.get_global_id(0) + 1
    y = ocl.get_global_id(1) + 1
    acc = [None, None, None]
    for i in (-1, 0, 1):
        for j in (-1, 0, 1):
            r, g, b, _a = ocl.read_imagef(src, x + i, y + j)
            acc[0] = r if acc[0] is None else acc[0] + r
            acc[1] = g if acc[1] is None else acc[1] + g
            acc[2] = b if acc[2] is None else acc[2] + b
    out = tuple((c * float(SCALE)).astype(np.uint32) for c in acc)
    ocl.write_imageui(dst, x, y, out)


def run_ocl(device: Device, img: np.ndarray, simd: int = 16) -> np.ndarray:
    h2, wb = img.shape
    width, height = wb // 3 - 2, h2 - 2
    _check_dims(width, height)
    src = device.image2d(img.copy(), bytes_per_pixel=3)
    dst = device.image2d(img.copy(), bytes_per_pixel=3)
    ocl.enqueue(device, _ocl_linear, global_size=(width, height),
                local_size=(simd, 1), args=(src, dst, width, height),
                simd=simd, name="ocl_linear")
    return dst.to_numpy()


# -- tuned OpenCL with media block reads -------------------------------------


def _ocl_linear_blocked(src, dst, width, height):
    """16 output pixels per subgroup via media block I/O plus shuffles."""
    simd = ocl.get_sub_group_size()
    # Each subgroup covers `simd` consecutive output pixels of one row.
    sg_base_px = int(ocl.get_global_id(0).vals[0]) + 1
    y = int(ocl.get_global_id(1).vals[0]) + 1
    # Block-read 3 rows x (simd+2 pixels) of raw bytes once per subgroup.
    x_bytes = (sg_base_px - 1) * 3
    w_bytes = (simd + 2) * 3
    mb = ocl.intel_media_block_read(src, x_bytes, y - 1, w_bytes, 3)
    lanes = np.arange(simd)
    out_rows = np.zeros((1, simd * 3), dtype=np.uint8)
    for c in range(3):
        acc = None
        for row in range(3):
            for dx in range(3):
                v = mb.gather_row(row, (lanes + dx) * 3 + c)
                f = v.astype(np.float32)
                acc = f if acc is None else acc + f
        res = (acc * float(SCALE)).astype(np.uint8)
        # SoA -> AoS shuffle before the block write costs moves again.
        ctx_mod.emit_alu(simd, cm.uchar, inst_factor=2)
        out_rows[0, c::3] = res.vals
    ocl.intel_media_block_write(dst, sg_base_px * 3, y, out_rows)


def run_ocl_optimized(device: Device, img: np.ndarray,
                      simd: int = 16) -> np.ndarray:
    h2, wb = img.shape
    width, height = wb // 3 - 2, h2 - 2
    _check_dims(width, height)
    if width % simd:
        raise ValueError(f"width must be a multiple of simd={simd}")
    src = device.image2d(img.copy(), bytes_per_pixel=3)
    dst = device.image2d(img.copy(), bytes_per_pixel=3)
    ocl.enqueue(device, _ocl_linear_blocked, global_size=(width, height),
                local_size=(simd, 1), args=(src, dst, width, height),
                simd=simd, name="ocl_linear_blocked")
    return dst.to_numpy()
