"""Shared workload plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sim.device import Device
from repro.sim.machine import GEN11_ICL, MachineConfig


@dataclass
class WorkloadRun:
    """One workload execution: output plus accumulated device timing."""

    name: str
    output: np.ndarray
    total_time_us: float
    kernel_time_us: float
    launches: int
    device: Device = field(repr=False, default=None)

    @property
    def launch_overhead_us(self) -> float:
        return self.total_time_us - self.kernel_time_us


def run_and_time(name: str, fn: Callable[[Device], np.ndarray],
                 machine: MachineConfig = GEN11_ICL,
                 obs=None) -> WorkloadRun:
    """Run ``fn`` against a fresh device and collect its timing.

    ``obs`` is an optional :class:`repro.obs.Observability` bundle; when
    given, the device records spans/metrics/breakdowns into it.
    """
    device = Device(machine, obs=obs)
    output = fn(device)
    return WorkloadRun(
        name=name,
        output=output,
        total_time_us=device.total_time_us,
        kernel_time_us=device.kernel_time_us,
        launches=device.launches,
        device=device,
    )


def speedup(ocl: WorkloadRun, cm: WorkloadRun) -> float:
    """The paper's Figure 5 metric: OpenCL time / CM time."""
    return ocl.total_time_us / cm.total_time_us
