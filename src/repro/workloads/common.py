"""Shared workload plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sim.device import Device
from repro.sim.machine import GEN11_ICL, MachineConfig


@dataclass
class WorkloadRun:
    """One workload execution: output plus accumulated device timing."""

    name: str
    output: np.ndarray
    total_time_us: float
    kernel_time_us: float
    launches: int
    device: Device = field(repr=False, default=None)

    @property
    def launch_overhead_us(self) -> float:
        return self.total_time_us - self.kernel_time_us


def run_and_time(name: str, fn: Callable[[Device], np.ndarray],
                 machine: MachineConfig = GEN11_ICL,
                 obs=None) -> WorkloadRun:
    """Run ``fn`` against a fresh device and collect its timing.

    ``obs`` is an optional :class:`repro.obs.Observability` bundle; when
    given, the device records spans/metrics/breakdowns into it.
    """
    device = Device(machine, obs=obs)
    output = fn(device)
    return WorkloadRun(
        name=name,
        output=output,
        total_time_us=device.total_time_us,
        kernel_time_us=device.kernel_time_us,
        launches=device.launches,
        device=device,
    )


def run_on(device: Device, name: str,
           fn: Callable[[Device], np.ndarray]) -> WorkloadRun:
    """Run ``fn`` on an *existing* device and report only its delta.

    The serving layer (:mod:`repro.serve`) dispatches many requests onto
    one pooled device, so per-request timing must be the difference the
    request made, not the device's lifetime totals: kernel time summed
    over the runs this call appended, plus the launch-overhead model for
    exactly those launches (full driver overhead for the first, the
    pipelined gap for the rest — the same model as
    :attr:`Device.total_time_us`).
    """
    runs_before = len(device.runs)
    output = fn(device)
    new_runs = device.runs[runs_before:]
    kernel_us = sum(r.kernel_time_us for r in new_runs)
    overhead_us = 0.0
    if new_runs:
        overhead_us = device.machine.launch_overhead_us + \
            (len(new_runs) - 1) * device.machine.pipelined_launch_us
    return WorkloadRun(
        name=name,
        output=output,
        total_time_us=kernel_us + overhead_us,
        kernel_time_us=kernel_us,
        launches=len(new_runs),
        device=device,
    )


def speedup(ocl: WorkloadRun, cm: WorkloadRun) -> float:
    """The paper's Figure 5 metric: OpenCL time / CM time."""
    return ocl.total_time_us / cm.total_time_us
