"""Convolution kernels from the productivity study (Table I).

- **Conv 1x1** (pointwise convolution): mathematically a GEMM of the
  ``(H*W) x Cin`` activation matrix with ``Cin x Cout`` weights; both
  implementations delegate to the register-blocked GEMM kernels, which
  is exactly how production libraries lower 1x1 convolutions.
- **Conv 3x3**: a 3x3 convolution producing ``NUM_FILTERS`` output
  feature maps from one float32 input plane (the compute-heavy regime of
  the paper's DNN kernels).  The CM kernel block-reads one
  ``(ROWS+2) x (COLS+2)`` tile and forms every tap as a register select
  (9 x NUM_FILTERS mads per tile); the tuned SIMT kernel loads two
  shifted rows per tap row and reconstructs the centre tap with subgroup
  shuffles before the same mad chain.
"""

from __future__ import annotations

import numpy as np

from repro import cm, ocl
from repro.sim import context as ctx_mod
from repro.sim.device import Device
from repro.workloads import gemm

ROWS, COLS = 8, 16


# -- conv 1x1 (pointwise) -----------------------------------------------------


def make_conv1x1_inputs(hw: int = 1024, cin: int = 64, cout: int = 64,
                        seed: int = 41):
    rng = np.random.default_rng(seed)
    acts = rng.standard_normal((hw, cin)).astype(np.float32)
    weights = rng.standard_normal((cin, cout)).astype(np.float32)
    return acts, weights


def conv1x1_reference(acts, weights):
    return (acts.astype(np.float64) @ weights.astype(np.float64)) \
        .astype(np.float32)


def run_cm_conv1x1(device: Device, acts, weights) -> np.ndarray:
    bias = np.zeros((acts.shape[0], weights.shape[1]), dtype=np.float32)
    return gemm.run_cm_sgemm(device, acts, weights, bias)


def run_ocl_conv1x1(device: Device, acts, weights) -> np.ndarray:
    bias = np.zeros((acts.shape[0], weights.shape[1]), dtype=np.float32)
    return gemm.run_ocl_sgemm(device, acts, weights, bias)


# -- conv 3x3 -----------------------------------------------------------------

#: Output feature maps computed per pass (arithmetic intensity knob).
NUM_FILTERS = 8


def make_conv3x3_inputs(width: int, height: int, seed: int = 43):
    if width % COLS or height % ROWS:
        raise ValueError(f"interior must be a multiple of {COLS}x{ROWS}")
    rng = np.random.default_rng(seed)
    img = rng.standard_normal((height + 2, width + 2)).astype(np.float32)
    weights = rng.standard_normal((NUM_FILTERS, 3, 3)).astype(np.float32)
    return img, weights


def conv3x3_reference(img: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Returns (NUM_FILTERS, H, W) interior feature maps."""
    h2, w2 = img.shape
    out = np.zeros((len(weights), h2 - 2, w2 - 2), dtype=np.float32)
    for f in range(len(weights)):
        for i in range(3):
            for j in range(3):
                out[f] += weights[f, i, j] * \
                    img[i:h2 - 2 + i, j:w2 - 2 + j]
    return out


def _cm_conv3x3_kernel(weights: np.ndarray):
    nf = len(weights)

    @cm.cm_kernel
    def kernel(src, dsts):
        tx = cm.thread_x()
        ty = cm.thread_y()
        tile = cm.matrix(cm.float32, ROWS + 2, COLS + 2)
        cm.read(src, tx * COLS * 4, ty * ROWS, tile)
        for f in range(nf):
            acc = cm.matrix(cm.float32, ROWS, COLS, 0.0)
            acc_flat = acc.format(cm.float32)
            for i in range(3):
                for j in range(3):
                    tap = tile.select(ROWS, 1, COLS, 1, i, j)
                    cm.cm_mul_add(acc_flat, tap, np.float32(weights[f, i, j]))
            out = cm.matrix(cm.float32, ROWS, COLS)
            out.assign(acc)
            cm.write(dsts[f], tx * COLS * 4, ty * ROWS, out)

    return kernel


def run_cm_conv3x3(device: Device, img, weights) -> np.ndarray:
    h2, w2 = img.shape
    width, height = w2 - 2, h2 - 2
    src = device.image2d(img.copy(), bytes_per_pixel=4)
    dsts = [device.image2d(np.zeros((height, width), dtype=np.float32), 4)
            for _ in range(len(weights))]
    device.run_cm(_cm_conv3x3_kernel(weights),
                  grid=(width // COLS, height // ROWS),
                  args=(src, dsts), name="cm_conv3x3")
    return np.stack([d.to_numpy() for d in dsts])


def _ocl_conv3x3(src, dsts, w2, w_int, weights):
    """Tuned SIMT conv3x3: two shifted coalesced loads per tap row; the
    centre tap comes from subgroup shuffles of those registers, so no
    extra messages are needed.  All NUM_FILTERS mad chains reuse the
    same three taps per row (batched; the per-lane broadcasts of the
    weights are immediates)."""
    x = ocl.get_global_id(0) + 1
    y = ocl.get_global_id(1) + 1
    lane = ocl.get_sub_group_local_id()
    simd = ocl.get_sub_group_size()
    nf = len(weights)
    acc = np.zeros((nf, simd), dtype=np.float32)
    for i in range(3):
        left = ocl.load(src, (y + i - 1) * w2 + x - 1, dtype=np.float32)
        right = ocl.load(src, (y + i - 1) * w2 + x + 1, dtype=np.float32)
        center = ocl.where(lane == (simd - 1),
                           ocl.sub_group_shuffle(right, simd - 2),
                           ocl.sub_group_shuffle(left, lane + 1))
        taps = np.stack([left.vals, center.vals, right.vals])
        acc += weights[:, i, :] @ taps
        # nf x 3 mads per row; the weight broadcasts are immediates.
        ctx_mod.emit_alu(nf * 3 * simd, cm.float32)
    out_base = (y - 1) * w_int + (x - 1)
    for f in range(nf):
        ocl.store(dsts[f], out_base, ocl.SimtValue.of(acc[f], np.float32))


def run_ocl_conv3x3(device: Device, img, weights,
                    simd: int = 16) -> np.ndarray:
    h2, w2 = img.shape
    width, height = w2 - 2, h2 - 2
    src = device.buffer(img.copy())
    dsts = [device.buffer(np.zeros(height * width, dtype=np.float32))
            for _ in range(len(weights))]
    ocl.enqueue(device, _ocl_conv3x3, global_size=(width, height),
                local_size=(simd, 1),
                args=(src, dsts, w2, width, weights),
                simd=simd, name="ocl_conv3x3")
    return np.stack([d.to_numpy().reshape(height, width) for d in dsts])
