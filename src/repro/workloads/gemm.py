"""SGEMM / DGEMM: C = alpha*A@B + beta*C (Section VI-A-6).

Both implementations use the same register-blocking strategy (the OpenCL
one mimics CM via ``cl_intel_subgroups``, as the paper notes); the CM
kernel simply holds a **larger C block per thread** because it manages
the register file explicitly — 32x16 accumulators vs the SIMT kernel's
16x16 — so it re-reads A and B tiles proportionally fewer times.  That
resource-management headroom is the whole ~8-10% story.

Matrices are row-major; A is MxK, B is KxN, C is MxN.
"""

from __future__ import annotations

import numpy as np

from repro import cm, ocl
from repro.sim import context as ctx_mod
from repro.sim.device import Device

#: K-tile depth staged per iteration.
KTILE = 8
#: CM C-block: 32 rows x 16 columns (2 KB of f32 accumulators).
CM_BM, CM_BN = 32, 16
#: OpenCL C-block per subgroup: 16 rows x 16 columns.
OCL_BM, OCL_BN = 16, 16


def make_inputs(m: int, n: int, k: int, dtype=np.float32, seed: int = 29):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, k)).astype(dtype)
    b = rng.standard_normal((k, n)).astype(dtype)
    c = rng.standard_normal((m, n)).astype(dtype)
    return a, b, c


def reference(a, b, c, alpha=1.0, beta=0.0):
    return (alpha * (a.astype(np.float64) @ b.astype(np.float64))
            + beta * c.astype(np.float64)).astype(a.dtype)


# -- CM implementation ---------------------------------------------------------


def _cm_gemm_kernel(cmt, np_dtype):
    """Build the CM GEMM kernel for a CM element type (f32 or f64)."""
    elem = np.dtype(np_dtype).itemsize

    @cm.cm_kernel
    def kernel(abuf, bbuf, cbuf, m, n, k, alpha, beta, bm, bn):
        tx = cm.thread_x()  # C-block column index
        ty = cm.thread_y()  # C-block row index
        row0, col0 = ty * bm, tx * bn
        acc = cm.matrix(cmt, bm, bn, 0.0)
        # Double-buffered A/B tiles: the next k-tile's reads are issued
        # before the current tile is consumed, so the loads overlap with
        # the mads (the software pipelining real CM GEMM kernels use).
        atiles = [cm.matrix(cmt, bm, KTILE) for _ in range(2)]
        btiles = [cm.matrix(cmt, KTILE, bn) for _ in range(2)]
        acc_flat = acc.format(cmt)
        cm.read(abuf, 0, row0, atiles[0])
        cm.read(bbuf, col0 * elem, 0, btiles[0])
        n_tiles = k // KTILE
        for tile in range(n_tiles):
            cur, nxt = tile % 2, (tile + 1) % 2
            if tile + 1 < n_tiles:
                k0 = (tile + 1) * KTILE
                cm.read(abuf, k0 * elem, row0, atiles[nxt])
                cm.read(bbuf, col0 * elem, k0, btiles[nxt])
            atile, btile = atiles[cur], btiles[cur]
            for kk in range(KTILE):
                # acc[r, :] += A[r, kk] * B[kk, :] for all rows at once:
                # both operands are vstride-0 replicate regions (free), so
                # this is bm x bn/16 mad instructions and nothing else.
                a_bcast = atile.column(kk).replicate(bm, 1, bn, 0)
                b_bcast = btile.row(kk).replicate(bm, 0, bn, 1)
                cm.cm_mul_add(acc_flat, a_bcast, b_bcast)
        ctile = cm.matrix(cmt, bm, bn)
        cm.read(cbuf, col0 * elem, row0, ctile)
        result = acc * alpha + ctile * beta
        ctile.assign(result)
        cm.write(cbuf, col0 * elem, row0, ctile)

    return kernel


def _run_cm_typed(device, a, b, c, alpha, beta, cmt, bm, bn, name):
    m, k = a.shape
    n = b.shape[1]
    if m % bm or n % bn or k % KTILE:
        raise ValueError(f"dims must divide {bm}x{bn} blocks, K by {KTILE}")
    abuf = device.image2d(a.copy(), bytes_per_pixel=a.itemsize)
    bbuf = device.image2d(b.copy(), bytes_per_pixel=b.itemsize)
    cbuf = device.image2d(c.copy(), bytes_per_pixel=c.itemsize)
    kern = _cm_gemm_kernel(cmt, a.dtype)
    device.run_cm(kern, grid=(n // bn, m // bm),
                  args=(abuf, bbuf, cbuf, m, n, k, alpha, beta, bm, bn),
                  name=name)
    return cbuf.to_numpy().copy()


def run_cm_sgemm(device: Device, a, b, c, alpha=1.0, beta=0.0) -> np.ndarray:
    return _run_cm_typed(device, a, b, c, alpha, beta, cm.float32,
                         CM_BM, CM_BN, "cm_sgemm")


def run_cm_dgemm(device: Device, a, b, c, alpha=1.0, beta=0.0) -> np.ndarray:
    # Double-precision accumulators are twice the size: halve the block rows.
    return _run_cm_typed(device, a, b, c, alpha, beta, cm.double,
                         CM_BM // 2, CM_BN, "cm_dgemm")


# -- CM implementation, compiled path ------------------------------------------

#: Compiled-path C-block (smaller than the eager CM kernel's: the trace
#: frontend fully unrolls the K loop, so keep the program compact).
JIT_BM, JIT_BN = 8, 16

#: One body per K so Device.compile's identity-keyed cache hits across
#: launches of the same problem size.
_JIT_BODIES: dict = {}
_JIT_SIG = [("abuf", True), ("bbuf", True), ("cbuf", True)]


def _jit_gemm_body(k: int):
    body = _JIT_BODIES.get(k)
    if body is not None:
        return body

    def sgemm_jit(cmx, abuf, bbuf, cbuf, tx, ty):
        row0 = ty * JIT_BM
        col0 = tx * JIT_BN
        atile = cmx.matrix(np.float32, JIT_BM, k)
        cmx.read(abuf, 0, row0, atile)
        btile = cmx.matrix(np.float32, k, JIT_BN)
        cmx.read(bbuf, col0 * 4, 0, btile)
        acc = cmx.matrix(np.float32, JIT_BM, JIT_BN,
                         np.zeros(JIT_BM * JIT_BN, np.float32))
        for kk in range(k):
            a_bcast = atile.replicate(JIT_BM, k, JIT_BN, 0, kk)
            b_bcast = btile.replicate(JIT_BM, 0, JIT_BN, 1, kk * JIT_BN)
            acc += a_bcast * b_bcast
        ctile = cmx.matrix(np.float32, JIT_BM, JIT_BN)
        cmx.read(cbuf, col0 * 4, row0, ctile)
        out = cmx.matrix(np.float32, JIT_BM, JIT_BN)
        out.assign(acc + ctile)
        cmx.write(cbuf, col0 * 4, row0, out)

    _JIT_BODIES[k] = sgemm_jit
    return sgemm_jit


def run_cm_sgemm_compiled(device: Device, a, b, c) -> np.ndarray:
    """C = A@B + C through the full compile pipeline + batch engine.

    Unlike :func:`run_cm_sgemm` (eager per-thread interpretation), this
    path goes frontend -> passes -> vISA -> finalizer -> pooled
    ``run_compiled`` dispatch, so a traced run shows ``compile`` /
    ``pass:*`` spans next to the ``dispatch`` span.
    """
    m, k = a.shape
    n = b.shape[1]
    if m % JIT_BM or n % JIT_BN:
        raise ValueError(f"dims must divide {JIT_BM}x{JIT_BN} blocks")
    abuf = device.image2d(a.copy(), bytes_per_pixel=4)
    bbuf = device.image2d(b.copy(), bytes_per_pixel=4)
    cbuf = device.image2d(c.copy(), bytes_per_pixel=4)
    kern = device.compile(_jit_gemm_body(k), "cm_sgemm_jit", _JIT_SIG,
                          ["tx", "ty"])
    device.run_compiled(kern, grid=(n // JIT_BN, m // JIT_BM),
                        surfaces=[abuf, bbuf, cbuf],
                        scalars=lambda tid: {"tx": tid[0], "ty": tid[1]},
                        name="cm_sgemm_jit")
    return cbuf.to_numpy().copy()


# -- OpenCL implementation ------------------------------------------------------


def _ocl_gemm_kernel(np_dtype):
    np_dtype = np.dtype(np_dtype)
    cmt = cm.double if np_dtype.itemsize == 8 else cm.float32

    def kernel(abuf, bbuf, cbuf, m, n, k, alpha, beta, bm, bn):
        simd = ocl.get_sub_group_size()
        gx = int(ocl.get_global_id(0).vals[0]) // simd  # block column
        gy = ocl.get_group_id(1)
        row0, col0 = gy * bm, gx * bn
        lane = ocl.get_sub_group_local_id()
        # Each lane owns one C column of the block: bm accumulators.
        acc = np.zeros((bm, simd), dtype=np_dtype)
        for k0 in range(0, k, simd):  # K staged at the subgroup width
            # Multi-row subgroup block reads (intel_sub_group_block_read8).
            a_rows = ocl.intel_sub_group_block_read_rows(
                abuf, row0 * k + k0, bm, k, dtype=np_dtype)
            b_rows = ocl.intel_sub_group_block_read_rows(
                bbuf, k0 * n + col0, simd, n, dtype=np_dtype)
            a_blk = np.stack([v.vals for v in a_rows])
            b_blk = np.stack([v.vals for v in b_rows])
            acc += a_blk @ b_blk
            # bm * simd mad instructions; the subgroup broadcast of the A
            # element folds into the mad operand region (IGC bales it).
            ctx_mod.emit_alu(bm * simd * simd, cmt)
        c_rows = ocl.intel_sub_group_block_read_rows(
            cbuf, row0 * n + col0, bm, n, dtype=np_dtype)
        for r in range(bm):
            out = ocl.SimtValue.of(acc[r], np_dtype) * alpha \
                + c_rows[r] * beta
            ocl.intel_sub_group_block_write(cbuf, (row0 + r) * n + col0,
                                            out.astype(np_dtype))

    return kernel


def _run_ocl_typed(device, a, b, c, alpha, beta, bm, bn, simd, name):
    m, k = a.shape
    n = b.shape[1]
    if m % bm or n % bn or k % simd:
        raise ValueError(f"dims must divide {bm}x{bn} blocks, K by {simd}")
    abuf = device.buffer(a.copy())
    bbuf = device.buffer(b.copy())
    cbuf = device.buffer(c.copy())
    kern = _ocl_gemm_kernel(a.dtype)
    ocl.enqueue(device, kern, global_size=((n // bn) * simd, m // bm),
                local_size=(simd, 1),
                args=(abuf, bbuf, cbuf, m, n, k, alpha, beta, bm, bn),
                simd=simd, name=name)
    return cbuf.to_numpy().copy()


def run_ocl_sgemm(device: Device, a, b, c, alpha=1.0, beta=0.0) -> np.ndarray:
    return _run_ocl_typed(device, a, b, c, alpha, beta, OCL_BM, OCL_BN,
                          16, "ocl_sgemm")


def run_ocl_dgemm(device: Device, a, b, c, alpha=1.0, beta=0.0) -> np.ndarray:
    return _run_ocl_typed(device, a, b, c, alpha, beta, OCL_BM // 2, OCL_BN,
                          16, "ocl_dgemm")
