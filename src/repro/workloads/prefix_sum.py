"""Prefix sum (inclusive scan) of uint32 (Section VI-A-7).

- :func:`run_ocl` — Blelloch-style SIMT scan: per-work-group scan in SLM
  (log-depth up/down sweeps, a barrier per level), block sums to global
  memory, a second kernel scans the block sums, and a third adds the
  block offsets back — data moves between local and global memory with
  multiple barriers, as the paper describes.
- :func:`run_cm` — each hardware thread scans 256 elements entirely in
  registers (log2 shifted-add network on the GRF), writes its block total;
  one thread scans the totals; a final kernel adds the offsets in place
  through block writes.  Three launches, zero barriers, zero SLM.
"""

from __future__ import annotations

import numpy as np

from repro import cm, ocl
from repro.sim.device import Device

#: Elements scanned per CM hardware thread (in registers).
CM_SPAN = 256
#: Elements per OpenCL work-group scan (in SLM).
OCL_WG_SPAN = 256


def make_input(n: int, seed: int = 31) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=n, dtype=np.uint32)


def reference(values: np.ndarray) -> np.ndarray:
    return np.cumsum(values.astype(np.uint64)).astype(np.uint32)


# -- CM implementation -------------------------------------------------------


def _cm_scan_registers(v: cm.Vector) -> None:
    """In-register inclusive scan: log2(n) shifted SIMD adds."""
    n = v.n_elems
    shift = 1
    while shift < n:
        upper = v.select(n - shift, 1, shift)
        lower = v.select(n - shift, 1, 0)
        tmp = cm.vector(v.dtype, n - shift, lower)
        upper += tmp
        shift *= 2


@cm.cm_kernel
def _cm_scan_blocks(buf, sums, span):
    t = cm.thread_x()
    v = cm.vector(cm.uint, span)
    cm.read(buf, t * span * 4, v)
    _cm_scan_registers(v)
    cm.write(buf, t * span * 4, v)
    total = cm.vector(cm.uint, 1)
    total[0] = v[span - 1]
    cm.write_scattered(sums, t, [0], total)


@cm.cm_kernel
def _cm_scan_sums(sums, n_blocks):
    v = cm.vector(cm.uint, n_blocks)
    cm.read_scattered(sums, 0, np.arange(n_blocks), v)
    _cm_scan_registers(v)
    cm.write_scattered(sums, 0, np.arange(n_blocks), v)


@cm.cm_kernel
def _cm_add_offsets(buf, sums, span):
    t = cm.thread_x()
    if t == 0:
        return  # block 0 needs no offset
    off = cm.vector(cm.uint, 1)
    cm.read_scattered(sums, t - 1, [0], off)
    v = cm.vector(cm.uint, span)
    cm.read(buf, t * span * 4, v)
    v += off[0]
    cm.write(buf, t * span * 4, v)


def run_cm(device: Device, values: np.ndarray,
           span: int = CM_SPAN) -> np.ndarray:
    n = len(values)
    if n % span or n // span > 256:
        raise ValueError("need n divisible by span and at most 256 blocks")
    buf = device.buffer(values.copy())
    n_blocks = n // span
    sums = device.buffer(np.zeros(n_blocks, dtype=np.uint32))
    device.run_cm(_cm_scan_blocks, grid=(n_blocks,), args=(buf, sums, span),
                  name="cm_scan_blocks")
    device.run_cm(_cm_scan_sums, grid=(1,), args=(sums, n_blocks),
                  name="cm_scan_sums")
    device.run_cm(_cm_add_offsets, grid=(n_blocks,), args=(buf, sums, span),
                  name="cm_add_offsets")
    return buf.to_numpy().copy()


# -- OpenCL implementation ----------------------------------------------------


def _ocl_scan_wg(buf, sums, slm):
    """Work-group inclusive scan in SLM (Hillis-Steele, barrier per level)."""
    lid = ocl.get_local_id(0)
    gid = ocl.get_global_id(0)
    wg = ocl.get_group_id(0)
    lsize = ocl.get_local_size(0)
    v = ocl.load(buf, gid, dtype=np.uint32)
    ocl.slm_store(slm, lid, v)
    yield ocl.barrier()
    shift = 1
    while shift < lsize:
        prev = ocl.slm_load(slm, lid - shift, dtype=np.uint32,
                            mask=lid >= shift)
        cur = ocl.slm_load(slm, lid, dtype=np.uint32)
        newv = ocl.where(lid >= shift, cur + prev, cur)
        yield ocl.barrier()
        ocl.slm_store(slm, lid, newv)
        yield ocl.barrier()
        shift *= 2
    out = ocl.slm_load(slm, lid, dtype=np.uint32)
    ocl.store(buf, gid, out)
    # Last work-item publishes the block total.
    is_last = lid == (lsize - 1)
    ocl.store(sums, ocl.SimtValue.splat(wg, lid.width, np.uint32), out,
              mask=is_last)


def _ocl_scan_sums(sums, n_blocks, slm):
    lid = ocl.get_local_id(0)
    active = lid < n_blocks
    v = ocl.load(sums, lid, dtype=np.uint32, mask=active)
    ocl.slm_store(slm, lid, v, mask=active)
    yield ocl.barrier()
    shift = 1
    lsize = ocl.get_local_size(0)
    while shift < lsize:
        prev = ocl.slm_load(slm, lid - shift, dtype=np.uint32,
                            mask=lid >= shift)
        cur = ocl.slm_load(slm, lid, dtype=np.uint32)
        newv = ocl.where(lid >= shift, cur + prev, cur)
        yield ocl.barrier()
        ocl.slm_store(slm, lid, newv)
        yield ocl.barrier()
        shift *= 2
    out = ocl.slm_load(slm, lid, dtype=np.uint32)
    ocl.store(sums, lid, out, mask=active)


def _ocl_add_offsets(buf, sums):
    gid = ocl.get_global_id(0)
    wg = ocl.get_group_id(0)
    if wg == 0:
        return
    off = ocl.load_uniform(sums, wg - 1, dtype=np.uint32)
    v = ocl.load(buf, gid, dtype=np.uint32)
    ocl.store(buf, gid, v + off)


def run_ocl(device: Device, values: np.ndarray,
            wg_span: int = OCL_WG_SPAN, simd: int = 16) -> np.ndarray:
    n = len(values)
    if n % wg_span or n // wg_span > wg_span:
        raise ValueError("need n divisible by wg_span, few enough blocks")
    buf = device.buffer(values.copy())
    n_blocks = n // wg_span
    sums = device.buffer(np.zeros(max(n_blocks, simd), dtype=np.uint32))
    ocl.enqueue(device, _ocl_scan_wg, global_size=n, local_size=wg_span,
                args=(buf, sums), simd=simd, slm_bytes=wg_span * 4,
                name="ocl_scan_wg")
    ocl.enqueue(device, _ocl_scan_sums,
                global_size=max(n_blocks, simd),
                local_size=max(n_blocks, simd),
                args=(sums, n_blocks), simd=simd,
                slm_bytes=max(n_blocks, simd) * 4, name="ocl_scan_sums")
    ocl.enqueue(device, _ocl_add_offsets, global_size=n, local_size=wg_span,
                args=(buf, sums), simd=simd, name="ocl_add_offsets")
    return buf.to_numpy().copy()
