"""K-means clustering (Section VI-A-3).

2D float32 points, ``k`` centroids, a fixed number of Lloyd iterations.
Both implementations alternate two kernels per iteration:

1. *assign*: label every point with its nearest centroid and accumulate
   per-cluster coordinate sums and counts,
2. *update*: reduce the partial sums and recompute centroid positions.

- :func:`run_cm` — centroids and the accumulation table live in the
  **register file** for the whole chunk a hardware thread processes;
  point chunks are double-buffered (the load overlap the paper credits
  to the CM compiler) and one round of global atomics merges each
  thread's partials.  No SLM, no barriers in the hot loop.
- :func:`run_ocl` — the expert SIMT version: centroids staged in SLM
  (barrier), per-point accumulation through SLM atomics, and a per-WG
  merge into global accumulators.  (Gen has no float atomic-add; the real
  kernel pays an equivalent price with fixed-point adds — we model the
  float adds at integer-atomic cost.)
"""

from __future__ import annotations

import numpy as np

from repro import cm, ocl
from repro.sim import context as ctx_mod
from repro.sim.device import Device

#: Padded cluster count so block reads/writes stay oword aligned.
def _kpad(k: int) -> int:
    return -(-k // 16) * 16


def make_points(n: int, k: int = 20, seed: int = 5):
    """Gaussian blobs around k true centers."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-100, 100, size=(k, 2)).astype(np.float32)
    labels = rng.integers(0, k, size=n)
    pts = centers[labels] + rng.normal(0, 6.0, size=(n, 2))
    return pts.astype(np.float32), centers


def reference(points: np.ndarray, centroids0: np.ndarray,
              iterations: int) -> np.ndarray:
    """Numpy oracle for the same fixed-iteration Lloyd loop."""
    cent = centroids0.astype(np.float64).copy()
    pts = points.astype(np.float64)
    for _ in range(iterations):
        d = ((pts[:, None, :] - cent[None, :, :]) ** 2).sum(axis=2)
        labels = d.argmin(axis=1)
        for c in range(len(cent)):
            sel = labels == c
            if sel.any():
                cent[c] = pts[sel].mean(axis=0)
    return cent.astype(np.float32)


# -- CM implementation -------------------------------------------------------


@cm.cm_kernel
def _cm_assign(xs, ys, cent, acc, k, kp, pts_per_thread):
    t = cm.thread_x()
    base = t * pts_per_thread
    cx = cm.vector(cm.float32, kp)
    cy = cm.vector(cm.float32, kp)
    cm.read(cent, 0, cx)
    cm.read(cent, kp * 4, cy)
    accx = cm.vector(cm.float32, kp, 0.0)
    accy = cm.vector(cm.float32, kp, 0.0)
    accn = cm.vector(cm.float32, kp, 0.0)
    # Double-buffered point chunks: the next chunk's reads issue before
    # the current chunk is consumed (the overlap the paper credits to
    # the CM compiler's scheduling of scattered reads).
    pxs = [cm.vector(cm.float32, 16) for _ in range(2)]
    pys = [cm.vector(cm.float32, 16) for _ in range(2)]
    cm.read(xs, base * 4, pxs[0])
    cm.read(ys, base * 4, pys[0])
    n_chunks = pts_per_thread // 16
    for chunk in range(n_chunks):
        cur, nxt = chunk % 2, (chunk + 1) % 2
        if chunk + 1 < n_chunks:
            off = (chunk + 1) * 16
            cm.read(xs, (base + off) * 4, pxs[nxt])
            cm.read(ys, (base + off) * 4, pys[nxt])
        px, py = pxs[cur], pys[cur]
        best = cm.vector(cm.float32, 16, 3.0e38)
        bidx = cm.vector(cm.uint, 16, 0)
        for c in range(k):
            dx = px - cx[c]
            dy = py - cy[c]
            dist = dx * dx
            cm.cm_mul_add(dist, dy, dy)
            closer = dist < best
            best.merge(dist, closer)
            bidx.merge(c, closer)
        # Register-indirect accumulation: acc[label] += point, one indexed
        # add per lane and coordinate (scalar rate, stays in the GRF).
        labels = bidx.to_numpy()
        np.add.at(accx._buf, labels, px.to_numpy())
        np.add.at(accy._buf, labels, py.to_numpy())
        np.add.at(accn._buf, labels, 1.0)
        ctx_mod.emit_scalar(48)
    # One round of global atomics merges this thread's partial sums
    # (the same merge step the OpenCL version performs per work-group).
    offs = cm.vector(cm.uint, kp, np.arange(kp))
    cm.atomic("add", acc, offs, src=accx)
    cm.atomic("add", acc, offs + kp, src=accy)
    cm.atomic("add", acc, offs + 2 * kp, src=accn)


@cm.cm_kernel
def _cm_update(acc, cent, k, kp):
    sums = cm.vector(cm.float32, 3 * kp)
    cm.read(acc, 0, sums)
    accx = sums.select(kp, 1, 0)
    accy = sums.select(kp, 1, kp)
    accn = sums.select(kp, 1, 2 * kp)
    denom = cm.cm_max(accn, 1.0)
    cx = accx / denom
    cy = accy / denom
    out = cm.vector(cm.float32, kp)
    out.assign(cx)
    cm.write(cent, 0, out)
    out.assign(cy)
    cm.write(cent, kp * 4, out)


def run_cm(device: Device, points: np.ndarray, centroids0: np.ndarray,
           iterations: int = 2, pts_per_thread: int = 256) -> np.ndarray:
    n, k = len(points), len(centroids0)
    kp = _kpad(k)
    if n % pts_per_thread:
        raise ValueError("point count must divide by pts_per_thread")
    n_threads = n // pts_per_thread
    xs = device.buffer(np.ascontiguousarray(points[:, 0]))
    ys = device.buffer(np.ascontiguousarray(points[:, 1]))
    cent_host = np.zeros(2 * kp, dtype=np.float32)
    cent_host[:k] = centroids0[:, 0]
    cent_host[kp:kp + k] = centroids0[:, 1]
    cent = device.buffer(cent_host)
    acc = device.buffer(np.zeros(3 * kp, dtype=np.float32))
    for _ in range(iterations):
        acc.to_numpy()[:] = 0.0
        device.run_cm(_cm_assign, grid=(n_threads,),
                      args=(xs, ys, cent, acc, k, kp, pts_per_thread),
                      name="cm_kmeans_assign")
        device.run_cm(_cm_update, grid=(1,),
                      args=(acc, cent, k, kp),
                      name="cm_kmeans_update")
    out = cent.to_numpy()
    return np.stack([out[:k], out[kp:kp + k]], axis=1)


# -- compiled divergent implementation ----------------------------------------
#
# The nearest-centroid search is a *divergent assignment loop*: each lane
# tracks its own running best, and whether a given centroid improves it
# differs lane by lane.  The compiled kernel expresses the per-centroid
# loop as a ``simd_while`` and the improves-my-best update as a masked
# ``simd_if``; the eager baseline below serializes the same loop one
# point at a time.

#: Points per hardware thread on the compiled divergent path.
CF_PTS = 16


_CF_ASSIGN_BODIES: dict = {}


def _cf_assign_body(k: int, kp: int):
    """Build the divergent assign kernel for a fixed cluster count.

    Memoized per ``(k, kp)`` so the identity-keyed kernel caches
    (``Device.compile``, serve cache-affinity routing) hit across calls.
    """
    cached = _CF_ASSIGN_BODIES.get((k, kp))
    if cached is not None:
        return cached

    def body(cmx, xs, ys, cent, labels, t):
        W = CF_PTS
        lane = cmx.vector(np.int32, W, np.arange(W, dtype=np.int32))
        idx = cmx.vector(np.int32, W)
        idx.assign(lane + t * W)
        px = cmx.vector(np.float32, W)
        py = cmx.vector(np.float32, W)
        cmx.read_scattered(xs, 0, idx, px)
        cmx.read_scattered(ys, 0, idx, py)
        best = cmx.vector(np.float32, W, 3.0e38)
        bidx = cmx.vector(np.int32, W, 0)
        c = cmx.vector(np.int32, W, 0)
        cx = cmx.vector(np.float32, W)
        cy = cmx.vector(np.float32, W)

        def loop():
            cmx.read_scattered(cent, 0, c, cx)
            cmx.read_scattered(cent, 0, c + kp, cy)
            dx = px - cx
            dy = py - cy
            dist = dx * dx + dy * dy
            with cmx.simd_if(dist < best):
                best.assign(dist)
                bidx.assign(c)
            c.assign(c + 1)
            return c < k

        cmx.simd_while(loop)
        cmx.write_scattered(labels, 0, idx, bidx)

    _CF_ASSIGN_BODIES[(k, kp)] = body
    return body


def _labels_oracle(pts: np.ndarray, cent_buf: np.ndarray, k: int,
                   kp: int) -> np.ndarray:
    """Float32 oracle with the kernel's exact op order and tie-breaking."""
    px = pts[:, 0].astype(np.float32)[:, None]
    py = pts[:, 1].astype(np.float32)[:, None]
    cx = cent_buf[:k][None, :]
    cy = cent_buf[kp:kp + k][None, :]
    dx = px - cx
    dy = py - cy
    dist = dx * dx + dy * dy
    # strict < keeps the first minimum, like np.argmin.
    return dist.argmin(axis=1).astype(np.int32)


def _host_update(pts: np.ndarray, labels: np.ndarray,
                 cent_buf: np.ndarray, k: int, kp: int) -> None:
    """Lloyd centroid update from device labels (in-place on cent_buf)."""
    sx = np.zeros(k, dtype=np.float64)
    sy = np.zeros(k, dtype=np.float64)
    cnt = np.zeros(k, dtype=np.float64)
    np.add.at(sx, labels, pts[:, 0].astype(np.float64))
    np.add.at(sy, labels, pts[:, 1].astype(np.float64))
    np.add.at(cnt, labels, 1.0)
    nonzero = cnt > 0
    cent_buf[:k][nonzero] = (sx[nonzero] / cnt[nonzero]).astype(np.float32)
    cent_buf[kp:kp + k][nonzero] = \
        (sy[nonzero] / cnt[nonzero]).astype(np.float32)


def run_cm_kmeans_compiled(device: Device, points: np.ndarray,
                           centroids0: np.ndarray, iterations: int = 2,
                           wide=None, validate: str = "off") -> np.ndarray:
    """Lloyd iterations with the compiled divergent assign kernel.

    The assign step (where all the divergence lives) runs on the device;
    the small uniform centroid update runs on the host.
    """
    n, k = len(points), len(centroids0)
    kp = _kpad(k)
    if n % CF_PTS:
        raise ValueError(f"point count must divide by {CF_PTS}")
    xs = device.buffer(np.ascontiguousarray(points[:, 0]))
    ys = device.buffer(np.ascontiguousarray(points[:, 1]))
    cent_host = np.zeros(2 * kp, dtype=np.float32)
    cent_host[:k] = centroids0[:, 0]
    cent_host[kp:kp + k] = centroids0[:, 1]
    cent = device.buffer(cent_host)
    labels_buf = device.buffer(np.zeros(n, dtype=np.int32))
    name = f"cf_kmeans_assign_k{k}"
    kern = device.compile(
        _cf_assign_body(k, kp), name,
        [("xs", False), ("ys", False), ("cent", False), ("labels", False)],
        ["t"])
    for _ in range(iterations):
        device.run_compiled(kern, grid=(n // CF_PTS,),
                            surfaces=[xs, ys, cent, labels_buf],
                            scalars=lambda tid: {"t": tid[0]},
                            name=name, wide=wide, validate=validate)
        labels = labels_buf.to_numpy()
        _host_update(points, labels, cent.to_numpy(), k, kp)
    out = cent.to_numpy()
    return np.stack([out[:k], out[kp:kp + k]], axis=1)


# -- eager per-thread divergent baseline ---------------------------------------

#: Points serialized per eager thread on the divergent baseline.
EAGER_PTS = 16


@cm.cm_kernel
def _cm_assign_divergent_eager(xs, ys, cent, labels, k, kp, pts_per_thread):
    """The assignment loop with lane-serialized divergence.

    Op-for-op the same program as :func:`_cf_assign_body`, but without a
    masked-CF ISA the per-thread eager interpreter runs it one point at
    a time: scalar loads, a scalar centroid fetch inside the loop, a
    scalar distance chain, and a scalar compare-and-branch per centroid.
    """
    t = cm.thread_x()
    base = t * pts_per_thread
    for j in range(pts_per_thread):
        px = cm.vector(cm.float32, 1)
        py = cm.vector(cm.float32, 1)
        cm.read_scattered(xs, 0, [base + j], px)
        cm.read_scattered(ys, 0, [base + j], py)
        best = cm.vector(cm.float32, 1, 3.0e38)
        bidx = cm.vector(cm.int32, 1, 0)
        cx = cm.vector(cm.float32, 1)
        cy = cm.vector(cm.float32, 1)
        for c in range(k):
            cm.read_scattered(cent, 0, [c], cx)
            cm.read_scattered(cent, 0, [c + kp], cy)
            dx = px - cx
            dy = py - cy
            dist = dx * dx
            cm.cm_mul_add(dist, dy, dy)
            ctx_mod.emit_scalar(2)  # the diverging compare-and-branch
            if float(dist.to_numpy()[0]) < float(best.to_numpy()[0]):
                best.assign(dist)
                bidx.assign(c)
        cm.write_scattered(labels, 0, [base + j], bidx)


def run_cm_kmeans_eager_divergent(device: Device, points: np.ndarray,
                                  centroids0: np.ndarray,
                                  iterations: int = 2) -> np.ndarray:
    """The eager per-thread path for the divergent assignment loop."""
    n, k = len(points), len(centroids0)
    kp = _kpad(k)
    if n % EAGER_PTS:
        raise ValueError(f"point count must divide by {EAGER_PTS}")
    xs = device.buffer(np.ascontiguousarray(points[:, 0]))
    ys = device.buffer(np.ascontiguousarray(points[:, 1]))
    cent_host = np.zeros(2 * kp, dtype=np.float32)
    cent_host[:k] = centroids0[:, 0]
    cent_host[kp:kp + k] = centroids0[:, 1]
    cent = device.buffer(cent_host)
    labels_buf = device.buffer(np.zeros(n, dtype=np.int32))
    for _ in range(iterations):
        device.run_cm(_cm_assign_divergent_eager, grid=(n // EAGER_PTS,),
                      args=(xs, ys, cent, labels_buf, k, kp, EAGER_PTS),
                      name="cm_div_kmeans_assign")
        labels = labels_buf.to_numpy()
        _host_update(points, labels, cent.to_numpy(), k, kp)
    out = cent.to_numpy()
    return np.stack([out[:k], out[kp:kp + k]], axis=1)


# -- OpenCL implementation ----------------------------------------------------


def _ocl_assign(xs, ys, cent, acc, k, kp, pts_per_item, slm):
    lid = ocl.get_local_id(0)
    gid = ocl.get_global_id(0)
    gsz = ocl.get_global_size(0)
    # Stage centroids into SLM and zero the SLM accumulators.
    first = lid < 2 * kp
    centv = ocl.load(cent, lid, dtype=np.float32, mask=first)
    ocl.slm_store(slm, lid, centv, mask=first)
    zeros = ocl.SimtValue.splat(0.0, lid.width, np.float32)
    accm = lid < 3 * kp
    ocl.slm_store(slm, lid + 2 * kp, zeros, mask=accm)
    yield ocl.barrier()

    for i in range(pts_per_item):
        px = ocl.load(xs, gid + i * gsz, dtype=np.float32)
        py = ocl.load(ys, gid + i * gsz, dtype=np.float32)
        best = ocl.SimtValue.splat(3.0e38, px.width, np.float32)
        bidx = ocl.SimtValue.splat(0, px.width, np.uint32)
        # All centroid loads issue back to back (the compiler schedules
        # them ahead of the distance chain), so their latency overlaps.
        cxs = [ocl.slm_load(slm,
                            ocl.SimtValue.splat(c, px.width, np.uint32),
                            dtype=np.float32) for c in range(k)]
        cys = [ocl.slm_load(slm,
                            ocl.SimtValue.splat(kp + c, px.width, np.uint32),
                            dtype=np.float32) for c in range(k)]
        for c in range(k):
            dx = px - cxs[c]
            dy = py - cys[c]
            dist = ocl.mad(dy, dy, dx * dx)
            closer = dist < best
            best = ocl.where(closer, dist, best)
            bidx = ocl.where(closer, c, bidx).astype(np.uint32)
        slot = bidx + 2 * kp
        ocl.atomic_add_slm(slm, slot, px)
        ocl.atomic_add_slm(slm, slot + kp, py)
        ocl.atomic_add_slm(slm, slot + 2 * kp,
                           ocl.SimtValue.splat(1.0, px.width, np.float32))
    yield ocl.barrier()

    # Work-group leader subgroup merges SLM accumulators into global memory.
    if int(lid.vals[0]) == 0:
        simd = ocl.get_sub_group_size()
        for b0 in range(0, 3 * kp, simd):
            idx = ocl.SimtValue.of(np.arange(b0, b0 + simd), np.uint32)
            vals = ocl.slm_load(slm, idx + 2 * kp, dtype=np.float32)
            ocl.atomic_add_global(acc, idx, vals)


def _ocl_update(acc, cent, k, kp):
    gid = ocl.get_global_id(0)
    sums_x = ocl.load(acc, gid, dtype=np.float32)
    sums_y = ocl.load(acc, gid + kp, dtype=np.float32)
    counts = ocl.load(acc, gid + 2 * kp, dtype=np.float32)
    denom = ocl.fmax_(counts, 1.0)
    ocl.store(cent, gid, sums_x / denom)
    ocl.store(cent, gid + kp, sums_y / denom)


def run_ocl(device: Device, points: np.ndarray, centroids0: np.ndarray,
            iterations: int = 2, pts_per_item: int = 32,
            wg_size: int = 128, simd: int = 16) -> np.ndarray:
    n, k = len(points), len(centroids0)
    kp = _kpad(k)
    items = n // pts_per_item
    if n % pts_per_item or items % wg_size or wg_size < 3 * kp:
        raise ValueError("bad decomposition for the OpenCL k-means")
    xs = device.buffer(np.ascontiguousarray(points[:, 0]))
    ys = device.buffer(np.ascontiguousarray(points[:, 1]))
    cent_host = np.zeros(2 * kp, dtype=np.float32)
    cent_host[:k] = centroids0[:, 0]
    cent_host[kp:kp + k] = centroids0[:, 1]
    cent = device.buffer(cent_host)
    acc = device.buffer(np.zeros(3 * kp, dtype=np.float32))
    for _ in range(iterations):
        acc.to_numpy()[:] = 0.0
        ocl.enqueue(device, _ocl_assign, global_size=items,
                    local_size=wg_size,
                    args=(xs, ys, cent, acc, k, kp, pts_per_item),
                    simd=simd, slm_bytes=(2 * kp + 3 * kp) * 4,
                    name="ocl_kmeans_assign")
        ocl.enqueue(device, _ocl_update, global_size=kp, local_size=kp,
                    args=(acc, cent, k, kp), simd=simd,
                    name="ocl_kmeans_update")
    out = cent.to_numpy()
    return np.stack([out[:k], out[kp:kp + k]], axis=1)
