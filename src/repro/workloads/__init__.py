"""Paired CM / OpenCL workload implementations from the paper's evaluation.

Each module provides, for one workload:

- ``reference(...)`` — a numpy oracle,
- ``run_cm(device, ...)`` — the CM implementation (Section VI sketch),
- ``run_ocl(device, ...)`` — the tuned SIMT OpenCL baseline,

both returning a :class:`repro.workloads.common.WorkloadRun` with the
computed output and timing, so benchmarks can check correctness *and*
compare simulated time.
"""

from repro.workloads.common import WorkloadRun, run_and_time
from repro.workloads import (  # noqa: F401  (re-exported submodules)
    bitonic, conv, gemm, histogram, kmeans, linear_filter, prefix_sum,
    spmv, stencil, systolic, transpose,
)

__all__ = [
    "WorkloadRun", "run_and_time",
    "bitonic", "conv", "gemm", "histogram", "kmeans", "linear_filter",
    "prefix_sum", "spmv", "stencil", "systolic", "transpose",
]
