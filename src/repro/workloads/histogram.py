"""256-bin histogram of an 8-bit image (Section VI-A-2).

- :func:`run_ocl` — the SIMT baseline: each work-group builds a local
  histogram in SLM with ``atomic_inc`` (bank conflicts and same-address
  serialization make this input-dependent), then merges it into the
  global histogram with global atomics.  Performance degrades on
  homogeneous images where all lanes hit the same bin.
- :func:`run_cm` — each hardware thread block-reads pixels and counts
  into a register-resident ``vector<uint, 256>`` using register-indirect
  increments (no SLM, no atomics in the hot loop, input-independent),
  then merges with one round of global atomics per thread.

Input generators reproduce the paper's observation: ``make_random`` is
the OpenCL-friendly case; ``make_homogeneous`` mimics a real-world image
with a flat background (their "earth" input) that serializes OpenCL's
atomics.
"""

from __future__ import annotations

import numpy as np

from repro import cm, ocl
from repro.sim import context as ctx_mod
from repro.sim.device import Device

NUM_BINS = 256
#: Pixels processed per CM hardware thread / per OpenCL work-item batch.
CM_PIXELS_PER_THREAD = 4096
OCL_PIXELS_PER_ITEM = 32


def make_random(n_pixels: int, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n_pixels, dtype=np.uint8)


def make_homogeneous(n_pixels: int, background: int = 17,
                     fraction: float = 0.85, seed: int = 3) -> np.ndarray:
    """An image dominated by one background intensity (like "earth")."""
    rng = np.random.default_rng(seed)
    img = rng.integers(0, 256, size=n_pixels, dtype=np.uint8)
    flat = rng.random(n_pixels) < fraction
    img[flat] = background
    return img


def make_natural(n_pixels: int, run_length: int = 24,
                 seed: int = 3) -> np.ndarray:
    """Piecewise-flat intensities (a mid-contention "natural image" case):
    values change every ~``run_length`` pixels, so most SIMD lanes in a
    message share a bin without the image being fully homogeneous."""
    rng = np.random.default_rng(seed)
    n_runs = -(-n_pixels // run_length)
    levels = rng.integers(0, 256, size=n_runs, dtype=np.uint8)
    return np.repeat(levels, run_length)[:n_pixels]


def reference(pixels: np.ndarray) -> np.ndarray:
    return np.bincount(pixels, minlength=NUM_BINS).astype(np.uint32)


# -- CM implementation ---------------------------------------------------------


@cm.cm_kernel
def _cm_histogram(src, hist, pixels_per_thread):
    t = cm.thread_x()
    base = t * pixels_per_thread
    bins = cm.vector(cm.uint, NUM_BINS, 0)
    chunk = cm.vector(cm.uchar, 256)
    for off in range(0, pixels_per_thread, 256):
        cm.read(src, base + off, chunk)
        # Register-indirect increment per pixel: `bins[pix] += 1` compiles
        # to one indexed add per element (scalar rate, but no atomics and
        # no SLM round trip).  Functionally: bincount of the chunk.
        counts = np.bincount(chunk.to_numpy(), minlength=NUM_BINS)
        ctx_mod.emit_scalar(256)
        bins._buf += counts.astype(np.uint32)
    # One atomic merge of this thread's 256 bins into the global histogram.
    offsets = cm.vector(cm.uint, NUM_BINS, np.arange(NUM_BINS))
    cm.atomic("add", hist, offsets, src=bins)


def run_cm(device: Device, pixels: np.ndarray,
           pixels_per_thread: int = CM_PIXELS_PER_THREAD) -> np.ndarray:
    n = len(pixels)
    if n % pixels_per_thread:
        raise ValueError("pixel count must divide by pixels_per_thread")
    src = device.buffer(pixels.copy())
    hist = device.buffer(np.zeros(NUM_BINS, dtype=np.uint32))
    device.run_cm(_cm_histogram, grid=(n // pixels_per_thread,),
                  args=(src, hist, pixels_per_thread), name="cm_histogram")
    return hist.to_numpy().copy()


# -- OpenCL implementation -----------------------------------------------------


def _ocl_histogram(src, hist, pixels_per_item, slm):
    lid = ocl.get_local_id(0)
    gid = ocl.get_global_id(0)
    lsize = ocl.get_local_size(0)
    # Zero the local histogram (256 bins across the work-group).
    bins_per_item = NUM_BINS // lsize if lsize <= NUM_BINS else 1
    for i in range(bins_per_item):
        idx = lid * bins_per_item + i
        ocl.slm_store(slm, idx, ocl.SimtValue.splat(0, idx.width, np.uint32))
    yield ocl.barrier()

    total_items = ocl.get_global_size(0)
    for i in range(pixels_per_item):
        # Column-major access: consecutive lanes read consecutive bytes,
        # so each subgroup load is one coalesced 16-byte message.
        pix = ocl.load(src, gid + i * total_items, dtype=np.uint8)
        ocl.atomic_inc_slm(slm, pix.astype(np.uint32))
    yield ocl.barrier()

    # The leading subgroup merges the local histogram into global memory.
    if int(ocl.get_local_id(0).vals[0]) == 0:
        simd = ocl.get_sub_group_size()
        for b0 in range(0, NUM_BINS, simd):
            idx = ocl.SimtValue.of(np.arange(b0, b0 + simd), np.uint32)
            counts = ocl.slm_load(slm, idx, dtype=np.uint32)
            ocl.atomic_add_global(hist, idx, counts)


def run_ocl(device: Device, pixels: np.ndarray,
            pixels_per_item: int = OCL_PIXELS_PER_ITEM,
            simd: int = 16, wg_size: int = 256) -> np.ndarray:
    n = len(pixels)
    items = n // pixels_per_item
    if n % pixels_per_item or items % wg_size:
        raise ValueError("pixel count must divide evenly into work-groups")
    src = device.buffer(pixels.copy())
    hist = device.buffer(np.zeros(NUM_BINS, dtype=np.uint32))
    ocl.enqueue(device, _ocl_histogram, global_size=items,
                local_size=wg_size,
                args=(src, hist, pixels_per_item), simd=simd,
                slm_bytes=NUM_BINS * 4, name="ocl_histogram")
    return hist.to_numpy().copy()
