"""Out-of-place matrix transpose, float32 (Section VI-A-5).

- :func:`run_ocl` — the classic SIMT tiling through SLM [Harris 2013]:
  a work-group copies a tile into SLM with coalesced reads, barriers,
  then writes it back transposed (padded SLM stride to dodge bank
  conflicts).  Global traffic is coalesced both ways, but every element
  makes an SLM round trip and every tile pays a barrier.
- :func:`run_cm` — each hardware thread block-reads a tile into
  registers, shuffles it with select/merge regioning (Section VI's
  2x2-recursion idiom, generalized), and block-writes the transposed
  tile.  No SLM, no barriers.

Both sides take their tile edge (and the SLM side its SIMD width) as
parameters, so the autotuner (:mod:`repro.tune`) can search the
SLM-vs-direct choice and the tile size per machine; the defaults are
the paper's hand-tuned 16x16 / SIMD16 configuration.  Tile edges must
be powers of two (the register shuffle recurses by halving) and the
register path needs two tile-sized matrices of GRF per thread, so
``tile=32`` (8 KB) is structurally invalid there — exactly the kind of
point a declared :class:`~repro.tune.space.TuneSpace` constraint
filters before a compile is attempted.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro import cm, ocl
from repro.sim.device import Device

TILE = 16


def make_matrix(n: int, seed: int = 23) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)).astype(np.float32)


def reference(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a.T)


def _check(a: np.ndarray, tile: int) -> int:
    n = a.shape[0]
    if a.shape != (n, n) or n % tile:
        raise ValueError(f"need a square matrix with n % {tile} == 0")
    if tile & (tile - 1):
        raise ValueError(f"tile must be a power of two, got {tile}")
    return n


# -- CM implementation --------------------------------------------------------


def _register_transpose(m_in: cm.Matrix, m_out: cm.Matrix,
                        tile: int = TILE) -> None:
    """Transpose a register tile with the merge/replicate idiom.

    The paper transposes 2x2 sub-matrices with two ``replicate`` regions
    and a ``merge``, recursing for larger tiles.  The generalized form
    used here swaps the off-diagonal blocks at every power-of-two level:
    log2(tile) levels, each touching all tile^2 elements once with
    region reads (free) plus a predicated merge per block row.
    """
    m_out.assign(m_in)  # movs: the working copy
    size = tile // 2
    while size >= 1:
        for bi in range(0, tile, 2 * size):
            for bj in range(0, tile, 2 * size):
                upper = m_out.select(size, 1, size, 1, bi, bj + size)
                lower = m_out.select(size, 1, size, 1, bi + size, bj)
                tmp = cm.matrix(cm.float32, size, size, upper)
                upper.assign(lower)
                lower.assign(tmp)
        size //= 2


_CM_KERNELS: Dict[int, Callable] = {}


def cm_kernel_for(tile: int) -> Callable:
    """The register-transpose CM kernel for one tile edge (memoized so
    repeated launches share one kernel identity)."""
    kern = _CM_KERNELS.get(tile)
    if kern is not None:
        return kern

    @cm.cm_kernel
    def _cm_transpose(src, dst, n):
        tx = cm.thread_x()
        ty = cm.thread_y()
        t_in = cm.matrix(cm.float32, tile, tile)
        cm.read(src, tx * tile * 4, ty * tile, t_in)
        out = cm.matrix(cm.float32, tile, tile)
        _register_transpose(t_in, out, tile)
        cm.write(dst, ty * tile * 4, tx * tile, out)

    _CM_KERNELS[tile] = _cm_transpose
    return _cm_transpose


def run_cm(device: Device, a: np.ndarray, tile: int = TILE) -> np.ndarray:
    n = _check(a, tile)
    src = device.image2d(a.copy(), bytes_per_pixel=4)
    dst = device.image2d(np.zeros_like(a), bytes_per_pixel=4)
    device.run_cm(cm_kernel_for(tile), grid=(n // tile, n // tile),
                  args=(src, dst, n), name=f"cm_transpose_t{tile}")
    return dst.to_numpy().copy()


# -- OpenCL implementation ------------------------------------------------------

_OCL_KERNELS: Dict[int, Callable] = {}


def ocl_kernel_for(tile: int) -> Callable:
    """The SLM-tiled SIMT kernel for one tile edge (padded SLM stride
    ``tile + 1`` floats to avoid bank conflicts)."""
    kern = _OCL_KERNELS.get(tile)
    if kern is not None:
        return kern
    stride = tile + 1

    def _ocl_transpose(src, dst, n, slm):
        lx = ocl.get_local_id(0)
        ly = ocl.get_local_id(1)
        gx = ocl.get_group_id(0) * tile
        gy = ocl.get_group_id(1) * tile
        x = lx + gx
        y = ly + gy
        v = ocl.load(src, y * n + x, dtype=np.float32)
        ocl.slm_store(slm, ly * stride + lx, v)
        yield ocl.barrier()
        # Read the tile transposed out of SLM, write coalesced rows.
        t = ocl.slm_load(slm, lx * stride + ly, dtype=np.float32)
        xo = lx + gy
        yo = ly + gx
        ocl.store(dst, yo * n + xo, t)

    _OCL_KERNELS[tile] = _ocl_transpose
    return _ocl_transpose


def run_ocl(device: Device, a: np.ndarray, simd: int = 16,
            tile: int = TILE) -> np.ndarray:
    n = _check(a, tile)
    src = device.buffer(a.copy())
    dst = device.buffer(np.zeros_like(a))
    ocl.enqueue(device, ocl_kernel_for(tile), global_size=(n, n),
                local_size=(tile, tile), args=(src, dst, n), simd=simd,
                slm_bytes=tile * (tile + 1) * 4,
                name=f"ocl_transpose_t{tile}")
    return dst.to_numpy().copy()
