"""Out-of-place matrix transpose, float32 (Section VI-A-5).

- :func:`run_ocl` — the classic SIMT tiling through SLM [Harris 2013]:
  a work-group copies a 16x16 tile into SLM with coalesced reads,
  barriers, then writes it back transposed (padded SLM stride to dodge
  bank conflicts).  Global traffic is coalesced both ways, but every
  element makes an SLM round trip and every tile pays a barrier.
- :func:`run_cm` — each hardware thread block-reads a 16x16 tile into
  registers, shuffles it with select/merge regioning (Section VI's
  2x2-recursion idiom, generalized), and block-writes the transposed
  tile.  No SLM, no barriers.
"""

from __future__ import annotations

import numpy as np

from repro import cm, ocl
from repro.sim.device import Device

TILE = 16


def make_matrix(n: int, seed: int = 23) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)).astype(np.float32)


def reference(a: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(a.T)


# -- CM implementation --------------------------------------------------------


def _register_transpose(m_in: cm.Matrix, m_out: cm.Matrix) -> None:
    """Transpose a 16x16 register tile with the merge/replicate idiom.

    The paper transposes 2x2 sub-matrices with two ``replicate`` regions
    and a ``merge``, recursing for larger tiles.  The generalized form
    used here swaps the off-diagonal blocks at every power-of-two level:
    log2(16) = 4 levels, each touching all 256 elements once with region
    reads (free) plus a predicated merge per block row.
    """
    m_out.assign(m_in)  # movs: the working copy
    size = TILE // 2
    while size >= 1:
        for bi in range(0, TILE, 2 * size):
            for bj in range(0, TILE, 2 * size):
                upper = m_out.select(size, 1, size, 1, bi, bj + size)
                lower = m_out.select(size, 1, size, 1, bi + size, bj)
                tmp = cm.matrix(cm.float32, size, size, upper)
                upper.assign(lower)
                lower.assign(tmp)
        size //= 2


@cm.cm_kernel
def _cm_transpose(src, dst, n):
    tx = cm.thread_x()
    ty = cm.thread_y()
    tile = cm.matrix(cm.float32, TILE, TILE)
    cm.read(src, tx * TILE * 4, ty * TILE, tile)
    out = cm.matrix(cm.float32, TILE, TILE)
    _register_transpose(tile, out)
    cm.write(dst, ty * TILE * 4, tx * TILE, out)


def run_cm(device: Device, a: np.ndarray) -> np.ndarray:
    n = a.shape[0]
    if a.shape != (n, n) or n % TILE:
        raise ValueError(f"need a square matrix with n % {TILE} == 0")
    src = device.image2d(a.copy(), bytes_per_pixel=4)
    dst = device.image2d(np.zeros_like(a), bytes_per_pixel=4)
    device.run_cm(_cm_transpose, grid=(n // TILE, n // TILE),
                  args=(src, dst, n), name="cm_transpose")
    return dst.to_numpy().copy()


# -- OpenCL implementation ------------------------------------------------------

#: Padded SLM row stride (floats) to avoid bank conflicts.
_SLM_STRIDE = TILE + 1


def _ocl_transpose(src, dst, n, slm):
    lx = ocl.get_local_id(0)
    ly = ocl.get_local_id(1)
    gx = ocl.get_group_id(0) * TILE
    gy = ocl.get_group_id(1) * TILE
    x = lx + gx
    y = ly + gy
    v = ocl.load(src, y * n + x, dtype=np.float32)
    ocl.slm_store(slm, ly * _SLM_STRIDE + lx, v)
    yield ocl.barrier()
    # Read the tile transposed out of SLM, write coalesced rows of dst.
    t = ocl.slm_load(slm, lx * _SLM_STRIDE + ly, dtype=np.float32)
    xo = lx + gy
    yo = ly + gx
    ocl.store(dst, yo * n + xo, t)


def run_ocl(device: Device, a: np.ndarray, simd: int = 16) -> np.ndarray:
    n = a.shape[0]
    if a.shape != (n, n) or n % TILE:
        raise ValueError(f"need a square matrix with n % {TILE} == 0")
    src = device.buffer(a.copy())
    dst = device.buffer(np.zeros_like(a))
    ocl.enqueue(device, _ocl_transpose, global_size=(n, n),
                local_size=(TILE, TILE), args=(src, dst, n), simd=simd,
                slm_bytes=TILE * _SLM_STRIDE * 4, name="ocl_transpose")
    return dst.to_numpy().copy()
