"""CLI: run autotuning searches and print the winner table.

Examples::

    python -m repro.tune                          # all families, all machines
    python -m repro.tune --family gemm --machine gen12
    python -m repro.tune --strategy hill --budget 20 --out tuned.json
"""

from __future__ import annotations

import argparse
import sys

from repro.sim.machine import GEN9_SKL, GEN11_ICL, GEN12_TGL, SIMD32_APL
from repro.tune.registry import TunedRegistry
from repro.tune.search import STRATEGIES, tune
from repro.tune.workloads import tunable_families

MACHINES = {
    "gen9": GEN9_SKL,
    "gen11": GEN11_ICL,
    "gen12": GEN12_TGL,
    "apl": SIMD32_APL,
}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="search tunable kernel families per machine")
    ap.add_argument("--family", action="append", dest="families",
                    choices=tunable_families(),
                    help="family to tune (repeatable; default: all)")
    ap.add_argument("--machine", action="append", dest="machines",
                    choices=sorted(MACHINES),
                    help="machine to tune for (repeatable; default: all)")
    ap.add_argument("--strategy", choices=STRATEGIES, default="grid")
    ap.add_argument("--budget", type=int, default=None,
                    help="max evaluated points per search")
    ap.add_argument("--out", default=None,
                    help="write the tuned registry JSON here")
    args = ap.parse_args(argv)

    families = args.families or tunable_families()
    machines = args.machines or sorted(MACHINES)
    registry = TunedRegistry()

    header = (f"{'family':<14} {'machine':<26} {'winner':<30} "
              f"{'sim_us':>8} {'base_us':>8} {'speedup':>7} {'evals':>5}")
    print(header)
    print("-" * len(header))
    for fam in families:
        for mname in machines:
            result = tune(fam, MACHINES[mname], strategy=args.strategy,
                          budget=args.budget)
            registry.record(result)
            base = result.baseline_sim_us
            speedup = result.speedup
            print(f"{fam:<14} {result.machine_name:<26} "
                  f"{result.best_label:<30} {result.best_sim_us:>8.2f} "
                  f"{base if base is not None else float('nan'):>8.2f} "
                  f"{speedup if speedup is not None else float('nan'):>6.2f}x "
                  f"{result.n_evaluated:>5}")
    if args.out:
        registry.save(args.out)
        print(f"\nwrote {len(registry)} tuned entries to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
