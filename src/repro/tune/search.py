"""Search driver: score candidate variants through the simulator.

One evaluation = build the variant for a point, run one launch on a
fresh :class:`Device` of the target machine, gate the output bit-exactly
against the family's reference oracle, and take the device's simulated
kernel time as the objective.  Points can fail three ways — declared
constraint (never evaluated), ``CompileError``/``ValueError`` from the
variant itself (the register allocator pricing GRF overflow), or a
wrong result — and all three leave the point inadmissible.

Compiles dominate evaluation wall time, and a compiled program is
machine-independent (machine specifics enter at trace/JIT time, cached
per-machine inside the kernel object), so every evaluation device in
the process shares one module-level :class:`KernelCache`: tuning the
same family on four machines compiles each variant once, not four
times.

Two strategies:

- ``"grid"`` — exhaustive over :meth:`TuneSpace.points`, in declared
  grid order.
- ``"hill"`` — greedy hill climb from the hand-tuned default point over
  :meth:`TuneSpace.neighbors`, stopping at a local optimum.

Both are deterministic: the simulator is analytic (same trace, same
microseconds), enumeration order is fixed, and ties break on
``(sim_us, label)`` — so the same (family, machine, problem) always
yields the same winner, which is what makes the persisted registry
(:mod:`repro.tune.registry`) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.compiler.cache import KernelCache
from repro.compiler.visa import CompileError
from repro.obs import get_observability
from repro.obs.tracing import trace_span
from repro.sim.device import Device
from repro.sim.machine import MachineConfig
from repro.tune.space import canonical_point, point_label
from repro.tune.workloads import (Inputs, Point, Problem, TunableWorkload,
                                  get_tunable)

STRATEGIES = ("grid", "hill")

#: Shared across all evaluation devices (compiled programs are
#: machine-independent; per-machine JIT state caches inside the kernel).
_EVAL_CACHE = KernelCache()


@dataclass
class Evaluation:
    """Outcome of scoring one point."""

    point: Point
    label: str
    #: "ok" | "compile_error" | "wrong_result" | "run_error"
    status: str
    sim_us: Optional[float] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class TuneResult:
    """The winner of one (family, problem, machine) search."""

    family: str
    problem: Problem
    machine_name: str
    strategy: str
    best_point: Point
    best_label: str
    best_sim_us: float
    #: the hand-tuned default point and its time (the ablation baseline).
    baseline_point: Point
    baseline_sim_us: Optional[float]
    evaluations: List[Evaluation] = field(default_factory=list)

    @property
    def speedup(self) -> Optional[float]:
        """Hand-tuned / autotuned simulated time (>= 1.0 is a win)."""
        if self.baseline_sim_us is None or self.best_sim_us <= 0:
            return None
        return self.baseline_sim_us / self.best_sim_us

    @property
    def n_evaluated(self) -> int:
        return len(self.evaluations)

    @property
    def n_admissible(self) -> int:
        return sum(1 for e in self.evaluations if e.ok)


class _Evaluator:
    """Memoizing point scorer for one (workload, problem, machine)."""

    def __init__(self, workload: TunableWorkload, problem: Problem,
                 machine: MachineConfig, inputs: Inputs,
                 reference: np.ndarray, budget: Optional[int],
                 obs) -> None:
        self.workload = workload
        self.problem = problem
        self.machine = machine
        self.inputs = inputs
        self.reference = reference
        self.budget = budget
        self.evaluations: List[Evaluation] = []
        self._seen: Dict[tuple, Evaluation] = {}
        self._m_evals = obs.registry.counter(
            "tune_evaluations", "autotuner points scored",
            family=workload.family, machine=machine.name) \
            if obs.enabled else None

    @property
    def exhausted(self) -> bool:
        return self.budget is not None \
            and len(self.evaluations) >= self.budget

    def evaluate(self, point: Point) -> Evaluation:
        key = canonical_point(point)
        hit = self._seen.get(key)
        if hit is not None:
            return hit
        ev = self._evaluate(point)
        self._seen[key] = ev
        self.evaluations.append(ev)
        if self._m_evals is not None:
            self._m_evals.inc()
        return ev

    def _evaluate(self, point: Point) -> Evaluation:
        label = point_label(point)
        with trace_span("tune:eval", family=self.workload.family,
                        machine=self.machine.name, point=label):
            device = Device(self.machine)
            device.kernel_cache = _EVAL_CACHE
            try:
                variant = self.workload.variant(self.problem, point)
                out = variant.run(device, self.inputs)
            except CompileError as exc:
                return Evaluation(dict(point), label, "compile_error",
                                  error=str(exc))
            except (ValueError, AssertionError) as exc:
                return Evaluation(dict(point), label, "run_error",
                                  error=f"{type(exc).__name__}: {exc}")
            if not np.array_equal(out, self.reference):
                return Evaluation(dict(point), label, "wrong_result",
                                  error="output does not match reference")
            return Evaluation(dict(point), label, "ok",
                              sim_us=device.kernel_time_us)


def tune(family: Union[str, TunableWorkload], machine: MachineConfig,
         problem: Optional[Problem] = None, strategy: str = "grid",
         budget: Optional[int] = None, seed: int = 0,
         obs=None) -> TuneResult:
    """Search one family's space on one machine; return the winner.

    ``budget`` caps the number of *evaluated* points (declared-invalid
    points cost nothing and don't count).  The hand-tuned default point
    is always evaluated first so every result carries its ablation
    baseline, budget notwithstanding.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, "
                         f"got {strategy!r}")
    if budget is not None and budget < 1:
        raise ValueError("budget must be >= 1")
    workload = get_tunable(family) if isinstance(family, str) else family
    problem = dict(problem if problem is not None
                   else workload.default_problem)
    obs = obs if obs is not None else get_observability()
    space = workload.space_for(problem)
    inputs = workload.make_inputs(problem, seed=seed)
    reference = workload.reference(problem, inputs)
    ev = _Evaluator(workload, problem, machine, inputs, reference,
                    budget, obs)

    with trace_span("tune:search", family=workload.family,
                    machine=machine.name, strategy=strategy):
        default = space.default_point()
        baseline = ev.evaluate(default)
        if strategy == "grid":
            for point in space.points():
                if ev.exhausted:
                    break
                ev.evaluate(point)
        else:
            current = baseline
            # A default that doesn't even compile still seeds the climb:
            # inadmissible scores as +inf, so any admissible neighbor
            # is an improvement.
            while not ev.exhausted:
                best_step = None
                for cand in space.neighbors(current.point):
                    if ev.exhausted:
                        break
                    res = ev.evaluate(cand)
                    if not res.ok:
                        continue
                    if best_step is None or _order(res) < _order(best_step):
                        best_step = res
                if best_step is None or not _improves(best_step, current):
                    break
                current = best_step

    admissible = [e for e in ev.evaluations if e.ok]
    if not admissible:
        raise RuntimeError(
            f"no admissible point found for {workload.family!r} on "
            f"{machine.name!r} (evaluated {len(ev.evaluations)})")
    winner = min(admissible, key=_order)
    result = TuneResult(
        family=workload.family, problem=problem,
        machine_name=machine.name, strategy=strategy,
        best_point=dict(winner.point), best_label=winner.label,
        best_sim_us=winner.sim_us,
        baseline_point=dict(default),
        baseline_sim_us=baseline.sim_us if baseline.ok else None,
        evaluations=ev.evaluations)
    if obs.enabled:
        obs.registry.gauge(
            "tune_best_sim_us", "simulated time of the tuned winner",
            family=workload.family,
            machine=machine.name).set(winner.sim_us)
    return result


def _order(ev: Evaluation) -> tuple:
    """Deterministic objective order: time, then label as tie-break."""
    return (ev.sim_us, ev.label)


def _improves(cand: Evaluation, current: Evaluation) -> bool:
    if not current.ok:
        return True
    return cand.sim_us < current.sim_us
