"""Autotuner: search the optimization space the simulator prices.

The paper's performance numbers come from hand-tuned kernels — block
sizes, SIMD widths, K-band depths and SLM-vs-register choices picked by
an expert for one machine.  This package turns those choices into
declared :class:`~repro.tune.space.TuneSpace` knobs, searches them with
the analytic simulator as the (deterministic) cost oracle
(:func:`~repro.tune.search.tune`), and persists per-machine winners in
a :class:`~repro.tune.registry.TunedRegistry` that the serving stack
consumes: a heterogeneous cluster dispatches each device generation its
own tuned variant (``ServeCluster(tuned=...)``).

CLI: ``python -m repro.tune`` runs a search and prints the winner table.
"""

from repro.tune.registry import TunedEntry, TunedRegistry
from repro.tune.search import Evaluation, TuneResult, tune
from repro.tune.space import (Knob, TuneSpace, canonical_point,
                              param_digest, point_label)
from repro.tune.workloads import (TUNABLES, TunableWorkload, Variant,
                                  get_tunable, tunable_families)

__all__ = [
    "Evaluation", "Knob", "TUNABLES", "TunableWorkload", "TuneResult",
    "TuneSpace", "TunedEntry", "TunedRegistry", "Variant",
    "canonical_point", "get_tunable", "param_digest", "point_label",
    "tunable_families", "tune",
]
