"""Parameterized-kernel API: knobs, spaces, and points.

A workload that wants tuning declares a :class:`TuneSpace` — an ordered
set of :class:`Knob`\\ s (tile sizes, SIMD widths, K-band depths, SLM
vs. direct load) plus a validity constraint — and exposes a
``variant(problem, point)`` factory that builds a runnable kernel for
one concrete point (see :mod:`repro.tune.workloads`).

Everything here is deterministic: :meth:`TuneSpace.points` enumerates
the grid in knob-declaration order, :meth:`TuneSpace.neighbors` yields
one-knob steps in a fixed order, and :func:`param_digest` hashes a
canonicalized dict — so the same space on the same machine always
produces the same search trajectory and the same winner.

Not every syntactically-valid point is *admissible*: a variant may also
fail to compile (the register allocator running out of GRF raises
``CompileError``) or produce wrong output — the search driver
(:mod:`repro.tune.search`) treats both exactly like a constraint
violation, so the effective search space is "declared grid minus
whatever the compiler and the correctness gate reject".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Knob:
    """One tunable axis: a name and its ordered choice list."""

    name: str
    choices: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.choices:
            raise ValueError(f"knob {self.name!r} needs at least one choice")
        object.__setattr__(self, "choices", tuple(self.choices))


def canonical_point(point: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Order-independent identity of a point (or a problem dict)."""
    return tuple(sorted(point.items()))


def param_digest(params: Dict[str, Any]) -> str:
    """Stable 12-hex digest of a params/problem dict (registry keying)."""
    blob = repr(canonical_point(params)).encode()
    return hashlib.sha1(blob).hexdigest()[:12]


def point_label(point: Dict[str, Any]) -> str:
    """Human-readable variant label: ``bm=8,bn=16,ktile=8``."""
    return ",".join(f"{k}={v}" for k, v in sorted(point.items()))


@dataclass
class TuneSpace:
    """The declared optimization space of one kernel family."""

    knobs: List[Knob]
    #: point -> bool; False marks the point invalid before any compile.
    constraint: Optional[Callable[[Dict[str, Any]], bool]] = None
    #: the hand-tuned baseline point (clipped to the grid if needed).
    default: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [k.name for k in self.knobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate knob names in {names}")

    @property
    def knob_names(self) -> List[str]:
        return [k.name for k in self.knobs]

    def is_valid(self, point: Dict[str, Any]) -> bool:
        """Point on the grid and passing the declared constraint?"""
        for knob in self.knobs:
            if point.get(knob.name) not in knob.choices:
                return False
        if self.constraint is not None and not self.constraint(dict(point)):
            return False
        return True

    def size(self) -> int:
        """Grid size before constraint filtering."""
        n = 1
        for knob in self.knobs:
            n *= len(knob.choices)
        return n

    def points(self) -> Iterator[Dict[str, Any]]:
        """All valid points, in deterministic lexicographic grid order."""
        def rec(i: int, acc: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
            if i == len(self.knobs):
                if self.constraint is None or self.constraint(dict(acc)):
                    yield dict(acc)
                return
            knob = self.knobs[i]
            for choice in knob.choices:
                acc[knob.name] = choice
                yield from rec(i + 1, acc)
            del acc[knob.name]
        yield from rec(0, {})

    def default_point(self) -> Dict[str, Any]:
        """The hand-tuned baseline: the declared default (each knob value
        clipped to its nearest declared choice), constraint permitting —
        otherwise the first valid grid point."""
        point: Dict[str, Any] = {}
        for knob in self.knobs:
            want = self.default.get(knob.name, knob.choices[0])
            if want in knob.choices:
                point[knob.name] = want
            else:
                point[knob.name] = min(
                    knob.choices,
                    key=lambda c: (abs(self._rank(c) - self._rank(want)),
                                   str(c)))
            # non-numeric fallbacks land on the first choice via _rank
        if self.is_valid(point):
            return point
        first = next(self.points(), None)
        if first is None:
            raise ValueError("TuneSpace has no valid points")
        return first

    @staticmethod
    def _rank(value: Any) -> float:
        try:
            return float(value)
        except (TypeError, ValueError):
            return 0.0

    def neighbors(self, point: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
        """Valid one-knob steps (choice index +/- 1), in knob order."""
        for knob in self.knobs:
            try:
                idx = knob.choices.index(point[knob.name])
            except (KeyError, ValueError):
                continue
            for step in (-1, 1):
                j = idx + step
                if 0 <= j < len(knob.choices):
                    cand = dict(point)
                    cand[knob.name] = knob.choices[j]
                    if self.is_valid(cand):
                        yield cand
