"""Tunable workload families: the kernels the autotuner searches over.

Each family is a :class:`TunableWorkload`: a *problem* (concrete shapes),
a :class:`~repro.tune.space.TuneSpace` over that problem, a deterministic
input generator, a **bit-exact** reference oracle, and a
``variant(problem, point)`` factory that returns a runnable
:class:`Variant` for one knob assignment.

Bit-exactness is the load-bearing property: every variant of a family
performs its floating-point reductions in the same order regardless of
tiling (K ascends monotonically across bands; the filter accumulates
center-then-neighbors in a fixed order), so the oracle is a single
``np.array_equal`` — the correctness gate in :mod:`repro.tune.search`
needs no tolerance and a wrong variant cannot hide inside one.

Families:

- ``gemm`` — single-precision C += A@B through the compile pipeline,
  register-blocked with a staged K band (``bm``/``bn``/``ktile``).
- ``linear_filter`` — single-channel 3x3 box filter on uint8, tiled
  (``tile_w``/``tile_h``).
- ``transpose`` — the SLM-vs-registers choice itself is the knob
  (``use_slm``), plus tile edge and SIMT dispatch width.
- ``systolic`` — the deeper-K weights-stationary GEMM of
  :mod:`repro.workloads.systolic` at its native double-depth K.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.sim.device import Device
from repro.tune.space import Knob, TuneSpace, point_label
from repro.workloads import gemm as gemm_mod
from repro.workloads import linear_filter as lf_mod
from repro.workloads import systolic as sys_mod
from repro.workloads import transpose as tp_mod

Problem = Dict[str, Any]
Point = Dict[str, Any]
Inputs = Dict[str, np.ndarray]


@dataclass
class Variant:
    """One runnable configuration of a family: a concrete kernel."""

    family: str
    label: str
    point: Point
    #: "compiled" variants go through the trace-compile pipeline and can
    #: pre-seed a KernelCache; "eager"/"ocl" variants interpret directly.
    kind: str
    kernel_name: str
    #: Execute one launch on ``device``, returning the output array.
    run: Callable[[Device, Inputs], np.ndarray]
    #: Compile (without running) on ``device`` — populates its kernel
    #: cache.  None for non-compiled variants.
    compile_on: Optional[Callable[[Device], Any]] = None


@dataclass
class TunableWorkload:
    """A kernel family the autotuner can search."""

    family: str
    description: str
    default_problem: Problem
    space_fn: Callable[[Problem], TuneSpace]
    inputs_fn: Callable[[Problem, int], Inputs]
    reference_fn: Callable[[Problem, Inputs], np.ndarray]
    variant_fn: Callable[[Problem, Point], Variant]

    def space_for(self, problem: Problem) -> TuneSpace:
        return self.space_fn(problem)

    def make_inputs(self, problem: Problem, seed: int = 0) -> Inputs:
        return self.inputs_fn(problem, seed)

    def reference(self, problem: Problem, inputs: Inputs) -> np.ndarray:
        """Bit-exact expected output for these inputs."""
        return self.reference_fn(problem, inputs)

    def variant(self, problem: Problem, point: Point) -> Variant:
        return self.variant_fn(problem, point)


# -- gemm / systolic -----------------------------------------------------------
#
# Both families share the staged weights-stationary body of
# repro.workloads.systolic (memoized per (k, bm, bn, ktile), so repeated
# variant construction keeps a stable kernel-cache identity); they differ
# in problem depth.  Accumulation is k-ascending for every tiling, so one
# ordered-f32 oracle covers the whole space bit-exactly.


def _gemm_space(problem: Problem) -> TuneSpace:
    m, n, k = problem["m"], problem["n"], problem["k"]

    def ok(p: Point) -> bool:
        return m % p["bm"] == 0 and n % p["bn"] == 0 and k % p["ktile"] == 0

    return TuneSpace(
        knobs=[Knob("bm", (4, 8, 16)),
               Knob("bn", (8, 16, 32)),
               Knob("ktile", (4, 8, 16, 32))],
        constraint=ok,
        default={"bm": sys_mod.SYS_JIT_BM, "bn": sys_mod.SYS_JIT_BN,
                 "ktile": sys_mod.SYS_KTILE},
    )


def _gemm_inputs(problem: Problem, seed: int) -> Inputs:
    a, b, c = gemm_mod.make_inputs(problem["m"], problem["n"], problem["k"],
                                   seed=29 + seed)
    return {"a": a, "b": b, "c": c}


def _gemm_reference(problem: Problem, inputs: Inputs) -> np.ndarray:
    """C + A@B with k-ascending f32 accumulation — the exact order every
    (bm, bn, ktile) variant uses, so this matches bit for bit."""
    a, b, c = inputs["a"], inputs["b"], inputs["c"]
    acc = np.zeros((a.shape[0], b.shape[1]), dtype=np.float32)
    for kk in range(a.shape[1]):
        acc += a[:, kk:kk + 1] * b[kk:kk + 1, :]
    return acc + c


def _gemm_variant(problem: Problem, point: Point) -> Variant:
    bm, bn, ktile = point["bm"], point["bn"], point["ktile"]
    k = problem["k"]
    name = f"cm_systolic_jit_b{bm}x{bn}k{ktile}"

    def run(device: Device, inputs: Inputs) -> np.ndarray:
        return sys_mod.run_cm_compiled(device, inputs["a"], inputs["b"],
                                       inputs["c"].copy(),
                                       bm=bm, bn=bn, ktile=ktile)

    def compile_on(device: Device):
        return device.compile(sys_mod._jit_systolic_body(k, bm, bn, ktile),
                              name, sys_mod._JIT_SIG, ["tx", "ty"])

    return Variant("gemm", point_label(point), dict(point), "compiled",
                   name, run, compile_on)


def _systolic_variant(problem: Problem, point: Point) -> Variant:
    v = _gemm_variant(problem, point)
    v.family = "systolic"
    return v


# -- linear_filter -------------------------------------------------------------
#
# Single-channel 3x3 box filter on uint8 through the compile pipeline.
# Each thread reads a (tile_h+2) x (tile_w+2) halo tile, accumulates the
# nine taps in f32 (center first, then neighbors row-major — a fixed
# order shared with the oracle), scales and converts back to uint8, and
# writes the tile_h x tile_w interior.  The image border is untouched.

#: Tap order: center first (matching the paper's RGB kernel), then the
#: eight neighbors row-major.  Fixed across all tilings => bit-exact.
_LF_TAPS = ((1, 1), (0, 0), (0, 1), (0, 2), (1, 0),
            (1, 2), (2, 0), (2, 1), (2, 2))

_LF_BODIES: Dict[Any, Callable] = {}
_LF_SIG = [("src", True), ("dst", True)]


def _lf_body(tile_w: int, tile_h: int) -> Callable:
    key = (tile_w, tile_h)
    body = _LF_BODIES.get(key)
    if body is not None:
        return body

    def linear_tuned(cmx, src, dst, tx, ty):
        x0 = tx * tile_w   # interior-relative; absolute pixel is +1
        y0 = ty * tile_h
        tin = cmx.matrix(np.uint8, tile_h + 2, tile_w + 2)
        cmx.read(src, x0, y0, tin)
        acc = cmx.matrix(np.float32, tile_h, tile_w,
                         np.zeros(tile_h * tile_w, np.float32))
        for dy, dx in _LF_TAPS:
            # Explicit convert stop: uint8 tap -> f32 tmp, then f32 add.
            tap = cmx.matrix(np.float32, tile_h, tile_w)
            tap.assign(tin.select(tile_h, 1, tile_w, 1, dy, dx))
            acc += tap
        scaled = cmx.matrix(np.float32, tile_h, tile_w)
        scaled.assign(acc * lf_mod.SCALE)
        out = cmx.matrix(np.uint8, tile_h, tile_w)
        out.assign(scaled)
        cmx.write(dst, x0 + 1, y0 + 1, out)

    _LF_BODIES[key] = linear_tuned
    return linear_tuned


def _lf_space(problem: Problem) -> TuneSpace:
    in_w, in_h = problem["width"] - 2, problem["height"] - 2

    def ok(p: Point) -> bool:
        return in_w % p["tile_w"] == 0 and in_h % p["tile_h"] == 0

    return TuneSpace(
        knobs=[Knob("tile_w", (8, 16, 32, 64)),
               Knob("tile_h", (2, 4, 6, 8))],
        constraint=ok,
        default={"tile_w": 8, "tile_h": 6},
    )


def _lf_inputs(problem: Problem, seed: int) -> Inputs:
    rng = np.random.default_rng(17 + seed)
    img = rng.integers(0, 256, (problem["height"], problem["width"]),
                       dtype=np.uint8)
    return {"img": img}


def _lf_reference(problem: Problem, inputs: Inputs) -> np.ndarray:
    img = inputs["img"]
    out = img.copy()
    acc = np.zeros((img.shape[0] - 2, img.shape[1] - 2), dtype=np.float32)
    for dy, dx in _LF_TAPS:
        acc += img[dy:dy + acc.shape[0], dx:dx + acc.shape[1]]
    out[1:-1, 1:-1] = (acc * lf_mod.SCALE).astype(np.uint8)
    return out


def _lf_variant(problem: Problem, point: Point) -> Variant:
    tile_w, tile_h = point["tile_w"], point["tile_h"]
    in_w, in_h = problem["width"] - 2, problem["height"] - 2
    name = f"cm_linear_tuned_t{tile_w}x{tile_h}"

    def run(device: Device, inputs: Inputs) -> np.ndarray:
        img = inputs["img"]
        src = device.image2d(img.copy(), bytes_per_pixel=1)
        dst = device.image2d(img.copy(), bytes_per_pixel=1)
        kern = device.compile(_lf_body(tile_w, tile_h), name, _LF_SIG,
                              ["tx", "ty"])
        device.run_compiled(
            kern, grid=(in_w // tile_w, in_h // tile_h),
            surfaces=[src, dst],
            scalars=lambda tid: {"tx": tid[0], "ty": tid[1]},
            name=name)
        return dst.to_numpy().copy()

    def compile_on(device: Device):
        return device.compile(_lf_body(tile_w, tile_h), name, _LF_SIG,
                              ["tx", "ty"])

    return Variant("linear_filter", point_label(point), dict(point),
                   "compiled", name, run, compile_on)


# -- transpose -----------------------------------------------------------------
#
# The knob of interest is the paper's central contrast itself: SLM-tiled
# SIMT (use_slm=1) vs. register shuffles (use_slm=0).  The register path
# needs two tile^2 f32 matrices of GRF, so tile=32 (8 KB) is declared
# invalid there rather than left for the compiler to reject; the SIMT
# path needs its x-dimension local size divisible by the dispatch width
# (simd <= tile).  The simd knob is pinned to 16 on the register path so
# the two paths don't alias duplicate points.


def _tp_space(problem: Problem) -> TuneSpace:
    n = problem["n"]

    def ok(p: Point) -> bool:
        if n % p["tile"]:
            return False
        if p["use_slm"]:
            return p["simd"] <= p["tile"]
        # Register path: ~2 tile^2 f32 matrices must fit the 4 KB GRF.
        return p["tile"] <= 16 and p["simd"] == 16

    return TuneSpace(
        knobs=[Knob("tile", (4, 8, 16, 32)),
               Knob("use_slm", (0, 1)),
               Knob("simd", (8, 16, 32))],
        constraint=ok,
        default={"tile": tp_mod.TILE, "use_slm": 0, "simd": 16},
    )


def _tp_inputs(problem: Problem, seed: int) -> Inputs:
    return {"a": tp_mod.make_matrix(problem["n"], seed=23 + seed)}


def _tp_reference(problem: Problem, inputs: Inputs) -> np.ndarray:
    return tp_mod.reference(inputs["a"])


def _tp_variant(problem: Problem, point: Point) -> Variant:
    tile, use_slm, simd = point["tile"], point["use_slm"], point["simd"]

    if use_slm:
        def run(device: Device, inputs: Inputs) -> np.ndarray:
            return tp_mod.run_ocl(device, inputs["a"], simd=simd, tile=tile)
        kind, name = "ocl", f"ocl_transpose_t{tile}"
    else:
        def run(device: Device, inputs: Inputs) -> np.ndarray:
            return tp_mod.run_cm(device, inputs["a"], tile=tile)
        kind, name = "eager", f"cm_transpose_t{tile}"

    return Variant("transpose", point_label(point), dict(point), kind,
                   name, run, None)


# -- registry ------------------------------------------------------------------

TUNABLES: Dict[str, TunableWorkload] = {}


def _register(wl: TunableWorkload) -> TunableWorkload:
    TUNABLES[wl.family] = wl
    return wl


_register(TunableWorkload(
    "gemm", "SGEMM C += A@B, register-blocked with staged K bands",
    {"m": 128, "n": 128, "k": 32},
    _gemm_space, _gemm_inputs, _gemm_reference, _gemm_variant))

_register(TunableWorkload(
    "linear_filter", "single-channel 3x3 box filter on uint8",
    {"width": 258, "height": 98},
    _lf_space, _lf_inputs, _lf_reference, _lf_variant))

_register(TunableWorkload(
    "transpose", "out-of-place f32 transpose: SLM tiling vs registers",
    {"n": 256},
    _tp_space, _tp_inputs, _tp_reference, _tp_variant))

_register(TunableWorkload(
    "systolic", "deeper-K weights-stationary GEMM (DPAS substitution)",
    {"m": 128, "n": 128, "k": 64},
    _gemm_space, _gemm_inputs, _gemm_reference, _systolic_variant))


def get_tunable(family: str) -> TunableWorkload:
    wl = TUNABLES.get(family)
    if wl is None:
        raise KeyError(f"unknown tunable family {family!r}; "
                       f"choose from {sorted(TUNABLES)}")
    return wl


def tunable_families() -> List[str]:
    return sorted(TUNABLES)
