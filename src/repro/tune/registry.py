"""Tuned-variant cache: persist winners, pre-seed kernel caches.

A :class:`TunedRegistry` maps ``(kernel_family, param_digest,
machine_name)`` — the digest is :func:`repro.tune.space.param_digest`
of the *problem* dict — to the winning point of a past search.  It
round-trips through a JSON table, so winners found once (a CI tuning
job, the ``python -m repro.tune`` CLI) follow the repo, and a serving
cluster can :meth:`preseed` every device's :class:`KernelCache` with
its own machine's tuned programs before the first request arrives.

Entries are plain data (family + problem + point); the runnable variant
is reconstructed on demand through :data:`repro.tune.workloads.
TUNABLES`, which is what lets an entry survive both ``Device.reset``
(the kernel cache persists by default; a ``clear_cache=True`` reset
just means the next lookup recompiles or re-seeds) and process
boundaries (the sharded cluster forwards the registry to its shard
workers).
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.device import Device
from repro.tune.search import TuneResult
from repro.tune.space import param_digest
from repro.tune.workloads import Point, Problem, Variant, get_tunable

Key = Tuple[str, str, str]  # (family, problem digest, machine name)


@dataclass
class TunedEntry:
    """One persisted winner."""

    family: str
    problem: Dict[str, Any]
    param_digest: str
    machine_name: str
    point: Point
    label: str
    sim_us: float
    baseline_sim_us: Optional[float] = None
    strategy: str = "grid"
    n_evaluated: int = 0

    @property
    def key(self) -> Key:
        return (self.family, self.param_digest, self.machine_name)

    @property
    def speedup(self) -> Optional[float]:
        if self.baseline_sim_us is None or self.sim_us <= 0:
            return None
        return self.baseline_sim_us / self.sim_us

    def variant(self) -> Variant:
        """Rebuild the runnable variant for this entry."""
        return get_tunable(self.family).variant(self.problem, self.point)


class TunedRegistry:
    """Thread-safe (family, problem, machine) -> winner table."""

    def __init__(self) -> None:
        self._entries: Dict[Key, TunedEntry] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    # The lock only guards mutation races in-process; a registry crossing
    # to a shard worker is effectively frozen, so drop the lock there.
    def __getstate__(self) -> dict:
        return {"entries": list(self._entries.values())}

    def __setstate__(self, state: dict) -> None:
        self._entries = {e.key: e for e in state["entries"]}
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def record(self, result: TuneResult) -> TunedEntry:
        """Store a search winner (overwrites any previous entry)."""
        entry = TunedEntry(
            family=result.family, problem=dict(result.problem),
            param_digest=param_digest(result.problem),
            machine_name=result.machine_name,
            point=dict(result.best_point), label=result.best_label,
            sim_us=result.best_sim_us,
            baseline_sim_us=result.baseline_sim_us,
            strategy=result.strategy, n_evaluated=result.n_evaluated)
        with self._lock:
            self._entries[entry.key] = entry
        return entry

    def add(self, entry: TunedEntry) -> None:
        with self._lock:
            self._entries[entry.key] = entry

    # -- lookup ------------------------------------------------------------

    def lookup(self, family: str, problem: Problem,
               machine_name: str) -> Optional[TunedEntry]:
        key = (family, param_digest(problem), machine_name)
        return self._entries.get(key)

    def best_point(self, family: str, problem: Problem,
                   machine_name: str) -> Optional[Point]:
        entry = self.lookup(family, problem, machine_name)
        return dict(entry.point) if entry is not None else None

    def entries(self) -> List[TunedEntry]:
        with self._lock:
            return sorted(self._entries.values(), key=lambda e: e.key)

    def machines(self) -> List[str]:
        return sorted({e.machine_name for e in self.entries()})

    # -- kernel-cache pre-seeding ------------------------------------------

    def preseed(self, device: Device) -> int:
        """Compile this device's machine's winners into its kernel cache.

        Returns the number of programs compiled (or re-validated as
        cache hits).  Non-compiled variants (eager/OCL winners, e.g. a
        transpose that tuned to the SLM path) have nothing to seed and
        are skipped.
        """
        seeded = 0
        for entry in self.entries():
            if entry.machine_name != device.machine.name:
                continue
            variant = entry.variant()
            if variant.compile_on is None:
                continue
            variant.compile_on(device)
            seeded += 1
        return seeded

    # -- persistence -------------------------------------------------------

    def save(self, path) -> None:
        data = {"version": 1,
                "entries": [asdict(e) for e in self.entries()]}
        with open(path, "w") as fh:
            json.dump(data, fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "TunedRegistry":
        reg = cls()
        with open(path) as fh:
            data = json.load(fh)
        if data.get("version") != 1:
            raise ValueError(f"unsupported tuned-registry version "
                             f"{data.get('version')!r}")
        for raw in data["entries"]:
            reg.add(TunedEntry(**raw))
        return reg
