"""SIMD (divergent) control flow.

CM's default control flow is scalar C++ control flow: conditions must be
scalars and all lanes branch uniformly — in this embedding that is plain
Python ``if``/``for``.  For per-lane divergence CM provides the
``SIMD_IF_BEGIN``/``SIMD_ELSE``/``SIMD_IF_END`` macros backed by Gen's
``simd-goto``/``simd-join`` instructions.  Here they are context
managers::

    with simd_if(cond > 0) as branch:
        v.select(8, 2, 0).assign(1)
    with branch.orelse():
        v.select(8, 2, 1).assign(1)

Inside a block, every write whose width matches the mask is predicated by
the active lanes (writes of other widths must be scalar, per the CM
specification).  Inactive lanes do not observe the block's writes.
"""

from __future__ import annotations

import numpy as np

from repro.cm.vector import _CMBase
from repro.sim import context as ctx


def _mask_values(cond) -> np.ndarray:
    if isinstance(cond, _CMBase):
        return cond._read().astype(bool).copy()
    return np.asarray(cond, dtype=bool).reshape(-1)


class SimdIf:
    """A divergent if/else region (``SIMD_IF_BEGIN`` ... ``SIMD_IF_END``)."""

    def __init__(self, cond) -> None:
        self._mask = _mask_values(cond)
        self._entered = False

    def __enter__(self) -> "SimdIf":
        thread = ctx.current()
        if thread is None:
            raise RuntimeError("SIMD control flow requires a kernel context")
        # simd-goto costs a couple of instructions on Gen.
        ctx.emit_scalar(2)
        thread.push_mask(self._mask)
        self._entered = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        ctx.require().pop_mask()
        ctx.emit_scalar(1)  # simd-join
        return False

    def orelse(self) -> "SimdElse":
        """The ``SIMD_ELSE`` block; lanes inactive in the then-block run."""
        if not self._entered:
            raise RuntimeError("orelse() before the simd_if block ran")
        return SimdElse(~self._mask)


class SimdElse:
    def __init__(self, mask: np.ndarray) -> None:
        self._mask = mask

    def __enter__(self) -> "SimdElse":
        ctx.emit_scalar(2)
        ctx.require().push_mask(self._mask)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        ctx.require().pop_mask()
        ctx.emit_scalar(1)
        return False


def _tracing() -> bool:
    """True when a compile-mode kernel trace is active (no eager thread)."""
    if ctx.current() is not None:
        return False
    from repro.compiler import frontend as _fe
    return getattr(_fe._trace_state, "tracer", None) is not None


def simd_if(cond):
    """Open a divergent if; see the module docstring for usage.

    Inside a kernel trace (:func:`repro.compiler.frontend.trace_kernel`)
    this dispatches to the trace-mode implementation, which emits the
    structured ``simd.if``/``simd.else``/``simd.endif`` IR markers that
    compile to Gen's masked control-flow instructions.
    """
    if _tracing():
        from repro.compiler import frontend as _fe
        return _fe.simd_if(cond)
    return SimdIf(cond)


def simd_while(body_fn) -> None:
    """A lane-divergent do-while loop.

    ``body_fn()`` runs with the loop's active mask pushed and must
    return the loop condition (a CM vector / bool array); lanes whose
    condition is non-zero run the body again.  Eagerly this iterates
    until no lane wants another trip; in trace mode the body is traced
    once between ``simd.do`` and ``simd.while`` markers.
    """
    if _tracing():
        from repro.compiler import frontend as _fe
        _fe.simd_while(body_fn)
        return
    thread = ctx.require()
    base = thread.mask  # enclosing mask, None at top level
    ctx.emit_scalar(1)  # entering the loop (simd-do marker)
    active = None
    while True:
        if active is not None:
            thread.push_mask(active)
        cond = body_fn()
        if active is not None:
            thread.pop_mask()
        ctx.emit_scalar(2)  # back-edge test (simd-goto at the while)
        m = _mask_values(cond)
        if base is not None:
            if len(base) != len(m):
                raise ValueError(
                    f"simd_while mask width {len(m)} != enclosing "
                    f"width {len(base)}")
            m = m & base
        active = m if active is None else (active & m)
        if not active.any():
            break
