"""CM kernel helpers: thread coordinates and the kernel decorator.

A CM kernel describes the work of one *hardware thread* (not one
work-item).  The host enqueues a grid of threads via
:meth:`repro.sim.device.Device.run_cm`; inside the kernel,
``thread_x()``/``thread_y()`` return the thread's grid coordinates — the
equivalent of CM's ``cm_group_id``/media-walker thread origin.
"""

from __future__ import annotations

import functools
from typing import Callable

from repro.sim import context as ctx


def thread_x() -> int:
    """This hardware thread's X coordinate in the launch grid."""
    return ctx.require().thread_id[0]


def thread_y() -> int:
    """This hardware thread's Y coordinate (0 for 1D launches)."""
    tid = ctx.require().thread_id
    return tid[1] if len(tid) > 1 else 0


def thread_id(dim: int = 0) -> int:
    tid = ctx.require().thread_id
    return tid[dim] if dim < len(tid) else 0


def cm_kernel(fn: Callable) -> Callable:
    """Mark a function as a CM kernel (documentation + launch-time checks)."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        if ctx.current() is None:
            raise RuntimeError(
                f"CM kernel {fn.__name__!r} must be launched through "
                "Device.run_cm, not called directly")
        return fn(*args, **kwargs)

    wrapper.__cm_kernel__ = True
    wrapper.__wrapped_kernel__ = fn
    return wrapper
