"""CM standard-library style functions.

Element-wise math (``cm_sqrt``, ``cm_inv`` ... — Gen extended-math ops),
element-wise ``cm_min``/``cm_max`` (Gen ``sel``-based), and tree
reductions (``cm_sum``, ``cm_reduce_min``/``max``) which lower to log2(N)
SIMD instructions by operating on successive halves of the register data,
exactly how the CM compiler emits them.
"""

from __future__ import annotations

import numpy as np

from repro.cm.dtypes import as_cm_dtype, common_type, convert_values
from repro.cm.vector import Vector, _CMBase, _is_scalar
from repro.isa.dtypes import DType, F
from repro.sim import context as ctx


def _unary_math(x: _CMBase, np_fn) -> Vector:
    vals = x._read()
    dt = x.dtype if x.dtype.is_float else F
    vals = convert_values(vals, dt)
    ctx.emit_alu(x.n_elems, dt, is_math=True)
    out = np_fn(vals).astype(dt.np_dtype)
    return x._result_like(out, dt)


def cm_sqrt(x: _CMBase) -> Vector:
    return _unary_math(x, np.sqrt)


def cm_rsqrt(x: _CMBase) -> Vector:
    return _unary_math(x, lambda v: 1.0 / np.sqrt(v))


def cm_inv(x: _CMBase) -> Vector:
    return _unary_math(x, lambda v: 1.0 / v)


def cm_log(x: _CMBase) -> Vector:
    return _unary_math(x, np.log2)


def cm_exp(x: _CMBase) -> Vector:
    return _unary_math(x, np.exp2)


def cm_abs(x: _CMBase) -> Vector:
    vals = x._read()
    ctx.emit_alu(x.n_elems, x.dtype)
    return x._result_like(np.abs(vals), x.dtype)


def _binary_sel(x, y, np_fn):
    if isinstance(x, _CMBase):
        n, base = x.n_elems, x
    elif isinstance(y, _CMBase):
        n, base = y.n_elems, y
    else:
        raise TypeError("cm_min/cm_max need at least one vector operand")
    xv, x_dt, _ = base._operand(x, n)
    yv, y_dt, _ = base._operand(y, n)
    dt = common_type(x_dt, y_dt)
    ctx.emit_alu(n, dt)
    out = np_fn(convert_values(xv, dt), convert_values(yv, dt))
    return base._result_like(out.astype(dt.np_dtype), dt)


def cm_min(x, y) -> Vector:
    """Element-wise min (Gen ``sel.l``)."""
    return _binary_sel(x, y, np.minimum)


def cm_max(x, y) -> Vector:
    """Element-wise max (Gen ``sel.ge``)."""
    return _binary_sel(x, y, np.maximum)


def _tree_reduce_cycles(n: int, dtype: DType) -> None:
    """Charge log2-tree reduction instructions (halving widths)."""
    width = n // 2
    while width >= 1:
        ctx.emit_alu(width, dtype)
        width //= 2


def cm_sum(x: _CMBase, dtype=None):
    """Sum of all elements, computed as a log2 tree of SIMD adds.

    Returns a Python scalar.  ``dtype`` (default: float for float inputs,
    int otherwise) sets the accumulation type.
    """
    vals = x._read()
    dt = as_cm_dtype(dtype) if dtype is not None else (
        x.dtype if x.dtype.is_float else as_cm_dtype(int))
    vals = convert_values(vals, dt)
    _tree_reduce_cycles(x.n_elems, dt)
    total = vals.sum(dtype=np.float64 if dt.is_float else np.int64)
    return float(total) if dt.is_float else int(total)


def cm_prod(x: _CMBase, dtype=None):
    """Product of all elements (log2 tree of SIMD muls)."""
    vals = x._read()
    dt = as_cm_dtype(dtype) if dtype is not None else (
        x.dtype if x.dtype.is_float else as_cm_dtype(int))
    vals = convert_values(vals, dt)
    _tree_reduce_cycles(x.n_elems, dt)
    prod = np.prod(vals.astype(np.float64 if dt.is_float else np.int64))
    return float(prod) if dt.is_float else int(prod)


def cm_reduce_min(x: _CMBase):
    """Minimum over all elements (log2 tree of ``sel.l``)."""
    vals = x._read()
    _tree_reduce_cycles(x.n_elems, x.dtype)
    v = vals.min()
    return float(v) if x.dtype.is_float else int(v)


def cm_reduce_max(x: _CMBase):
    """Maximum over all elements (log2 tree of ``sel.ge``)."""
    vals = x._read()
    _tree_reduce_cycles(x.n_elems, x.dtype)
    v = vals.max()
    return float(v) if x.dtype.is_float else int(v)


def cm_shl(x, shift):
    """Shift left helper mirroring CM's ``cm_shl``."""
    if isinstance(x, _CMBase):
        return x << shift
    if _is_scalar(x):
        ctx.emit_scalar()
        return int(x) << int(shift)
    raise TypeError("cm_shl needs a vector or scalar")


def cm_mul_add(acc: _CMBase, a, b) -> _CMBase:
    """Fused multiply-add ``acc += a * b`` as a single Gen ``mad``.

    Written explicitly, ``acc += a * b`` costs a ``mul`` and an ``add``;
    the CM compiler fuses them — this helper models the fused form, which
    the GEMM kernels rely on for peak rate.
    """
    n = acc.n_elems
    av, a_dt, _ = acc._operand(a, n)
    bv, b_dt, _ = acc._operand(b, n)
    dt = common_type(common_type(a_dt, b_dt), acc.dtype)
    result = (convert_values(acc._read(), dt)
              + convert_values(av, dt) * convert_values(bv, dt))
    ctx.emit_alu(n, dt)  # one mad
    acc._write(convert_values(result, acc.dtype))
    return acc


def cm_frc(x: _CMBase) -> Vector:
    """Fractional part (Gen ``frc``): ``x - floor(x)``."""
    return _unary_math(x, lambda v: v - np.floor(v))


def cm_avg(x, y) -> Vector:
    """Rounding integer average (Gen ``avg``): ``(x + y + 1) >> 1``."""
    base = x if isinstance(x, _CMBase) else y
    n = base.n_elems
    xv, x_dt, _ = base._operand(x, n)
    yv, y_dt, _ = base._operand(y, n)
    dt = common_type(x_dt, y_dt)
    if dt.is_float:
        raise TypeError("cm_avg is an integer operation")
    ctx.emit_alu(n, dt)
    out = (xv.astype(np.int64) + yv.astype(np.int64) + 1) >> 1
    return base._result_like(convert_values(out, dt), dt)


def cm_dp4(x: _CMBase, y) -> Vector:
    """4-wide dot product (Gen ``dp4``): every group of four elements
    yields their dot product, broadcast across the group (the Gen
    semantics: dst lanes of a group all receive the sum)."""
    n = x.n_elems
    if n % 4:
        raise ValueError("cm_dp4 requires a multiple of 4 elements")
    xv = convert_values(x._read(), F)
    yv, _, _ = x._operand(y, n)
    yv = convert_values(yv, F)
    ctx.emit_alu(n, F)
    prods = (xv * yv).reshape(-1, 4).sum(axis=1)
    out = np.repeat(prods, 4).astype(F.np_dtype)
    return x._result_like(out, F)


def cm_pack_mask(mask: _CMBase) -> int:
    """Pack a <=32-lane mask vector into an integer bitfield."""
    vals = mask._read()
    if vals.size > 32:
        raise ValueError("cm_pack_mask packs at most 32 lanes")
    ctx.emit_scalar()
    bits = 0
    for i, v in enumerate(vals):
        if v:
            bits |= 1 << i
    return bits


def cm_unpack_mask(bits: int, n: int) -> Vector:
    """Unpack an integer bitfield into an n-lane ushort mask vector."""
    from repro.isa.dtypes import UW

    ctx.emit_scalar()
    vals = np.asarray([(int(bits) >> i) & 1 for i in range(n)],
                      dtype=UW.np_dtype)
    out = Vector(UW, n)
    out._buf[:] = vals
    return out
