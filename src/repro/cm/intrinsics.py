"""CM memory intrinsics.

The paper's Section IV-B set, mapped onto surfaces from
:mod:`repro.memory`:

- ``read(image, x, y, m)`` / ``write(image, x, y, m)`` — 2D media block
  read/write of raw bytes between an image surface and a matrix,
- ``read(buffer, offset, v)`` / ``write(buffer, offset, v)`` — oword block
  read/write between a linear buffer and a vector (16-byte aligned),
- ``read_scattered`` / ``write_scattered`` — per-lane gather/scatter with a
  vector of element offsets,
- ``atomic`` — native Gen atomics (``inc``, ``add``, ``max``, ...),
- ``slm_read`` / ``slm_write`` / ``slm_atomic`` — the same against shared
  local memory, with bank-conflict accounting.

All functions record the corresponding memory trace events, including the
unique-cache-line footprint that the timing model charges to DRAM
bandwidth.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.cm.dtypes import as_cm_dtype
from repro.cm.vector import Matrix, MatrixRef, Vector, VectorRef, _CMBase
from repro.isa.msg_geometry import (
    media_block_messages, oword_block_messages, scatter_messages,
)
from repro.memory.slm import (
    ATOMIC_OPS_PER_CYCLE, SharedLocalMemory, bank_conflict_cycles,
)
from repro.memory.surfaces import BufferSurface, Image2DSurface, Surface
from repro.sim import context as ctx
from repro.sim.trace import MemKind

OWORD = 16


def _container_buf(container: _CMBase) -> np.ndarray:
    if not container._buf.flags["C_CONTIGUOUS"]:
        raise TypeError("memory intrinsics require contiguous register data")
    return container._buf


def _extra_messages(count: int) -> None:
    """Charge the front end for messages beyond the first."""
    if count > 1:
        ctx.emit_scalar(2 * (count - 1))


# -- 2D media block and oword block access ----------------------------------


def read(surface: Surface, arg0: int, arg1=None, arg2=None,
         aligned: bool = True) -> None:
    """Block read: ``read(image, x, y, m)`` or ``read(buffer, offset, v)``.

    ``aligned=False`` selects the DWORD-aligned oword block read variant
    (offset only 4-byte aligned), as CM's ``CM_DWORD_ALIGNED`` modifier.
    """
    if isinstance(surface, SharedLocalMemory):
        raise TypeError("use slm_read for shared local memory")
    if isinstance(surface, Image2DSurface):
        if arg2 is None:
            raise TypeError("image read needs (surface, x, y, matrix)")
        _media_block_read(surface, int(arg0), int(arg1), arg2)
    elif isinstance(surface, (BufferSurface, Surface)):
        if arg1 is None or arg2 is not None:
            raise TypeError("buffer read needs (surface, offset, vector)")
        _oword_block_read(surface, int(arg0), arg1, aligned=aligned)
    else:
        raise TypeError(f"cannot read from {type(surface).__name__}")


def write(surface: Surface, arg0: int, arg1=None, arg2=None) -> None:
    """Block write: ``write(image, x, y, m)`` or ``write(buffer, offset, v)``."""
    if isinstance(surface, SharedLocalMemory):
        raise TypeError("use slm_write for shared local memory")
    if isinstance(surface, Image2DSurface):
        if arg2 is None:
            raise TypeError("image write needs (surface, x, y, matrix)")
        _media_block_write(surface, int(arg0), int(arg1), arg2)
    elif isinstance(surface, (BufferSurface, Surface)):
        if arg1 is None or arg2 is not None:
            raise TypeError("buffer write needs (surface, offset, vector)")
        _oword_block_write(surface, int(arg0), arg1)
    else:
        raise TypeError(f"cannot write to {type(surface).__name__}")


def _media_block_read(surface: Image2DSurface, x: int, y: int,
                      m: Union[Matrix, MatrixRef]) -> None:
    buf = _container_buf(m)
    height, cols = buf.shape
    width_bytes = cols * m.dtype.size
    block = surface.read_block(x, y, width_bytes, height)
    buf[...] = block.view(m.dtype.np_dtype).reshape(buf.shape)
    nbytes = width_bytes * height
    lines, new = surface.mark_lines_block2d(x, y, width_bytes, height,
                                            surface.pitch)
    messages = media_block_messages(width_bytes, height)
    _extra_messages(messages)
    ev = ctx.emit_memory(MemKind.BLOCK2D_READ, nbytes=nbytes, lines=lines,
                         dram_lines=new, l3_bytes=nbytes, msgs=messages,
                         surface=surface.obs_label)
    m._owner._dep = ev


def _media_block_write(surface: Image2DSurface, x: int, y: int,
                       m: Union[Matrix, MatrixRef]) -> None:
    vals = m._read().reshape(m._buf.shape)
    height, cols = vals.shape
    width_bytes = cols * m.dtype.size
    surface.write_block(x, y, width_bytes, height, vals)
    nbytes = width_bytes * height
    lines, new = surface.mark_lines_block2d(x, y, width_bytes, height,
                                            surface.pitch)
    messages = media_block_messages(width_bytes, height)
    _extra_messages(messages)
    ctx.emit_memory(MemKind.BLOCK2D_WRITE, nbytes=nbytes, lines=lines,
                    dram_lines=new, l3_bytes=nbytes, msgs=messages,
                    is_read=False, surface=surface.obs_label)


def _oword_block_read(surface: Surface, offset: int,
                      v: Union[Vector, VectorRef],
                      aligned: bool = True) -> None:
    if aligned and offset % OWORD:
        raise ValueError(f"oword block read offset {offset} not 16B aligned")
    if offset % 4:
        raise ValueError(f"oword block read offset {offset} not 4B aligned")
    buf = _container_buf(v)
    nbytes = buf.size * v.dtype.size
    data = surface.read_linear(offset, nbytes)
    buf[...] = data.view(v.dtype.np_dtype).reshape(buf.shape)
    messages = oword_block_messages(nbytes)
    _extra_messages(messages)
    lines, new = surface.mark_lines_range(offset, nbytes)
    ev = ctx.emit_memory(MemKind.OWORD_READ, nbytes=nbytes,
                         lines=lines, dram_lines=new, l3_bytes=nbytes,
                         msgs=messages, surface=surface.obs_label)
    v._owner._dep = ev


def _oword_block_write(surface: Surface, offset: int,
                       v: Union[Vector, VectorRef]) -> None:
    if offset % OWORD:
        raise ValueError(f"oword block write offset {offset} not 16B aligned")
    vals = np.ascontiguousarray(v._read().astype(v.dtype.np_dtype, copy=False))
    nbytes = vals.size * v.dtype.size
    surface.write_linear(offset, vals)
    messages = oword_block_messages(nbytes)
    _extra_messages(messages)
    lines, new = surface.mark_lines_range(offset, nbytes)
    ctx.emit_memory(MemKind.OWORD_WRITE, nbytes=nbytes,
                    lines=lines, dram_lines=new, l3_bytes=nbytes,
                    msgs=messages, is_read=False,
                    surface=surface.obs_label)


# -- scattered access ---------------------------------------------------------


def _offsets_bytes(element_offsets, global_offset: int, elem_size: int):
    if isinstance(element_offsets, _CMBase):
        offs = element_offsets._read().astype(np.int64)
    else:
        offs = np.asarray(element_offsets, dtype=np.int64)
    return (offs + int(global_offset)) * elem_size


def read_scattered(surface: Surface, global_offset: int, element_offsets,
                   ret: Union[Vector, VectorRef]) -> None:
    """Vector gather: lane ``i`` loads element ``global_offset+offsets[i]``."""
    mask = ctx.current_mask()
    byte_offs = _offsets_bytes(element_offsets, global_offset, ret.dtype.size)
    data = surface.gather(byte_offs, ret.dtype, mask=mask)
    if mask is None:
        _container_buf(ret)[...] = data.reshape(ret._buf.shape)
    else:
        ret._write(data)
    n = len(byte_offs)
    lines, new = surface.mark_lines_offsets(byte_offs, ret.dtype.size,
                                            mask=mask)
    messages = scatter_messages(n)
    _extra_messages(messages)
    ev = ctx.emit_memory(MemKind.GATHER, nbytes=n * ret.dtype.size,
                         lines=lines, dram_lines=new, msgs=messages,
                         surface=surface.obs_label)
    ret._owner._dep = ev


def write_scattered(surface: Surface, global_offset: int, element_offsets,
                    values: Union[Vector, VectorRef]) -> None:
    """Vector scatter: lane ``i`` stores to ``global_offset+offsets[i]``."""
    mask = ctx.current_mask()
    vals = values._read()
    byte_offs = _offsets_bytes(element_offsets, global_offset, values.dtype.size)
    surface.scatter(byte_offs, vals.astype(values.dtype.np_dtype, copy=False),
                    mask=mask)
    n = len(byte_offs)
    lines, new = surface.mark_lines_offsets(byte_offs, values.dtype.size,
                                            mask=mask)
    messages = scatter_messages(n)
    _extra_messages(messages)
    ctx.emit_memory(MemKind.SCATTER, nbytes=n * values.dtype.size,
                    lines=lines, dram_lines=new, msgs=messages,
                    is_read=False, surface=surface.obs_label)


def atomic(op: str, surface: Surface, element_offsets,
           src: Optional[_CMBase] = None, dtype=None) -> Vector:
    """Global atomic; returns the old values (``write_atomic<op>`` in CM)."""
    if dtype is None:
        dtype = src.dtype if src is not None else as_cm_dtype("uint32")
    dt = as_cm_dtype(dtype)
    mask = ctx.current_mask()
    byte_offs = _offsets_bytes(element_offsets, 0, dt.size)
    operands = None
    if src is not None:
        operands = src._read().astype(dt.np_dtype, copy=False)
    old = surface.atomic(op, byte_offs, operands, dt, mask=mask)
    n = len(byte_offs)
    lines, new = surface.mark_lines_offsets(byte_offs, dt.size, mask=mask)
    messages = scatter_messages(n)
    ev = ctx.emit_memory(MemKind.ATOMIC, nbytes=n * dt.size, lines=lines,
                         dram_lines=new, msgs=messages,
                         surface=surface.obs_label)
    thread = ctx.current()
    if thread is not None:
        active = byte_offs if mask is None else byte_offs[np.asarray(mask, bool)]
        thread.trace.atomic_global(active // 4, surface_id=id(surface))
    out = Vector(dt, n, init=None)
    out._buf[:] = old
    out._dep = ev
    return out


# -- shared local memory -------------------------------------------------------


def slm_read(slm: SharedLocalMemory, element_offsets,
             ret: Union[Vector, VectorRef]) -> None:
    """SLM gather (element offsets in units of the return element type)."""
    byte_offs = _offsets_bytes(element_offsets, 0, ret.dtype.size)
    mask = ctx.current_mask()
    data = slm.gather(byte_offs, ret.dtype, mask=mask)
    if mask is None:
        _container_buf(ret)[...] = data.reshape(ret._buf.shape)
    else:
        ret._write(data)
    cycles = bank_conflict_cycles(byte_offs, mask=mask)
    ev = ctx.emit_memory(MemKind.SLM_READ, nbytes=len(byte_offs) * ret.dtype.size,
                         slm_cycles=cycles)
    ret._owner._dep = ev


def slm_write(slm: SharedLocalMemory, element_offsets,
              values: Union[Vector, VectorRef]) -> None:
    vals = values._read()
    byte_offs = _offsets_bytes(element_offsets, 0, values.dtype.size)
    mask = ctx.current_mask()
    slm.scatter(byte_offs, vals.astype(values.dtype.np_dtype, copy=False),
                mask=mask)
    cycles = bank_conflict_cycles(byte_offs, mask=mask)
    ctx.emit_memory(MemKind.SLM_WRITE,
                    nbytes=len(byte_offs) * values.dtype.size,
                    slm_cycles=cycles, is_read=False)


def slm_atomic(op: str, slm: SharedLocalMemory, element_offsets,
               src: Optional[_CMBase] = None, dtype=None) -> Vector:
    """SLM atomic; same-address lanes serialize at the bank."""
    if dtype is None:
        dtype = src.dtype if src is not None else as_cm_dtype("uint32")
    dt = as_cm_dtype(dtype)
    mask = ctx.current_mask()
    byte_offs = _offsets_bytes(element_offsets, 0, dt.size)
    operands = src._read().astype(dt.np_dtype, copy=False) if src is not None else None
    old = slm.atomic(op, byte_offs, operands, dt, mask=mask)
    cycles = bank_conflict_cycles(byte_offs, mask=mask,
                                  same_address_broadcast=False,
                                  ops_per_cycle=ATOMIC_OPS_PER_CYCLE)
    ev = ctx.emit_memory(MemKind.SLM_ATOMIC, nbytes=len(byte_offs) * dt.size,
                         slm_cycles=cycles)
    out = Vector(dt, len(byte_offs), init=None)
    out._buf[:] = old
    out._dep = ev
    return out
