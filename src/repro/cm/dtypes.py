"""CM element types.

CM element types map one-to-one onto Gen ISA types.  The C-style aliases
(``uchar``, ``short``, ``uint`` ...) are what CM source uses in
``vector<uchar, 32>`` declarations; in this embedded-Python rendering one
writes ``vector(uchar, 32)``.
"""

from __future__ import annotations

import numpy as np

from repro.isa.dtypes import (
    B, D, DF, DType, F, HF, Q, UB, UD, UQ, UW, W,
    convert, promote,
)


# C-style CM aliases.
uchar = UB
char = B
ushort = UW
short = W
uint = UD
int32 = D
uint64 = UQ
int64 = Q
half = HF
float32 = F
double = DF

_PY_TO_CM = {
    int: D,
    float: F,
    bool: UW,
}


def as_cm_dtype(t) -> DType:
    """Coerce a CM alias, Gen DType, numpy dtype, or Python type to DType."""
    if isinstance(t, DType):
        return t
    try:
        if t in _PY_TO_CM:
            return _PY_TO_CM[t]
    except TypeError:
        pass
    np_dt = np.dtype(t)
    if np_dt == np.dtype(bool):
        return UW  # boolean masks are ushort 0/1 vectors in CM
    return _from_numpy(np_dt)


def _from_numpy(np_dtype: np.dtype) -> DType:
    from repro.isa.dtypes import dtype_from_numpy

    return dtype_from_numpy(np_dtype)


def common_type(a: DType, b: DType) -> DType:
    """CM/C++ usual arithmetic conversion (delegates to the ISA rules)."""
    return promote(a, b)


def convert_values(values: np.ndarray, dst: DType,
                   saturate: bool = False) -> np.ndarray:
    return convert(values, dst, saturate=saturate)


def scalar_dtype(value) -> DType:
    """The CM type a Python scalar takes in a mixed expression."""
    if isinstance(value, (bool, np.bool_)):
        return UW
    if isinstance(value, (int, np.integer)):
        return D
    if isinstance(value, (float, np.floating)):
        return F
    raise TypeError(f"not a scalar usable in CM expressions: {value!r}")
