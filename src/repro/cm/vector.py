"""CM vector and matrix types.

These are the two container types at the core of the CM programming model
(Section IV-A of the paper).  Variables live in the register file; the
``select`` family returns *references* backed by numpy strided views, so
reads map to Gen region addressing (zero cost) and writes go straight
through to the base object's storage — exactly the aliasing semantics of
CM's ``vector_ref``/``matrix_ref``.

Cost accounting follows the What-You-Write-Is-What-You-Get contract:

- ``select``/``row``/``column``/``format``/``replicate`` are free (regions),
- assigning *register data* (a named variable or a reference) emits ``mov``
  instructions (cf. Fig. 4's nine SIMD16 movs),
- assigning a just-computed expression is baled into the computing
  instruction and emits nothing extra,
- every arithmetic operation emits the legalized instruction count for its
  element count and execution type.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.cm.dtypes import (
    as_cm_dtype, common_type, convert_values, scalar_dtype,
)
from repro.isa.dtypes import DType, UW
from repro.sim import context as ctx

Scalar = Union[int, float, np.integer, np.floating, np.bool_]


class CMTypeError(TypeError):
    """Shape or element-type violation in a CM expression."""


def _is_scalar(x) -> bool:
    return isinstance(x, (int, float, np.integer, np.floating, np.bool_))


class _CMBase:
    """Shared machinery for vectors, matrices and their references."""

    # Subclasses set: _buf (numpy view), dtype (DType), _owner (base object),
    # _is_reg_data (True for named variables and references).
    _buf: np.ndarray
    dtype: DType
    _is_reg_data: bool

    def __init__(self) -> None:
        self._owner: _CMBase = self
        self._dep = None  # MemEvent backing this storage, if loaded

    # -- basic introspection ---------------------------------------------

    @property
    def n_elems(self) -> int:
        return self._buf.size

    def __len__(self) -> int:
        return self._buf.shape[0]

    def to_numpy(self) -> np.ndarray:
        """Copy of the contents as a numpy array (host-side inspection)."""
        return self._buf.copy()

    # -- internal value plumbing -----------------------------------------

    def _read(self) -> np.ndarray:
        """Flattened element values; consumes the owning load dependency."""
        owner = self._owner
        if owner._dep is not None:
            ctx.consume(owner._dep)
        return self._buf.reshape(-1)

    def _result_like(self, values: np.ndarray, dtype: DType) -> "Vector":
        out = Vector.__new__(Vector)
        _CMBase.__init__(out)
        out._buf = values.reshape(-1)
        out.dtype = dtype
        out._is_reg_data = False
        return out

    @staticmethod
    def _operand(x, n: int):
        """(values, dtype, is_reg_data) for an operand of an n-elem op."""
        if _is_scalar(x):
            dt = scalar_dtype(x)
            return np.full(n, x, dtype=dt.np_dtype), dt, False
        if isinstance(x, _CMBase):
            if x.n_elems == n:
                return x._read(), x.dtype, x._is_reg_data
            if x.n_elems == 1:
                return np.full(n, x._read()[0]), x.dtype, x._is_reg_data
            raise CMTypeError(
                f"operand has {x.n_elems} elements, expected {n} (CM requires "
                "identical element counts in mixed vector/matrix operations)")
        if isinstance(x, (np.ndarray, list, tuple)):
            x = np.asarray(x)
            if x.size not in (n, 1):
                raise CMTypeError(f"array operand has {x.size} elements, expected {n}")
            vals = np.broadcast_to(x.reshape(-1), (n,))
            return vals, as_cm_dtype(x.dtype), False
        raise CMTypeError(f"cannot use {type(x).__name__} in a CM expression")

    # -- arithmetic -------------------------------------------------------

    def _binop(self, other, np_fn, is_math: bool = False,
               reverse: bool = False, compare: bool = False):
        n = self.n_elems
        a = self._read()
        b, b_dt, _ = self._operand(other, n)
        if reverse:
            a, b = b, a
            exec_dt = common_type(b_dt, self.dtype)
        else:
            exec_dt = common_type(self.dtype, b_dt)
        av = convert_values(a, exec_dt)
        bv = convert_values(b, exec_dt)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            result = np_fn(av, bv)
        ctx.emit_alu(n, exec_dt, is_math=is_math)
        if compare:
            return self._result_like(result.astype(UW.np_dtype), UW)
        return self._result_like(result.astype(exec_dt.np_dtype, copy=False),
                                 exec_dt)

    def __add__(self, o): return self._binop(o, np.add)
    def __radd__(self, o): return self._binop(o, np.add, reverse=True)
    def __sub__(self, o): return self._binop(o, np.subtract)
    def __rsub__(self, o): return self._binop(o, np.subtract, reverse=True)
    def __mul__(self, o): return self._binop(o, np.multiply)
    def __rmul__(self, o): return self._binop(o, np.multiply, reverse=True)

    def __truediv__(self, o):
        return self._binop(o, _c_divide, is_math=True)

    def __rtruediv__(self, o):
        return self._binop(o, _c_divide, is_math=True, reverse=True)

    def __floordiv__(self, o):
        return self._binop(o, _c_divide, is_math=True)

    def __mod__(self, o):
        return self._binop(o, _c_mod, is_math=True)

    def __and__(self, o): return self._binop(o, np.bitwise_and)
    def __rand__(self, o): return self._binop(o, np.bitwise_and, reverse=True)
    def __or__(self, o): return self._binop(o, np.bitwise_or)
    def __ror__(self, o): return self._binop(o, np.bitwise_or, reverse=True)
    def __xor__(self, o): return self._binop(o, np.bitwise_xor)
    def __rxor__(self, o): return self._binop(o, np.bitwise_xor, reverse=True)
    def __lshift__(self, o): return self._binop(o, np.left_shift)
    def __rshift__(self, o): return self._binop(o, np.right_shift)

    def __neg__(self):
        vals = self._read()
        ctx.emit_alu(self.n_elems, self.dtype)
        return self._result_like(-vals, self.dtype)

    def __invert__(self):
        vals = self._read()
        ctx.emit_alu(self.n_elems, self.dtype)
        return self._result_like(~vals, self.dtype)

    def __abs__(self):
        # Source-modifier on Gen: free when baled, charge a mov standalone.
        vals = self._read()
        ctx.emit_alu(self.n_elems, self.dtype)
        return self._result_like(np.abs(vals), self.dtype)

    # Comparisons produce ushort masks (0/1 per lane), per the CM spec.
    def __lt__(self, o): return self._binop(o, np.less, compare=True)
    def __le__(self, o): return self._binop(o, np.less_equal, compare=True)
    def __gt__(self, o): return self._binop(o, np.greater, compare=True)
    def __ge__(self, o): return self._binop(o, np.greater_equal, compare=True)
    def __eq__(self, o): return self._binop(o, np.equal, compare=True)      # noqa: A003
    def __ne__(self, o): return self._binop(o, np.not_equal, compare=True)  # noqa: A003

    __hash__ = None  # mutable register data

    # -- assignment ---------------------------------------------------------

    def _coerce_source(self, value, sat: bool = False):
        """(converted values, came-from-register-data) for an assignment."""
        n = self.n_elems
        vals, _dt, is_reg = self._operand(value, n)
        return convert_values(vals, self.dtype, saturate=sat), is_reg

    def _write(self, values: np.ndarray,
               mask: Optional[np.ndarray] = None) -> None:
        flat = self._buf.reshape(-1) if self._buf.flags["C_CONTIGUOUS"] \
            else None
        simd_mask = ctx.current_mask()
        if simd_mask is not None:
            if self.n_elems != len(simd_mask) and self.n_elems != 1:
                raise CMTypeError(
                    f"SIMD control flow: operation width {self.n_elems} must "
                    f"match the mask width {len(simd_mask)} or be scalar")
            mask = simd_mask if mask is None else (mask & simd_mask)
        if mask is None:
            if flat is not None:
                flat[:] = values
            else:
                self._buf[...] = values.reshape(self._buf.shape)
        else:
            m = np.asarray(mask, dtype=bool).reshape(self._buf.shape)
            self._buf[m] = values.reshape(self._buf.shape)[m]

    def assign(self, value, sat: bool = False) -> "_CMBase":
        """CM assignment ``this = value`` (with optional saturation).

        Copying register data (a named variable or a select/format/replicate
        reference) emits mov instructions; a freshly computed expression is
        baled into its producing instruction and costs nothing extra here.
        """
        vals, is_reg = self._coerce_source(value, sat=sat)
        if is_reg or _is_scalar(value):
            ctx.emit_alu(self.n_elems, self.dtype)
        self._write(vals.copy())
        return self

    def _iop(self, other, np_fn, is_math: bool = False):
        n = self.n_elems
        a = self._read()
        b, b_dt, _ = self._operand(other, n)
        exec_dt = common_type(self.dtype, b_dt)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            result = np_fn(convert_values(a, exec_dt), convert_values(b, exec_dt))
        ctx.emit_alu(n, exec_dt, is_math=is_math)
        self._write(convert_values(result, self.dtype))
        return self

    def __iadd__(self, o): return self._iop(o, np.add)
    def __isub__(self, o): return self._iop(o, np.subtract)
    def __imul__(self, o): return self._iop(o, np.multiply)
    def __itruediv__(self, o): return self._iop(o, _c_divide, is_math=True)
    def __iand__(self, o): return self._iop(o, np.bitwise_and)
    def __ior__(self, o): return self._iop(o, np.bitwise_or)
    def __ixor__(self, o): return self._iop(o, np.bitwise_xor)
    def __ilshift__(self, o): return self._iop(o, np.left_shift)
    def __irshift__(self, o): return self._iop(o, np.right_shift)

    # -- merge (conditional update) ---------------------------------------

    def merge(self, x, mask, y=None) -> "_CMBase":
        """``v.merge(x, mask)`` or ``v.merge(x, y, mask)``.

        Two-operand form: copy ``x`` into active lanes (predicated mov).
        Three-operand form (``merge(x, y, mask)``): active lanes take ``x``,
        inactive take ``y`` (Gen ``sel``).
        """
        if y is not None:
            x, y, mask = x, mask, y  # CM argument order merge(x, y, mask)
        n = self.n_elems
        mvals, _dt, _ = self._operand(mask, n)
        active = mvals.astype(bool)
        xv, _, _ = self._operand(x, n)
        xv = convert_values(xv, self.dtype)
        ctx.emit_alu(n, self.dtype)
        if y is None:
            self._write(xv, mask=active)
        else:
            yv, _, _ = self._operand(y, n)
            yv = convert_values(yv, self.dtype)
            self._write(np.where(active, xv, yv))
        return self

    # -- boolean reductions -------------------------------------------------

    def any(self) -> bool:      # noqa: A003
        """1 if any element is non-zero (maps to Gen compare)."""
        ctx.emit_alu(self.n_elems, self.dtype)
        return bool(np.any(self._read()))

    def all(self) -> bool:      # noqa: A003
        """1 if all elements are non-zero (maps to Gen compare)."""
        ctx.emit_alu(self.n_elems, self.dtype)
        return bool(np.all(self._read()))

    # -- regioning ------------------------------------------------------------

    def replicate(self, rep: int, vstride: int = 0, width: int = 1,
                  hstride: int = 0, offset: int = 0) -> "Vector":
        """``v.replicate<REP, VS, W, HS>(offset)``: generic register gather.

        Gathers ``rep`` blocks of ``width`` elements; block ``b``, element
        ``w`` comes from ``offset + b*vstride + w*hstride``.  Maps to a Gen
        region, so it is free until the value is actually consumed.
        """
        flat = self._read()
        idx = (offset
               + np.repeat(np.arange(rep) * vstride, width)
               + np.tile(np.arange(width) * hstride, rep))
        if idx.size and (idx.min() < 0 or idx.max() >= flat.size):
            raise IndexError(
                f"replicate indices [{idx.min()}, {idx.max()}] out of range "
                f"for {flat.size} elements")
        out = self._result_like(flat[idx].copy(), self.dtype)
        out._is_reg_data = True  # still register data (a region view)
        return out

    def iselect(self, indices) -> "Vector":
        """Indexed (register-indirect) gather; always an r-value."""
        flat = self._read()
        idx, _, _ = self._operand(indices, indices.n_elems) \
            if isinstance(indices, _CMBase) else \
            (np.asarray(indices, dtype=np.int64), None, None)
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= flat.size):
            raise IndexError("iselect index out of range")
        # Register-indirect addressing costs a real mov per Gen restrictions.
        ctx.emit_alu(idx.size, self.dtype, inst_factor=2)
        return self._result_like(flat[idx].copy(), self.dtype)

    def format(self, dtype, rows: Optional[int] = None,
               cols: Optional[int] = None):
        """Reinterpret element type / shape, aliasing the same registers."""
        dt = as_cm_dtype(dtype)
        if not self._buf.flags["C_CONTIGUOUS"]:
            raise CMTypeError("format requires contiguous register data")
        raw = self._buf.reshape(-1).view(np.uint8)
        if raw.size % dt.size:
            raise CMTypeError(
                f"cannot format {raw.size} bytes as {dt.name} elements")
        new = raw.view(dt.np_dtype)
        if rows is None:
            return VectorRef(new, dt, self._owner)
        if cols is None:
            cols = new.size // rows
        if rows * cols != new.size:
            raise CMTypeError(
                f"format shape {rows}x{cols} != {new.size} elements")
        return MatrixRef(new.reshape(rows, cols), dt, self._owner)

    def __repr__(self) -> str:
        kind = type(self).__name__
        return f"{kind}<{self.dtype.name},{self._buf.shape}>({self._buf!r})"


def _c_divide(a, b):
    if np.issubdtype(a.dtype, np.floating):
        return a / b
    q = np.where(b != 0, np.trunc(a / np.where(b != 0, b, 1)), 0)
    return q.astype(a.dtype)


def _c_mod(a, b):
    if np.issubdtype(a.dtype, np.floating):
        return np.fmod(a, b)
    d = _c_divide(a, b)
    return (a - d * b).astype(a.dtype)


class Vector(_CMBase):
    """``vector<T, N>``: N elements of type T in consecutive registers."""

    def __init__(self, dtype, n: int, init=None) -> None:
        super().__init__()
        dt = as_cm_dtype(dtype)
        if n <= 0:
            raise CMTypeError(f"vector size must be positive, got {n}")
        self.dtype = dt
        self._buf = np.zeros(n, dtype=dt.np_dtype)
        self._is_reg_data = True
        if init is not None:
            if isinstance(init, (_CMBase, int, float, np.integer, np.floating)):
                self.assign(init)
            else:
                arr = np.asarray(init).reshape(-1)
                if arr.size != n:
                    raise CMTypeError(
                        f"initializer has {arr.size} elements, vector has {n}")
                self._buf[:] = convert_values(arr, dt)

    # -- element & region access -------------------------------------------

    def __getitem__(self, i):
        if isinstance(i, slice):
            return VectorRef(self._buf[i], self.dtype, self._owner)
        return self._buf[int(i)].item()

    def __setitem__(self, i, value) -> None:
        if isinstance(i, slice):
            VectorRef(self._buf[i], self.dtype, self._owner).assign(value)
            return
        ctx.emit_scalar()
        self._buf[int(i)] = convert_values(np.asarray(value), self.dtype)

    def select(self, size: int, stride: int = 1, offset: int = 0) -> "VectorRef":
        """``v.select<size, stride>(offset)`` — an l-value region reference."""
        last = offset + (size - 1) * stride
        if offset < 0 or last >= self.n_elems:
            raise IndexError(
                f"select<{size},{stride}>({offset}) out of range for "
                f"vector of {self.n_elems}")
        view = self._buf[offset:last + 1:stride]
        return VectorRef(view, self.dtype, self._owner)


class Matrix(_CMBase):
    """``matrix<T, R, C>``: R x C elements in row-major registers."""

    def __init__(self, dtype, rows: int, cols: int, init=None) -> None:
        super().__init__()
        dt = as_cm_dtype(dtype)
        if rows <= 0 or cols <= 0:
            raise CMTypeError(f"matrix dims must be positive, got {rows}x{cols}")
        self.dtype = dt
        self._buf = np.zeros((rows, cols), dtype=dt.np_dtype)
        self._is_reg_data = True
        if init is not None:
            if isinstance(init, (_CMBase, int, float, np.integer, np.floating)):
                self.assign(init)
            else:
                arr = np.asarray(init)
                if arr.size != rows * cols:
                    raise CMTypeError(
                        f"initializer has {arr.size} elements, matrix has "
                        f"{rows * cols}")
                self._buf[:] = convert_values(
                    arr.reshape(rows, cols), dt)

    @property
    def rows(self) -> int:
        return self._buf.shape[0]

    @property
    def cols(self) -> int:
        return self._buf.shape[1]

    def __getitem__(self, key):
        i, j = key
        return self._buf[int(i), int(j)].item()

    def __setitem__(self, key, value) -> None:
        i, j = key
        ctx.emit_scalar()
        self._buf[int(i), int(j)] = convert_values(np.asarray(value), self.dtype)

    def row(self, i: int) -> "VectorRef":
        return VectorRef(self._buf[int(i), :], self.dtype, self._owner)

    def column(self, j: int) -> "VectorRef":
        return VectorRef(self._buf[:, int(j)], self.dtype, self._owner)

    def select(self, vsize: int, vstride: int, hsize: int, hstride: int,
               i: int = 0, j: int = 0) -> "MatrixRef":
        """``m.select<vsize, vstride, hsize, hstride>(i, j)``."""
        vlast = i + (vsize - 1) * vstride
        hlast = j + (hsize - 1) * hstride
        if i < 0 or j < 0 or vlast >= self.rows or hlast >= self.cols:
            raise IndexError(
                f"select<{vsize},{vstride},{hsize},{hstride}>({i},{j}) out of "
                f"range for {self.rows}x{self.cols} matrix")
        view = self._buf[i:vlast + 1:vstride, j:hlast + 1:hstride]
        return MatrixRef(view, self.dtype, self._owner)


class VectorRef(_CMBase):
    """``vector_ref<T, N>``: an aliased view of base register data."""

    def __init__(self, view: np.ndarray, dtype: DType, owner: _CMBase) -> None:
        super().__init__()
        self._buf = view
        self.dtype = dtype
        self._owner = owner
        self._is_reg_data = True

    def __getitem__(self, i):
        if isinstance(i, slice):
            return VectorRef(self._buf[i], self.dtype, self._owner)
        return self._buf[int(i)].item()

    def __setitem__(self, i, value) -> None:
        if isinstance(i, slice):
            VectorRef(self._buf[i], self.dtype, self._owner).assign(value)
            return
        ctx.emit_scalar()
        self._buf[int(i)] = convert_values(np.asarray(value), self.dtype)

    def select(self, size: int, stride: int = 1, offset: int = 0) -> "VectorRef":
        last = offset + (size - 1) * stride
        if offset < 0 or last >= self.n_elems:
            raise IndexError("nested select out of range")
        return VectorRef(self._buf[offset:last + 1:stride], self.dtype,
                         self._owner)


class MatrixRef(_CMBase):
    """``matrix_ref<T, R, C>``: an aliased 2D view of base register data."""

    def __init__(self, view: np.ndarray, dtype: DType, owner: _CMBase) -> None:
        super().__init__()
        self._buf = view
        self.dtype = dtype
        self._owner = owner
        self._is_reg_data = True

    @property
    def rows(self) -> int:
        return self._buf.shape[0]

    @property
    def cols(self) -> int:
        return self._buf.shape[1]

    def __getitem__(self, key):
        i, j = key
        return self._buf[int(i), int(j)].item()

    def __setitem__(self, key, value) -> None:
        i, j = key
        ctx.emit_scalar()
        self._buf[int(i), int(j)] = convert_values(np.asarray(value), self.dtype)

    def row(self, i: int) -> VectorRef:
        return VectorRef(self._buf[int(i), :], self.dtype, self._owner)

    def column(self, j: int) -> VectorRef:
        return VectorRef(self._buf[:, int(j)], self.dtype, self._owner)

    def select(self, vsize: int, vstride: int, hsize: int, hstride: int,
               i: int = 0, j: int = 0) -> "MatrixRef":
        vlast = i + (vsize - 1) * vstride
        hlast = j + (hsize - 1) * hstride
        if i < 0 or j < 0 or vlast >= self.rows or hlast >= self.cols:
            raise IndexError("nested select out of range")
        view = self._buf[i:vlast + 1:vstride, j:hlast + 1:hstride]
        return MatrixRef(view, self.dtype, self._owner)


def vector(dtype, n: int, init=None) -> Vector:
    """Declare a ``vector<T, N>`` (CM style, lowercase)."""
    return Vector(dtype, n, init)


def matrix(dtype, rows: int, cols: int, init=None) -> Matrix:
    """Declare a ``matrix<T, R, C>`` (CM style, lowercase)."""
    return Matrix(dtype, rows, cols, init)
