"""The CM (C-for-Metal) programming language, embedded in Python.

Public surface mirrors the CM language specification as presented in
Section IV of the paper:

- container types: :func:`vector`, :func:`matrix` (+ reference types),
- operations: ``select``, ``iselect``, ``merge``, ``format``,
  ``replicate``, boolean reductions ``any``/``all``,
- memory intrinsics: :func:`read`, :func:`write`,
  :func:`read_scattered`, :func:`write_scattered`, :func:`atomic`, and the
  SLM variants,
- SIMD control flow: :func:`simd_if`,
- kernel helpers: :func:`cm_kernel`, :func:`thread_x`, :func:`thread_y`,
- stdlib-style functions: ``cm_sum``, ``cm_min``, ``cm_sqrt``, ...

Quick example (the paper's 2x2 transpose idiom)::

    from repro import cm

    v = cm.vector(cm.float32, 4, [1.0, 2.0, 3.0, 4.0])   # [a b c d]
    v0 = v.replicate(2, 1, 2, 0, 0)                      # [a a b b]
    v1 = v.replicate(2, 1, 2, 0, 2)                      # [c c d d]
    v2 = cm.vector(cm.float32, 4)
    v2.merge(v0, v1, [1, 0, 1, 0])                       # [a c b d]
"""

from repro.cm.dtypes import (
    char, double, float32, half, int32, int64, short, uchar, uint, uint64,
    ushort,
)
from repro.cm.functions import (
    cm_abs, cm_avg, cm_dp4, cm_exp, cm_frc, cm_inv, cm_log, cm_max, cm_min,
    cm_mul_add, cm_pack_mask, cm_prod, cm_reduce_max, cm_reduce_min,
    cm_rsqrt, cm_shl, cm_sqrt, cm_sum, cm_unpack_mask,
)
from repro.cm.intrinsics import (
    atomic, read, read_scattered, slm_atomic, slm_read, slm_write, write,
    write_scattered,
)
from repro.cm.kernel import cm_kernel, thread_id, thread_x, thread_y
from repro.cm.simd_cf import SimdIf, simd_if, simd_while
from repro.cm.vector import (
    CMTypeError, Matrix, MatrixRef, Vector, VectorRef, matrix, vector,
)

__all__ = [
    # element types
    "char", "uchar", "short", "ushort", "int32", "uint", "int64", "uint64",
    "half", "float32", "double",
    # containers
    "vector", "matrix", "Vector", "Matrix", "VectorRef", "MatrixRef",
    "CMTypeError",
    # memory
    "read", "write", "read_scattered", "write_scattered", "atomic",
    "slm_read", "slm_write", "slm_atomic",
    # control flow / kernels
    "simd_if", "simd_while", "SimdIf", "cm_kernel", "thread_x",
    "thread_y", "thread_id",
    # functions
    "cm_sum", "cm_prod", "cm_min", "cm_max", "cm_abs", "cm_sqrt", "cm_rsqrt",
    "cm_inv", "cm_log", "cm_exp", "cm_reduce_min", "cm_reduce_max", "cm_shl",
    "cm_mul_add", "cm_dp4", "cm_frc", "cm_avg", "cm_pack_mask",
    "cm_unpack_mask",
]
