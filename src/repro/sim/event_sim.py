"""Event-driven timing simulation (cross-check for the analytic model).

The analytic model in :mod:`repro.sim.timing` takes the *max* of
independent resource bounds.  This module replays the same per-thread
traces through a discrete-event simulation instead:

- hardware threads are statically assigned round-robin to EU slots
  (``num_eus`` x ``threads_per_eu``); compute segments serialize on
  their EU,
- memory messages queue at shared servers — the per-subslice dataport
  and sampler, the chip-wide L3 and DRAM — each with the service rates
  of the machine description,
- a load blocks its thread at the recorded first-use point (the
  dependency distance the trace captured), not at issue,
- barriers release when every thread of the enqueue has arrived (an
  over-approximation of work-group scope, acceptable for cross-checks).

The result is a second, independently-derived estimate of kernel cycles.
It is slower (Python event loop) and is used in tests to confirm the
analytic model's ordering of CM vs OpenCL implementations, not in the
benchmark harness.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.sim.machine import MachineConfig
from repro.sim.trace import GLOBAL_KINDS, MemKind, SLM_KINDS, ThreadTrace


@dataclass
class _Server:
    """A shared resource serving work at a fixed rate (cycles per unit)."""

    name: str
    free_at: float = 0.0
    busy: float = 0.0

    def serve(self, now: float, cycles: float) -> float:
        """Occupy the server for ``cycles`` starting no earlier than now."""
        start = max(now, self.free_at)
        self.free_at = start + cycles
        self.busy += cycles
        return self.free_at


@dataclass
class _Step:
    """One step of a thread: compute, then optionally a memory message."""

    compute: float
    event: object = None          # MemEvent or "barrier"
    hide: float = 0.0             # cycles of independent work after issue


def _thread_steps(trace: ThreadTrace) -> List[_Step]:
    steps: List[_Step] = []
    cursor = 0.0
    for ev in trace.events:
        compute = max(0.0, ev.issue_at - cursor)
        cursor = ev.issue_at
        if ev.is_read and ev.consumed_at is not None:
            hide = max(0.0, ev.consumed_at - ev.issue_at)
        else:
            hide = float("inf")   # never blocks the thread
        steps.append(_Step(compute=compute, event=ev, hide=hide))
    tail = max(0.0, trace.issue_cycles - cursor)
    for _ in range(trace.barriers):
        steps.append(_Step(compute=0.0, event="barrier"))
    steps.append(_Step(compute=tail))
    return steps


@dataclass
class EventTiming:
    """Result of one event-driven replay."""

    cycles: float
    server_busy: dict = field(default_factory=dict)

    def time_us(self, machine: MachineConfig) -> float:
        return machine.cycles_to_us(self.cycles)


def simulate(traces: Sequence[ThreadTrace],
             machine: MachineConfig) -> EventTiming:
    """Replay traces through the discrete-event machine model."""
    m = machine
    n_sub = m.num_subslices
    dataports = [_Server(f"dataport{i}") for i in range(n_sub)]
    samplers = [_Server(f"sampler{i}") for i in range(n_sub)]
    slms = [_Server(f"slm{i}") for i in range(n_sub)]
    l3 = _Server("l3")
    dram = _Server("dram")
    atomic_unit = _Server("atomic")
    # First-touch traffic within the shared LLC capacity never reaches
    # DRAM (same rule as the analytic model).
    llc_budget = [m.llc_capacity_bytes]
    eus = [_Server(f"eu{i}") for i in range(m.num_eus)]

    threads = [_thread_steps(tr) for tr in traces]
    eu_of = [i % m.num_eus for i in range(len(traces))]
    sub_of = [eu_of[i] % n_sub for i in range(len(traces))]

    # Barrier bookkeeping: one global rendezvous per barrier round.
    n_barrier_rounds = max((tr.barriers for tr in traces), default=0)
    barrier_arrivals: List[List[float]] = [[] for _ in range(n_barrier_rounds)]
    barrier_expected = sum(1 for tr in traces if tr.barriers > 0) or 1

    def service(ev, now: float, tid: int) -> float:
        """Route a message through its servers; return response time."""
        sub = sub_of[tid]
        if ev.kind in SLM_KINDS:
            done = slms[sub].serve(now, max(ev.slm_cycles, 1))
            return done + m.slm_latency
        if ev.kind is MemKind.SAMPLER:
            done = samplers[sub].serve(
                now, ev.texels / m.sampler_texels_per_cycle)
            l3_done = l3.serve(done, ev.l3_bytes / m.l3_bytes_per_cycle)
            return max(done, l3_done) + m.sampler_latency
        if ev.kind in GLOBAL_KINDS:
            dp_cycles = ev.nbytes / m.dataport_bytes_per_cycle + ev.msgs
            done = dataports[sub].serve(now, dp_cycles)
            l3_done = l3.serve(done, ev.l3_bytes / m.l3_bytes_per_cycle)
            dram_done = l3_done
            if ev.dram_lines:
                miss_bytes = ev.dram_lines * 64
                absorbed = min(llc_budget[0], miss_bytes)
                llc_budget[0] -= absorbed
                miss_bytes -= absorbed
                if miss_bytes:
                    dram_done = dram.serve(
                        l3_done, miss_bytes / m.dram_bytes_per_cycle)
            if ev.kind is MemKind.ATOMIC:
                dram_done = atomic_unit.serve(
                    dram_done, ev.msgs * m.atomic_cycles_per_op)
            return max(done, l3_done, dram_done) + m.dataport_latency
        return now + m.dram_latency

    # Per-thread state machine driven by a time-ordered heap.
    ready = [(0.0, tid, 0) for tid in range(len(threads))]
    heapq.heapify(ready)
    finish = 0.0
    waiting_barrier: dict = {}

    while ready:
        now, tid, step_idx = heapq.heappop(ready)
        steps = threads[tid]
        if step_idx >= len(steps):
            finish = max(finish, now)
            continue
        step = steps[step_idx]
        if step.event == "barrier":
            round_idx = sum(
                1 for s in steps[:step_idx] if s.event == "barrier")
            barrier_arrivals[round_idx].append(now)
            waiting_barrier.setdefault(round_idx, []).append((tid, step_idx))
            if len(barrier_arrivals[round_idx]) == barrier_expected:
                release = max(barrier_arrivals[round_idx]) + m.barrier_cycles
                for wtid, wstep in waiting_barrier.pop(round_idx):
                    heapq.heappush(ready, (release, wtid, wstep + 1))
            continue
        # Compute segment serializes on this thread's EU.
        eu = eus[eu_of[tid]]
        end_compute = eu.serve(now, step.compute)
        if step.event is None:
            heapq.heappush(ready, (end_compute, tid, step_idx + 1))
            continue
        response = service(step.event, end_compute, tid)
        if step.hide == float("inf"):
            resume = end_compute            # never blocks
        else:
            # The thread has `hide` cycles of independent work (already
            # counted in later compute segments) to overlap the wait.
            resume = max(end_compute, response - step.hide)
        heapq.heappush(ready, (resume, tid, step_idx + 1))

    busy = {s.name: s.busy for s in
            [l3, dram, atomic_unit] + dataports + samplers + slms + eus}
    return EventTiming(cycles=finish, server_busy=busy)
