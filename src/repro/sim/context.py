"""Current-thread execution context for the eager path.

While a kernel runs, the launcher installs a :class:`ThreadContext` that
CM/OpenCL operations use to (a) record trace events and (b) consult the
SIMD control-flow mask stack.  Outside a kernel (host code, unit tests)
there is no context and operations simply compute without recording.
"""

from __future__ import annotations

import threading
from typing import Optional, Tuple

import numpy as np

from repro.isa.dtypes import DType
from repro.sim.trace import MemEvent, MemKind, ThreadTrace

# The active context is *Python-thread*-local: a serving cluster runs
# one worker thread per simulated device, and each worker interprets
# eager kernels on its own device — a process-global slot would let one
# worker's deactivate() tear down another's mid-kernel.
_tls = threading.local()


class ThreadContext:
    """Execution state of one simulated hardware thread."""

    def __init__(self, trace: ThreadTrace,
                 thread_id: Tuple[int, ...] = (0,),
                 group_id: Tuple[int, ...] = (0,),
                 local_id: Tuple[int, ...] = (0,)) -> None:
        self.trace = trace
        self.thread_id = thread_id
        self.group_id = group_id
        self.local_id = local_id
        self._mask_stack: list[np.ndarray] = []

    def reuse(self, trace: ThreadTrace,
              thread_id: Tuple[int, ...] = (0,),
              group_id: Tuple[int, ...] = (0,),
              local_id: Tuple[int, ...] = (0,)) -> "ThreadContext":
        """Re-point this context at a fresh thread (pooled dispatch).

        ``Device.run_cm`` reuses one context object across every thread
        of a launch instead of allocating one per thread.
        """
        self.trace = trace
        self.thread_id = thread_id
        self.group_id = group_id
        self.local_id = local_id
        self._mask_stack.clear()
        return self

    # -- SIMD control-flow mask stack ------------------------------------

    def push_mask(self, mask: np.ndarray) -> None:
        if self._mask_stack:
            top = self._mask_stack[-1]
            if len(top) != len(mask):
                raise ValueError(
                    f"nested SIMD control flow mask width {len(mask)} != "
                    f"enclosing width {len(top)}")
            mask = mask & top
        self._mask_stack.append(np.asarray(mask, dtype=bool))

    def pop_mask(self) -> np.ndarray:
        return self._mask_stack.pop()

    @property
    def mask(self) -> Optional[np.ndarray]:
        """Current SIMD execution mask, or None when not in SIMD CF."""
        return self._mask_stack[-1] if self._mask_stack else None


def activate(ctx: ThreadContext) -> None:
    _tls.ctx = ctx


def deactivate() -> None:
    _tls.ctx = None


def current() -> Optional[ThreadContext]:
    return getattr(_tls, "ctx", None)


def require() -> ThreadContext:
    ctx = getattr(_tls, "ctx", None)
    if ctx is None:
        raise RuntimeError("no kernel thread context is active")
    return ctx


# -- recording helpers (no-ops outside a kernel) -----------------------------


def emit_alu(n: int, dtype: DType, is_math: bool = False,
             inst_factor: int = 1) -> None:
    ctx = getattr(_tls, "ctx", None)
    if ctx is not None:
        ctx.trace.alu(n, dtype, is_math=is_math, inst_factor=inst_factor)


def emit_scalar(count: int = 1) -> None:
    ctx = getattr(_tls, "ctx", None)
    if ctx is not None:
        ctx.trace.scalar_op(count)


def emit_memory(kind: MemKind, **kw) -> Optional[MemEvent]:
    ctx = getattr(_tls, "ctx", None)
    if ctx is not None:
        return ctx.trace.memory(kind, **kw)
    return None


def consume(event: Optional[MemEvent]) -> None:
    ctx = getattr(_tls, "ctx", None)
    if ctx is not None and event is not None:
        ctx.trace.consume(event)


def current_mask() -> Optional[np.ndarray]:
    ctx = getattr(_tls, "ctx", None)
    return ctx.mask if ctx is not None else None
