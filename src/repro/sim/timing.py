"""Analytic kernel timing model.

A kernel's runtime is the largest of several resource bounds, computed
from the per-thread traces (see DESIGN.md):

- **compute**: total EU issue cycles spread over all EUs,
- **DRAM bandwidth**: compulsory (first-touch) cache lines per surface —
  re-reads of lines already touched during the kernel hit in L3,
- **L3 bandwidth**: every message's line transactions, including reuse —
  redundant loads are not free even when they hit the cache,
- **dataport**: block/scattered message bytes through the per-subslice
  data port,
- **sampler**: texels through the per-subslice samplers,
- **SLM**: bank-serialization cycles through the per-subslice SLM,
- **global atomics**: hot-address serial chains plus total atomic
  throughput,
- **latency**: per-thread completion time divided by how many threads the
  machine can overlap (occupancy); a kernel with too few threads, or with
  un-hidden load latency, lands here.

This is a first-order, deterministic model: it captures exactly the
effects the paper attributes the CM/OpenCL gaps to (traffic volume,
message counts, SLM conflicts, atomic contention, barriers, launches).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.sim.machine import MachineConfig
from repro.sim.trace import GLOBAL_KINDS, MemKind, SLM_KINDS, ThreadTrace

#: Message kinds with per-lane address decode at the dataport.
SCATTER_CLASS = frozenset({MemKind.GATHER, MemKind.SCATTER, MemKind.ATOMIC,
                           MemKind.IMAGE_WRITE})

#: Cache line size used to convert line counts to bytes.
LINE_BYTES = 64


@dataclass
class KernelTiming:
    """Timing breakdown for one kernel enqueue."""

    machine: MachineConfig
    num_threads: int = 0
    total_instructions: int = 0
    compute_cycles: float = 0.0
    dram_cycles: float = 0.0
    l3_cycles: float = 0.0
    dataport_cycles: float = 0.0
    sampler_cycles: float = 0.0
    slm_cycles: float = 0.0
    atomic_cycles: float = 0.0
    latency_cycles: float = 0.0
    #: totals for reporting
    dram_bytes: int = 0
    global_read_bytes: int = 0
    global_write_bytes: int = 0
    slm_bytes: int = 0
    texels: int = 0
    barriers: int = 0
    messages: int = 0
    max_grf_bytes: int = 0
    bounds: dict = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return max(self.compute_cycles, self.dram_cycles, self.l3_cycles,
                   self.dataport_cycles, self.sampler_cycles,
                   self.slm_cycles, self.atomic_cycles, self.latency_cycles)

    @property
    def bound_by(self) -> str:
        named = {
            "compute": self.compute_cycles,
            "dram": self.dram_cycles,
            "l3": self.l3_cycles,
            "dataport": self.dataport_cycles,
            "sampler": self.sampler_cycles,
            "slm": self.slm_cycles,
            "atomic": self.atomic_cycles,
            "latency": self.latency_cycles,
        }
        return max(named, key=named.get)

    @property
    def time_us(self) -> float:
        """Kernel execution time (without enqueue overhead)."""
        return self.machine.cycles_to_us(self.cycles)


class TimingAccumulator:
    """Streaming fold of :class:`ThreadTrace` objects into kernel totals.

    ``Device.run_cm`` retires one thread at a time; feeding each trace to
    :meth:`add` as it retires keeps memory O(1) in the grid size instead
    of holding every trace until the launch completes.  The accumulation
    order and arithmetic match :func:`time_kernel` exactly, so finalizing
    an accumulator over traces ``t0..tn`` is *bit-identical* to
    ``time_kernel([t0..tn], machine)`` — ``time_kernel`` is in fact
    implemented on top of this class.
    """

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.num_threads = 0
        self.total_instructions = 0
        self.barriers = 0
        self.messages = 0
        self.max_grf_bytes = 0
        self.dram_bytes = 0
        self.global_read_bytes = 0
        self.global_write_bytes = 0
        self.slm_bytes = 0
        self._total_issue = 0.0
        self._total_thread_time = 0.0
        self._max_thread_time = 0.0
        self._dram_lines = 0
        self._l3_bytes = 0
        self._dataport_bytes = 0
        self._block_msgs = 0
        self._scatter_msgs = 0
        self._texels = 0
        self._slm_bank_cycles = 0
        self._atomic_addrs: Counter = Counter()

    def add(self, tr: ThreadTrace) -> None:
        """Fold one retired thread's trace into the running totals."""
        self.num_threads += 1
        self._total_issue += tr.issue_cycles
        thread_time = tr.exec_cycles()
        self._total_thread_time += thread_time
        self._max_thread_time = max(self._max_thread_time, thread_time)
        self.total_instructions += tr.inst_count
        self.barriers += tr.barriers
        self.messages += len(tr.events)
        self.max_grf_bytes = max(self.max_grf_bytes, tr.grf_high_water)
        self._atomic_addrs.update(tr.atomic_addrs)
        for ev in tr.events:
            if ev.kind in GLOBAL_KINDS:
                self._dram_lines += ev.dram_lines
                self._l3_bytes += ev.l3_bytes
                self.dram_bytes += ev.dram_lines * LINE_BYTES
                if ev.is_read:
                    self.global_read_bytes += ev.nbytes
                else:
                    self.global_write_bytes += ev.nbytes
                if ev.kind is MemKind.SAMPLER:
                    self._texels += ev.texels
                elif ev.kind in SCATTER_CLASS:
                    self._dataport_bytes += ev.nbytes
                    self._scatter_msgs += ev.msgs
                else:
                    self._dataport_bytes += ev.nbytes
                    self._block_msgs += ev.msgs
            elif ev.kind in SLM_KINDS:
                self._slm_bank_cycles += ev.slm_cycles
                self.slm_bytes += ev.nbytes

    def extend(self, traces: Iterable[ThreadTrace]) -> None:
        for tr in traces:
            self.add(tr)

    def finalize(self) -> KernelTiming:
        """Compute the timing for everything folded so far.

        Pure with respect to the accumulator state: it may be called
        repeatedly (and more traces added in between).
        """
        m = self.machine
        t = KernelTiming(
            machine=m, num_threads=self.num_threads,
            total_instructions=self.total_instructions,
            barriers=self.barriers, messages=self.messages,
            max_grf_bytes=self.max_grf_bytes, dram_bytes=self.dram_bytes,
            global_read_bytes=self.global_read_bytes,
            global_write_bytes=self.global_write_bytes,
            slm_bytes=self.slm_bytes)
        t.compute_cycles = self._total_issue / m.num_eus
        # Working sets that fit the shared LLC pay no DRAM on first touch.
        dram_bytes = max(0.0, self._dram_lines * LINE_BYTES
                         - m.llc_capacity_bytes)
        t.dram_cycles = dram_bytes / m.dram_bytes_per_cycle
        t.l3_cycles = self._l3_bytes / m.l3_bytes_per_cycle
        t.dataport_cycles = (
            self._dataport_bytes / m.dataport_bytes_per_cycle
            + self._block_msgs * m.dataport_block_msg_cycles
            + self._scatter_msgs * m.dataport_scatter_msg_cycles) \
            / m.num_subslices
        t.sampler_cycles = self._texels / (
            m.num_subslices * m.sampler_texels_per_cycle)
        t.slm_cycles = self._slm_bank_cycles / m.num_subslices
        t.texels = self._texels

        if self._atomic_addrs:
            hottest = max(self._atomic_addrs.values())
            total_ops = sum(self._atomic_addrs.values())
            t.atomic_cycles = max(
                hottest * m.atomic_cycles_per_op,
                total_ops / (m.atomic_ops_per_cycle * m.num_subslices))

        # Latency bound: threads beyond capacity run in waves.
        capacity = m.num_threads
        t.latency_cycles = max(self._total_thread_time / capacity,
                               self._max_thread_time)

        t.bounds = {
            "compute": t.compute_cycles,
            "dram": t.dram_cycles,
            "l3": t.l3_cycles,
            "dataport": t.dataport_cycles,
            "sampler": t.sampler_cycles,
            "slm": t.slm_cycles,
            "atomic": t.atomic_cycles,
            "latency": t.latency_cycles,
        }
        return t


def time_kernel(traces: Sequence[ThreadTrace],
                machine: MachineConfig) -> KernelTiming:
    """Fold per-thread traces into a kernel timing (streaming fold)."""
    acc = TimingAccumulator(machine)
    acc.extend(traces)
    return acc.finalize()


def merge_timings(timings: Iterable[KernelTiming],
                  machine: MachineConfig,
                  launches: Optional[int] = None) -> dict:
    """Summarize a sequence of kernel enqueues into totals for reporting."""
    timings = list(timings)
    n = launches if launches is not None else len(timings)
    exec_us = sum(tm.time_us for tm in timings)
    return {
        "launches": n,
        "kernel_time_us": exec_us,
        "launch_overhead_us": n * machine.launch_overhead_us,
        "total_time_us": exec_us + n * machine.launch_overhead_us,
        "dram_bytes": sum(tm.dram_bytes for tm in timings),
        "instructions": sum(tm.total_instructions for tm in timings),
        "barriers": sum(tm.barriers for tm in timings),
    }
