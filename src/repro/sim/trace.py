"""Per-hardware-thread execution traces.

Every CM or OpenCL hardware thread records what it executed: ALU issue
cycles (dependency positions included), memory messages with their
cache-line footprints, SLM bank-serialization cycles, atomics, and
barriers.  The analytic model in :mod:`repro.sim.timing` converts a set
of traces into kernel time.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.isa.dtypes import DType
from repro.sim.machine import MachineConfig


class MemKind(enum.Enum):
    BLOCK2D_READ = "block2d_read"
    BLOCK2D_WRITE = "block2d_write"
    OWORD_READ = "oword_read"
    OWORD_WRITE = "oword_write"
    GATHER = "gather"
    SCATTER = "scatter"
    SAMPLER = "sampler"
    IMAGE_WRITE = "image_write"
    ATOMIC = "atomic"
    SLM_READ = "slm_read"
    SLM_WRITE = "slm_write"
    SLM_ATOMIC = "slm_atomic"


#: Message kinds that move data over the global-memory path (count toward
#: the DRAM bandwidth bound).
GLOBAL_KINDS = frozenset({
    MemKind.BLOCK2D_READ, MemKind.BLOCK2D_WRITE,
    MemKind.OWORD_READ, MemKind.OWORD_WRITE,
    MemKind.GATHER, MemKind.SCATTER,
    MemKind.SAMPLER, MemKind.IMAGE_WRITE, MemKind.ATOMIC,
})

SLM_KINDS = frozenset({MemKind.SLM_READ, MemKind.SLM_WRITE, MemKind.SLM_ATOMIC})


@dataclass
class MemEvent:
    """One memory message issued by a thread."""

    kind: MemKind
    nbytes: int = 0
    lines: int = 0            # unique cache lines touched (L3 transactions)
    dram_lines: int = 0       # first-touch (compulsory) lines -> DRAM traffic
    l3_bytes: int = 0         # bytes charged to L3 bandwidth
    msgs: int = 1             # hardware messages this event represents
    texels: int = 0           # sampler path
    slm_cycles: int = 0       # bank-serialization cycles (SLM kinds)
    issue_at: float = 0.0     # thread issue position when sent
    consumed_at: Optional[float] = None  # issue position of first use
    is_read: bool = True
    surface: Optional[object] = None  # observability label of the target

    def latency(self, machine: MachineConfig) -> int:
        if self.kind is MemKind.SAMPLER:
            return machine.sampler_latency
        if self.kind in SLM_KINDS:
            return machine.slm_latency + self.slm_cycles
        if self.kind in (MemKind.GATHER, MemKind.SCATTER, MemKind.ATOMIC,
                         MemKind.OWORD_READ, MemKind.OWORD_WRITE,
                         MemKind.BLOCK2D_READ, MemKind.BLOCK2D_WRITE,
                         MemKind.IMAGE_WRITE):
            return machine.dataport_latency
        return machine.dram_latency


@dataclass
class ThreadTrace:
    """Everything one hardware thread executed, in issue order."""

    machine: MachineConfig
    issue_cycles: float = 0.0
    inst_count: int = 0
    events: list = field(default_factory=list)
    barriers: int = 0
    #: per-(surface-id, word-address) op counts for global atomics
    atomic_addrs: Counter = field(default_factory=Counter)
    #: high-water register-file demand in bytes (approximate, eager path)
    grf_high_water: int = 0

    # -- ALU ----------------------------------------------------------------

    def alu(self, n: int, dtype: DType, is_math: bool = False,
            inst_factor: int = 1) -> None:
        """Record an n-element SIMD operation of execution type ``dtype``.

        ``inst_factor`` multiplies the instruction count, for CM ops that
        legalize to several instructions per chunk (e.g. mul+mov for dp).
        """
        m = self.machine
        n_inst = -(-n // m.native_simd(dtype.size)) * inst_factor
        lanes = m.alu_lanes_per_cycle(dtype, is_math)
        cycles = max(n_inst * m.issue_cycles_per_inst, n / lanes)
        self.inst_count += n_inst
        self.issue_cycles += cycles

    def scalar_op(self, count: int = 1) -> None:
        """Scalar/address arithmetic: one instruction each."""
        self.inst_count += count
        self.issue_cycles += count * self.machine.issue_cycles_per_inst

    # -- memory ---------------------------------------------------------

    def memory(self, kind: MemKind, nbytes: int = 0, lines: int = 0,
               dram_lines: int = None, l3_bytes: int = None, texels: int = 0,
               slm_cycles: int = 0, is_read: bool = True,
               msgs: int = 1, surface: Optional[object] = None) -> MemEvent:
        """Record a memory message; returns the event for dep tracking.

        ``lines`` is the L3 transaction count; ``dram_lines`` the
        compulsory (first-touch) subset, defaulting to ``lines`` when the
        caller does no reuse tracking.  ``l3_bytes`` is what the message
        moves over the L3 fabric — the payload for dense block messages,
        full lines for scattered ones (the default).  ``surface`` is an
        opaque label naming the target surface, used by the time-breakdown
        profiler to attribute traffic per surface.
        """
        # A send occupies the front end briefly.
        self.inst_count += 1
        self.issue_cycles += 2 * self.machine.issue_cycles_per_inst
        ev = MemEvent(kind=kind, nbytes=nbytes, lines=lines,
                      dram_lines=lines if dram_lines is None else dram_lines,
                      l3_bytes=lines * 64 if l3_bytes is None else l3_bytes,
                      texels=texels, msgs=msgs,
                      slm_cycles=slm_cycles, issue_at=self.issue_cycles,
                      is_read=is_read, surface=surface)
        self.events.append(ev)
        return ev

    def consume(self, event: MemEvent) -> None:
        """Mark the first use of a load's result (dependency distance)."""
        if event.consumed_at is None:
            event.consumed_at = self.issue_cycles

    def atomic_global(self, addr_words, surface_id: int = 0) -> None:
        """Record global-atomic target addresses for contention modeling."""
        for w in addr_words:
            self.atomic_addrs[(surface_id, int(w))] += 1

    def barrier(self) -> None:
        self.barriers += 1

    def note_grf(self, live_bytes: int) -> None:
        if live_bytes > self.grf_high_water:
            self.grf_high_water = live_bytes

    # -- analysis -------------------------------------------------------

    def exec_cycles(self) -> float:
        """Thread completion time: issue + exposed memory latency + barriers.

        A load's latency is hidden by the independent instructions issued
        between the load and its first consumer; only the remainder stalls
        the thread.  Stores and never-consumed loads do not stall.
        """
        m = self.machine
        stall = 0.0
        for ev in self.events:
            if not ev.is_read or ev.consumed_at is None:
                continue
            covered = ev.consumed_at - ev.issue_at
            stall += max(0.0, ev.latency(m) - covered)
        return self.issue_cycles + stall + self.barriers * m.barrier_cycles
