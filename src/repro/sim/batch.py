"""Timing-aware execution of compiled kernels (the batched dispatch path).

The plain :class:`~repro.isa.executor.FunctionalExecutor` computes
architectural state only; the eager path gets its timing from the CM
intrinsics recording trace events as they run.  :class:`TracingExecutor`
closes the gap for *compiled* programs: it subclasses the functional
executor and records the same :class:`~repro.sim.trace.ThreadTrace`
events the eager intrinsics would — ALU issue, memory messages with
cache-line footprints, load-use dependency distances, atomics, barriers
— so a compiled launch can be timed with the same analytic model.

Message accounting matches :mod:`repro.cm.intrinsics` exactly (media
blocks split into 32Bx8 messages, oword blocks into 128B messages,
scattered messages into 16-lane messages, extra messages charged as two
scalar ops each): both paths take the split geometry from the shared
leaf module :mod:`repro.isa.msg_geometry`.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.isa.dtypes import DType, UD, promote
from repro.isa.executor import FunctionalExecutor, _contiguous_region
from repro.isa.grf import GRF_SIZE_BYTES, RegOperand
from repro.isa.instructions import CF_OPCODES, Instruction, MsgKind, Opcode
from repro.isa.msg_geometry import (
    media_block_messages, oword_block_messages, scatter_messages,
)
from repro.sim.trace import MemKind, ThreadTrace


def _alu_cost(inst: Instruction, machine) -> tuple:
    """(n_inst, issue_cycles) for one legalized ALU instruction.

    Same math as :meth:`ThreadTrace.alu` with ``inst_factor`` folded to
    1, precomputed so per-thread replay is two additions.  Shared with
    the JIT template builder (:mod:`repro.isa.jit`), which folds these
    costs into a statically-simulated trace.
    """
    exec_dtype: Optional[DType] = None
    for s in inst.srcs:
        t = getattr(s, "dtype", None)
        if t is not None:
            exec_dtype = t if exec_dtype is None else promote(exec_dtype, t)
    if exec_dtype is None and inst.dst is not None:
        exec_dtype = inst.dst.dtype
    n = inst.exec_size
    n_inst = -(-n // machine.native_simd(exec_dtype.size))
    lanes = machine.alu_lanes_per_cycle(exec_dtype,
                                        inst.opcode is Opcode.MATH)
    return (n_inst, max(n_inst * machine.issue_cycles_per_inst, n / lanes))


#: Scalar-op cost of each structured-CF opcode, mirroring the eager
#: path's accounting (simd-goto ≈ 2 scalar ops at a divergent branch,
#: simd-join ≈ 1 at a reconvergence point).  Thread-invariant, so the
#: wide tracer charges the identical amounts per thread.
CF_COSTS = {
    Opcode.SIMD_IF: 2, Opcode.SIMD_ELSE: 1, Opcode.SIMD_ENDIF: 1,
    Opcode.SIMD_DO: 1, Opcode.SIMD_WHILE: 2, Opcode.SIMD_BREAK: 2,
}


class TracingExecutor(FunctionalExecutor):
    """A :class:`FunctionalExecutor` that also records a thread trace.

    Pooled use: call :meth:`begin_thread` with a fresh trace before each
    thread (after :meth:`reset`); the operand-plan caches inherited from
    the base class survive across threads, as do the per-operand register
    footprints used for load-use dependency tracking.
    """

    def __init__(self, surfaces: Mapping[int, object] | None = None,
                 num_regs: int = 128) -> None:
        super().__init__(surfaces, num_regs)
        self.trace: Optional[ThreadTrace] = None
        #: GRF register index -> MemEvent still awaiting its first use.
        self._pending_loads: dict = {}
        #: (operand, exec_size) -> tuple of GRF registers the source reads.
        #: Value-keyed (RegOperand is frozen), so never stale.
        self._operand_regs: dict = {}
        # Per-instruction memos (merged source registers, ALU issue
        # costs) live in the inherited program-scoped ``self.plans``
        # PlanTable — keyed by (program, index), never ``id(inst)``, so
        # a recycled Instruction in a new program cannot alias a stale
        # entry and pooled executors stay bounded (one program's worth
        # of plans at a time).  Costs are sub-keyed per machine, so one
        # kernel-attached table serves heterogeneous devices.

    def begin_thread(self, trace: ThreadTrace) -> None:
        """Attach the trace for the next thread and clear dependency state."""
        self.trace = trace
        self._pending_loads.clear()

    # -- load-use dependency tracking -------------------------------------

    def _src_regs(self, operand: RegOperand, n: int) -> tuple:
        key = (operand, n)
        regs = self._operand_regs.get(key)
        if regs is None:
            idx = self._src_plan(operand, n)
            regs = tuple(np.unique(idx // GRF_SIZE_BYTES).tolist())
            self._operand_regs[key] = regs
        return regs

    def _consume_regs(self, regs) -> None:
        pending = self._pending_loads
        if not pending:
            return
        for reg in regs:
            ev = pending.get(reg)
            if ev is not None:
                self.trace.consume(ev)
                # One consume retires the whole message's payload.
                for r in [r for r, e in pending.items() if e is ev]:
                    del pending[r]

    def _merged_src_regs(self, inst: Instruction) -> tuple:
        merged: list = []
        for s in inst.srcs:
            if isinstance(s, RegOperand):
                merged.extend(self._src_regs(s, inst.exec_size))
        return tuple(dict.fromkeys(merged))

    def _note_src_consumption(self, inst: Instruction) -> None:
        if not self._pending_loads:
            return
        regs = None
        table = self.plans
        if table is not None:
            slot = table.slot(inst)
            if slot is not None:
                regs = table.src_regs[slot]
                if regs is None:
                    regs = table.src_regs[slot] = self._merged_src_regs(inst)
        if regs is None:  # ad-hoc instruction outside the bound program
            regs = self._merged_src_regs(inst)
        self._consume_regs(regs)

    def _register_load(self, first_reg: int, nbytes: int, ev) -> None:
        for reg in range(first_reg, first_reg + -(-nbytes // GRF_SIZE_BYTES)):
            self._pending_loads[reg] = ev

    # -- instruction dispatch ---------------------------------------------

    def execute(self, inst: Instruction) -> None:
        op = inst.opcode
        if op is Opcode.BARRIER:
            # base execute() handles the count and the sanitizer hooks
            # (a barrier is a happens-before edge for the race detector)
            self.trace.barrier()
            super().execute(inst)
            return
        if op is Opcode.NOP:
            super().execute(inst)
            return
        if op in CF_OPCODES:
            super().execute(inst)
            self.trace.scalar_op(CF_COSTS[op])
            return
        if op is Opcode.SEND:
            super().execute(inst)
            self._account_send(inst)
            return
        self._note_src_consumption(inst)
        super().execute(inst)
        self._account_alu(inst)

    def _account_alu(self, inst: Instruction) -> None:
        trace = self.trace
        cost = None
        slots = None
        table = self.plans
        if table is not None:
            slot = table.slot(inst)
            if slot is not None:
                slots = table.cost_slots(trace.machine)
                cost = slots[slot]
        if cost is None:
            cost = _alu_cost(inst, trace.machine)
            if slots is not None:
                slots[slot] = cost
        trace.inst_count += cost[0]
        trace.issue_cycles += cost[1]

    # -- memory accounting --------------------------------------------------

    def _account_send(self, inst: Instruction) -> None:
        msg = inst.msg
        surf = self._surface(msg.surface)
        trace = self.trace
        kind = msg.kind
        label = getattr(surf, "obs_label", None) or f"bti{msg.surface}"

        if kind in (MsgKind.MEDIA_BLOCK_READ, MsgKind.MEDIA_BLOCK_WRITE):
            x = self._scalar(msg.addr0)
            y = self._scalar(msg.addr1)
            w, h = msg.block_width, msg.block_height
            nbytes = w * h
            lines, new = surf.mark_lines_block2d(x, y, w, h, surf.pitch)
            messages = media_block_messages(w, h)
            self._extra_messages(messages)
            is_read = kind is MsgKind.MEDIA_BLOCK_READ
            ev = trace.memory(
                MemKind.BLOCK2D_READ if is_read else MemKind.BLOCK2D_WRITE,
                nbytes=nbytes, lines=lines, dram_lines=new, l3_bytes=nbytes,
                msgs=messages, is_read=is_read, surface=label)
            if is_read:
                self._register_load(msg.payload_reg, nbytes, ev)
        elif kind in (MsgKind.OWORD_BLOCK_READ, MsgKind.OWORD_BLOCK_WRITE):
            offset = self._scalar(msg.addr0)
            nbytes = msg.payload_bytes
            lines, new = surf.mark_lines_range(offset, nbytes)
            messages = oword_block_messages(nbytes)
            self._extra_messages(messages)
            is_read = kind is MsgKind.OWORD_BLOCK_READ
            ev = trace.memory(
                MemKind.OWORD_READ if is_read else MemKind.OWORD_WRITE,
                nbytes=nbytes, lines=lines, dram_lines=new, l3_bytes=nbytes,
                msgs=messages, is_read=is_read, surface=label)
            if is_read:
                self._register_load(msg.payload_reg, nbytes, ev)
        else:  # GATHER / SCATTER / ATOMIC
            n = inst.exec_size
            elem = msg.elem_dtype
            byte_offs = self._scattered_offsets(inst)
            mask = self._exec_mask(inst)
            lines, new = surf.mark_lines_offsets(byte_offs, elem.size,
                                                 mask=mask)
            messages = scatter_messages(n)
            nbytes = n * elem.size
            if kind is MsgKind.GATHER:
                self._extra_messages(messages)
                ev = trace.memory(MemKind.GATHER, nbytes=nbytes, lines=lines,
                                  dram_lines=new, msgs=messages,
                                  surface=label)
                self._register_load(msg.payload_reg, nbytes, ev)
            elif kind is MsgKind.SCATTER:
                self._extra_messages(messages)
                trace.memory(MemKind.SCATTER, nbytes=nbytes, lines=lines,
                             dram_lines=new, msgs=messages, is_read=False,
                             surface=label)
            else:  # ATOMIC
                ev = trace.memory(MemKind.ATOMIC, nbytes=nbytes, lines=lines,
                                  dram_lines=new, msgs=messages,
                                  surface=label)
                active = byte_offs if mask is None else \
                    byte_offs[np.asarray(mask, dtype=bool)]
                trace.atomic_global(active // 4, surface_id=id(surf))
                if inst.dst is not None:
                    self._register_load(
                        inst.dst.byte_offset // GRF_SIZE_BYTES, nbytes, ev)

    def _scattered_offsets(self, inst: Instruction) -> np.ndarray:
        """Recompute the per-lane byte offsets (same math as the base)."""
        msg = inst.msg
        n = inst.exec_size
        addr_op = RegOperand(msg.addr_reg, 0, UD,
                             region=_contiguous_region(n))
        offsets = self._fetch(addr_op, n).astype(np.int64)
        global_off = self._scalar(msg.addr0) if msg.addr0 is not None else 0
        return (offsets + global_off) * msg.elem_dtype.size

    def _extra_messages(self, count: int) -> None:
        """Charge the front end for messages beyond the first."""
        if count > 1:
            self.trace.scalar_op(2 * (count - 1))
