"""Machine descriptions for the simulated Gen GPUs.

Parameters approximate public Gen9 (Skylake GT2) and Gen11 (IceLake GT2)
configurations.  Absolute values matter less than the *ratios* between
compute, bandwidth, sampler, SLM and atomic throughput — those ratios are
what reproduce the shape of the paper's Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.dtypes import DType


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of one simulated GPU."""

    name: str
    #: Number of execution units.
    num_eus: int = 64
    #: Hardware threads per EU (each with a private 4 KB GRF).
    threads_per_eu: int = 7
    #: EUs are grouped into subslices; samplers, dataport and SLM are
    #: per-subslice resources.
    eus_per_subslice: int = 8
    #: Core clock in Hz.
    frequency_hz: float = 1.1e9
    #: Achievable DRAM bandwidth in bytes/second (shared with CPU).
    dram_bw_bytes: float = 34e9
    #: L3 cache bandwidth in bytes per cycle (shared across the GPU; the
    #: L3 is banked, so aggregate bandwidth far exceeds one line per cycle).
    l3_bytes_per_cycle: int = 512
    #: Shared LLC capacity: on integrated Gen GPUs the LLC is shared with
    #: the CPU, so a working set this size is cache-resident and its
    #: first-touch traffic does not reach DRAM.
    llc_capacity_bytes: float = 8e6
    #: Dataport (HDC) bytes per cycle per subslice (block & scattered I/O).
    dataport_bytes_per_cycle: int = 64
    #: Fixed dataport occupancy per *block-class* message (media/oword
    #: block): one address, streaming payload.
    dataport_block_msg_cycles: int = 1
    #: Fixed dataport occupancy per *scatter-class* message (gather,
    #: scatter, atomic): per-lane address decode makes these slower, which
    #: is why one block message beats many scattered ones (Section III).
    dataport_scatter_msg_cycles: int = 2
    #: Sampler texels per cycle per subslice (image gather path).
    sampler_texels_per_cycle: int = 4
    #: SLM words (4 B) per cycle per bank; 16 banks per subslice.
    slm_banks: int = 16
    #: Global memory load latency in cycles (L3 miss to DRAM).
    dram_latency: int = 190
    #: Sampler message latency in cycles.
    sampler_latency: int = 250
    #: Dataport (block/scattered) message latency in cycles.
    dataport_latency: int = 170
    #: SLM access latency in cycles.
    slm_latency: int = 60
    #: Cycles per serialized same-address global atomic op.
    atomic_cycles_per_op: int = 4
    #: Pipelined global atomics per cycle per subslice (distinct addresses).
    atomic_ops_per_cycle: float = 1.0
    #: Work-group barrier cost in cycles per participating thread
    #: (signal + wait when all threads arrive together).
    barrier_cycles: int = 40
    #: Host-side cost of one kernel enqueue (driver + dispatch), in us.
    launch_overhead_us: float = 6.0
    #: GPU-side gap between back-to-back kernels in an in-order queue:
    #: enqueue cost pipelines behind execution, only the dispatch/sync
    #: gap remains.
    pipelined_launch_us: float = 1.0
    #: Per-instruction front-end issue cost in cycles.
    issue_cycles_per_inst: int = 1
    #: Widest ALU operand in bytes (Gen: 2 GRFs = 64 B, so fp32 executes
    #: at most 16 lanes per instruction; a 32-wide SIMD-group design
    #: doubles this to 128 B).
    max_operand_bytes: int = 64
    #: fp32 FPU lanes retired per cycle per EU; other execution types
    #: derive from this base rate (see :meth:`alu_lanes_per_cycle`).
    fp32_lanes_per_cycle: float = 8.0

    # -- derived helpers -------------------------------------------------

    @property
    def num_subslices(self) -> int:
        return max(1, self.num_eus // self.eus_per_subslice)

    @property
    def num_threads(self) -> int:
        return self.num_eus * self.threads_per_eu

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bw_bytes / self.frequency_hz

    def alu_lanes_per_cycle(self, dtype: DType, is_math: bool = False) -> float:
        """FPU lanes per cycle per EU for the given execution type.

        Rates scale from :attr:`fp32_lanes_per_cycle` (Gen: 8 fp32/int32
        lanes per cycle, 2x SIMD4 pipes): double rate for <=2-byte
        integer types, quarter rate for 8-byte types and extended-math
        functions.
        """
        if is_math:
            return self.fp32_lanes_per_cycle / 4.0
        if dtype.size >= 8:
            return self.fp32_lanes_per_cycle / 4.0
        if dtype.size <= 2 and not dtype.is_float:
            return self.fp32_lanes_per_cycle * 2.0
        return self.fp32_lanes_per_cycle

    def native_simd(self, elem_size: int) -> int:
        """Max elements per instruction, capped at the 32-wide exec mask:
        operands are limited to :attr:`max_operand_bytes` (2 GRFs on Gen).
        """
        return max(1, min(32, self.max_operand_bytes // max(elem_size, 1)))

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / self.frequency_hz * 1e6


GEN11_ICL = MachineConfig(name="Gen11 ICL GT2 (64 EU)")

GEN9_SKL = MachineConfig(
    name="Gen9 SKL GT2 (24 EU)",
    num_eus=24,
    threads_per_eu=7,
    eus_per_subslice=8,
    frequency_hz=1.15e9,
    dram_bw_bytes=30e9,
)

GEN12_TGL = MachineConfig(
    name="Gen12 TGL GT2 (96 EU)",
    num_eus=96,
    threads_per_eu=7,
    eus_per_subslice=16,
    frequency_hz=1.35e9,
    dram_bw_bytes=55e9,
    l3_bytes_per_cycle=768,
    llc_capacity_bytes=12e6,
)

#: A 32-wide SIMD-group design in the Apple-GPU mold (Metal's fixed
#: 32-thread simdgroups): fewer, wider cores with deep per-core thread
#: occupancy, 128-byte ALU operands (full 32-lane fp32 instructions),
#: a fat unified-memory path with longer load latency, and a heavier
#: command-buffer submission cost.  Nothing Gen-specific in the timing
#: model depends on the Gen ratios, so this config doubles as the
#: portability proof for the autotuner: the same compiled kernels price
#: differently here and different variants win.
SIMD32_APL = MachineConfig(
    name="SIMD32 APL (32 core)",
    num_eus=32,
    threads_per_eu=24,
    eus_per_subslice=4,
    frequency_hz=1.3e9,
    dram_bw_bytes=100e9,
    l3_bytes_per_cycle=1024,
    llc_capacity_bytes=24e6,
    max_operand_bytes=128,
    fp32_lanes_per_cycle=32.0,
    dram_latency=260,
    dataport_latency=210,
    slm_latency=40,
    slm_banks=32,
    barrier_cycles=24,
    launch_overhead_us=10.0,
    pipelined_launch_us=0.8,
)
