"""Machine descriptions for the simulated Gen GPUs.

Parameters approximate public Gen9 (Skylake GT2) and Gen11 (IceLake GT2)
configurations.  Absolute values matter less than the *ratios* between
compute, bandwidth, sampler, SLM and atomic throughput — those ratios are
what reproduce the shape of the paper's Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.dtypes import DType


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of one simulated GPU."""

    name: str
    #: Number of execution units.
    num_eus: int = 64
    #: Hardware threads per EU (each with a private 4 KB GRF).
    threads_per_eu: int = 7
    #: EUs are grouped into subslices; samplers, dataport and SLM are
    #: per-subslice resources.
    eus_per_subslice: int = 8
    #: Core clock in Hz.
    frequency_hz: float = 1.1e9
    #: Achievable DRAM bandwidth in bytes/second (shared with CPU).
    dram_bw_bytes: float = 34e9
    #: L3 cache bandwidth in bytes per cycle (shared across the GPU; the
    #: L3 is banked, so aggregate bandwidth far exceeds one line per cycle).
    l3_bytes_per_cycle: int = 512
    #: Shared LLC capacity: on integrated Gen GPUs the LLC is shared with
    #: the CPU, so a working set this size is cache-resident and its
    #: first-touch traffic does not reach DRAM.
    llc_capacity_bytes: float = 8e6
    #: Dataport (HDC) bytes per cycle per subslice (block & scattered I/O).
    dataport_bytes_per_cycle: int = 64
    #: Fixed dataport occupancy per *block-class* message (media/oword
    #: block): one address, streaming payload.
    dataport_block_msg_cycles: int = 1
    #: Fixed dataport occupancy per *scatter-class* message (gather,
    #: scatter, atomic): per-lane address decode makes these slower, which
    #: is why one block message beats many scattered ones (Section III).
    dataport_scatter_msg_cycles: int = 2
    #: Sampler texels per cycle per subslice (image gather path).
    sampler_texels_per_cycle: int = 4
    #: SLM words (4 B) per cycle per bank; 16 banks per subslice.
    slm_banks: int = 16
    #: Global memory load latency in cycles (L3 miss to DRAM).
    dram_latency: int = 190
    #: Sampler message latency in cycles.
    sampler_latency: int = 250
    #: Dataport (block/scattered) message latency in cycles.
    dataport_latency: int = 170
    #: SLM access latency in cycles.
    slm_latency: int = 60
    #: Cycles per serialized same-address global atomic op.
    atomic_cycles_per_op: int = 4
    #: Pipelined global atomics per cycle per subslice (distinct addresses).
    atomic_ops_per_cycle: float = 1.0
    #: Work-group barrier cost in cycles per participating thread
    #: (signal + wait when all threads arrive together).
    barrier_cycles: int = 40
    #: Host-side cost of one kernel enqueue (driver + dispatch), in us.
    launch_overhead_us: float = 6.0
    #: GPU-side gap between back-to-back kernels in an in-order queue:
    #: enqueue cost pipelines behind execution, only the dispatch/sync
    #: gap remains.
    pipelined_launch_us: float = 1.0
    #: Per-instruction front-end issue cost in cycles.
    issue_cycles_per_inst: int = 1

    # -- derived helpers -------------------------------------------------

    @property
    def num_subslices(self) -> int:
        return max(1, self.num_eus // self.eus_per_subslice)

    @property
    def num_threads(self) -> int:
        return self.num_eus * self.threads_per_eu

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bw_bytes / self.frequency_hz

    def alu_lanes_per_cycle(self, dtype: DType, is_math: bool = False) -> float:
        """FPU lanes per cycle per EU for the given execution type.

        Gen EUs execute 8 fp32/int32 lanes per cycle (2x SIMD4 pipes),
        double rate for <=2-byte integer types, and a reduced rate for
        8-byte types and extended-math functions.
        """
        if is_math:
            return 2.0
        if dtype.size >= 8:
            return 2.0
        if dtype.size <= 2 and not dtype.is_float:
            return 16.0
        return 8.0

    def native_simd(self, elem_size: int) -> int:
        """Max elements per instruction: operands are capped at 2 GRFs."""
        return max(1, min(32, 64 // max(elem_size, 1)))

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / self.frequency_hz * 1e6


GEN11_ICL = MachineConfig(name="Gen11 ICL GT2 (64 EU)")

GEN9_SKL = MachineConfig(
    name="Gen9 SKL GT2 (24 EU)",
    num_eus=24,
    threads_per_eu=7,
    eus_per_subslice=8,
    frequency_hz=1.15e9,
    dram_bw_bytes=30e9,
)

GEN12_TGL = MachineConfig(
    name="Gen12 TGL GT2 (96 EU)",
    num_eus=96,
    threads_per_eu=7,
    eus_per_subslice=16,
    frequency_hz=1.35e9,
    dram_bw_bytes=55e9,
    l3_bytes_per_cycle=768,
    llc_capacity_bytes=12e6,
)
