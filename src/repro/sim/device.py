"""The simulated GPU device and its runtime queue.

Host code creates a :class:`Device`, wraps numpy arrays in surfaces, and
enqueues kernels.  Each enqueue runs every hardware thread functionally,
collects the per-thread traces, and records a :class:`KernelRun` with the
timing breakdown.  Total time accumulates launch overhead per enqueue —
this is the effect that penalizes the OpenCL bitonic sort's hundreds of
kernel launches in Figure 5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.memory.surfaces import BufferSurface, Image2DSurface
from repro.sim import context as ctx_mod
from repro.sim.context import ThreadContext
from repro.sim.machine import GEN11_ICL, MachineConfig
from repro.sim.timing import KernelTiming, time_kernel
from repro.sim.trace import ThreadTrace


@dataclass
class KernelRun:
    """One completed kernel enqueue."""

    name: str
    timing: KernelTiming
    launch_overhead_us: float

    @property
    def kernel_time_us(self) -> float:
        return self.timing.time_us

    @property
    def total_time_us(self) -> float:
        return self.timing.time_us + self.launch_overhead_us


class Device:
    """A simulated Gen GPU plus its in-order execution queue."""

    def __init__(self, machine: MachineConfig = GEN11_ICL) -> None:
        self.machine = machine
        self.runs: list[KernelRun] = []
        self.surfaces: list = []

    # -- memory management -------------------------------------------------

    def buffer(self, data_or_size) -> BufferSurface:
        """Create a linear buffer surface from an array or a byte size."""
        if isinstance(data_or_size, (int, np.integer)):
            surf = BufferSurface.allocate(int(data_or_size))
        else:
            surf = BufferSurface.from_array(np.asarray(data_or_size))
        self.surfaces.append(surf)
        return surf

    def image2d(self, data: np.ndarray, bytes_per_pixel: int = 1) -> Image2DSurface:
        surf = Image2DSurface(np.asarray(data), bytes_per_pixel)
        self.surfaces.append(surf)
        return surf

    def begin_enqueue(self) -> None:
        """Start a new kernel: caches are cold again for line tracking."""
        for surf in self.surfaces:
            surf.reset_line_tracking()

    # -- kernel execution ---------------------------------------------------

    def run_cm(self, kernel: Callable, grid: Sequence[int],
               args: Tuple = (), name: Optional[str] = None) -> KernelRun:
        """Launch a CM kernel over a 1D/2D/3D grid of hardware threads.

        The kernel body reads its coordinates via ``repro.cm.thread_x()``
        etc.; one invocation = one hardware thread (the CM model).
        """
        self.begin_enqueue()
        dims = [range(g) for g in grid]
        traces = []
        for tid in itertools.product(*reversed(dims)):
            thread_id = tuple(reversed(tid))
            trace = ThreadTrace(self.machine)
            thread_ctx = ThreadContext(trace, thread_id=thread_id)
            ctx_mod.activate(thread_ctx)
            try:
                kernel(*args)
            finally:
                ctx_mod.deactivate()
            traces.append(trace)
        return self.submit(traces, name or getattr(kernel, "__name__", "cm"))

    def submit(self, traces: Sequence[ThreadTrace], name: str) -> KernelRun:
        """Record a completed enqueue built from externally-run traces."""
        timing = time_kernel(traces, self.machine)
        run = KernelRun(name=name, timing=timing,
                        launch_overhead_us=self.machine.launch_overhead_us)
        self.runs.append(run)
        return run

    def new_trace(self) -> ThreadTrace:
        return ThreadTrace(self.machine)

    # -- statistics -------------------------------------------------------

    @property
    def total_time_us(self) -> float:
        """Total queue time: kernels plus launch overhead.

        The first enqueue pays the full driver overhead; subsequent
        back-to-back enqueues pipeline behind GPU execution and pay only
        the dispatch gap.
        """
        if not self.runs:
            return 0.0
        overhead = self.machine.launch_overhead_us + \
            (len(self.runs) - 1) * self.machine.pipelined_launch_us
        return self.kernel_time_us + overhead

    @property
    def kernel_time_us(self) -> float:
        return sum(r.kernel_time_us for r in self.runs)

    @property
    def launches(self) -> int:
        return len(self.runs)

    def reset(self) -> None:
        self.runs.clear()

    def report(self) -> str:
        """Human-readable per-run breakdown (for examples and debugging)."""
        lines = [f"device: {self.machine.name}"]
        for r in self.runs:
            tm = r.timing
            lines.append(
                f"  {r.name}: {r.total_time_us:9.1f} us "
                f"(kernel {tm.time_us:9.1f}, bound by {tm.bound_by}, "
                f"{tm.num_threads} threads, {tm.total_instructions} inst, "
                f"{tm.dram_bytes} dram bytes)")
        lines.append(f"  total: {self.total_time_us:.1f} us over "
                     f"{self.launches} launches")
        return "\n".join(lines)
