"""The simulated GPU device and its runtime queue.

Host code creates a :class:`Device`, wraps numpy arrays in surfaces, and
enqueues kernels.  Each enqueue runs every hardware thread functionally,
folds the per-thread traces into a timing breakdown as the threads
retire, and records a :class:`KernelRun`.  Total time accumulates launch
overhead per enqueue — this is the effect that penalizes the OpenCL
bitonic sort's hundreds of kernel launches in Figure 5.

Two dispatch paths exist:

- :meth:`Device.run_cm` runs an *eager* CM kernel (a Python callable
  using :mod:`repro.cm`) one hardware thread at a time, streaming each
  retired trace into a :class:`~repro.sim.timing.TimingAccumulator` so
  memory stays O(1) in the grid size.
- :meth:`Device.run_compiled` runs a
  :class:`~repro.compiler.driver.CompiledKernel` over a grid using one
  pooled :class:`~repro.sim.batch.TracingExecutor` whose operand plans
  are shared by every thread (a compiled program is identical across
  threads).  Combined with :meth:`Device.compile`'s kernel cache this is
  the fast path for repeated launches.

Both paths are instrumented through :mod:`repro.obs`: dispatches open
trace spans, per-kernel :class:`~repro.obs.breakdown.TimeBreakdown`
attribution is folded as threads retire (when enabled), and the
:class:`DeviceProfile` counters are backed by a
:class:`~repro.obs.metrics.MetricsRegistry`.  With the default disabled
observability the extra cost is a couple of branch checks per chunk.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

import repro.sanitize as sanitize_mod
from repro.isa.executor import FunctionalExecutor
from repro.memory.surfaces import BufferSurface, Image2DSurface, Surface
from repro.obs import get_observability
from repro.obs.breakdown import BreakdownAccumulator, TimeBreakdown
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.tracing import trace_span
from repro.sim import context as ctx_mod
from repro.sim.batch import TracingExecutor
from repro.sim.context import ThreadContext
from repro.sim.machine import GEN11_ICL, MachineConfig
from repro.sim.timing import KernelTiming, TimingAccumulator, time_kernel
from repro.sim.trace import ThreadTrace


@dataclass
class KernelRun:
    """One completed kernel enqueue."""

    name: str
    timing: KernelTiming
    launch_overhead_us: float
    #: per-bucket time attribution; present when observability breakdowns
    #: were enabled for the launch.
    breakdown: Optional[TimeBreakdown] = None
    #: dispatch tier that executed the launch: ``cm`` (eager),
    #: ``sequential``, ``wide``, ``jit``, or ``external`` (submitted
    #: traces).  Simulated timing is tier-invariant; the tier only
    #: matters for wall-clock and observability.
    path: str = "sequential"

    @property
    def kernel_time_us(self) -> float:
        return self.timing.time_us

    @property
    def total_time_us(self) -> float:
        return self.timing.time_us + self.launch_overhead_us


class DeviceProfile:
    """Counters describing how the device dispatched work.

    The values live in a :class:`MetricsRegistry` (one private registry
    per profile unless one is injected), so ``device.profile.registry``
    can be scraped or merged into reports while the attribute API
    (``profile.threads_run`` etc.) keeps working.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._threads_run = self.registry.counter(
            "device_threads_run", "hardware threads executed")
        self._chunks_dispatched = self.registry.counter(
            "device_chunks_dispatched", "trace chunks retired")
        self._peak_live_traces = self.registry.gauge(
            "device_peak_live_traces", "high-water mark of live traces")
        self._compile_cache_hits = self.registry.counter(
            "compile_cache_hits", "kernel cache hits via Device.compile")
        self._compile_cache_misses = self.registry.counter(
            "compile_cache_misses", "kernel cache misses via Device.compile")
        self._jit_compiles = self.registry.counter(
            "jit_compiles", "megakernel JIT compilations")
        self._jit_cache_hits = self.registry.counter(
            "jit_cache_hits", "launches reusing a cached megakernel")
        #: per-tier launch counters (cm / sequential / wide / jit /
        #: external) — which dispatch tier actually ran each enqueue.
        self._tier_launches: Dict[str, Counter] = {}
        #: wide-admission gate outcomes per launch (sanitized / admitted
        #: / refused / trusted / bypassed / ineligible / forced_scalar).
        self._gate_outcomes: Dict[str, Counter] = {}

    def count_launch(self, tier: str) -> None:
        """Tally one launch on its dispatch tier."""
        c = self._tier_launches.get(tier)
        if c is None:
            c = self._tier_launches[tier] = self.registry.counter(
                "device_tier_launches", tier=tier)
        c.inc()

    def count_gate(self, outcome: str) -> None:
        """Tally one wide-admission gate decision."""
        c = self._gate_outcomes.get(outcome)
        if c is None:
            c = self._gate_outcomes[outcome] = self.registry.counter(
                "device_wide_gate", outcome=outcome)
        c.inc()

    @property
    def tier_launches(self) -> Dict[str, int]:
        return {tier: int(c.value)
                for tier, c in sorted(self._tier_launches.items())}

    @property
    def gate_outcomes(self) -> Dict[str, int]:
        return {outcome: int(c.value)
                for outcome, c in sorted(self._gate_outcomes.items())}

    # Attribute-compatible accessors over the registry instruments.

    @property
    def threads_run(self) -> int:
        return int(self._threads_run.value)

    @threads_run.setter
    def threads_run(self, value: int) -> None:
        self._threads_run.inc(value - self._threads_run.value)

    @property
    def chunks_dispatched(self) -> int:
        return int(self._chunks_dispatched.value)

    @chunks_dispatched.setter
    def chunks_dispatched(self, value: int) -> None:
        self._chunks_dispatched.inc(value - self._chunks_dispatched.value)

    @property
    def peak_live_traces(self) -> int:
        return int(self._peak_live_traces.value)

    @peak_live_traces.setter
    def peak_live_traces(self, value: int) -> None:
        self._peak_live_traces.set(value)

    @property
    def compile_cache_hits(self) -> int:
        return int(self._compile_cache_hits.value)

    @compile_cache_hits.setter
    def compile_cache_hits(self, value: int) -> None:
        self._compile_cache_hits.inc(value - self._compile_cache_hits.value)

    @property
    def compile_cache_misses(self) -> int:
        return int(self._compile_cache_misses.value)

    @compile_cache_misses.setter
    def compile_cache_misses(self, value: int) -> None:
        self._compile_cache_misses.inc(
            value - self._compile_cache_misses.value)

    @property
    def jit_compiles(self) -> int:
        return int(self._jit_compiles.value)

    @jit_compiles.setter
    def jit_compiles(self, value: int) -> None:
        self._jit_compiles.inc(value - self._jit_compiles.value)

    @property
    def jit_cache_hits(self) -> int:
        return int(self._jit_cache_hits.value)

    @jit_cache_hits.setter
    def jit_cache_hits(self, value: int) -> None:
        self._jit_cache_hits.inc(value - self._jit_cache_hits.value)

    def note_live_traces(self, count: int) -> None:
        """Record an observed number of concurrently live traces."""
        self._peak_live_traces.set_max(count)

    def __repr__(self) -> str:
        return (f"DeviceProfile(threads_run={self.threads_run}, "
                f"chunks_dispatched={self.chunks_dispatched}, "
                f"peak_live_traces={self.peak_live_traces}, "
                f"compile_cache_hits={self.compile_cache_hits}, "
                f"compile_cache_misses={self.compile_cache_misses}, "
                f"jit_compiles={self.jit_compiles}, "
                f"jit_cache_hits={self.jit_cache_hits})")


class Device:
    """A simulated Gen GPU plus its in-order execution queue."""

    def __init__(self, machine: MachineConfig = GEN11_ICL,
                 obs=None) -> None:
        self.machine = machine
        self.runs: list[KernelRun] = []
        self.surfaces: list = []
        #: observability bundle; defaults to the process-wide one (a
        #: disabled no-op unless ``repro.obs.enable()`` was called).
        self.obs = obs if obs is not None else get_observability()
        self.profile = DeviceProfile()
        #: lazily-created KernelCache (avoids importing the compiler
        #: package unless the device actually compiles something).
        self.kernel_cache = None
        #: kernel identity -> (kernel, RaceVerdict) from sanitized
        #: launches; consulted by ``run_compiled(wide=None)`` before
        #: taking the wide path.  Lifecycle matches the kernel cache
        #: (``reset(clear_cache=True)`` drops it).
        self._race_verdicts: dict = {}
        #: kernel *name* -> RaceVerdict adopted from elsewhere (a peer
        #: shard that sanitized the same kernel first); consulted when
        #: no identity-keyed verdict exists, so an adopted ``race_free``
        #: admits the wide path without a local sanitized launch.
        self._adopted_verdicts: Dict[str, object] = {}
        #: (kernel name, RaceVerdict) pairs produced by this device's
        #: own sanitized launches, not yet drained for broadcast.
        self._fresh_verdicts: list = []
        #: KernelSanitizeResult per sanitized launch on this device.
        self.sanitizer_results: list = []
        #: per-surface-label OOB clipped-lane totals observed by this
        #: device's launches (counting mode; see repro.sanitize.oob).
        self.oob_lanes: Dict[str, int] = {}

    # -- memory management -------------------------------------------------

    def buffer(self, data_or_size) -> BufferSurface:
        """Create a linear buffer surface from an array or a byte size."""
        if isinstance(data_or_size, (int, np.integer)):
            surf = BufferSurface.allocate(int(data_or_size))
        else:
            surf = BufferSurface.from_array(np.asarray(data_or_size))
        surf.obs_label = f"buf{len(self.surfaces)}"
        self.surfaces.append(surf)
        return surf

    def image2d(self, data: np.ndarray, bytes_per_pixel: int = 1) -> Image2DSurface:
        surf = Image2DSurface(np.asarray(data), bytes_per_pixel)
        surf.obs_label = f"img{len(self.surfaces)}"
        self.surfaces.append(surf)
        return surf

    def begin_enqueue(self) -> None:
        """Start a new kernel: caches are cold again for line tracking."""
        for surf in self.surfaces:
            surf.reset_line_tracking()

    # -- compilation --------------------------------------------------------

    def compile(self, body: Callable, name: str,
                surfaces: Sequence[Tuple[str, bool]],
                scalar_params: Sequence[str] = (),
                optimize: bool = True):
        """Compile ``body`` through the device's kernel cache.

        Repeated compiles of the same (body, signature) return the cached
        :class:`CompiledKernel`; hits and misses are tallied both in the
        cache's own stats and in :attr:`profile` (and, when observability
        is enabled, in the shared metrics registry).
        """
        if self.kernel_cache is None:
            from repro.compiler.cache import KernelCache
            self.kernel_cache = KernelCache(
                registry=self.obs.registry if self.obs.enabled else None)
        kernel, hit = self.kernel_cache.lookup(
            body, name, surfaces, scalar_params=scalar_params,
            optimize=optimize)
        if hit:
            self.profile.compile_cache_hits += 1
        else:
            self.profile.compile_cache_misses += 1
        return kernel

    # -- kernel execution ---------------------------------------------------

    def _grid_ids(self, grid: Sequence[int]):
        dims = [range(g) for g in grid]
        for tid in itertools.product(*reversed(dims)):
            yield tuple(reversed(tid))

    def run_cm(self, kernel: Callable, grid: Sequence[int],
               args: Tuple = (), name: Optional[str] = None) -> KernelRun:
        """Launch a CM kernel over a 1D/2D/3D grid of hardware threads.

        The kernel body reads its coordinates via ``repro.cm.thread_x()``
        etc.; one invocation = one hardware thread (the CM model).  Each
        thread's trace is folded into the timing totals as it retires, so
        only one trace is live at a time regardless of grid size.
        """
        kname = name or getattr(kernel, "__name__", "cm")
        self.begin_enqueue()
        # Under an active sanitizer session every eager launch runs with
        # a per-kernel race detector attached to the bound surfaces (the
        # eager path is already sequential, so sanitizing adds only the
        # recording cost).
        sess = sanitize_mod.current_session()
        if sess is not None:
            sess.begin_kernel(kname, self.surfaces)
        acc = TimingAccumulator(self.machine)
        bacc = (BreakdownAccumulator(self.machine)
                if self.obs.breakdowns else None)
        thread_ctx: Optional[ThreadContext] = None
        n_threads = 0
        with trace_span("dispatch", kernel=kname, path="cm",
                        grid=tuple(grid)):
            with trace_span("dispatch:cm", kernel=kname, grid=tuple(grid),
                            chunk=0) as tier_span:
                for thread_id in self._grid_ids(grid):
                    if sess is not None:
                        sess.race.begin_thread(thread_id)
                    trace = ThreadTrace(self.machine)
                    if thread_ctx is None:
                        thread_ctx = ThreadContext(trace,
                                                   thread_id=thread_id)
                    else:
                        thread_ctx.reuse(trace, thread_id=thread_id)
                    ctx_mod.activate(thread_ctx)
                    try:
                        kernel(*args)
                    finally:
                        ctx_mod.deactivate()
                    acc.add(trace)
                    if bacc is not None:
                        bacc.add(trace)
                    n_threads += 1
                tier_span.set(threads=n_threads)
        self.profile.threads_run += n_threads
        self.profile.count_launch("cm")
        if n_threads:
            # The eager path streams: exactly one trace is ever live.
            self.profile.note_live_traces(1)
        if sess is not None:
            sess.finish_kernel()
        self._collect_oob(self.surfaces)
        return self._record(acc.finalize(), kname, bacc, path="cm")

    def run_compiled(self, kernel, grid: Sequence[int],
                     surfaces: Sequence[Surface],
                     scalars: Union[Dict[str, int],
                                    Callable[[Tuple[int, ...]],
                                             Dict[str, int]], None] = None,
                     name: Optional[str] = None,
                     chunk_threads: int = 64,
                     collect_timing: bool = True,
                     executor: Optional[TracingExecutor] = None,
                     wide: Optional[bool] = None,
                     jit: Optional[bool] = None,
                     max_live_threads: int = 1024,
                     validate: Optional[str] = None,
                     ) -> Optional[KernelRun]:
        """Launch a :class:`CompiledKernel` over a grid of hardware threads.

        ``surfaces`` bind positionally to the kernel's surface params.
        ``scalars`` supplies the symbolic integer parameters: either one
        dict shared by every thread, or a callable mapping a thread id
        tuple to that thread's dict (how per-thread coordinates are fed).

        Dispatch defaults to the *wide* path (``wide=None``): because a
        compiled program's *static* instruction sequence is identical
        for every thread (divergence is execution masks, not skipped
        instructions), a :class:`~repro.isa.wide.WideExecutor` stacks
        all thread register files and executes each instruction once
        for the whole grid — grouped by PC under divergent control
        flow, chunked so at most ``max_live_threads`` threads
        (GRFs + traces) are live at a time.  Per-thread traces are
        reconstructed from the wide execution, so timing is
        bit-identical to the sequential path.  ``wide=False`` forces
        the sequential per-thread loop (one pooled
        :class:`TracingExecutor`, retiring traces every
        ``chunk_threads``); ``wide=True`` raises if the program is not
        wide-eligible instead of silently falling back.

        The wide path is only bit-identical for *race-free* programs,
        so auto-selection is gated by the sanitizer (``validate``,
        default from :func:`repro.sanitize.default_validate` /
        ``REPRO_SANITIZE``):

        - ``"first"`` — a kernel's first ``wide=None`` launch runs
          sequentially with the race detector and uninitialized-GRF
          tracker attached; the cached
          :class:`~repro.sanitize.race.RaceVerdict` then admits
          (``race_free``) or permanently refuses (conflicts found)
          the wide path for subsequent launches.  Simulated timing is
          identical either way — only wall-clock differs.
        - ``"always"`` — every launch runs sanitized-sequential.
        - ``"off"`` — trust the caller; eligible programs go wide
          unchecked (the pre-sanitizer behaviour).

        An explicit ``wide=True`` bypasses validation (the caller
        asserts race freedom); ``wide=False`` under ``"first"`` stays
        an unsanitized scalar launch so tests pinning scalar-path
        internals see no hooks.

        On top of the wide path sits the **JIT tier** (``jit=None``,
        the default): whenever a launch takes the wide path, the
        program is compiled once to a Python megakernel
        (:mod:`repro.isa.jit`) cached on the kernel object, and each
        chunk executes with zero per-instruction dispatch.  Results
        and simulated timing are bit-identical to both other tiers —
        the JIT rides the same race-verdict gating as the wide path.
        ``jit=False`` keeps the wide interpreter; ``jit=True`` forces
        the JIT tier (implies the wide path, bypasses validation like
        ``wide=True``, and raises if the program cannot be compiled).

        With ``collect_timing=False`` the launch is functional only (no
        traces, no :class:`KernelRun`) and returns ``None``.

        ``executor`` optionally supplies an already-pooled
        :class:`~repro.isa.wide.WideTracingExecutor` (or scalar
        :class:`TracingExecutor`) to reuse *across* launches: the
        serving layer's dynamic batcher passes one executor for a whole
        batch of same-program requests so the memoized
        operand/instruction plans are shared between requests, not just
        between threads.  The executor is rebound to this launch's
        surface table; a pooled wide executor falls back to a fresh
        scalar path when the program is ineligible.
        """
        from repro.compiler.finalizer import SCRATCH_BTI
        from repro.isa.wide import WideTracingExecutor, ineligible_reason

        kname = name or kernel.name
        self.begin_enqueue()
        table = {i: s for i, s in enumerate(surfaces)}

        # Pre-resolve scalar parameter GRF bases once for the whole grid.
        scalar_bases = []
        for pname, vreg in kernel.visa.params.items():
            base = kernel.allocation.grf_offset.get(vreg.id)
            if base is not None:  # params optimized away have no slot
                scalar_bases.append((pname, base))

        per_thread = callable(scalars)
        fixed = {} if scalars is None or per_thread else dict(scalars)

        ineligible = ineligible_reason(kernel.program)
        eligible = ineligible is None
        if validate is not None:
            mode = validate
        elif sanitize_mod.current_session() is not None:
            mode = "always"  # inside sanitize.session(): check everything
        else:
            mode = sanitize_mod.default_validate()
        if mode not in sanitize_mod.VALIDATE_MODES:
            raise ValueError(
                f"validate must be one of {sanitize_mod.VALIDATE_MODES}, "
                f"got {mode!r}")
        cached = self._race_verdicts.get(id(kernel))
        verdict = cached[1] if (cached is not None and cached[0] is kernel) \
            else None
        adopted = False
        if verdict is None:
            # fall back to a verdict adopted by kernel name (broadcast
            # from a peer shard that already sanitized this kernel).
            verdict = self._adopted_verdicts.get(kname)
            adopted = verdict is not None
        #: may the wide path be taken without a sanitized launch first?
        certified = mode == "off" or (verdict is not None
                                      and verdict.race_free)
        if jit is True and wide is False:
            raise ValueError(
                f"{kname}: jit=True requires the wide path (wide=False "
                f"was also requested)")
        #: explicit vector-path requests bypass validation: the caller
        #: asserts race freedom (jit=True implies the wide path).
        forced = wide is True or jit is True
        sanitize_now = not forced and (
            mode == "always"
            or (mode == "first" and wide is None and eligible
                and verdict is None))

        # The gate decision, tallied per launch and emitted as an
        # (instant) ``sanitize_gate`` span so a request's trace shows
        # *why* its launch took the tier it did.
        if forced:
            gate = "bypassed"          # caller asserted race freedom
        elif sanitize_now:
            gate = "sanitized"         # this launch runs under checkers
        elif wide is False:
            gate = "forced_scalar"     # caller pinned the scalar path
        elif not eligible:
            gate = "ineligible"        # program cannot vectorize
        elif mode == "off":
            gate = "trusted"           # validation disabled
        elif certified:
            gate = "admitted"          # race-free verdict on file
        elif verdict is not None:
            gate = "refused"           # racy verdict: wide denied
        else:
            gate = "unverified"
        self.profile.count_gate(gate)
        gate_attrs = {"kernel": kname, "mode": mode, "outcome": gate}
        if gate == "ineligible":
            # distinguish *why* the program cannot vectorize: an
            # unsupported message kind vs. malformed control flow
            # (well-formed simd_if/simd_while programs are eligible).
            gate_attrs["reason"] = ineligible
        if verdict is not None:
            gate_attrs["race_free"] = verdict.race_free
        if adopted:
            gate_attrs["adopted"] = True
        with trace_span("sanitize_gate", **gate_attrs):
            pass

        if executor is not None and not collect_timing:
            raise ValueError("pooled executors imply collect_timing")
        pooled_wide = isinstance(executor, WideTracingExecutor)
        if not sanitize_now:
            if pooled_wide:
                if eligible and wide is not False and (certified
                                                      or jit is True):
                    return self._run_compiled_wide(
                        kernel, grid, table, scalar_bases, scalars,
                        per_thread, fixed, kname, collect_timing,
                        executor, max_live_threads, jit=jit)
                if jit is True:
                    raise ValueError(
                        f"{kname}: program is not wide-eligible "
                        f"(jit=True was requested)")
                # ineligible or uncertified program: fresh scalar path
                executor = None
            elif (wide is True or jit is True
                  or (wide is None and eligible and certified)):
                if not eligible:
                    which = "wide" if wide is True else "jit"
                    raise ValueError(
                        f"{kname}: program is not wide-eligible "
                        f"({which}=True was requested)")
                return self._run_compiled_wide(
                    kernel, grid, table, scalar_bases, scalars, per_thread,
                    fixed, kname, collect_timing, None, max_live_threads,
                    jit=jit)
        elif pooled_wide:
            executor = None  # wide pool is unusable on a sanitized launch

        san = oob_base = None
        if sanitize_now:
            race = sanitize_mod.RaceDetector()
            race.attach(table.values())
            san = sanitize_mod.ExecSanitizer(
                race=race, uninit=sanitize_mod.UninitTracker())
            oob_base = [(s, s.oob_clipped_lanes) for s in table.values()]

        scratch = None
        if kernel.allocation.scratch_bytes:
            scratch = BufferSurface.allocate(kernel.allocation.scratch_bytes)
            scratch.obs_label = "scratch"
            table[SCRATCH_BTI] = scratch

        # Functional-only launches skip the tracing subclass entirely.
        if executor is not None:
            executor.rebind(table)
            ex = executor
        else:
            ex = TracingExecutor(table) if collect_timing else \
                FunctionalExecutor(table)
        if san is not None:
            ex.san = san
        acc = TimingAccumulator(self.machine) if collect_timing else None
        bacc = (BreakdownAccumulator(self.machine)
                if collect_timing and self.obs.breakdowns else None)
        live: list[ThreadTrace] = []
        live_peak = 0
        n_threads = 0
        with trace_span("dispatch", kernel=kname, path="compiled",
                        grid=tuple(grid)), \
                trace_span("dispatch:sequential", kernel=kname,
                           grid=tuple(grid), chunk=0) as tier_span:
            for thread_id in self._grid_ids(grid):
                ex.reset()
                if san is not None:
                    san.begin_thread(thread_id)
                if scratch is not None:
                    scratch.bytes.fill(0)
                if collect_timing:
                    trace = ThreadTrace(self.machine)
                    ex.begin_thread(trace)
                values = scalars(thread_id) if per_thread else fixed
                for pname, base in scalar_bases:
                    value = values.get(pname)
                    if value is not None:
                        ex.grf.write_bytes(
                            base, np.asarray([value], dtype=np.int32))
                        if san is not None:
                            san.mark_grf_valid(base, 4)
                ex.run(kernel.program)
                n_threads += 1
                if collect_timing:
                    trace.note_grf(kernel.allocation.max_grf_bytes)
                    live.append(trace)
                    if len(live) > live_peak:
                        live_peak = len(live)
                    if len(live) >= chunk_threads:
                        self._retire_chunk(acc, live, bacc, kernel=kname)
                elif n_threads % max(chunk_threads, 1) == 0:
                    self.profile.chunks_dispatched += 1
            if live:
                self._retire_chunk(acc, live, bacc, kernel=kname)
            tier_span.set(threads=n_threads)
        self.profile.threads_run += n_threads
        self.profile.note_live_traces(live_peak)
        self.profile.count_launch("sequential")

        if san is not None:
            ex.san = None
            self._finish_sanitized(kernel, kname, san, oob_base)
        self._collect_oob(table.values())

        if not collect_timing:
            return None
        return self._record(acc.finalize(), kname, bacc, path="sequential")

    def _finish_sanitized(self, kernel, kname: str, san, oob_base) -> None:
        """Fold a sanitized-sequential launch into verdicts and reports."""
        verdict = san.race.finish()
        self._race_verdicts[id(kernel)] = (kernel, verdict)
        self._fresh_verdicts.append((kname, verdict))
        oob: Dict[str, int] = {}
        for surf, base in oob_base:
            delta = int(surf.oob_clipped_lanes) - base
            if delta:
                label = getattr(surf, "obs_label", "surface")
                oob[label] = oob.get(label, 0) + delta
        result = sanitize_mod.KernelSanitizeResult(
            kernel=kname, verdict=verdict,
            uninit=list(san.uninit.findings),
            uninit_total=san.uninit.total, oob_lanes=oob)
        self.sanitizer_results.append(result)
        if self.obs.enabled:
            reg = self.obs.registry
            if not verdict.race_free:
                reg.counter("sanitize_race_conflicts", kernel=kname).inc(
                    len(verdict.conflicts))
            if result.uninit_total:
                reg.counter("sanitize_uninit_reads", kernel=kname).inc(
                    result.uninit_total)
        sess = sanitize_mod.current_session()
        if sess is not None:
            sess.report.add(result)

    def adopt_race_verdict(self, kname: str, verdict) -> None:
        """Adopt a :class:`~repro.sanitize.race.RaceVerdict` by name.

        Verdicts travel between devices by kernel name (a shard cluster
        broadcasts each worker's fresh verdicts so a kernel sanitized
        once is wide-admitted everywhere).  A locally produced verdict
        (identity-keyed) always wins over an adopted one; among adopted
        verdicts a racy one is never overwritten by a race-free one —
        refusal is sticky.
        """
        prior = self._adopted_verdicts.get(kname)
        if prior is not None and not prior.race_free:
            return
        self._adopted_verdicts[kname] = verdict

    def drain_race_verdicts(self) -> list:
        """Return and clear (name, verdict) pairs from local sanitized
        launches since the last drain, for broadcast to peer devices.

        Pop-based so a serving thread can drain concurrently with the
        device thread appending (list.pop(0)/append are atomic).
        """
        fresh = []
        while self._fresh_verdicts:
            try:
                fresh.append(self._fresh_verdicts.pop(0))
            except IndexError:  # pragma: no cover - concurrent drain
                break
        return fresh

    def _collect_oob(self, surfs) -> None:
        """Fold per-surface OOB clip deltas into device totals + metrics."""
        for surf in surfs:
            total = int(getattr(surf, "oob_clipped_lanes", 0))
            seen = getattr(surf, "_oob_reported", 0)
            delta = total - seen
            if delta <= 0:
                continue
            surf._oob_reported = total
            label = getattr(surf, "obs_label", "surface")
            self.oob_lanes[label] = self.oob_lanes.get(label, 0) + delta
            if self.obs.enabled:
                self.obs.registry.counter(
                    "sanitize_oob_lanes", surface=label).inc(delta)

    def _jit_for(self, kernel, kname: str):
        """Resolve the kernel's cached JIT megakernel (compiling once).

        Returns ``None`` when the program is not JIT-eligible; updates
        the device profile / metrics with compile-vs-hit accounting.
        """
        from repro.isa.jit import get_jit

        t0 = time.perf_counter()
        jitk, cached = get_jit(kernel)
        if jitk is None:
            return None
        if cached:
            self.profile.jit_cache_hits += 1
            if self.obs.enabled:
                self.obs.registry.counter(
                    "jit_cache_hits", kernel=kname).inc()
        else:
            dt = time.perf_counter() - t0
            self.profile.jit_compiles += 1
            if self.obs.enabled:
                reg = self.obs.registry
                reg.counter("jit_compiles", kernel=kname).inc()
                reg.counter("jit_compile_seconds", kernel=kname).inc(dt)
        return jitk

    def _run_compiled_wide(self, kernel, grid, table, scalar_bases,
                           scalars, per_thread, fixed, kname: str,
                           collect_timing: bool, executor,
                           max_live_threads: int,
                           jit: Optional[bool] = None) -> Optional[KernelRun]:
        """Grid-vectorized dispatch: each instruction runs once for a
        whole chunk of threads (see :mod:`repro.isa.wide`)."""
        from repro.compiler.finalizer import SCRATCH_BTI
        from repro.isa.wide import (
            WideExecutor, WideScratch, WideTracingExecutor,
        )

        thread_ids = list(self._grid_ids(grid))
        total = len(thread_ids)
        max_live = max(1, max_live_threads)

        # Scalar parameters become per-thread int32 columns, seeded into
        # the stacked GRF in one strided write per parameter per chunk.
        cols: Dict[str, np.ndarray] = {}
        if scalar_bases:
            if per_thread:
                values = [scalars(tid) for tid in thread_ids]
                for pname, _base in scalar_bases:
                    cols[pname] = np.asarray(
                        [0 if v.get(pname) is None else v.get(pname)
                         for v in values], dtype=np.int32)
            else:
                for pname, _base in scalar_bases:
                    v = fixed.get(pname)
                    cols[pname] = np.full(
                        total, 0 if v is None else int(v), dtype=np.int32)

        scratch = None
        if kernel.allocation.scratch_bytes:
            scratch = WideScratch(0, kernel.allocation.scratch_bytes)
            table[SCRATCH_BTI] = scratch

        jitk = self._jit_for(kernel, kname) if jit is not False else None
        if jit is True and jitk is None:
            raise ValueError(
                f"{kname}: program is not JIT-eligible "
                f"(jit=True was requested)")
        if executor is not None:
            executor.rebind(table)
            ex = executor
            if jitk is not None:
                if hasattr(ex, "bind_jit"):
                    ex.bind_jit(jitk)
                elif jit is True:
                    raise ValueError(
                        f"{kname}: pooled executor {type(ex).__name__} "
                        f"cannot run the JIT tier (jit=True was requested)")
                else:  # plain pooled wide executor: stay on the wide path
                    jitk = None
        else:
            if jitk is not None:
                from repro.isa.jit import JitExecutor, JitTracingExecutor
                ex = JitTracingExecutor(table) if collect_timing else \
                    JitExecutor(table)
                ex.bind_jit(jitk)
            else:
                ex = WideTracingExecutor(table) if collect_timing else \
                    WideExecutor(table)
        ex.bind_plans(kernel.plan_table())
        path = "jit" if jitk is not None else "wide"
        acc = TimingAccumulator(self.machine) if collect_timing else None
        bacc = (BreakdownAccumulator(self.machine)
                if collect_timing and self.obs.breakdowns else None)
        live_peak = 0
        with trace_span("dispatch", kernel=kname, path=path,
                        grid=tuple(grid), threads=total):
            for chunk_idx, start in enumerate(range(0, total, max_live)):
                count = min(max_live, total - start)
                ex.reset(count)
                if scratch is not None:
                    scratch.resize(count)
                if collect_timing:
                    ex.begin_launch(self.machine)
                for pname, base in scalar_bases:
                    ex.seed_scalar(base, cols[pname][start:start + count])
                with trace_span(f"dispatch:{path}", kernel=kname,
                                grid=tuple(grid), chunk=chunk_idx,
                                threads=count):
                    ex.run(kernel.program)
                if collect_timing:
                    if count > live_peak:
                        live_peak = count
                    if jitk is not None and bacc is None:
                        # JIT chunks fold timing without fanning the
                        # template out into per-thread traces (the
                        # breakdown profiler still needs real traces).
                        with trace_span("chunk", kernel=kname,
                                        threads=count):
                            self.profile.chunks_dispatched += 1
                            ex.fold_chunk(
                                acc, kernel.allocation.max_grf_bytes)
                    else:
                        traces = ex.drain_traces()
                        for tr in traces:
                            tr.note_grf(kernel.allocation.max_grf_bytes)
                        self._retire_chunk(acc, traces, bacc,
                                           kernel=kname)
                else:
                    self.profile.chunks_dispatched += 1
        self.profile.threads_run += total
        if live_peak:
            self.profile.note_live_traces(live_peak)
        self.profile.count_launch(path)
        self._collect_oob(table.values())

        if not collect_timing:
            return None
        return self._record(acc.finalize(), kname, bacc, path=path)

    def _retire_chunk(self, acc: TimingAccumulator,
                      live: list, bacc=None,
                      kernel: Optional[str] = None) -> None:
        with trace_span("chunk", kernel=kernel, threads=len(live)):
            self.profile.chunks_dispatched += 1
            acc.extend(live)
            if bacc is not None:
                bacc.extend(live)
            live.clear()

    def submit(self, traces: Sequence[ThreadTrace], name: str) -> KernelRun:
        """Record a completed enqueue built from externally-run traces."""
        bacc = None
        if self.obs.breakdowns:
            bacc = BreakdownAccumulator(self.machine)
            bacc.extend(traces)
        self.profile.count_launch("external")
        return self._record(time_kernel(traces, self.machine), name, bacc,
                            path="external")

    def _record(self, timing: KernelTiming, name: str,
                bacc: Optional[BreakdownAccumulator] = None,
                path: str = "sequential") -> KernelRun:
        overhead = self.machine.launch_overhead_us
        with trace_span("fold", kernel=name, path=path):
            breakdown = None
            if bacc is not None:
                breakdown = bacc.finalize(name, timing,
                                          launch_overhead_us=overhead)
            run = KernelRun(name=name, timing=timing,
                            launch_overhead_us=overhead,
                            breakdown=breakdown, path=path)
        self.runs.append(run)
        if self.obs.enabled:
            reg = self.obs.registry
            reg.counter("kernel_launches", kernel=name).inc()
            reg.counter("kernel_time_us", kernel=name).inc(timing.time_us)
            reg.counter("kernel_threads",
                        kernel=name).inc(timing.num_threads)
            reg.counter("kernel_dram_bytes",
                        kernel=name).inc(timing.dram_bytes)
            reg.counter("kernel_barriers", kernel=name).inc(timing.barriers)
        return run

    def new_trace(self) -> ThreadTrace:
        return ThreadTrace(self.machine)

    # -- statistics -------------------------------------------------------

    @property
    def total_time_us(self) -> float:
        """Total queue time: kernels plus launch overhead.

        The first enqueue pays the full driver overhead; subsequent
        back-to-back enqueues pipeline behind GPU execution and pay only
        the dispatch gap.
        """
        if not self.runs:
            return 0.0
        overhead = self.machine.launch_overhead_us + \
            (len(self.runs) - 1) * self.machine.pipelined_launch_us
        return self.kernel_time_us + overhead

    @property
    def kernel_time_us(self) -> float:
        return sum(r.kernel_time_us for r in self.runs)

    @property
    def launches(self) -> int:
        return len(self.runs)

    def reset(self, clear_cache: bool = False) -> None:
        """Return the device to a just-constructed state for reuse.

        Clears the recorded runs (the timing accumulator behind
        :attr:`total_time_us`), releases the bound surfaces, and zeroes
        every :class:`DeviceProfile` counter, so pooled devices can be
        reused across load-generator runs without leaking state.  The
        kernel cache survives by default — recompiling is exactly what a
        pooled device wants to avoid — and its hit/miss stats are reset;
        ``clear_cache=True`` also drops the cached programs.
        """
        self.runs.clear()
        self.surfaces.clear()
        self.profile = DeviceProfile()
        self.sanitizer_results.clear()
        self.oob_lanes.clear()
        if self.kernel_cache is not None:
            if clear_cache:
                self.kernel_cache.clear()
            self.kernel_cache.stats = type(self.kernel_cache.stats)()
        if clear_cache:
            # sanitizer verdicts are keyed by kernel identity, exactly
            # like cached programs: drop them together (adopted,
            # name-keyed verdicts go too — a fresh program under an old
            # name must not inherit a stale admission).
            self._race_verdicts.clear()
            self._adopted_verdicts.clear()
            self._fresh_verdicts.clear()

    def report(self) -> str:
        """Human-readable per-run breakdown (for examples and debugging)."""
        lines = [f"device: {self.machine.name}"]
        for r in self.runs:
            tm = r.timing
            lines.append(
                f"  {r.name}: {r.total_time_us:9.1f} us "
                f"(kernel {tm.time_us:9.1f}, bound by {tm.bound_by}, "
                f"{tm.num_threads} threads, {tm.total_instructions} inst, "
                f"{tm.dram_bytes} dram bytes)")
        lines.append(f"  total: {self.total_time_us:.1f} us over "
                     f"{self.launches} launches")
        p = self.profile
        if p.threads_run:
            lines.append(
                f"  dispatch: {p.threads_run} threads, "
                f"{p.chunks_dispatched} chunks, "
                f"peak {p.peak_live_traces} live traces")
        if p.tier_launches:
            tiers = ", ".join(f"{tier}={n}"
                              for tier, n in p.tier_launches.items())
            lines.append(f"  tiers: {tiers}")
        if p.gate_outcomes:
            gates = ", ".join(f"{outcome}={n}"
                              for outcome, n in p.gate_outcomes.items())
            lines.append(f"  wide gate: {gates}")
        if self.kernel_cache is not None:
            st = self.kernel_cache.stats
            lines.append(
                f"  kernel cache: {st.hits} hits, {st.misses} misses "
                f"({st.hit_rate:.0%} hit rate), {st.evictions} evictions, "
                f"{len(self.kernel_cache)} entries")
        if self.oob_lanes:
            oob = ", ".join(f"{k}={v}"
                            for k, v in sorted(self.oob_lanes.items()))
            lines.append(f"  oob clipped lanes: {oob}")
        if self.sanitizer_results:
            clean = sum(1 for r in self.sanitizer_results if r.clean)
            lines.append(
                f"  sanitizer: {len(self.sanitizer_results)} sanitized "
                f"launch(es), {clean} clean")
            for r in self.sanitizer_results:
                if not r.clean:
                    lines.append(f"    {r.summary()}")
        return "\n".join(lines)
