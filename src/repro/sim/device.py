"""The simulated GPU device and its runtime queue.

Host code creates a :class:`Device`, wraps numpy arrays in surfaces, and
enqueues kernels.  Each enqueue runs every hardware thread functionally,
folds the per-thread traces into a timing breakdown as the threads
retire, and records a :class:`KernelRun`.  Total time accumulates launch
overhead per enqueue — this is the effect that penalizes the OpenCL
bitonic sort's hundreds of kernel launches in Figure 5.

Two dispatch paths exist:

- :meth:`Device.run_cm` runs an *eager* CM kernel (a Python callable
  using :mod:`repro.cm`) one hardware thread at a time, streaming each
  retired trace into a :class:`~repro.sim.timing.TimingAccumulator` so
  memory stays O(1) in the grid size.
- :meth:`Device.run_compiled` runs a
  :class:`~repro.compiler.driver.CompiledKernel` over a grid using one
  pooled :class:`~repro.sim.batch.TracingExecutor` whose operand plans
  are shared by every thread (a compiled program is identical across
  threads).  Combined with :meth:`Device.compile`'s kernel cache this is
  the fast path for repeated launches.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.isa.executor import FunctionalExecutor
from repro.memory.surfaces import BufferSurface, Image2DSurface, Surface
from repro.sim import context as ctx_mod
from repro.sim.batch import TracingExecutor
from repro.sim.context import ThreadContext
from repro.sim.machine import GEN11_ICL, MachineConfig
from repro.sim.timing import KernelTiming, TimingAccumulator, time_kernel
from repro.sim.trace import ThreadTrace


@dataclass
class KernelRun:
    """One completed kernel enqueue."""

    name: str
    timing: KernelTiming
    launch_overhead_us: float

    @property
    def kernel_time_us(self) -> float:
        return self.timing.time_us

    @property
    def total_time_us(self) -> float:
        return self.timing.time_us + self.launch_overhead_us


@dataclass
class DeviceProfile:
    """Counters describing how the device dispatched work."""

    threads_run: int = 0
    chunks_dispatched: int = 0
    peak_live_traces: int = 0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0


class Device:
    """A simulated Gen GPU plus its in-order execution queue."""

    def __init__(self, machine: MachineConfig = GEN11_ICL) -> None:
        self.machine = machine
        self.runs: list[KernelRun] = []
        self.surfaces: list = []
        self.profile = DeviceProfile()
        #: lazily-created KernelCache (avoids importing the compiler
        #: package unless the device actually compiles something).
        self.kernel_cache = None

    # -- memory management -------------------------------------------------

    def buffer(self, data_or_size) -> BufferSurface:
        """Create a linear buffer surface from an array or a byte size."""
        if isinstance(data_or_size, (int, np.integer)):
            surf = BufferSurface.allocate(int(data_or_size))
        else:
            surf = BufferSurface.from_array(np.asarray(data_or_size))
        self.surfaces.append(surf)
        return surf

    def image2d(self, data: np.ndarray, bytes_per_pixel: int = 1) -> Image2DSurface:
        surf = Image2DSurface(np.asarray(data), bytes_per_pixel)
        self.surfaces.append(surf)
        return surf

    def begin_enqueue(self) -> None:
        """Start a new kernel: caches are cold again for line tracking."""
        for surf in self.surfaces:
            surf.reset_line_tracking()

    # -- compilation --------------------------------------------------------

    def compile(self, body: Callable, name: str,
                surfaces: Sequence[Tuple[str, bool]],
                scalar_params: Sequence[str] = (),
                optimize: bool = True):
        """Compile ``body`` through the device's kernel cache.

        Repeated compiles of the same (body, signature) return the cached
        :class:`CompiledKernel`; hits and misses are tallied both in the
        cache's own stats and in :attr:`profile`.
        """
        if self.kernel_cache is None:
            from repro.compiler.cache import KernelCache
            self.kernel_cache = KernelCache()
        kernel, hit = self.kernel_cache.lookup(
            body, name, surfaces, scalar_params=scalar_params,
            optimize=optimize)
        if hit:
            self.profile.compile_cache_hits += 1
        else:
            self.profile.compile_cache_misses += 1
        return kernel

    # -- kernel execution ---------------------------------------------------

    def _grid_ids(self, grid: Sequence[int]):
        dims = [range(g) for g in grid]
        for tid in itertools.product(*reversed(dims)):
            yield tuple(reversed(tid))

    def run_cm(self, kernel: Callable, grid: Sequence[int],
               args: Tuple = (), name: Optional[str] = None) -> KernelRun:
        """Launch a CM kernel over a 1D/2D/3D grid of hardware threads.

        The kernel body reads its coordinates via ``repro.cm.thread_x()``
        etc.; one invocation = one hardware thread (the CM model).  Each
        thread's trace is folded into the timing totals as it retires, so
        only one trace is live at a time regardless of grid size.
        """
        self.begin_enqueue()
        acc = TimingAccumulator(self.machine)
        thread_ctx: Optional[ThreadContext] = None
        for thread_id in self._grid_ids(grid):
            trace = ThreadTrace(self.machine)
            if thread_ctx is None:
                thread_ctx = ThreadContext(trace, thread_id=thread_id)
            else:
                thread_ctx.reuse(trace, thread_id=thread_id)
            ctx_mod.activate(thread_ctx)
            try:
                kernel(*args)
            finally:
                ctx_mod.deactivate()
            acc.add(trace)
            self.profile.threads_run += 1
        self.profile.peak_live_traces = max(self.profile.peak_live_traces, 1)
        return self._record(acc.finalize(),
                            name or getattr(kernel, "__name__", "cm"))

    def run_compiled(self, kernel, grid: Sequence[int],
                     surfaces: Sequence[Surface],
                     scalars: Union[Dict[str, int],
                                    Callable[[Tuple[int, ...]],
                                             Dict[str, int]], None] = None,
                     name: Optional[str] = None,
                     chunk_threads: int = 64,
                     collect_timing: bool = True) -> Optional[KernelRun]:
        """Launch a :class:`CompiledKernel` over a grid of hardware threads.

        ``surfaces`` bind positionally to the kernel's surface params.
        ``scalars`` supplies the symbolic integer parameters: either one
        dict shared by every thread, or a callable mapping a thread id
        tuple to that thread's dict (how per-thread coordinates are fed).

        One :class:`TracingExecutor` is pooled across the whole grid —
        its GRF is zeroed between threads while the memoized operand
        plans (identical for every thread of a fixed program) are kept.
        The grid is dispatched in chunks of ``chunk_threads``; a chunk's
        traces retire into the accumulator together, bounding live-trace
        memory at the chunk size.

        With ``collect_timing=False`` the launch is functional only (no
        traces, no :class:`KernelRun`) and returns ``None``.
        """
        from repro.compiler.finalizer import SCRATCH_BTI

        self.begin_enqueue()
        table = {i: s for i, s in enumerate(surfaces)}
        scratch = None
        if kernel.allocation.scratch_bytes:
            scratch = BufferSurface.allocate(kernel.allocation.scratch_bytes)
            table[SCRATCH_BTI] = scratch

        # Pre-resolve scalar parameter GRF bases once for the whole grid.
        scalar_bases = []
        for pname, vreg in kernel.visa.params.items():
            base = kernel.allocation.grf_offset.get(vreg.id)
            if base is not None:  # params optimized away have no slot
                scalar_bases.append((pname, base))

        per_thread = callable(scalars)
        fixed = {} if scalars is None or per_thread else dict(scalars)

        # Functional-only launches skip the tracing subclass entirely.
        ex = TracingExecutor(table) if collect_timing else \
            FunctionalExecutor(table)
        acc = TimingAccumulator(self.machine) if collect_timing else None
        live: list[ThreadTrace] = []
        n_threads = 0
        for thread_id in self._grid_ids(grid):
            ex.reset()
            if scratch is not None:
                scratch.bytes.fill(0)
            if collect_timing:
                trace = ThreadTrace(self.machine)
                ex.begin_thread(trace)
            values = scalars(thread_id) if per_thread else fixed
            for pname, base in scalar_bases:
                value = values.get(pname)
                if value is not None:
                    ex.grf.write_bytes(
                        base, np.asarray([value], dtype=np.int32))
            ex.run(kernel.program)
            n_threads += 1
            if collect_timing:
                trace.note_grf(kernel.allocation.max_grf_bytes)
                live.append(trace)
                if len(live) >= chunk_threads:
                    self._retire_chunk(acc, live)
            elif n_threads % max(chunk_threads, 1) == 0:
                self.profile.chunks_dispatched += 1
        if live:
            self._retire_chunk(acc, live)
        self.profile.threads_run += n_threads

        if not collect_timing:
            return None
        return self._record(acc.finalize(), name or kernel.name)

    def _retire_chunk(self, acc: TimingAccumulator,
                      live: list) -> None:
        self.profile.peak_live_traces = max(self.profile.peak_live_traces,
                                            len(live))
        self.profile.chunks_dispatched += 1
        acc.extend(live)
        live.clear()

    def submit(self, traces: Sequence[ThreadTrace], name: str) -> KernelRun:
        """Record a completed enqueue built from externally-run traces."""
        return self._record(time_kernel(traces, self.machine), name)

    def _record(self, timing: KernelTiming, name: str) -> KernelRun:
        run = KernelRun(name=name, timing=timing,
                        launch_overhead_us=self.machine.launch_overhead_us)
        self.runs.append(run)
        return run

    def new_trace(self) -> ThreadTrace:
        return ThreadTrace(self.machine)

    # -- statistics -------------------------------------------------------

    @property
    def total_time_us(self) -> float:
        """Total queue time: kernels plus launch overhead.

        The first enqueue pays the full driver overhead; subsequent
        back-to-back enqueues pipeline behind GPU execution and pay only
        the dispatch gap.
        """
        if not self.runs:
            return 0.0
        overhead = self.machine.launch_overhead_us + \
            (len(self.runs) - 1) * self.machine.pipelined_launch_us
        return self.kernel_time_us + overhead

    @property
    def kernel_time_us(self) -> float:
        return sum(r.kernel_time_us for r in self.runs)

    @property
    def launches(self) -> int:
        return len(self.runs)

    def reset(self) -> None:
        self.runs.clear()
        self.profile = DeviceProfile()

    def report(self) -> str:
        """Human-readable per-run breakdown (for examples and debugging)."""
        lines = [f"device: {self.machine.name}"]
        for r in self.runs:
            tm = r.timing
            lines.append(
                f"  {r.name}: {r.total_time_us:9.1f} us "
                f"(kernel {tm.time_us:9.1f}, bound by {tm.bound_by}, "
                f"{tm.num_threads} threads, {tm.total_instructions} inst, "
                f"{tm.dram_bytes} dram bytes)")
        lines.append(f"  total: {self.total_time_us:.1f} us over "
                     f"{self.launches} launches")
        p = self.profile
        if p.threads_run:
            lines.append(
                f"  dispatch: {p.threads_run} threads, "
                f"{p.chunks_dispatched} chunks, "
                f"peak {p.peak_live_traces} live traces")
        if self.kernel_cache is not None:
            st = self.kernel_cache.stats
            lines.append(
                f"  kernel cache: {st.hits} hits, {st.misses} misses, "
                f"{st.evictions} evictions, {len(self.kernel_cache)} entries")
        return "\n".join(lines)
