"""GPU simulator: machine models, thread traces, timing, device runtime.

The paper measures wall-clock time on an IceLake Gen11 GPU.  Here,
kernels execute functionally (numpy) while recording per-hardware-thread
instruction/memory *traces*; an analytic timing model then converts the
traces into cycles using a machine description.  See DESIGN.md for the
cost-model equations and the substitution rationale.
"""

from repro.sim.machine import MachineConfig, GEN11_ICL, GEN9_SKL, GEN12_TGL
from repro.sim.trace import ThreadTrace, MemKind
from repro.sim.timing import KernelTiming, TimingAccumulator, time_kernel
from repro.sim.batch import TracingExecutor
from repro.sim.device import Device, DeviceProfile, KernelRun
from repro.sim.event_sim import EventTiming, simulate as event_simulate
from repro.sim import context

__all__ = [
    "MachineConfig", "GEN11_ICL", "GEN9_SKL", "GEN12_TGL",
    "ThreadTrace", "MemKind",
    "KernelTiming", "TimingAccumulator", "time_kernel",
    "EventTiming", "event_simulate",
    "Device", "DeviceProfile", "KernelRun", "TracingExecutor",
    "context",
]
