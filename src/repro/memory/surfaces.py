"""Surfaces: the memory objects kernels access through binding-table indices.

A CM or OpenCL kernel argument of type ``SurfaceIndex`` is a handle to one
of these objects; host code creates surfaces from numpy arrays and binds
them to kernels (mirroring the runtime API calls described in Section
IV-B of the paper).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.dtypes import DType
from repro.memory.traffic import spanned_lines


class SurfaceIndex(int):
    """A binding-table index.  Behaves like an int; exists for API clarity."""

    __slots__ = ()


def apply_atomic(store: np.ndarray, op: str, offsets: np.ndarray,
                 operands: Optional[np.ndarray], elem: DType,
                 mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Apply a Gen atomic op lane-by-lane against ``store`` (a byte array).

    Lanes execute in lane order, which models the hardware's serialization
    of same-address atomics within one message.  Returns the old value per
    lane (inactive lanes return 0).
    """
    n = len(offsets)
    old = np.zeros(n, dtype=elem.np_dtype)
    view = store.view(elem.np_dtype)
    size = elem.size
    for lane in range(n):
        if mask is not None and not mask[lane]:
            continue
        byte_off = int(offsets[lane])
        if byte_off % size:
            raise ValueError(f"misaligned atomic at byte offset {byte_off}")
        idx = byte_off // size
        cur = view[idx]
        old[lane] = cur
        src = operands[lane] if operands is not None else None
        view[idx] = _atomic_result(op, cur, src, elem)
    return old


def _atomic_result(op: str, cur, src, elem: DType):
    if op == "inc":
        return cur + 1
    if op == "dec":
        return cur - 1
    if op == "add":
        return cur + src
    if op == "sub":
        return cur - src
    if op == "min":
        return min(cur, src)
    if op == "max":
        return max(cur, src)
    if op == "and":
        return cur & src
    if op == "or":
        return cur | src
    if op == "xor":
        return cur ^ src
    if op == "xchg":
        return src
    if op == "cmpxchg":
        # src is a pair packed as (compare, new); we receive new in src and
        # compare via the second operand array handled by the caller.
        raise ValueError("cmpxchg must go through Surface.atomic_cmpxchg")
    raise ValueError(f"unknown atomic op {op!r}")


#: Cache line granularity for DRAM-traffic tracking.
LINE = 64

#: Strict OOB mode: clamped/dropped out-of-bounds accesses raise
#: :class:`OOBError` instead of silently counting.  Toggled through
#: ``repro.sanitize.oob`` (the flag lives here so surfaces never import
#: the sanitizer package).
STRICT_OOB = False

#: Per-surface cap on retained OOB diagnostic events (counters keep
#: incrementing past it).
_MAX_OOB_EVENTS = 16


class OOBError(IndexError):
    """A clamped/dropped out-of-bounds access under strict OOB mode."""


class Surface:
    """Base class: flat byte storage + linear/scattered/atomic access.

    Each surface tracks which cache lines have been touched since the last
    :meth:`reset_line_tracking`.  The first touch of a line is *compulsory*
    DRAM traffic; re-touches hit in L3.  The timing model charges the two
    against separate bandwidth bounds.
    """

    def __init__(self, data: np.ndarray) -> None:
        arr = np.ascontiguousarray(data)
        self._host = arr
        self.bytes = arr.view(np.uint8).ravel()
        #: One bool per cache line; True once the line has been touched.
        #: A dense mask (1/64th of the surface) beats a set here because
        #: the wide dispatch path marks whole line *vectors* per step.
        self._touched = np.zeros(self.bytes.size // LINE + 1, dtype=bool)
        #: observability label; the device renames this to ``buf<i>`` /
        #: ``img<i>`` at bind time so breakdowns group traffic per surface.
        self.obs_label = (type(self).__name__.replace("Surface", "").lower()
                          or "surface")
        #: attached ``repro.sanitize`` race recorder; every access method
        #: forwards read/write/atomic byte sets here when one is set.
        self._san_rec = None
        #: lanes clipped or dropped by the edge-clamping access paths
        #: (media blocks, sampler pixels) since creation / last reset.
        self.oob_clipped_lanes = 0
        #: bounded list of (kind, lanes, detail) diagnostic tuples.
        self.oob_events: list = []
        #: high-water mark of lanes already folded into device totals.
        self._oob_reported = 0

    def _note_oob(self, kind: str, lanes: int, detail: str) -> None:
        """Account ``lanes`` clipped/dropped lanes; raise in strict mode."""
        self.oob_clipped_lanes += int(lanes)
        if len(self.oob_events) < _MAX_OOB_EVENTS:
            self.oob_events.append((kind, int(lanes), detail))
        if STRICT_OOB:
            raise OOBError(
                f"{kind} on surface {self.obs_label!r} clipped "
                f"{lanes} out-of-bounds lane(s): {detail}")

    @property
    def size_bytes(self) -> int:
        return self.bytes.size

    def to_numpy(self) -> np.ndarray:
        """The surface contents viewed as the host array it was built from."""
        return self._host

    # -- snapshot / restore (the shared-memory data plane) -------------------

    def snapshot_into(self, dst: np.ndarray) -> None:
        """Copy the surface's bytes straight into ``dst`` (any array of
        matching byte size — typically a view of a
        ``multiprocessing.shared_memory`` block), with no intermediate
        allocation.  The unified-memory write-back half of the zero-copy
        surface idiom."""
        if not dst.flags["C_CONTIGUOUS"]:
            raise ValueError("snapshot target must be C-contiguous")
        out = dst.view(np.uint8).reshape(-1)
        if out.size != self.bytes.size:
            raise ValueError(f"snapshot target holds {out.size} bytes, "
                             f"surface holds {self.bytes.size}")
        out[:] = self.bytes

    def restore_from(self, src: np.ndarray) -> None:
        """Overwrite the surface's bytes from ``src`` in place — the
        companion of :meth:`snapshot_into` for mapping request payloads
        out of a shared-memory block without reallocating the surface.
        Line tracking is untouched: a restore models a host write, not
        device traffic."""
        arr = np.ascontiguousarray(src)
        data = arr.reshape(-1).view(np.uint8)
        if data.size != self.bytes.size:
            raise ValueError(f"restore source holds {data.size} bytes, "
                             f"surface holds {self.bytes.size}")
        self.bytes[:] = data

    # -- cache-line tracking -------------------------------------------------

    def reset_line_tracking(self) -> None:
        self._touched[:] = False

    def mark_lines_range(self, byte_offset: int, nbytes: int):
        """Mark a contiguous access; returns (total_lines, new_lines).

        Offsets are clamped to the surface (block reads clamp at edges).
        """
        byte_offset = min(max(byte_offset, 0), max(self.bytes.size - 1, 0))
        end = min(byte_offset + max(nbytes, 1), self.bytes.size)
        first = byte_offset // LINE
        last = (max(end, byte_offset + 1) - 1) // LINE
        seg = self._touched[first:last + 1]
        new = int(seg.size) - int(seg.sum())
        seg[:] = True
        return last - first + 1, new

    def mark_lines_offsets(self, byte_offsets, access_bytes: int = 4,
                           mask=None):
        """Mark scattered accesses; returns (total_lines, new_lines)."""
        offs = np.asarray(byte_offsets, dtype=np.int64)
        if mask is not None:
            offs = offs[np.asarray(mask, dtype=bool)]
        if offs.size == 0:
            return 0, 0
        lines = np.unique(spanned_lines(offs, access_bytes, LINE))
        touched = self._touched
        new = int(lines.size) - int(touched[lines].sum())
        touched[lines] = True
        return len(lines), new

    def mark_lines_block2d(self, x: int, y: int, width: int, height: int,
                           pitch: int):
        """Mark a 2D block access row by row; returns (total, new)."""
        total = new = 0
        for row in range(height):
            t, n = self.mark_lines_range((y + row) * pitch + x, width)
            total += t
            new += n
        return total, new

    # -- vectorized tracking (wide dispatch: one call covers T threads) ------
    #
    # Each ``*_many`` method marks in *thread order* (thread 0's lines
    # first), so a line shared between threads is compulsory DRAM traffic
    # for exactly the lowest-id thread that touches it — the same
    # attribution the sequential per-thread loop produces.

    def _mark_flat(self, lines: np.ndarray, segs: np.ndarray,
                   nseg: int) -> np.ndarray:
        """Mark ``lines`` (grouped by ``segs``, laid out in marking order);
        credit each newly-touched line to the segment where it first
        appears.  Returns new-line counts per segment."""
        uniq, first_idx = np.unique(lines, return_index=True)
        fresh = ~self._touched[uniq]
        self._touched[uniq[fresh]] = True
        return np.bincount(segs[first_idx[fresh]],
                           minlength=nseg).astype(np.int64)

    def _mark_ranges_grouped(self, first: np.ndarray, counts: np.ndarray,
                             segs: np.ndarray, nseg: int) -> np.ndarray:
        """Expand ragged line ranges ``[first_i, first_i + counts_i)`` in
        the order given and mark them; returns new-line counts per seg."""
        total = int(counts.sum())
        if total == 0:
            return np.zeros(nseg, dtype=np.int64)
        starts = np.cumsum(counts) - counts
        pos = np.arange(total)
        flat = np.repeat(first, counts) + (pos - np.repeat(starts, counts))
        return self._mark_flat(flat, np.repeat(segs, counts), nseg)

    def mark_lines_range_many(self, byte_offsets, nbytes: int):
        """Vectorized :meth:`mark_lines_range`: one contiguous access per
        thread.  Returns ``(totals, new)`` int64 arrays of shape (T,)."""
        size = self.bytes.size
        off = np.clip(np.asarray(byte_offsets, dtype=np.int64),
                      0, max(size - 1, 0))
        end = np.minimum(off + max(nbytes, 1), size)
        first = off // LINE
        last = (np.maximum(end, off + 1) - 1) // LINE
        totals = last - first + 1
        new = self._mark_ranges_grouped(first, totals,
                                        np.arange(len(off)), len(off))
        return totals, new

    def mark_lines_offsets_many(self, byte_offsets, access_bytes: int = 4,
                                mask=None):
        """Vectorized :meth:`mark_lines_offsets`: ``byte_offsets`` is a
        ``(T, n)`` array of per-thread lane offsets, ``mask`` an optional
        ``(T, n)`` lane mask.  Returns ``(totals, new)`` of shape (T,)."""
        offs = np.asarray(byte_offsets, dtype=np.int64)
        T, n = offs.shape
        segs = np.repeat(np.arange(T), n)
        flat_offs = offs.reshape(-1)
        if mask is not None:
            keep = np.asarray(mask, dtype=bool).reshape(-1)
            flat_offs = flat_offs[keep]
            segs = segs[keep]
        if flat_offs.size == 0:
            z = np.zeros(T, dtype=np.int64)
            return z, z.copy()
        first = flat_offs // LINE
        last = (flat_offs + access_bytes - 1) // LINE
        counts = last - first + 1
        total = int(counts.sum())
        starts = np.cumsum(counts) - counts
        pos = np.arange(total)
        lines = np.repeat(first, counts) + (pos - np.repeat(starts, counts))
        lseg = np.repeat(segs, counts)
        # Per-thread unique-line totals (the np.unique in the scalar path).
        order = np.lexsort((lines, lseg))
        sl, ss = lines[order], lseg[order]
        head = np.ones(sl.size, dtype=bool)
        head[1:] = (ss[1:] != ss[:-1]) | (sl[1:] != sl[:-1])
        totals = np.bincount(ss[head], minlength=T).astype(np.int64)
        return totals, self._mark_flat(lines, lseg, T)

    def mark_lines_block2d_many(self, xs, ys, width: int, height: int,
                                pitch: int):
        """Vectorized :meth:`mark_lines_block2d`: one ``width`` x
        ``height`` block per thread at ``(xs[t], ys[t])``.  Returns
        ``(totals, new)`` of shape (T,)."""
        size = self.bytes.size
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        rows = np.arange(height)
        off = np.clip((ys[:, None] + rows) * pitch + xs[:, None],
                      0, max(size - 1, 0))
        end = np.minimum(off + max(width, 1), size)
        first = off // LINE
        last = (np.maximum(end, off + 1) - 1) // LINE
        counts = last - first + 1
        totals = counts.sum(axis=1)
        new = self._mark_ranges_grouped(
            first.reshape(-1), counts.reshape(-1),
            np.repeat(np.arange(len(xs)), height), len(xs))
        return totals, new

    # -- linear (oword block) access ------------------------------------

    def read_linear(self, byte_offset: int, nbytes: int) -> np.ndarray:
        self._check(byte_offset, nbytes)
        if self._san_rec is not None:
            self._san_rec.note_range(self, "r", byte_offset, nbytes)
        return self.bytes[byte_offset:byte_offset + nbytes].copy()

    def write_linear(self, byte_offset: int, data: np.ndarray) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).ravel()
        self._check(byte_offset, raw.size)
        if self._san_rec is not None:
            self._san_rec.note_range(self, "w", byte_offset, raw.size)
        self.bytes[byte_offset:byte_offset + raw.size] = raw

    def read_linear_many(self, byte_offsets, nbytes: int) -> np.ndarray:
        """One contiguous ``nbytes`` read per thread -> (T, nbytes) uint8."""
        offs = np.asarray(byte_offsets, dtype=np.int64)
        if offs.size:
            self._check(int(offs.min()), 0)
            self._check(int(offs.max()), nbytes)
        return self.bytes[offs[:, None] + np.arange(nbytes)]

    def write_linear_many(self, byte_offsets, data: np.ndarray) -> None:
        """One contiguous write per thread from ``data`` rows (T, nbytes).

        Overlapping writes resolve in thread order (the later thread
        wins), matching the sequential per-thread dispatch loop.
        """
        offs = np.asarray(byte_offsets, dtype=np.int64)
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(len(offs), -1)
        if offs.size:
            self._check(int(offs.min()), 0)
            self._check(int(offs.max()), raw.shape[1])
        self.bytes[offs[:, None] + np.arange(raw.shape[1])] = raw

    # -- scattered access --------------------------------------------------

    def gather(self, byte_offsets: np.ndarray, elem: DType,
               mask: Optional[np.ndarray] = None) -> np.ndarray:
        offs = np.asarray(byte_offsets, dtype=np.int64)
        out = np.zeros(len(offs), dtype=elem.np_dtype)
        active = slice(None) if mask is None else np.asarray(mask, dtype=bool)
        idx = offs[active]
        if self._san_rec is not None and idx.size:
            self._san_rec.note_offsets(self, "r", idx, elem.size)
        if idx.size:
            self._check(int(idx.min()), 0)
            self._check(int(idx.max()), elem.size)
            byte_idx = idx[:, None] + np.arange(elem.size)
            out[active] = self.bytes[byte_idx].copy().view(elem.np_dtype).ravel()
        return out

    def scatter(self, byte_offsets: np.ndarray, values: np.ndarray,
                mask: Optional[np.ndarray] = None) -> None:
        offs = np.asarray(byte_offsets, dtype=np.int64)
        values = np.ascontiguousarray(values)
        elem_size = values.dtype.itemsize
        raw = values.view(np.uint8).reshape(len(offs), elem_size)
        if mask is not None:
            keep = np.asarray(mask, dtype=bool)
            offs, raw = offs[keep], raw[keep]
        if not offs.size:
            return
        self._check(int(offs.min()), 0)
        self._check(int(offs.max()), elem_size)
        if self._san_rec is not None:
            self._san_rec.note_offsets(self, "w", offs, elem_size)
        # Duplicate offsets take the last lane's value (hardware scatter order).
        byte_idx = offs[:, None] + np.arange(elem_size)
        self.bytes[byte_idx] = raw

    # -- atomics ---------------------------------------------------------

    def atomic(self, op: str, byte_offsets: np.ndarray,
               operands: Optional[np.ndarray], elem: DType,
               mask: Optional[np.ndarray] = None) -> np.ndarray:
        if self._san_rec is not None:
            self._san_rec.note_offsets(self, "a", byte_offsets, elem.size,
                                       mask=mask)
        return apply_atomic(self.bytes, op, np.asarray(byte_offsets, np.int64),
                            operands, elem, mask)

    def atomic_cmpxchg(self, byte_offsets: np.ndarray, compare: np.ndarray,
                       newval: np.ndarray, elem: DType,
                       mask: Optional[np.ndarray] = None) -> np.ndarray:
        offs = np.asarray(byte_offsets, dtype=np.int64)
        if self._san_rec is not None:
            self._san_rec.note_offsets(self, "a", offs, elem.size, mask=mask)
        view = self.bytes.view(elem.np_dtype)
        old = np.zeros(len(offs), dtype=elem.np_dtype)
        for lane in range(len(offs)):
            if mask is not None and not mask[lane]:
                continue
            idx = int(offs[lane]) // elem.size
            old[lane] = view[idx]
            if view[idx] == compare[lane]:
                view[idx] = newval[lane]
        return old

    def _check(self, byte_offset: int, nbytes: int) -> None:
        if byte_offset < 0 or byte_offset + nbytes > self.bytes.size:
            raise IndexError(
                f"surface access [{byte_offset}, {byte_offset + nbytes}) "
                f"outside surface of {self.bytes.size} bytes")


class BufferSurface(Surface):
    """A linearly-addressed buffer surface."""

    @classmethod
    def allocate(cls, nbytes: int) -> "BufferSurface":
        return cls(np.zeros(nbytes, dtype=np.uint8))

    @classmethod
    def from_array(cls, array: np.ndarray) -> "BufferSurface":
        return cls(array)


class Image2DSurface(Surface):
    """A 2D image surface (row-major, ``bytes_per_pixel`` per texel).

    Serves media block reads/writes (raw bytes, coordinates clamped to the
    surface like the Gen media block unit) and sampler-style typed reads
    used by the OpenCL baselines.
    """

    def __init__(self, data: np.ndarray, bytes_per_pixel: int = 1) -> None:
        arr = np.ascontiguousarray(data)
        if arr.ndim == 3:
            height, width_px, channels = arr.shape
            if channels * arr.dtype.itemsize != bytes_per_pixel:
                raise ValueError(
                    f"array channel bytes {channels * arr.dtype.itemsize} "
                    f"!= bytes_per_pixel {bytes_per_pixel}")
        elif arr.ndim == 2:
            height, width_b = arr.shape
            if (width_b * arr.dtype.itemsize) % bytes_per_pixel:
                raise ValueError("row bytes not a multiple of bytes_per_pixel")
            width_px = width_b * arr.dtype.itemsize // bytes_per_pixel
        else:
            raise ValueError("image surfaces require 2D or 3D arrays")
        super().__init__(arr)
        self.height = int(height)
        self.width = int(width_px)
        self.bytes_per_pixel = int(bytes_per_pixel)
        self.pitch = self.width * self.bytes_per_pixel

    @property
    def width_bytes(self) -> int:
        return self.pitch

    # -- media block access ------------------------------------------------

    def read_block(self, x: int, y: int, width: int, height: int) -> np.ndarray:
        """Read a ``height`` x ``width``-byte block at byte column ``x``.

        Out-of-bounds rows/columns are clamped to the surface edge, which
        matches the replication behaviour of the Gen media block read unit
        and is what the paper's linear filter relies on for its borders.
        Clamped lanes are counted (strict OOB mode raises instead).
        """
        vis_h = min(max(min(y + height, self.height) - max(y, 0), 0), height)
        vis_w = min(max(min(x + width, self.pitch) - max(x, 0), 0), width)
        clipped = height * width - vis_h * vis_w
        if clipped:
            self._note_oob("read_block", clipped,
                           f"block ({x},{y}) {width}x{height} vs "
                           f"{self.pitch}x{self.height}")
        if self._san_rec is not None:
            # bytes actually touched: the edge-clamped rectangle
            ry0 = min(max(y, 0), self.height - 1)
            ry1 = min(max(y + height - 1, 0), self.height - 1) + 1
            rx0 = min(max(x, 0), self.pitch - 1)
            rx1 = min(max(x + width - 1, 0), self.pitch - 1) + 1
            self._san_rec.note_rect(self, "r", rx0, rx1, ry0, ry1, self.pitch)
        rows = np.clip(np.arange(y, y + height), 0, self.height - 1)
        cols = np.clip(np.arange(x, x + width), 0, self.pitch - 1)
        img = self.bytes.reshape(self.height, self.pitch)
        return img[np.ix_(rows, cols)].copy()

    def write_block(self, x: int, y: int, width: int, height: int,
                    data: np.ndarray) -> None:
        """Write a block; out-of-bounds texels are dropped (hw behaviour;
        dropped lanes are counted, strict OOB mode raises instead)."""
        block = np.ascontiguousarray(data).view(np.uint8).reshape(height, width)
        img = self.bytes.reshape(self.height, self.pitch)
        y0, y1 = max(y, 0), min(y + height, self.height)
        x0, x1 = max(x, 0), min(x + width, self.pitch)
        kept = max(y1 - y0, 0) * max(x1 - x0, 0)
        if kept != height * width:
            self._note_oob("write_block", height * width - kept,
                           f"block ({x},{y}) {width}x{height} vs "
                           f"{self.pitch}x{self.height}")
        if y0 >= y1 or x0 >= x1:
            return
        if self._san_rec is not None:
            self._san_rec.note_rect(self, "w", x0, x1, y0, y1, self.pitch)
        img[y0:y1, x0:x1] = block[y0 - y:y1 - y, x0 - x:x1 - x]

    def read_block_many(self, xs, ys, width: int, height: int) -> np.ndarray:
        """Vectorized :meth:`read_block`: one block per thread at
        ``(xs[t], ys[t])`` -> (T, height, width) uint8, edge-clamped."""
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        vis = (np.clip(np.minimum(ys + height, self.height)
                       - np.maximum(ys, 0), 0, height)
               * np.clip(np.minimum(xs + width, self.pitch)
                         - np.maximum(xs, 0), 0, width))
        clipped = height * width * len(xs) - int(vis.sum())
        if clipped:
            self._note_oob("read_block_many", clipped,
                           f"{len(xs)} thread blocks {width}x{height} vs "
                           f"{self.pitch}x{self.height}")
        rows = np.clip(ys[:, None] + np.arange(height), 0, self.height - 1)
        cols = np.clip(xs[:, None] + np.arange(width), 0, self.pitch - 1)
        img = self.bytes.reshape(self.height, self.pitch)
        return img[rows[:, :, None], cols[:, None, :]]

    def write_block_many(self, xs, ys, width: int, height: int,
                         data: np.ndarray) -> None:
        """Vectorized :meth:`write_block` from ``data`` (T, height, width).

        Out-of-bounds texels are dropped; overlapping in-bounds texels
        resolve in thread order (the later thread wins).
        """
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        rows = ys[:, None] + np.arange(height)
        cols = xs[:, None] + np.arange(width)
        ok = ((rows >= 0) & (rows < self.height))[:, :, None] & \
            ((cols >= 0) & (cols < self.pitch))[:, None, :]
        dropped = ok.size - int(ok.sum())
        if dropped:
            self._note_oob("write_block_many", dropped,
                           f"{len(xs)} thread blocks {width}x{height} vs "
                           f"{self.pitch}x{self.height}")
        img = self.bytes.reshape(self.height, self.pitch)
        r = np.broadcast_to(np.clip(rows, 0, self.height - 1)[:, :, None],
                            ok.shape)
        c = np.broadcast_to(np.clip(cols, 0, self.pitch - 1)[:, None, :],
                            ok.shape)
        raw = np.ascontiguousarray(data).view(np.uint8)
        raw = raw.reshape(len(xs), height, width)
        img[r[ok], c[ok]] = raw[ok]

    # -- sampler-style typed access (OpenCL images) -------------------------

    def read_pixels(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Gather pixels at integer coords, clamped to the edge.

        Returns an ``(n, bytes_per_pixel)`` uint8 array, one row per lane —
        the raw channels of each texel.  The OpenCL layer converts these to
        float, mirroring the image unit's format conversion.
        """
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        ok = (xs >= 0) & (xs < self.width) & (ys >= 0) & (ys < self.height)
        clipped = ok.size - int(ok.sum())
        if clipped:
            self._note_oob("read_pixels", clipped,
                           f"{clipped}/{ok.size} coords outside "
                           f"{self.width}x{self.height}")
        xs = np.clip(xs, 0, self.width - 1)
        ys = np.clip(ys, 0, self.height - 1)
        img = self.bytes.reshape(self.height, self.pitch)
        base = xs * self.bytes_per_pixel
        if self._san_rec is not None:
            self._san_rec.note_offsets(
                self, "r", ys * self.pitch + base, self.bytes_per_pixel)
        cols = base[:, None] + np.arange(self.bytes_per_pixel)
        return img[ys[:, None], cols].copy()

    def write_pixels(self, xs: np.ndarray, ys: np.ndarray,
                     values: np.ndarray) -> None:
        """Scatter raw pixel bytes at integer coords (OOB writes dropped)."""
        xs = np.asarray(xs, dtype=np.int64)
        ys = np.asarray(ys, dtype=np.int64)
        ok = (xs >= 0) & (xs < self.width) & (ys >= 0) & (ys < self.height)
        dropped = ok.size - int(ok.sum())
        if dropped:
            self._note_oob("write_pixels", dropped,
                           f"{dropped}/{ok.size} coords outside "
                           f"{self.width}x{self.height}")
        raw = np.ascontiguousarray(values).view(np.uint8)
        raw = raw.reshape(len(xs), self.bytes_per_pixel)
        img = self.bytes.reshape(self.height, self.pitch)
        base = xs[ok] * self.bytes_per_pixel
        if self._san_rec is not None:
            self._san_rec.note_offsets(
                self, "w", ys[ok] * self.pitch + base, self.bytes_per_pixel)
        cols = base[:, None] + np.arange(self.bytes_per_pixel)
        img[ys[ok][:, None], cols] = raw[ok]
