"""Memory traffic accounting helpers.

The timing model charges global-memory accesses by the number of unique
cache lines each message touches — the same coalescing rule the Gen data
port applies.  Redundant loads across *different* messages are charged
again: that is precisely the inefficiency of the SIMT linear filter the
paper highlights (each work-item re-reads pixels its neighbours already
loaded), so the model must not dedupe across messages.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

#: Cache line size in bytes (Gen L3 / LLC granularity).
CACHE_LINE_BYTES = 64


def spanned_lines(byte_offsets: np.ndarray, access_bytes: int,
                  line_bytes: int = CACHE_LINE_BYTES) -> np.ndarray:
    """Every cache line index spanned by per-lane accesses (with repeats).

    An access of ``access_bytes`` starting at offset ``o`` touches all
    lines from ``o // line_bytes`` through ``(o + access_bytes - 1) //
    line_bytes`` inclusive — not just the first and last.
    """
    offs = np.asarray(byte_offsets, dtype=np.int64)
    first = offs // line_bytes
    last = (offs + access_bytes - 1) // line_bytes
    span = last - first
    max_span = int(span.max()) if span.size else 0
    if max_span == 0:
        return first
    steps = np.arange(max_span + 1)
    grid = first[:, None] + steps
    return grid[steps <= span[:, None]]


def unique_cache_lines(byte_offsets: np.ndarray, access_bytes: int = 4,
                       mask: Optional[np.ndarray] = None,
                       line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Unique cache lines touched by per-lane accesses of ``access_bytes``."""
    offs = np.asarray(byte_offsets, dtype=np.int64)
    if mask is not None:
        offs = offs[np.asarray(mask, dtype=bool)]
    if offs.size == 0:
        return 0
    return len(np.unique(spanned_lines(offs, access_bytes, line_bytes)))


def block_cache_lines(nbytes: int, line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Cache lines for a contiguous block transfer of ``nbytes``."""
    return max(1, -(-nbytes // line_bytes))


def block2d_cache_lines(width_bytes: int, height: int, pitch: int,
                        line_bytes: int = CACHE_LINE_BYTES) -> int:
    """Cache lines for a 2D block: each row is a separate contiguous run.

    Rows of a 2D block land in different lines whenever the surface pitch
    exceeds the line size (the common case), so the cost is per-row.
    """
    per_row = block_cache_lines(width_bytes, line_bytes)
    if pitch < line_bytes:
        # Tiny surfaces: several rows share a line.
        rows_per_line = max(1, line_bytes // max(pitch, 1))
        return max(1, -(-height // rows_per_line)) * per_row
    return per_row * height
