"""Memory subsystem: surfaces, shared local memory, traffic accounting.

Kernel code never touches host numpy arrays directly; it goes through
*surfaces* (the Gen binding-table abstraction).  Linear buffers serve
oword block reads/writes, scattered gather/scatter and atomics; 2D image
surfaces serve media block reads/writes and sampler accesses.  Shared
local memory (SLM) is a per-work-group banked scratchpad.
"""

from repro.memory.surfaces import (
    BufferSurface,
    Image2DSurface,
    Surface,
    SurfaceIndex,
    apply_atomic,
)
from repro.memory.slm import SharedLocalMemory, bank_conflict_cycles
from repro.memory.traffic import spanned_lines, unique_cache_lines

__all__ = [
    "Surface",
    "BufferSurface",
    "Image2DSurface",
    "SurfaceIndex",
    "apply_atomic",
    "SharedLocalMemory",
    "bank_conflict_cycles",
    "spanned_lines",
    "unique_cache_lines",
]
