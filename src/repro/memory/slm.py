"""Shared local memory (SLM).

On Gen, each work-group may allocate up to 64 KB of SLM on its subslice.
SLM is organized in banks of 4-byte words; a SIMD access whose lanes hit
the same bank in different words serializes, which is the bank-conflict
effect the paper's histogram discussion hinges on.  Same-address atomics
serialize fully at the bank's atomic ALU.

The storage/semantics reuse :class:`repro.memory.surfaces.Surface`; this
module adds the banking cost model used by :mod:`repro.sim.timing`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.memory.surfaces import Surface

#: Number of SLM banks per subslice (Gen9/Gen11: 16 banks x 4 bytes).
NUM_BANKS = 16
#: Bank word width in bytes.
BANK_WIDTH = 4
#: Same-address atomic updates the SLM atomic ALU retires per cycle
#: (read-modify-write forwarding lets it chain two updates per clock).
ATOMIC_OPS_PER_CYCLE = 2.0


def bank_conflict_cycles(byte_offsets: np.ndarray,
                         mask: Optional[np.ndarray] = None,
                         same_address_broadcast: bool = True,
                         ops_per_cycle: float = 1.0) -> int:
    """Cycles an SLM access occupies its banks, given lane byte offsets.

    The cost is the maximum number of *distinct words* any single bank must
    serve.  Lanes reading the same word count once when
    ``same_address_broadcast`` is true (reads broadcast); for atomics the
    caller passes ``False`` because read-modify-writes to one word cannot
    be merged, and ``ops_per_cycle=ATOMIC_OPS_PER_CYCLE`` for the atomic
    ALU's forwarding rate.
    """
    offs = np.asarray(byte_offsets, dtype=np.int64)
    if mask is not None:
        offs = offs[np.asarray(mask, dtype=bool)]
    if offs.size == 0:
        return 0
    words = offs // BANK_WIDTH
    banks = words % NUM_BANKS
    worst = 0
    for bank in np.unique(banks):
        in_bank = words[banks == bank]
        if same_address_broadcast:
            worst = max(worst, len(np.unique(in_bank)))
        else:
            worst = max(worst, len(in_bank))
    return int(-(-worst // ops_per_cycle))


class SharedLocalMemory(Surface):
    """One work-group's SLM allocation.

    Because SLM is a :class:`Surface`, the sanitizer's race detector
    covers it through the same ``_san_rec`` notifications as global
    surfaces — the OpenCL runtime attaches each work-group's fresh SLM
    allocation to the active recorder, and the work-group scheduler's
    barrier phases become the detector's happens-before epochs.
    """

    def __init__(self, nbytes: int) -> None:
        if nbytes > 64 * 1024:
            raise ValueError(f"SLM allocation of {nbytes} bytes exceeds 64 KB")
        super().__init__(np.zeros(nbytes, dtype=np.uint8))
        # a stable label ("slm", not "sharedlocalmemory") for breakdowns,
        # sanitizer conflict reports, and oob metrics
        self.obs_label = "slm"

    def clear(self) -> None:
        self.bytes[:] = 0
