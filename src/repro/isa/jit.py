"""Kernel JIT: megakernel compilation of straight-line Gen programs.

The dispatch ladder so far is *sequential* (one Python interpreter step
per instruction per thread) and *wide* (one step per instruction for all
T threads at once, :mod:`repro.isa.wide`).  The wide path removes the
thread loop but still pays an interpreter round trip per instruction:
``execute()`` dispatch, plan lookup, fetcher iteration, predicate
plumbing.  For the small, hot programs the paper's Figure 5 kernels
compile to, that fixed per-instruction Python cost dominates.

This module removes it.  Given a compiled program, :class:`JitKernel`
*generates Python source* for one function — the **megakernel** — that
executes the whole program with zero interpreter dispatch:

- every region operand is pre-resolved to a baked slice (contiguous /
  scalar regions become zero-copy ``grf2d[:, a:b].view(dtype)`` views of
  the stacked ``(T, 4096)`` register file; strided regions become
  ``np.take`` with a baked index array);
- immediates are baked broadcast arrays; execution dtypes, conversion
  and saturation decisions are resolved at compile time;
- predication compiles to masked ``np.copyto`` writes against baked
  flag views;
- SEND instructions call pre-bound closures over the wide executor's
  vectorized message handlers.

The same generated code object is executed twice with two different
globals environments to produce a *functional* variant and a *traced*
variant: they differ only in the ``_send{k}`` closures (the traced ones
additionally mark cache lines and append per-thread
:class:`~repro.isa.wide._WideEvent` records).  Timing does not run any
per-instruction accounting at execution time: a static **template
trace** is built once per (program, machine) by replaying the exact
accounting sequence of :class:`~repro.sim.batch.TracingExecutor`
(instruction costs, message issue positions, load-use consumption
distances are all thread-invariant for a straight-line program), and
:meth:`JitTracingExecutor.run` installs the precomputed totals and event
prototypes before calling the megakernel — so fanned-out per-thread
traces are bit-identical to both the wide and the sequential path.

Plan state is shared through the program-scoped
:class:`~repro.isa.plans.PlanTable` and the compiled function caches on
:class:`~repro.compiler.driver.CompiledKernel` (see :func:`get_jit`), so
JIT artifacts live exactly as long as their program does in the
:class:`~repro.compiler.cache.KernelCache`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.isa.dtypes import DType, convert, promote, signed, unsigned
from repro.isa.executor import ExecutionError, FunctionalExecutor
from repro.isa.grf import GRF_SIZE_BYTES, RegOperand
from repro.isa.instructions import CondMod, Instruction, MathFn, MsgKind, Opcode
from repro.isa.msg_geometry import (
    media_block_messages, oword_block_messages, scatter_messages,
)
from repro.isa.plans import PlanTable
from repro.isa.wide import (
    _WIDE_MSG_KINDS, _WideEvent, WideExecutor, WideTracingExecutor,
    wide_eligible,
)
from repro.obs.tracing import trace_span
from repro.sim.batch import _alu_cost
from repro.sim.trace import MemKind, ThreadTrace

__all__ = [
    "JitError", "JitKernel", "JitExecutor", "JitTracingExecutor",
    "jit_eligible", "get_jit",
]


class JitError(ExecutionError):
    """Raised when a program cannot be compiled to a megakernel.

    Callers treat this as "not JIT-eligible" and fall back to the wide
    interpreter; it never indicates an invalid program (those raise the
    ordinary execution errors at compile time, exactly as the
    interpreters would at run time).
    """


#: Opcodes the code generator can inline.  SEND is handled through the
#: wide executor's vectorized message handlers and is constrained by
#: :data:`~repro.isa.wide._WIDE_MSG_KINDS` like the wide path.
_JIT_OPCODES = frozenset({
    Opcode.MOV, Opcode.SEL, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.MAD,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.SHL, Opcode.SHR,
    Opcode.ASR, Opcode.MIN, Opcode.MAX, Opcode.AVG, Opcode.CMP, Opcode.MATH,
    Opcode.SEND, Opcode.BARRIER, Opcode.NOP,
})


def jit_eligible(program: Iterable[Instruction]) -> bool:
    """Static pre-check: can this program compile to a megakernel?

    A ``True`` answer can still fail compilation on operand corner
    cases (:class:`JitError`); the device layer treats compile failure
    the same as ineligibility and falls back to the wide interpreter.
    """
    if not wide_eligible(program):
        return False
    return all(inst.opcode in _JIT_OPCODES for inst in program)


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------


def _bind(env: dict, prefix: str, value) -> str:
    """Intern ``value`` into the codegen environment; returns its name.

    Identical objects share one name (dtype singletons, interned
    ``np.dtype`` instances), which keeps the generated source readable.
    """
    for k, v in env.items():
        if v is value and k.startswith(prefix):
            return k
    name = f"{prefix}{len(env)}"
    env[name] = value
    return name


def _is_packed(idx: np.ndarray) -> bool:
    """True when a (n, size) byte-index plan is one contiguous run."""
    flat = idx.reshape(-1)
    return bool((flat == flat[0] + np.arange(flat.size)).all())


def _src_expr(env: dict, pb: FunctionalExecutor, s, n: int):
    """(expression, operand np dtype, byte-index plan or None).

    Contiguous regions compile to zero-copy views of the stacked GRF;
    scalar regions to ``(T, 1)`` views that broadcast; anything else to
    ``np.take`` with a baked flat index.  Immediates (including packed
    vector immediates) bake to shared read-only ``(n,)`` arrays.
    """
    if isinstance(s, RegOperand):
        idx = pb._src_plan(s, n)  # validates bounds against the GRF
        sz = s.dtype.size
        offs = idx[:, 0]
        o0 = int(offs[0])
        dtn = _bind(env, "_dt", np.dtype(s.dtype.np_dtype))
        if bool((offs == o0).all()):
            expr = f"g[:, {o0}:{o0 + sz}].view({dtn})"
        elif bool((offs == o0 + np.arange(n) * sz).all()):
            expr = f"g[:, {o0}:{o0 + n * sz}].view({dtn})"
        else:
            ixn = _bind(env, "_ix", np.ascontiguousarray(idx.reshape(-1)))
            expr = f"np.take(g, {ixn}, axis=1).view({dtn})"
        return expr, np.dtype(s.dtype.np_dtype), idx
    arr = np.asarray(pb._fetch(s, n))  # read-only broadcast payload
    return _bind(env, "_c", arr), arr.dtype, None


def _mask_expr(inst: Instruction) -> Optional[str]:
    p = inst.pred
    if p is None:
        return None
    base = f"f{p.flag.index}[:, :{inst.exec_size}]"
    return f"(~{base})" if p.invert else base


def _math_expr(env: dict, inst: Instruction, exec_dt: DType,
               ops: list) -> str:
    fn = inst.math_fn
    if fn is MathFn.INV:
        return f"(1.0 / {ops[0]})"
    if fn is MathFn.SQRT:
        return f"np.sqrt({ops[0]})"
    if fn is MathFn.RSQRT:
        return f"(1.0 / np.sqrt({ops[0]}))"
    if fn is MathFn.LOG:
        return f"np.log2({ops[0]})"
    if fn is MathFn.EXP:
        return f"np.exp2({ops[0]})"
    if fn is MathFn.POW:
        return f"np.power({ops[0]}, {ops[1]})"
    if fn is MathFn.FDIV:
        return f"({ops[0]} / {ops[1]})"
    if fn is MathFn.IDIV:
        dtn = _bind(env, "_dt", np.dtype(exec_dt.np_dtype))
        return f"(({ops[0]} // {ops[1]}).astype({dtn}))"
    if fn is MathFn.SIN:
        return f"np.sin({ops[0]})"
    if fn is MathFn.COS:
        return f"np.cos({ops[0]})"
    raise JitError(f"unhandled math fn {fn}")


def _alu_expr(env: dict, inst: Instruction, exec_dt: DType,
              ops: list) -> str:
    """The expression computing one ALU instruction (mirrors
    :func:`repro.isa.executor._alu_compute` case by case)."""
    op = inst.opcode
    if op is Opcode.ADD:
        return f"({ops[0]} + {ops[1]})"
    if op is Opcode.SUB:
        return f"({ops[0]} - {ops[1]})"
    if op is Opcode.MUL:
        return f"({ops[0]} * {ops[1]})"
    if op is Opcode.MAD:
        return f"({ops[0]} + {ops[1]} * {ops[2]})"
    if op is Opcode.AND:
        return f"({ops[0]} & {ops[1]})"
    if op is Opcode.OR:
        return f"({ops[0]} | {ops[1]})"
    if op is Opcode.XOR:
        return f"({ops[0]} ^ {ops[1]})"
    if op is Opcode.NOT:
        return f"(~{ops[0]})"
    if op is Opcode.SHL:
        return f"({ops[0]} << {ops[1]})"
    if op in (Opcode.SHR, Opcode.ASR):
        if exec_dt.is_float:
            raise JitError(f"{op.value} on float operands")
        # shr: logical (view as unsigned); asr: arithmetic (view signed).
        want = unsigned(exec_dt) if op is Opcode.SHR else signed(exec_dt)
        if want is not exec_dt:
            vtn = _bind(env, "_dt", np.dtype(want.np_dtype))
            return f"(({ops[0]}).view({vtn}) >> ({ops[1]}).view({vtn}))"
        return f"({ops[0]} >> {ops[1]})"
    if op is Opcode.MIN:
        return f"np.minimum({ops[0]}, {ops[1]})"
    if op is Opcode.MAX:
        return f"np.maximum({ops[0]}, {ops[1]})"
    if op is Opcode.AVG:
        return f"(({ops[0]} + {ops[1]} + 1) >> 1)"
    if op is Opcode.MATH:
        return _math_expr(env, inst, exec_dt, ops)
    raise JitError(f"unhandled opcode {op}")


def _emit_write(lines: list, env: dict, inst: Instruction, i: int,
                mask: Optional[str], didx: np.ndarray) -> None:
    """Store ``r{i}`` to the instruction's destination region."""
    dst = inst.dst
    n = inst.exec_size
    sz = dst.dtype.size
    offs = didx[:, 0]
    o0 = int(offs[0])
    if bool((offs == o0 + np.arange(n) * sz).all()):
        dtn = _bind(env, "_dt", np.dtype(dst.dtype.np_dtype))
        dv = f"g[:, {o0}:{o0 + n * sz}].view({dtn})"
        if mask is None:
            lines.append(f"    {dv}[...] = r{i}")
        else:
            lines.append(f"    np.copyto({dv}, r{i}, where={mask})")
    else:  # strided destination: the wide RMW fancy-index path
        opn = _bind(env, "_wo", dst)
        ixn = _bind(env, "_wx", didx)
        lines.append(
            f"    ex._write_dst({opn}, r{i}, {mask or 'None'}, {ixn})")


def _emit_alu(lines: list, env: dict, pb: FunctionalExecutor,
              inst: Instruction, i: int) -> None:
    op = inst.opcode
    dst = inst.dst
    if dst is None:
        raise JitError(f"ALU instruction without destination: {inst.asm()}")
    n = inst.exec_size
    didx = pb._dst_plan(dst, n)
    npd = np.dtype(dst.dtype.np_dtype)
    mask = _mask_expr(inst)
    fetched = [_src_expr(env, pb, s, n) for s in inst.srcs]

    if op is Opcode.MOV:
        expr, sdt, sidx = fetched[0]
        stays_view = sidx is not None and sdt == npd and not inst.sat
        if stays_view and mask is None and _is_packed(sidx) \
                and _is_packed(didx):
            # whole-region move: one byte-range copy, no views at all
            so, do = int(sidx[0, 0]), int(didx[0, 0])
            nb = didx.size
            if so != do:
                lines.append(f"    g[:, {do}:{do + nb}] = "
                             f"g[:, {so}:{so + nb}]")
            return
        if stays_view and np.intersect1d(sidx.reshape(-1),
                                         didx.reshape(-1)).size:
            # the result would be a live view of bytes the write below
            # overwrites; materialize it first (the interpreters fetch
            # copies, so this is what keeps overlap semantics identical)
            expr = f"({expr}).copy()"
        lines.append(f"    r{i} = {expr}")
    elif op is Opcode.SEL:
        if mask is None:
            raise JitError("sel requires a predicate")
        lines.append(f"    r{i} = np.where({mask}, {fetched[0][0]}, "
                     f"{fetched[1][0]})")
        mask = None  # sel writes all lanes; the predicate picked the source
    else:
        exec_dt = inst.srcs[0].dtype
        for s in inst.srcs[1:]:
            exec_dt = promote(exec_dt, s.dtype)
        if not dst.dtype.is_float and exec_dt.is_float and \
                op in (Opcode.AND, Opcode.OR, Opcode.XOR):
            raise JitError("bitwise ops on float operands")
        ops = []
        for (expr, sdt, _sidx), s in zip(fetched, inst.srcs):
            if sdt != np.dtype(exec_dt.np_dtype):
                expr = f"_cv({expr}, {_bind(env, '_ET', exec_dt)})"
            ops.append(expr)
        lines.append(f"    r{i} = {_alu_expr(env, inst, exec_dt, ops)}")

    dtc = _bind(env, "_ET", dst.dtype)
    if inst.sat:
        lines.append(f"    r{i} = _cv(r{i}, {dtc}, True)")
    else:
        dtn = _bind(env, "_dt", npd)
        lines.append(f"    if r{i}.dtype != {dtn}:")
        lines.append(f"        r{i} = _cv(r{i}, {dtc})")
    _emit_write(lines, env, inst, i, mask, didx)


_CMP_FNS = {
    CondMod.EQ: "np.equal", CondMod.NE: "np.not_equal",
    CondMod.LT: "np.less", CondMod.LE: "np.less_equal",
    CondMod.GT: "np.greater", CondMod.GE: "np.greater_equal",
}


def _emit_cmp(lines: list, env: dict, pb: FunctionalExecutor,
              inst: Instruction, i: int) -> None:
    n = inst.exec_size
    fn = _CMP_FNS.get(inst.cond_mod)
    if fn is None:
        raise JitError(f"cmp without conditional modifier: {inst.asm()}")
    exec_dt = promote(inst.srcs[0].dtype, inst.srcs[1].dtype)
    ops = []
    for s in inst.srcs:
        expr, sdt, _sidx = _src_expr(env, pb, s, n)
        if sdt != np.dtype(exec_dt.np_dtype):
            expr = f"_cv({expr}, {_bind(env, '_ET', exec_dt)})"
        ops.append(expr)
    fi = inst.flag.index if inst.flag else 0
    lines.append(f"    r{i} = np.broadcast_to({fn}({ops[0]}, {ops[1]}), "
                 f"(_T, {n}))")
    lines.append(f"    f{fi}[:, :{n}] = r{i}")
    if inst.dst is not None:
        didx = pb._dst_plan(inst.dst, n)
        dtn = _bind(env, "_dt", np.dtype(inst.dst.dtype.np_dtype))
        lines.append(f"    r{i} = r{i}.astype({dtn})")
        _emit_write(lines, env, inst, i, None, didx)


def _codegen(program, pb: FunctionalExecutor, env: dict):
    """Generate megakernel source; returns (source, send count)."""
    lines = ["def _mega(ex):",
             "    g = ex.grf2d",
             "    _T = g.shape[0]"]
    flag_idxs = set()
    for inst in program:
        if inst.pred is not None:
            flag_idxs.add(inst.pred.flag.index)
        if inst.opcode is Opcode.CMP:
            flag_idxs.add(inst.flag.index if inst.flag else 0)
    for fi in sorted(flag_idxs):
        lines.append(f"    f{fi} = ex._flag_lanes({fi})")
    n_sends = 0
    for i, inst in enumerate(program):
        op = inst.opcode
        if op not in _JIT_OPCODES:
            raise JitError(f"unhandled opcode {op}")
        lines.append(f"    # [{i:>3}] {inst.asm()}")
        if op is Opcode.NOP or op is Opcode.BARRIER:
            continue
        if op is Opcode.SEND:
            msg = inst.msg
            if msg is None or msg.kind not in _WIDE_MSG_KINDS:
                raise JitError(f"send not vectorizable: {inst.asm()}")
            lines.append(f"    _send{n_sends}(ex)")
            n_sends += 1
            continue
        if op is Opcode.CMP:
            _emit_cmp(lines, env, pb, inst, i)
        else:
            _emit_alu(lines, env, pb, inst, i)
    return "\n".join(lines) + "\n", n_sends


# ---------------------------------------------------------------------------
# SEND closures
# ---------------------------------------------------------------------------


def _functional_send(inst: Instruction):
    def _send(ex, _inst=inst):
        ex._execute_send(_inst)
    return _send


def _traced_send(inst: Instruction, k: int):
    def _send(ex, _inst=inst, _k=k):
        ex._execute_send(_inst)
        _account_send_jit(ex, _inst, _k)
    return _send


def _account_send_jit(ex, inst: Instruction, k: int) -> None:
    """Runtime half of traced SEND accounting.

    The issue-timeline half (instruction counts, issue positions,
    consumption distances) is precomputed in the template trace; only
    the data-dependent half runs here: cache-line marking and the
    per-thread :class:`_WideEvent` record that
    :meth:`~repro.isa.wide.WideTracingExecutor.drain_traces` fans out.
    Mirrors :meth:`WideTracingExecutor._account_send` minus the
    ``trace.memory`` / ``_register_load`` / ``_extra_messages`` calls.
    """
    msg = inst.msg
    surf = ex._surface(msg.surface)
    kind = msg.kind
    ev = ex._launch_events[k]
    if kind in (MsgKind.MEDIA_BLOCK_READ, MsgKind.MEDIA_BLOCK_WRITE):
        x = ex._scalar_vec(msg.addr0)
        y = ex._scalar_vec(msg.addr1)
        lines, new = surf.mark_lines_block2d_many(
            x, y, msg.block_width, msg.block_height, surf.pitch)
        ex._wide_events.append(_WideEvent(ev, lines, new, False))
    elif kind in (MsgKind.OWORD_BLOCK_READ, MsgKind.OWORD_BLOCK_WRITE):
        offset = ex._scalar_vec(msg.addr0)
        lines, new = surf.mark_lines_range_many(offset, msg.payload_bytes)
        ex._wide_events.append(_WideEvent(ev, lines, new, False))
    else:  # GATHER / SCATTER / ATOMIC
        byte_offs = ex._scattered_offsets(inst)
        mask = ex._pred_mask(inst)
        lines, new = surf.mark_lines_offsets_many(
            byte_offs, msg.elem_dtype.size, mask=mask)
        if kind is MsgKind.ATOMIC:
            ex._wide_events.append(_WideEvent(
                ev, lines, new, True, words=byte_offs // 4, wmask=mask,
                surface_id=id(surf)))
        else:
            ex._wide_events.append(_WideEvent(ev, lines, new, True))


# ---------------------------------------------------------------------------
# static template trace
# ---------------------------------------------------------------------------


class JitTemplate:
    """Thread-invariant timing for one (program, machine) pair."""

    __slots__ = ("inst_count", "issue_cycles", "barriers", "events", "btis")

    def __init__(self, inst_count, issue_cycles, barriers, events, btis):
        self.inst_count = inst_count
        self.issue_cycles = issue_cycles
        self.barriers = barriers
        #: MemEvent prototypes (surface=None) in send order, with final
        #: issue_at/consumed_at; never mutated — launches stamp surface
        #: labels onto ``dataclasses.replace`` copies.
        self.events = events
        #: binding-table index per event, for the per-launch label.
        self.btis = btis


def _register_load(pending: dict, first_reg: int, nbytes: int, ev) -> None:
    for reg in range(first_reg, first_reg + -(-nbytes // GRF_SIZE_BYTES)):
        pending[reg] = ev


def _merged_regs(pb: FunctionalExecutor, inst: Instruction) -> tuple:
    merged: list = []
    for s in inst.srcs:
        if isinstance(s, RegOperand):
            idx = pb._src_plan(s, inst.exec_size)
            merged.extend(np.unique(idx // GRF_SIZE_BYTES).tolist())
    return tuple(dict.fromkeys(merged))


def _build_template(program, machine, pb: FunctionalExecutor,
                    table: PlanTable) -> JitTemplate:
    """Statically replay :class:`~repro.sim.batch.TracingExecutor`'s
    accounting for one thread (which is every thread: straight-line
    programs have thread-invariant issue timelines)."""
    trace = ThreadTrace(machine)
    pending: dict = {}
    btis: list = []

    def extra(count: int) -> None:
        if count > 1:
            trace.scalar_op(2 * (count - 1))

    for i, inst in enumerate(program):
        op = inst.opcode
        if op is Opcode.BARRIER:
            trace.barrier()
            continue
        if op is Opcode.NOP:
            continue
        if op is Opcode.SEND:
            msg = inst.msg
            kind = msg.kind
            btis.append(msg.surface)
            if kind in (MsgKind.MEDIA_BLOCK_READ, MsgKind.MEDIA_BLOCK_WRITE):
                w, h = msg.block_width, msg.block_height
                nbytes = w * h
                messages = media_block_messages(w, h)
                extra(messages)
                is_read = kind is MsgKind.MEDIA_BLOCK_READ
                ev = trace.memory(
                    MemKind.BLOCK2D_READ if is_read else MemKind.BLOCK2D_WRITE,
                    nbytes=nbytes, lines=0, dram_lines=0, l3_bytes=nbytes,
                    msgs=messages, is_read=is_read)
                if is_read:
                    _register_load(pending, msg.payload_reg, nbytes, ev)
            elif kind in (MsgKind.OWORD_BLOCK_READ, MsgKind.OWORD_BLOCK_WRITE):
                nbytes = msg.payload_bytes
                messages = oword_block_messages(nbytes)
                extra(messages)
                is_read = kind is MsgKind.OWORD_BLOCK_READ
                ev = trace.memory(
                    MemKind.OWORD_READ if is_read else MemKind.OWORD_WRITE,
                    nbytes=nbytes, lines=0, dram_lines=0, l3_bytes=nbytes,
                    msgs=messages, is_read=is_read)
                if is_read:
                    _register_load(pending, msg.payload_reg, nbytes, ev)
            else:  # GATHER / SCATTER / ATOMIC
                n = inst.exec_size
                messages = scatter_messages(n)
                nbytes = n * msg.elem_dtype.size
                if kind is MsgKind.GATHER:
                    extra(messages)
                    ev = trace.memory(MemKind.GATHER, nbytes=nbytes, lines=0,
                                      dram_lines=0, l3_bytes=0, msgs=messages)
                    _register_load(pending, msg.payload_reg, nbytes, ev)
                elif kind is MsgKind.SCATTER:
                    extra(messages)
                    trace.memory(MemKind.SCATTER, nbytes=nbytes, lines=0,
                                 dram_lines=0, l3_bytes=0, msgs=messages,
                                 is_read=False)
                else:  # ATOMIC
                    ev = trace.memory(MemKind.ATOMIC, nbytes=nbytes, lines=0,
                                      dram_lines=0, l3_bytes=0, msgs=messages)
                    if inst.dst is not None:
                        _register_load(
                            pending, inst.dst.byte_offset // GRF_SIZE_BYTES,
                            nbytes, ev)
            continue
        # ALU / CMP: consume pending loads, then charge issue cost.
        if pending:
            regs = table.src_regs[i]
            if regs is None:
                regs = table.src_regs[i] = _merged_regs(pb, inst)
            for reg in regs:
                ev = pending.get(reg)
                if ev is not None:
                    trace.consume(ev)
                    for r in [r for r, e in pending.items() if e is ev]:
                        del pending[r]
        cost = _alu_cost(inst, machine)
        slots = table.cost_slots(machine)
        if slots[i] is None:
            slots[i] = cost
        trace.inst_count += cost[0]
        trace.issue_cycles += cost[1]
    return JitTemplate(trace.inst_count, trace.issue_cycles, trace.barriers,
                       tuple(trace.events), tuple(btis))


# ---------------------------------------------------------------------------
# compiled kernel object + executors
# ---------------------------------------------------------------------------


class JitKernel:
    """A compiled megakernel for one program binding.

    Holds the generated source (``.source``, for inspection/tests), the
    functional and traced function variants, the shared
    :class:`PlanTable`, and a per-machine cache of template traces.
    Like a plan table, a :class:`JitKernel` is valid for exactly the
    program *object* it was compiled from.
    """

    def __init__(self, program, plans: Optional[PlanTable] = None) -> None:
        self.program = program
        if plans is not None and plans.matches(program):
            self.plans = plans
        else:
            self.plans = PlanTable(program)
        # Plan-building executor: bounds checks and region resolution
        # only; kept for template building (shares its region plans).
        self._pb = FunctionalExecutor()
        env = {"np": np, "_cv": convert}
        self.source, self.n_sends = _codegen(program, self._pb, env)
        code = compile(self.source, "<jit-megakernel>", "exec")
        fenv, tenv = dict(env), dict(env)
        k = 0
        for inst in program:
            if inst.opcode is Opcode.SEND:
                fenv[f"_send{k}"] = _functional_send(inst)
                tenv[f"_send{k}"] = _traced_send(inst, k)
                k += 1
        exec(code, fenv)
        exec(code, tenv)
        self.fn_functional = fenv["_mega"]
        self.fn_traced = tenv["_mega"]
        self._templates: dict = {}

    def matches(self, program) -> bool:
        return program is self.program

    def template(self, machine) -> JitTemplate:
        tmpl = self._templates.get(machine)
        if tmpl is None:
            tmpl = self._templates[machine] = _build_template(
                self.program, machine, self._pb, self.plans)
        return tmpl


def _refuse_sanitizer() -> None:
    raise ExecutionError(
        "sanitizer hooks cannot run on the JIT executor; "
        "use sequential dispatch for sanitized launches")


class JitExecutor(WideExecutor):
    """A :class:`WideExecutor` that runs a bound megakernel.

    ``run()`` dispatches to the compiled function when the program is
    the one the bound :class:`JitKernel` was compiled from, and falls
    back to the wide interpreter otherwise — binding can never change
    results, only speed.
    """

    def __init__(self, surfaces: Mapping[int, object] | None = None,
                 num_regs: int = 128, num_threads: int = 0) -> None:
        super().__init__(surfaces, num_regs, num_threads)
        self._jit: Optional[JitKernel] = None

    def bind_jit(self, jitk: Optional[JitKernel]) -> None:
        self._jit = jitk

    def run(self, program) -> None:
        jitk = self._jit
        if jitk is None or not jitk.matches(program):
            super().run(program)
            return
        if self.san is not None:
            _refuse_sanitizer()
        self.plans = jitk.plans
        jitk.fn_functional(self)
        self.instructions_executed += len(program)


class JitTracingExecutor(WideTracingExecutor):
    """A :class:`WideTracingExecutor` that runs a bound megakernel.

    Before calling the traced megakernel, ``run()`` installs the
    (program, machine) template: the launch trace's issue totals and the
    per-launch event prototypes (template events stamped with this
    launch's surface labels).  The megakernel's ``_send{k}`` closures
    append the per-thread line counts, and the inherited
    :meth:`~repro.isa.wide.WideTracingExecutor.drain_traces` fan-out
    produces traces bit-identical to the wide interpreter's.
    """

    def __init__(self, surfaces: Mapping[int, object] | None = None,
                 num_regs: int = 128, num_threads: int = 0) -> None:
        super().__init__(surfaces, num_regs, num_threads)
        self._jit: Optional[JitKernel] = None
        self._launch_events: list = []

    def bind_jit(self, jitk: Optional[JitKernel]) -> None:
        self._jit = jitk

    def run(self, program) -> None:
        jitk = self._jit
        if jitk is None or not jitk.matches(program):
            super().run(program)
            return
        if self.san is not None:
            _refuse_sanitizer()
        trace = self.trace
        if trace is None:
            raise ExecutionError(
                "begin_launch must be called before a traced JIT run")
        self.plans = jitk.plans
        tmpl = jitk.template(trace.machine)
        trace.inst_count = tmpl.inst_count
        trace.issue_cycles = tmpl.issue_cycles
        trace.barriers = tmpl.barriers
        surfs = self.surfaces
        self._launch_events = [
            dataclasses.replace(
                ev, surface=(getattr(surfs.get(bti), "obs_label", None)
                             or f"bti{bti}"))
            for ev, bti in zip(tmpl.events, tmpl.btis)]
        jitk.fn_traced(self)
        self.instructions_executed += len(program)

    def fold_chunk(self, acc, grf_bytes: int = 0) -> None:
        """Fold this chunk's timing straight into a
        :class:`~repro.sim.timing.TimingAccumulator`.

        Bit-identical to ``acc.extend(self.drain_traces())`` (with
        ``note_grf(grf_bytes)`` applied to each fanned-out trace) but
        without materializing T :class:`ThreadTrace` objects — on short
        programs the per-thread fan-out dominates the whole launch.
        Integer totals vectorize exactly; the float running sums (issue
        cycles, thread completion time) repeat the same per-thread
        addition sequence the scalar fold performs, so ``finalize()``
        produces the same :class:`KernelTiming` to the last bit.  The
        per-thread stall is thread-invariant under the JIT: every event's
        issue/consume positions come from the template, so
        ``exec_cycles()`` is one number for the whole chunk.
        """
        from repro.sim.timing import LINE_BYTES, SCATTER_CLASS

        tmpl = self.trace
        count = self.num_threads
        events = self._wide_events
        m = tmpl.machine
        issue = tmpl.issue_cycles
        stall = 0.0
        for we in events:
            e = we.ev
            if e.is_read and e.consumed_at is not None:
                covered = e.consumed_at - e.issue_at
                stall += max(0.0, e.latency(m) - covered)
        thread_time = issue + stall + tmpl.barriers * m.barrier_cycles

        acc.num_threads += count
        for _ in range(count):
            acc._total_issue += issue
            acc._total_thread_time += thread_time
        if count and thread_time > acc._max_thread_time:
            acc._max_thread_time = thread_time
        acc.total_instructions += tmpl.inst_count * count
        acc.barriers += tmpl.barriers * count
        acc.messages += len(events) * count
        if count and grf_bytes > acc.max_grf_bytes:
            acc.max_grf_bytes = grf_bytes

        for we in events:
            e = we.ev
            lines_sum = int(np.sum(we.lines, dtype=np.int64))
            dram_sum = int(np.sum(we.dram, dtype=np.int64))
            acc._dram_lines += dram_sum
            acc._l3_bytes += lines_sum * 64 if we.l3_from_lines \
                else e.l3_bytes * count
            acc.dram_bytes += dram_sum * LINE_BYTES
            if e.is_read:
                acc.global_read_bytes += e.nbytes * count
            else:
                acc.global_write_bytes += e.nbytes * count
            if e.kind is MemKind.SAMPLER:
                acc._texels += e.texels * count
            elif e.kind in SCATTER_CLASS:
                acc._dataport_bytes += e.nbytes * count
                acc._scatter_msgs += e.msgs * count
            else:
                acc._dataport_bytes += e.nbytes * count
                acc._block_msgs += e.msgs * count
            if we.words is not None:
                words = we.words.reshape(-1) if we.wmask is None \
                    else we.words[we.wmask]
                uniq, counts = np.unique(words, return_counts=True)
                sid = we.surface_id
                addrs = acc._atomic_addrs
                for w, c in zip(uniq.tolist(), counts.tolist()):
                    addrs[(sid, int(w))] += int(c)
        self._wide_events = []


# ---------------------------------------------------------------------------
# kernel-cache attachment
# ---------------------------------------------------------------------------

#: Sentinel stored on ``CompiledKernel._jit`` after a failed compile, so
#: ineligible kernels pay the compile attempt exactly once.
_INELIGIBLE = object()


def get_jit(kernel):
    """(megakernel or None, was_cached) for a CompiledKernel.

    The compiled :class:`JitKernel` is cached on the kernel object
    itself — right next to the program in the
    :class:`~repro.compiler.cache.KernelCache` — and released with it
    (:meth:`CompiledKernel.release_derived`).  Compile failures cache an
    ineligibility sentinel, so callers fall back to wide dispatch at
    zero recurring cost.
    """
    cur = kernel._jit
    if cur is not None:
        return (None if cur is _INELIGIBLE else cur), True
    with trace_span("jit:compile",
                    kernel=getattr(kernel, "name", "?")) as span:
        try:
            jitk = JitKernel(kernel.program, plans=kernel.plan_table())
        except JitError as exc:
            kernel._jit = _INELIGIBLE
            span.set(eligible=False, reason=str(exc))
            return None, False
        span.set(eligible=True, instructions=len(kernel.program))
    kernel._jit = jitk
    return jitk, False
