"""Gen ISA model.

This subpackage models the parts of the Intel Gen instruction set
architecture that the C-for-Metal paper relies on:

- typed SIMD instructions with per-instruction execution size,
- the general register file (GRF): 128 registers x 32 bytes, byte addressable,
- region-based operand addressing ``<V;W,H>`` (vertical stride, width,
  horizontal stride) that lets one instruction gather/scatter elements
  across registers at zero cost,
- execution masks and predication,
- a functional executor used to run programs produced by the CM compiler
  back end (``repro.compiler``).
"""

from repro.isa.dtypes import (
    DType,
    UB, B, UW, W, UD, D, UQ, Q, F, DF, HF,
    dtype_from_numpy,
)
from repro.isa.regions import Region, RegionDesc, region_element_offsets
from repro.isa.grf import GRF_SIZE_BYTES, NUM_GRF, GRFFile, RegOperand
from repro.isa.instructions import Instruction, Opcode, Immediate
from repro.isa.executor import FunctionalExecutor

__all__ = [
    "DType",
    "UB", "B", "UW", "W", "UD", "D", "UQ", "Q", "F", "DF", "HF",
    "dtype_from_numpy",
    "Region", "RegionDesc", "region_element_offsets",
    "GRF_SIZE_BYTES", "NUM_GRF", "GRFFile", "RegOperand",
    "Instruction", "Opcode", "Immediate",
    "FunctionalExecutor",
]
