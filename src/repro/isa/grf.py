"""The Gen general register file (GRF).

Each hardware thread owns a dedicated, byte-addressable register file of
128 registers x 32 bytes = 4 KB.  Operands address it as
``r<reg>.<subreg>`` where ``subreg`` is in element units of the operand's
type.  Region addressing (:mod:`repro.isa.regions`) turns a single operand
into a strided gather/scatter over these bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa.dtypes import DType
from repro.isa.regions import Region, region_element_offsets

GRF_SIZE_BYTES = 32
NUM_GRF = 128


@dataclass(frozen=True)
class RegOperand:
    """A physical register operand: ``r<reg>.<subreg><region>:<type>``.

    ``subreg`` is in element units of ``dtype`` (Gen assembly convention).
    ``dst_stride`` is used when the operand is a destination (``<H>``).
    """

    reg: int
    subreg: int
    dtype: DType
    region: Region = Region.scalar()
    dst_stride: int = 1

    @property
    def byte_offset(self) -> int:
        return self.reg * GRF_SIZE_BYTES + self.subreg * self.dtype.size

    def src_str(self) -> str:
        return f"r{self.reg}.{self.subreg}{self.region}:{self.dtype.name}"

    def dst_str(self) -> str:
        return f"r{self.reg}.{self.subreg}<{self.dst_stride}>:{self.dtype.name}"

    def __str__(self) -> str:
        return self.src_str()


class GRFFile:
    """A 4 KB byte-addressable register file with region access.

    The backing store is a flat ``uint8`` array; typed views are taken per
    access so that an instruction reading floats out of bytes written by a
    raw block load behaves exactly like hardware.
    """

    def __init__(self, num_regs: int = NUM_GRF) -> None:
        self.bytes = np.zeros(num_regs * GRF_SIZE_BYTES, dtype=np.uint8)

    # -- raw byte access -------------------------------------------------

    def write_bytes(self, byte_offset: int, data: np.ndarray) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).ravel()
        end = byte_offset + raw.size
        if end > self.bytes.size:
            raise IndexError(
                f"GRF write of {raw.size} bytes at offset {byte_offset} "
                f"overruns the {self.bytes.size}-byte register file")
        self.bytes[byte_offset:end] = raw

    def read_bytes(self, byte_offset: int, nbytes: int) -> np.ndarray:
        end = byte_offset + nbytes
        if end > self.bytes.size:
            raise IndexError(
                f"GRF read of {nbytes} bytes at offset {byte_offset} "
                f"overruns the {self.bytes.size}-byte register file")
        return self.bytes[byte_offset:end].copy()

    # -- typed region access ----------------------------------------------

    def _element_byte_offsets(self, base_byte: int, dtype: DType,
                              region: Region, n: int) -> np.ndarray:
        offs = base_byte + region_element_offsets(region, n) * dtype.size
        if offs.size and (offs.min() < 0 or offs.max() + dtype.size > self.bytes.size):
            raise IndexError(
                f"region access [{offs.min()}, {offs.max() + dtype.size}) "
                f"outside the {self.bytes.size}-byte register file")
        return offs

    def read_region(self, operand: RegOperand, n: int) -> np.ndarray:
        """Gather ``n`` elements through a source region."""
        offs = self._element_byte_offsets(
            operand.byte_offset, operand.dtype, operand.region, n)
        size = operand.dtype.size
        idx = offs[:, None] + np.arange(size)
        return self.bytes[idx].copy().view(operand.dtype.np_dtype).ravel()

    def write_region(self, operand: RegOperand, values: np.ndarray,
                     mask: np.ndarray | None = None) -> None:
        """Scatter elements through a destination region, honouring a mask."""
        values = np.ascontiguousarray(values, dtype=operand.dtype.np_dtype)
        n = values.size
        region = Region(n * operand.dst_stride, n, operand.dst_stride)
        offs = self._element_byte_offsets(
            operand.byte_offset, operand.dtype, region, n)
        size = operand.dtype.size
        raw = values.view(np.uint8).reshape(n, size)
        idx = offs[:, None] + np.arange(size)
        if mask is None:
            self.bytes[idx] = raw
        else:
            keep = np.asarray(mask, dtype=bool)
            self.bytes[idx[keep]] = raw[keep]

    def dump_reg(self, reg: int, dtype: DType) -> np.ndarray:
        """Debug helper: one register's contents viewed as ``dtype``."""
        start = reg * GRF_SIZE_BYTES
        return self.bytes[start:start + GRF_SIZE_BYTES].view(dtype.np_dtype).copy()
