"""Grid-vectorized ("wide") execution of straight-line Gen programs.

The paper's thesis is that explicit SIMD wins by issuing whole-vector
operations in one step instead of emulating lanes.  The sequential
dispatch path in :mod:`repro.sim.device` ironically does the SIMT
thing one level up: it re-interprets the same straight-line program
once per hardware thread, paying ``grid_size x program_length`` Python
dispatch steps.  Because compiled programs are straight-line (the ISA
has no control flow; divergence is expressed through execution masks),
every thread executes the identical instruction sequence — so the
thread loop can be hoisted *inside* each NumPy op.

:class:`WideExecutor` stacks T per-thread register files into one
``(T, 4096)`` uint8 array and executes each :class:`Instruction` once
for all T threads:

- region plans stay the per-program column-index arrays the scalar
  executor memoizes; fetches become ``grf2d[:, idx]`` (T, n) views;
- ALU ops, conversions, and saturation run on ``(T, exec_size)``
  arrays; flags become ``(T, 32)`` bools;
- block SEND messages batch into strided copies across threads, and
  gather/scatter/atomic flatten into ``(T*n)`` offset vectors with a
  per-thread lane mask.  Atomics apply in thread order (integer
  add/sub/inc/dec through a grouped prefix-sum reduction; everything
  else through the sequential lane loop on the flattened vector), so
  results stay bit-identical to per-thread execution.

:class:`WideTracingExecutor` additionally produces per-thread
:class:`~repro.sim.trace.ThreadTrace` streams.  For straight-line
programs every issue-timeline quantity (instruction counts, issue
cycles, event issue/consume positions) is *thread-invariant* — only
per-event cache-line footprints and atomic addresses differ across
threads — so the wide path drives a single template trace and fans it
out per thread with the per-thread line counts recorded by the
vectorized surface marking.  :class:`~repro.sim.timing.
TimingAccumulator` and the time-breakdown profiler see exactly the
traces the sequential path would have produced.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import numpy as np

from repro.isa.dtypes import UD, convert
from repro.isa.executor import (
    ExecutionError, FunctionalExecutor, _alu_compute, _contiguous_region,
)
from repro.isa.grf import GRF_SIZE_BYTES, RegOperand
from repro.isa.instructions import Immediate, Instruction, MsgKind, Opcode
from repro.isa.msg_geometry import (
    media_block_messages, oword_block_messages, scatter_messages,
)
from repro.memory.surfaces import Surface
from repro.sim.batch import TracingExecutor
from repro.sim.trace import MemEvent, MemKind, ThreadTrace

#: Message kinds the wide path knows how to vectorize (currently all of
#: them; the check guards against future kinds silently mis-executing).
_WIDE_MSG_KINDS = frozenset({
    MsgKind.MEDIA_BLOCK_READ, MsgKind.MEDIA_BLOCK_WRITE,
    MsgKind.OWORD_BLOCK_READ, MsgKind.OWORD_BLOCK_WRITE,
    MsgKind.GATHER, MsgKind.SCATTER, MsgKind.ATOMIC,
})


def wide_eligible(program: Iterable[Instruction]) -> bool:
    """Whether a compiled program can run on the wide path.

    The ISA is straight-line (no control flow), so the only thing that
    can disqualify a program is a message kind the vectorized SEND
    handlers do not cover.
    """
    for inst in program:
        if inst.opcode is Opcode.SEND:
            msg = inst.msg
            if msg is None or msg.kind not in _WIDE_MSG_KINDS:
                return False
    return True


class WideScratch(Surface):
    """Per-thread scratch (spill) storage for a wide chunk.

    The sequential path binds one shared scratch surface and zeroes it
    before each thread; threads running *simultaneously* need private
    rows instead, so actual storage is a ``(T, scratch_bytes)`` array.
    Cache-line tracking stays shared across threads (and across chunks,
    via :meth:`resize`): the first thread to spill a line pays DRAM,
    later threads hit L3 — exactly what the sequential shared surface
    models.
    """

    def __init__(self, num_threads: int, nbytes: int) -> None:
        super().__init__(np.zeros(nbytes, dtype=np.uint8))
        self.bytes2d = np.zeros((num_threads, nbytes), dtype=np.uint8)
        self.obs_label = "scratch"

    def resize(self, num_threads: int) -> None:
        """Fresh zeroed rows for the next chunk; line tracking persists."""
        self.bytes2d = np.zeros((num_threads, self.bytes.size),
                                dtype=np.uint8)

    def read_linear_many(self, byte_offsets, nbytes: int) -> np.ndarray:
        offs = np.asarray(byte_offsets, dtype=np.int64)
        if offs.size:
            self._check(int(offs.min()), 0)
            self._check(int(offs.max()), nbytes)
        idx = offs[:, None] + np.arange(nbytes)
        return np.take_along_axis(self.bytes2d, idx, axis=1)

    def write_linear_many(self, byte_offsets, data: np.ndarray) -> None:
        offs = np.asarray(byte_offsets, dtype=np.int64)
        raw = np.ascontiguousarray(data).view(np.uint8)
        raw = raw.reshape(self.bytes2d.shape[0], -1)
        if offs.size:
            self._check(int(offs.min()), 0)
            self._check(int(offs.max()), raw.shape[1])
        idx = offs[:, None] + np.arange(raw.shape[1])
        np.put_along_axis(self.bytes2d, idx, raw, axis=1)


class WideExecutor(FunctionalExecutor):
    """Execute one straight-line program for T threads at once.

    The inherited :class:`FunctionalExecutor` machinery is reused for
    everything thread-invariant — operand region plans, immediate
    caches, per-instruction ALU/CMP plans (``self.grf`` serves purely
    as the plan builder and bounds checker).  Architectural state lives
    in :attr:`grf2d` (``(T, num_regs*32)`` uint8) and ``(T, 32)`` flag
    arrays; every override swaps a per-lane op for the same op on a
    ``(T, ...)`` array.
    """

    def __init__(self, surfaces: Mapping[int, object] | None = None,
                 num_regs: int = 128, num_threads: int = 0) -> None:
        super().__init__(surfaces, num_regs)
        self.num_threads = num_threads
        self.grf2d = np.zeros((num_threads, self.grf.bytes.size),
                              dtype=np.uint8)

    def run(self, program) -> None:
        # Sanitizer hooks assume one thread's register file and lane
        # masks; sanitized launches are always sequential (the race
        # verdict is what *admits* a program to the wide path).
        if self.san is not None:
            raise ExecutionError(
                "sanitizer hooks cannot run on the wide executor; "
                "use sequential dispatch for sanitized launches")
        super().run(program)

    def reset(self, num_threads: Optional[int] = None) -> None:
        """Zero architectural state, optionally resizing to a new T."""
        if num_threads is not None and num_threads != self.num_threads:
            self.num_threads = num_threads
            self.grf2d = np.zeros((num_threads, self.grf.bytes.size),
                                  dtype=np.uint8)
        else:
            self.grf2d.fill(0)
        self.flags.clear()
        self.instructions_executed = 0

    def seed_scalar(self, byte_offset: int, values: np.ndarray) -> None:
        """Seed a 4-byte scalar parameter column (one int32 per thread)."""
        vals = np.ascontiguousarray(np.asarray(values, dtype=np.int32))
        self.grf2d[:, byte_offset:byte_offset + 4] = \
            vals.view(np.uint8).reshape(self.num_threads, 4)

    # -- operand access (wide) --------------------------------------------

    def _fetch(self, src, exec_size: int) -> np.ndarray:
        if isinstance(src, RegOperand):
            # np.take (not grf2d[:, idx]): mixed basic/advanced indexing
            # can return an F-ordered copy, which .view() rejects.
            idx = self._src_plan(src, exec_size)
            return np.take(self.grf2d, idx.reshape(-1),
                           axis=1).view(src.dtype.np_dtype)
        return super()._fetch(src, exec_size)  # immediates broadcast (n,)

    def _write_dst(self, operand: RegOperand, values: np.ndarray,
                   mask: np.ndarray | None = None,
                   idx: np.ndarray | None = None) -> None:
        dtype = operand.dtype.np_dtype
        T = self.num_threads
        values = np.asarray(values)
        n = values.shape[-1]
        if idx is None:
            idx = self._dst_plan(operand, n)
        if values.shape != (T, n) or values.dtype != dtype or \
                not values.flags["C_CONTIGUOUS"]:
            values = np.ascontiguousarray(
                np.broadcast_to(values, (T, n)), dtype=dtype)
        raw = values.view(np.uint8).reshape(T, n, operand.dtype.size)
        if mask is None:
            self.grf2d[:, idx] = raw
        else:
            keep = np.asarray(mask, dtype=bool)
            if keep.ndim == 1:
                keep = np.broadcast_to(keep, (T, n))
            cur = self.grf2d[:, idx]  # (T, n, size) read-modify-write
            np.copyto(cur, raw, where=keep[:, :, None])
            self.grf2d[:, idx] = cur

    def _flag_lanes(self, index: int) -> np.ndarray:
        f = self.flags.get(index)
        if f is None:
            f = np.zeros((self.num_threads, 32), dtype=bool)
            self.flags[index] = f
        return f

    def _pred_mask(self, inst: Instruction) -> np.ndarray | None:
        if inst.pred is None:
            return None
        lanes = self._flag_lanes(inst.pred.flag.index)[:, : inst.exec_size]
        return ~lanes if inst.pred.invert else lanes.copy()

    # -- ALU (wide) --------------------------------------------------------

    def _execute_alu(self, inst: Instruction) -> None:
        dst = inst.dst
        if dst is None:
            raise ExecutionError(f"ALU instruction without destination: {inst}")
        _, fetchers, exec_dtype, dst_idx, nopred = self._alu_plan(inst)
        grf2d = self.grf2d
        srcs = [payload if idx is None else
                np.take(grf2d, idx.reshape(-1), axis=1).view(payload)
                for idx, payload in fetchers]

        if inst.opcode is Opcode.MOV:
            result = srcs[0]
        elif inst.opcode is Opcode.SEL:
            mask = self._pred_mask(inst)
            if mask is None:
                raise ExecutionError("sel requires a predicate")
            result = np.where(mask, srcs[0], srcs[1])
            inst = nopred
        else:
            ops = [s if s.dtype == exec_dtype.np_dtype else
                   convert(s, exec_dtype) for s in srcs]
            result = _alu_compute(inst, exec_dtype, ops)

        if inst.sat or result.dtype != dst.dtype.np_dtype:
            result = convert(result, dst.dtype, saturate=inst.sat)
        self._write_dst(dst, result, mask=self._pred_mask(inst), idx=dst_idx)

    def _execute_cmp(self, inst: Instruction) -> None:
        _, fetchers, exec_dtype, cmp_fn, dst_idx = self._cmp_plan(inst)
        grf2d = self.grf2d
        a, b = [payload if idx is None else
                np.take(grf2d, idx.reshape(-1), axis=1).view(payload)
                for idx, payload in fetchers]
        result = np.broadcast_to(
            cmp_fn(convert(a, exec_dtype), convert(b, exec_dtype)),
            (self.num_threads, inst.exec_size))
        flag = self._flag_lanes(inst.flag.index if inst.flag else 0)
        flag[:, : inst.exec_size] = result
        if inst.dst is not None:
            self._write_dst(inst.dst, result.astype(inst.dst.dtype.np_dtype),
                            idx=dst_idx)

    # -- memory (wide) ----------------------------------------------------

    def _scalar_vec(self, src) -> np.ndarray:
        """A per-message scalar address operand as a (T,) int64 column."""
        if isinstance(src, Immediate):
            return np.full(self.num_threads, int(src.value), dtype=np.int64)
        idx = self._src_plan(src, 1)
        return np.take(self.grf2d, idx.reshape(-1), axis=1) \
            .view(src.dtype.np_dtype).reshape(-1).astype(np.int64)

    def _load_payload(self, base: int, nbytes: int) -> np.ndarray:
        self._check_payload(base, nbytes)
        return self.grf2d[:, base:base + nbytes]

    def _store_payload(self, base: int, data: np.ndarray) -> None:
        self._check_payload(base, data.shape[1])
        self.grf2d[:, base:base + data.shape[1]] = data

    def _check_payload(self, base: int, nbytes: int) -> None:
        if base < 0 or base + nbytes > self.grf2d.shape[1]:
            raise IndexError(
                f"GRF payload of {nbytes} bytes at offset {base} overruns "
                f"the {self.grf2d.shape[1]}-byte register file")

    def _execute_send(self, inst: Instruction) -> None:
        msg = inst.msg
        if msg is None:
            raise ExecutionError("send without message descriptor")
        surf = self._surface(msg.surface)
        kind = msg.kind
        base = msg.payload_reg * GRF_SIZE_BYTES
        T = self.num_threads

        if kind is MsgKind.MEDIA_BLOCK_READ:
            x = self._scalar_vec(msg.addr0)
            y = self._scalar_vec(msg.addr1)
            w, h = msg.block_width, msg.block_height
            block = surf.read_block_many(x, y, w, h)  # (T, h, w)
            self._store_payload(base, block.reshape(T, -1))
        elif kind is MsgKind.MEDIA_BLOCK_WRITE:
            x = self._scalar_vec(msg.addr0)
            y = self._scalar_vec(msg.addr1)
            w, h = msg.block_width, msg.block_height
            data = np.ascontiguousarray(self._load_payload(base, w * h))
            surf.write_block_many(x, y, w, h, data.reshape(T, h, w))
        elif kind is MsgKind.OWORD_BLOCK_READ:
            offset = self._scalar_vec(msg.addr0)
            self._store_payload(
                base, surf.read_linear_many(offset, msg.payload_bytes))
        elif kind is MsgKind.OWORD_BLOCK_WRITE:
            offset = self._scalar_vec(msg.addr0)
            surf.write_linear_many(
                offset, self._load_payload(base, msg.payload_bytes))
        elif kind in (MsgKind.GATHER, MsgKind.SCATTER, MsgKind.ATOMIC):
            self._execute_scattered(inst, surf)
        else:
            raise ExecutionError(f"unhandled message kind {kind}")

    def _execute_scattered(self, inst: Instruction, surf) -> None:
        msg = inst.msg
        n = inst.exec_size
        T = self.num_threads
        addr_op = RegOperand(msg.addr_reg, 0, UD,
                             region=_contiguous_region(n))
        offsets = self._fetch(addr_op, n).astype(np.int64)  # (T, n)
        if msg.addr0 is not None:
            offsets = offsets + self._scalar_vec(msg.addr0)[:, None]
        elem = msg.elem_dtype
        offsets = offsets * elem.size
        base = msg.payload_reg * GRF_SIZE_BYTES
        mask = self._pred_mask(inst)
        # Flatten thread-major: lane order within a thread, threads in
        # ascending id — the exact order the sequential dispatch loop
        # performs these accesses, so overlap/atomic semantics match.
        flat = offsets.reshape(-1)
        fmask = None if mask is None else mask.reshape(-1)

        if msg.kind is MsgKind.GATHER:
            data = surf.gather(flat, elem, mask=fmask)
            self._store_payload(base, data.reshape(T, n).view(np.uint8))
        elif msg.kind is MsgKind.SCATTER:
            raw = np.ascontiguousarray(
                self._load_payload(base, n * elem.size)).view(elem.np_dtype)
            surf.scatter(flat, raw.reshape(-1), mask=fmask)
        else:  # ATOMIC
            operands = None
            if msg.payload_bytes:
                operands = np.ascontiguousarray(
                    self._load_payload(base, n * elem.size)) \
                    .view(elem.np_dtype).reshape(-1)
            old = _wide_atomic(surf, msg.atomic_op, flat, operands, elem,
                               fmask)
            if inst.dst is not None:
                self._write_dst(inst.dst, old.reshape(T, n), mask=mask)


_FAST_ATOMIC_OPS = frozenset({"add", "sub", "inc", "dec"})


def _wide_atomic(surf, op: str, offsets: np.ndarray,
                 operands: Optional[np.ndarray], elem,
                 mask: Optional[np.ndarray]) -> np.ndarray:
    """Apply a flattened (T*n)-lane atomic in thread order.

    Integer add/sub/inc/dec commute up to ordering of the *returned* old
    values, which a stable sort by address plus a grouped exclusive
    prefix sum reconstructs exactly (modular integer addition is
    order-independent); everything else (min/max/bitwise/xchg, float
    adds) falls back to the sequential lane loop on the flattened
    vector, which is the same order the per-thread path applies.
    """
    old = _fast_int_atomic(surf, op, offsets, operands, elem, mask)
    if old is None:
        old = surf.atomic(op, offsets, operands, elem, mask=mask)
    return old


def _fast_int_atomic(surf, op, offsets, operands, elem, mask):
    if op not in _FAST_ATOMIC_OPS or elem.is_float:
        return None
    n = len(offsets)
    old = np.zeros(n, dtype=elem.np_dtype)
    act = np.arange(n) if mask is None else \
        np.flatnonzero(np.asarray(mask, dtype=bool))
    if act.size == 0:
        return old
    offs = offsets[act]
    if np.any(offs % elem.size):
        return None  # misaligned: the lane loop raises the right error
    idx = offs // elem.size
    if op in ("add", "sub"):
        delta = operands[act].astype(elem.np_dtype, copy=True)
    else:  # inc / dec
        delta = np.ones(act.size, dtype=elem.np_dtype)
    if op in ("sub", "dec"):
        delta = np.negative(delta)  # modular: wraps like cur - src

    order = np.argsort(idx, kind="stable")  # stable: keeps thread order
    sidx = idx[order]
    sdelta = delta[order]
    csum = np.cumsum(sdelta, dtype=elem.np_dtype)  # wraps like hardware
    head = np.ones(sidx.size, dtype=bool)
    head[1:] = sidx[1:] != sidx[:-1]
    excl = csum - sdelta
    group_base = excl[head]
    seg_id = np.cumsum(head) - 1
    view = surf.bytes.view(elem.np_dtype)
    init = view[sidx[head]]  # value before this message, per address
    old_sorted = init[seg_id] + (excl - group_base[seg_id])
    last = np.flatnonzero(np.concatenate([head[1:], [True]]))
    view[sidx[head]] = init + (csum[last] - group_base)
    old_act = np.empty(act.size, dtype=elem.np_dtype)
    old_act[order] = old_sorted
    old[act] = old_act
    return old


class _WideEvent:
    """Per-thread data for one template memory event."""

    __slots__ = ("ev", "lines", "dram", "l3_from_lines", "words", "wmask",
                 "surface_id")

    def __init__(self, ev: MemEvent, lines: np.ndarray, dram: np.ndarray,
                 l3_from_lines: bool, words=None, wmask=None,
                 surface_id: int = 0) -> None:
        self.ev = ev
        self.lines = lines
        self.dram = dram
        self.l3_from_lines = l3_from_lines
        self.words = words
        self.wmask = wmask
        self.surface_id = surface_id


class WideTracingExecutor(WideExecutor, TracingExecutor):
    """A :class:`WideExecutor` that reconstructs per-thread traces.

    Execution drives a single *template* :class:`ThreadTrace`: for a
    straight-line program, instruction counts, issue cycles, message
    issue positions, and load-use consumption distances are identical
    for every thread (no per-thread cost in the model depends on data
    values).  The only per-thread quantities — cache-line footprints
    and atomic target addresses — are recorded as (T,) vectors by the
    vectorized surface marking.  :meth:`drain_traces` fans the template
    out into T real traces, which feed the accumulators in thread
    order, bit-identical to sequential dispatch.

    Inherits the dependency/ALU accounting of
    :class:`~repro.sim.batch.TracingExecutor` unchanged (those are
    thread-invariant) and overrides only the SEND accounting.
    """

    def __init__(self, surfaces: Mapping[int, object] | None = None,
                 num_regs: int = 128, num_threads: int = 0) -> None:
        super().__init__(surfaces, num_regs, num_threads)
        self._wide_events: list[_WideEvent] = []

    def begin_launch(self, machine) -> None:
        """Attach a fresh template trace for the next chunk."""
        self.begin_thread(ThreadTrace(machine))
        self._wide_events = []

    # -- memory accounting (wide) -----------------------------------------

    def _account_send(self, inst: Instruction) -> None:
        msg = inst.msg
        surf = self._surface(msg.surface)
        trace = self.trace
        kind = msg.kind
        label = getattr(surf, "obs_label", None) or f"bti{msg.surface}"

        if kind in (MsgKind.MEDIA_BLOCK_READ, MsgKind.MEDIA_BLOCK_WRITE):
            x = self._scalar_vec(msg.addr0)
            y = self._scalar_vec(msg.addr1)
            w, h = msg.block_width, msg.block_height
            nbytes = w * h
            lines, new = surf.mark_lines_block2d_many(x, y, w, h, surf.pitch)
            messages = media_block_messages(w, h)
            self._extra_messages(messages)
            is_read = kind is MsgKind.MEDIA_BLOCK_READ
            ev = trace.memory(
                MemKind.BLOCK2D_READ if is_read else MemKind.BLOCK2D_WRITE,
                nbytes=nbytes, lines=0, dram_lines=0, l3_bytes=nbytes,
                msgs=messages, is_read=is_read, surface=label)
            self._wide_events.append(_WideEvent(ev, lines, new, False))
            if is_read:
                self._register_load(msg.payload_reg, nbytes, ev)
        elif kind in (MsgKind.OWORD_BLOCK_READ, MsgKind.OWORD_BLOCK_WRITE):
            offset = self._scalar_vec(msg.addr0)
            nbytes = msg.payload_bytes
            lines, new = surf.mark_lines_range_many(offset, nbytes)
            messages = oword_block_messages(nbytes)
            self._extra_messages(messages)
            is_read = kind is MsgKind.OWORD_BLOCK_READ
            ev = trace.memory(
                MemKind.OWORD_READ if is_read else MemKind.OWORD_WRITE,
                nbytes=nbytes, lines=0, dram_lines=0, l3_bytes=nbytes,
                msgs=messages, is_read=is_read, surface=label)
            self._wide_events.append(_WideEvent(ev, lines, new, False))
            if is_read:
                self._register_load(msg.payload_reg, nbytes, ev)
        else:  # GATHER / SCATTER / ATOMIC
            n = inst.exec_size
            elem = msg.elem_dtype
            byte_offs = self._scattered_offsets(inst)  # (T, n)
            mask = self._pred_mask(inst)
            lines, new = surf.mark_lines_offsets_many(byte_offs, elem.size,
                                                      mask=mask)
            messages = scatter_messages(n)
            nbytes = n * elem.size
            if kind is MsgKind.GATHER:
                self._extra_messages(messages)
                ev = trace.memory(MemKind.GATHER, nbytes=nbytes, lines=0,
                                  dram_lines=0, l3_bytes=0, msgs=messages,
                                  surface=label)
                self._wide_events.append(_WideEvent(ev, lines, new, True))
                self._register_load(msg.payload_reg, nbytes, ev)
            elif kind is MsgKind.SCATTER:
                self._extra_messages(messages)
                ev = trace.memory(MemKind.SCATTER, nbytes=nbytes, lines=0,
                                  dram_lines=0, l3_bytes=0, msgs=messages,
                                  is_read=False, surface=label)
                self._wide_events.append(_WideEvent(ev, lines, new, True))
            else:  # ATOMIC
                ev = trace.memory(MemKind.ATOMIC, nbytes=nbytes, lines=0,
                                  dram_lines=0, l3_bytes=0, msgs=messages,
                                  surface=label)
                self._wide_events.append(_WideEvent(
                    ev, lines, new, True, words=byte_offs // 4,
                    wmask=None if mask is None else mask,
                    surface_id=id(surf)))
                if inst.dst is not None:
                    self._register_load(
                        inst.dst.byte_offset // GRF_SIZE_BYTES, nbytes, ev)

    def _scattered_offsets(self, inst: Instruction) -> np.ndarray:
        """(T, n) per-lane byte offsets (same math as execution)."""
        msg = inst.msg
        n = inst.exec_size
        addr_op = RegOperand(msg.addr_reg, 0, UD,
                             region=_contiguous_region(n))
        offsets = self._fetch(addr_op, n).astype(np.int64)
        if msg.addr0 is not None:
            offsets = offsets + self._scalar_vec(msg.addr0)[:, None]
        return offsets * msg.elem_dtype.size

    # -- trace fan-out -----------------------------------------------------

    def drain_traces(self) -> list[ThreadTrace]:
        """Fan the template trace out into T per-thread traces."""
        tmpl = self.trace
        events = self._wide_events
        out = []
        for t in range(self.num_threads):
            tr = ThreadTrace(tmpl.machine)
            tr.issue_cycles = tmpl.issue_cycles
            tr.inst_count = tmpl.inst_count
            tr.barriers = tmpl.barriers
            for we in events:
                e = we.ev
                lines = int(we.lines[t])
                tr.events.append(MemEvent(
                    kind=e.kind, nbytes=e.nbytes, lines=lines,
                    dram_lines=int(we.dram[t]),
                    l3_bytes=lines * 64 if we.l3_from_lines else e.l3_bytes,
                    msgs=e.msgs, texels=e.texels, slm_cycles=e.slm_cycles,
                    issue_at=e.issue_at, consumed_at=e.consumed_at,
                    is_read=e.is_read, surface=e.surface))
                if we.words is not None:
                    words = we.words[t] if we.wmask is None else \
                        we.words[t][we.wmask[t]]
                    tr.atomic_addrs.update(
                        (we.surface_id, int(w)) for w in words)
            out.append(tr)
        self._wide_events = []
        return out
