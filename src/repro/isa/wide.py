"""Grid-vectorized ("wide") execution of Gen programs.

The paper's thesis is that explicit SIMD wins by issuing whole-vector
operations in one step instead of emulating lanes.  The sequential
dispatch path in :mod:`repro.sim.device` ironically does the SIMT
thing one level up: it re-interprets the same program once per
hardware thread, paying ``grid_size x program_length`` Python dispatch
steps.  For straight-line programs every thread executes the identical
instruction sequence, so the thread loop can be hoisted *inside* each
NumPy op.

:class:`WideExecutor` stacks T per-thread register files into one
``(T, 4096)`` uint8 array and executes each :class:`Instruction` once
for all T threads:

- region plans stay the per-program column-index arrays the scalar
  executor memoizes; fetches become ``grf2d[:, idx]`` (T, n) views;
- ALU ops, conversions, and saturation run on ``(T, exec_size)``
  arrays; flags become ``(T, 32)`` bools;
- block SEND messages batch into strided copies across threads, and
  gather/scatter/atomic flatten into ``(T*n)`` offset vectors with a
  per-thread lane mask.  Atomics apply in thread order (integer
  add/sub/inc/dec through a grouped prefix-sum reduction; everything
  else through the sequential lane loop on the flattened vector), so
  results stay bit-identical to per-thread execution.

**Structured SIMD control flow** (:data:`~repro.isa.instructions.
CF_OPCODES`) keeps the same property with one twist.  The mask ops
(IF/ELSE/ENDIF/BREAK) are executed by every thread, so they never
split a group; only WHILE's back-edge makes per-thread PCs diverge.
The wide interpreter therefore runs a *group scheduler*: per-thread
PCs start together, the scheduler repeatedly picks the minimum live PC
and issues that instruction once for the whole group of threads parked
there, and the per-program reconvergence schedule (immediate
post-dominators, :meth:`~repro.isa.plans.PlanTable.cf_plan`) guarantees
groups re-merge at ENDIF/loop exits.  Divergence state is vectorized
exactly like the register file: ``(T, 32)`` active masks and
``(T, depth, 32)`` restore/else frame stacks whose depth is a *static*
function of the PC.  A chunk of T threads with data-divergent loop trip
counts still issues one NumPy op per executed instruction.

:class:`WideTracingExecutor` additionally produces per-thread
:class:`~repro.sim.trace.ThreadTrace` streams.  For straight-line
programs every issue-timeline quantity (instruction counts, issue
cycles, event issue/consume positions) is *thread-invariant*, so the
wide path drives a single template trace and fans it out per thread
with the per-thread line counts recorded by the vectorized surface
marking.  Under control flow those quantities become per-thread — each
thread's dynamic instruction stream depends on its data — so the
tracer switches to ``(T,)`` issue/instruction accumulators and per-row
memory-event records, replaying for every thread exactly the
accounting the sequential :class:`~repro.sim.batch.TracingExecutor`
performs in that thread's own dynamic order.  Either way,
:class:`~repro.sim.timing.TimingAccumulator` and the time-breakdown
profiler see exactly the traces the sequential path would have
produced.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

import numpy as np

from repro.isa.cfg import CFError, analyze_cf
from repro.isa.dtypes import UD, convert
from repro.isa.executor import (
    CF_STEP_LIMIT, ExecutionError, FunctionalExecutor, _alu_compute,
    _contiguous_region, _emask_off,
)
from repro.isa.grf import GRF_SIZE_BYTES, RegOperand
from repro.isa.instructions import (
    CF_OPCODES, Immediate, Instruction, MsgKind, Opcode,
)
from repro.isa.msg_geometry import (
    media_block_messages, oword_block_messages, scatter_messages,
)
from repro.memory.surfaces import Surface
from repro.sim.batch import CF_COSTS, TracingExecutor, _alu_cost
from repro.sim.trace import MemEvent, MemKind, ThreadTrace

#: Message kinds the wide path knows how to vectorize (currently all of
#: them; the check guards against future kinds silently mis-executing).
_WIDE_MSG_KINDS = frozenset({
    MsgKind.MEDIA_BLOCK_READ, MsgKind.MEDIA_BLOCK_WRITE,
    MsgKind.OWORD_BLOCK_READ, MsgKind.OWORD_BLOCK_WRITE,
    MsgKind.GATHER, MsgKind.SCATTER, MsgKind.ATOMIC,
})


def ineligible_reason(program: Iterable[Instruction]) -> Optional[str]:
    """Why a compiled program cannot run on the wide path (or ``None``).

    Two distinct refusals, surfaced separately in the device gate
    taxonomy:

    - ``"unsupported-message"`` — a SEND uses a message kind the
      vectorized handlers do not cover;
    - ``"malformed-control-flow"`` — the program contains structured-CF
      opcodes whose nesting does not validate (the group scheduler
      depends on the per-program reconvergence plan, so a program that
      has no plan has no wide schedule either).

    Structured control flow itself is *not* disqualifying: divergent
    programs run wide via per-thread PCs and mask stacks.
    """
    program = tuple(program)
    has_cf = False
    for inst in program:
        if inst.opcode is Opcode.SEND:
            msg = inst.msg
            if msg is None or msg.kind not in _WIDE_MSG_KINDS:
                return "unsupported-message"
        elif inst.opcode in CF_OPCODES:
            has_cf = True
    if has_cf:
        try:
            analyze_cf(program)
        except CFError:
            return "malformed-control-flow"
    return None


def wide_eligible(program: Iterable[Instruction]) -> bool:
    """Whether a compiled program can run on the wide path.

    Straight-line *and* structured-control-flow programs both qualify;
    see :func:`ineligible_reason` for what disqualifies one.
    """
    return ineligible_reason(program) is None


class WideScratch(Surface):
    """Per-thread scratch (spill) storage for a wide chunk.

    The sequential path binds one shared scratch surface and zeroes it
    before each thread; threads running *simultaneously* need private
    rows instead, so actual storage is a ``(T, scratch_bytes)`` array.
    Cache-line tracking stays shared across threads (and across chunks,
    via :meth:`resize`): the first thread to spill a line pays DRAM,
    later threads hit L3 — exactly what the sequential shared surface
    models.
    """

    def __init__(self, num_threads: int, nbytes: int) -> None:
        super().__init__(np.zeros(nbytes, dtype=np.uint8))
        self.bytes2d = np.zeros((num_threads, nbytes), dtype=np.uint8)
        self.obs_label = "scratch"

    def resize(self, num_threads: int) -> None:
        """Fresh zeroed rows for the next chunk; line tracking persists."""
        self.bytes2d = np.zeros((num_threads, self.bytes.size),
                                dtype=np.uint8)

    def read_linear_many(self, byte_offsets, nbytes: int,
                         rows=None) -> np.ndarray:
        """Per-thread reads; ``rows`` restricts to a subset of threads
        (one offset per listed row) for divergent partial groups."""
        offs = np.asarray(byte_offsets, dtype=np.int64)
        if offs.size:
            self._check(int(offs.min()), 0)
            self._check(int(offs.max()), nbytes)
        idx = offs[:, None] + np.arange(nbytes)
        src = self.bytes2d if rows is None else self.bytes2d[rows]
        return np.take_along_axis(src, idx, axis=1)

    def write_linear_many(self, byte_offsets, data: np.ndarray,
                          rows=None) -> None:
        offs = np.asarray(byte_offsets, dtype=np.int64)
        raw = np.ascontiguousarray(data).view(np.uint8)
        raw = raw.reshape(offs.shape[0], -1)
        if offs.size:
            self._check(int(offs.min()), 0)
            self._check(int(offs.max()), raw.shape[1])
        idx = offs[:, None] + np.arange(raw.shape[1])
        if rows is None:
            np.put_along_axis(self.bytes2d, idx, raw, axis=1)
        else:
            self.bytes2d[np.asarray(rows)[:, None], idx] = raw


class WideExecutor(FunctionalExecutor):
    """Execute one straight-line program for T threads at once.

    The inherited :class:`FunctionalExecutor` machinery is reused for
    everything thread-invariant — operand region plans, immediate
    caches, per-instruction ALU/CMP plans (``self.grf`` serves purely
    as the plan builder and bounds checker).  Architectural state lives
    in :attr:`grf2d` (``(T, num_regs*32)`` uint8) and ``(T, 32)`` flag
    arrays; every override swaps a per-lane op for the same op on a
    ``(T, ...)`` array.
    """

    def __init__(self, surfaces: Mapping[int, object] | None = None,
                 num_regs: int = 128, num_threads: int = 0) -> None:
        super().__init__(surfaces, num_regs)
        self.num_threads = num_threads
        self.grf2d = np.zeros((num_threads, self.grf.bytes.size),
                              dtype=np.uint8)
        # Divergence state, live only while _run_cf() is scheduling:
        # (T, 32) active masks, the current group's rows / (T, 1) row
        # mask, and whether the group covers every thread.
        self._wact: Optional[np.ndarray] = None
        self._rows: Optional[np.ndarray] = None
        self._rowm: Optional[np.ndarray] = None
        self._row_all = True

    def run(self, program) -> None:
        # Sanitizer hooks assume one thread's register file and lane
        # masks; sanitized launches are always sequential (the race
        # verdict is what *admits* a program to the wide path).
        if self.san is not None:
            raise ExecutionError(
                "sanitizer hooks cannot run on the wide executor; "
                "use sequential dispatch for sanitized launches")
        super().run(program)

    def reset(self, num_threads: Optional[int] = None) -> None:
        """Zero architectural state, optionally resizing to a new T."""
        if num_threads is not None and num_threads != self.num_threads:
            self.num_threads = num_threads
            self.grf2d = np.zeros((num_threads, self.grf.bytes.size),
                                  dtype=np.uint8)
        else:
            self.grf2d.fill(0)
        self.flags.clear()
        self.instructions_executed = 0
        self._wact = None
        self._rows = None
        self._rowm = None
        self._row_all = True

    def seed_scalar(self, byte_offset: int, values: np.ndarray) -> None:
        """Seed a 4-byte scalar parameter column (one int32 per thread)."""
        vals = np.ascontiguousarray(np.asarray(values, dtype=np.int32))
        self.grf2d[:, byte_offset:byte_offset + 4] = \
            vals.view(np.uint8).reshape(self.num_threads, 4)

    # -- operand access (wide) --------------------------------------------

    def _fetch(self, src, exec_size: int) -> np.ndarray:
        if isinstance(src, RegOperand):
            # np.take (not grf2d[:, idx]): mixed basic/advanced indexing
            # can return an F-ordered copy, which .view() rejects.
            idx = self._src_plan(src, exec_size)
            return np.take(self.grf2d, idx.reshape(-1),
                           axis=1).view(src.dtype.np_dtype)
        return super()._fetch(src, exec_size)  # immediates broadcast (n,)

    def _write_dst(self, operand: RegOperand, values: np.ndarray,
                   mask: np.ndarray | None = None,
                   idx: np.ndarray | None = None) -> None:
        dtype = operand.dtype.np_dtype
        T = self.num_threads
        values = np.asarray(values)
        n = values.shape[-1]
        if idx is None:
            idx = self._dst_plan(operand, n)
        if values.shape != (T, n) or values.dtype != dtype or \
                not values.flags["C_CONTIGUOUS"]:
            values = np.ascontiguousarray(
                np.broadcast_to(values, (T, n)), dtype=dtype)
        raw = values.view(np.uint8).reshape(T, n, operand.dtype.size)
        if mask is None:
            self.grf2d[:, idx] = raw
        else:
            keep = np.asarray(mask, dtype=bool)
            if keep.ndim == 1:
                keep = np.broadcast_to(keep, (T, n))
            cur = self.grf2d[:, idx]  # (T, n, size) read-modify-write
            np.copyto(cur, raw, where=keep[:, :, None])
            self.grf2d[:, idx] = cur

    def _flag_lanes(self, index: int) -> np.ndarray:
        f = self.flags.get(index)
        if f is None:
            f = np.zeros((self.num_threads, 32), dtype=bool)
            self.flags[index] = f
        return f

    def _pred_mask(self, inst: Instruction) -> np.ndarray | None:
        if inst.pred is None:
            return None
        lanes = self._flag_lanes(inst.pred.flag.index)[:, : inst.exec_size]
        return ~lanes if inst.pred.invert else lanes.copy()

    def _cf_active_lanes(self, inst: Instruction) -> np.ndarray | None:
        """Wide SIMD-CF write-enable: active-lane window AND group rows.

        ``None`` outside control flow, or when every thread is in the
        group with every covered lane active.  Unlike the sequential
        version, a scalar (exec_size 1) instruction still needs masking
        when the current group is partial — threads parked at other PCs
        must not observe its write — so the row mask applies even then.
        """
        act = self._wact
        if act is None:
            return None
        n = inst.exec_size
        m = None
        if n > 1:
            off = _emask_off(inst)
            if off + n > 32:
                raise ExecutionError(
                    f"operation covers lanes {off}..{off + n - 1} inside "
                    f"SIMD control flow (only 32 execution-mask channels "
                    f"exist)")
            m = act[:, off:off + n]
        if not self._row_all:
            rowm = self._rowm
            m = rowm if m is None else (m & rowm)
        elif m is not None and m.all():
            m = None
        return m

    # -- ALU (wide) --------------------------------------------------------

    def _execute_alu(self, inst: Instruction) -> None:
        dst = inst.dst
        if dst is None:
            raise ExecutionError(f"ALU instruction without destination: {inst}")
        _, fetchers, exec_dtype, dst_idx, nopred = self._alu_plan(inst)
        grf2d = self.grf2d
        srcs = [payload if idx is None else
                np.take(grf2d, idx.reshape(-1), axis=1).view(payload)
                for idx, payload in fetchers]

        if inst.opcode is Opcode.MOV:
            result = srcs[0]
        elif inst.opcode is Opcode.SEL:
            mask = self._pred_mask(inst)
            if mask is None:
                raise ExecutionError("sel requires a predicate")
            result = np.where(mask, srcs[0], srcs[1])
            inst = nopred
        else:
            ops = [s if s.dtype == exec_dtype.np_dtype else
                   convert(s, exec_dtype) for s in srcs]
            result = _alu_compute(inst, exec_dtype, ops)

        if inst.sat or result.dtype != dst.dtype.np_dtype:
            result = convert(result, dst.dtype, saturate=inst.sat)
        self._write_dst(dst, result, mask=self._exec_mask(inst), idx=dst_idx)

    def _execute_cmp(self, inst: Instruction) -> None:
        _, fetchers, exec_dtype, cmp_fn, dst_idx = self._cmp_plan(inst)
        grf2d = self.grf2d
        a, b = [payload if idx is None else
                np.take(grf2d, idx.reshape(-1), axis=1).view(payload)
                for idx, payload in fetchers]
        result = np.broadcast_to(
            cmp_fn(convert(a, exec_dtype), convert(b, exec_dtype)),
            (self.num_threads, inst.exec_size))
        lanes = self._cf_active_lanes(inst)
        flag = self._flag_lanes(inst.flag.index if inst.flag else 0)
        if lanes is None:
            flag[:, : inst.exec_size] = result
        else:
            np.copyto(flag[:, : inst.exec_size], result, where=lanes)
        if inst.dst is not None:
            self._write_dst(inst.dst, result.astype(inst.dst.dtype.np_dtype),
                            mask=lanes, idx=dst_idx)

    # -- SIMD control flow (wide group scheduler) -------------------------

    def _run_cf(self, program) -> None:
        """Group-scheduled dispatch for programs with SIMD control flow.

        Per-thread PCs start at 0; the scheduler repeatedly selects the
        minimum live PC, gathers the group of threads parked there, and
        issues that instruction once for the whole group.  Because the
        mask ops are executed by every thread and only WHILE jumps,
        groups split exclusively at loop back-edges and — by the
        per-program reconvergence plan — re-merge at the loop exit, so
        a chunk still pays one NumPy op per executed instruction.
        Frame state is ``(T, depth, 32)``: ``depth_at`` is static per
        PC, so all threads in a group share frame structure.
        """
        plan = self.plans.cf_plan()
        T = self.num_threads
        n = len(program)
        depth = max(plan.max_depth, 1)
        pcs = np.zeros(T, dtype=np.int64)
        act = np.ones((T, 32), dtype=bool)
        restore = np.zeros((T, depth, 32), dtype=bool)
        pending = np.zeros((T, depth, 32), dtype=bool)
        self._wact = act
        steps = 0
        try:
            while True:
                live = pcs < n
                if not live.any():
                    break
                pc = int(pcs[live].min())
                group = pcs == pc
                rows = np.flatnonzero(group)
                steps += 1
                if steps > CF_STEP_LIMIT:
                    raise ExecutionError(
                        f"SIMD control flow executed more than "
                        f"{CF_STEP_LIMIT} instructions (runaway loop?)")
                inst = program[pc]
                self._rows = rows
                self._rowm = group[:, None]
                self._row_all = rows.size == T
                if inst.opcode in CF_OPCODES:
                    self.instructions_executed += 1
                    self._exec_cf_wide(inst, pc, rows, act, restore,
                                       pending, pcs, plan)
                    self._account_cf(inst, rows)
                else:
                    self.execute(inst)
                    pcs[rows] = pc + 1
        finally:
            self._wact = None
            self._rows = None
            self._rowm = None
            self._row_all = True

    def _cf_cond_wide(self, inst: Instruction, rows: np.ndarray,
                      act: np.ndarray) -> np.ndarray:
        """The (R, 32) lane sets an IF/WHILE/BREAK acts on, per group
        row: predicate flag lanes (all lanes when unpredicated) ANDed
        with each thread's current active mask."""
        cur = act[rows]
        if inst.pred is None:
            return cur
        lanes = self._flag_lanes(inst.pred.flag.index)[rows, : inst.exec_size]
        if inst.pred.invert:
            lanes = ~lanes
        cond = np.zeros((rows.size, 32), dtype=bool)
        cond[:, : inst.exec_size] = lanes
        cond &= cur
        return cond

    def _exec_cf_wide(self, inst, pc, rows, act, restore, pending, pcs,
                      plan) -> None:
        """Vectorized mask-frame semantics (mirrors the sequential
        ``_execute_cf`` exactly, for a whole group of threads)."""
        op = inst.opcode
        d = plan.depth_at[pc]
        if op is Opcode.SIMD_IF:
            cond = self._cf_cond_wide(inst, rows, act)
            cur = act[rows]
            restore[rows, d] = cur
            pending[rows, d] = cur & ~cond
            act[rows] = cond
        elif op is Opcode.SIMD_ELSE:
            act[rows] = pending[rows, d - 1]
        elif op is Opcode.SIMD_ENDIF:
            act[rows] = restore[rows, d - 1]
        elif op is Opcode.SIMD_DO:
            restore[rows, d] = act[rows]
        elif op is Opcode.SIMD_WHILE:
            cond = self._cf_cond_wide(inst, rows, act)
            again = cond.any(axis=1)
            loop_rows = rows[again]
            exit_rows = rows[~again]
            if loop_rows.size:
                act[loop_rows] = cond[again]
                pcs[loop_rows] = plan.body_of[pc]
            if exit_rows.size:
                act[exit_rows] = restore[exit_rows, d - 1]
                pcs[exit_rows] = pc + 1
            return
        else:  # SIMD_BREAK
            cond = self._cf_cond_wide(inst, rows, act)
            act[rows] = act[rows] & ~cond
            # Broken lanes leave every IF frame up to the innermost
            # loop too (see the sequential executor).
            for lvl in plan.break_clear[pc]:
                restore[rows, lvl] = restore[rows, lvl] & ~cond
                pending[rows, lvl] = pending[rows, lvl] & ~cond
        pcs[rows] = pc + 1

    def _account_cf(self, inst: Instruction, rows: np.ndarray) -> None:
        """Timing hook for CF opcodes (no-op without tracing)."""

    # -- memory (wide) ----------------------------------------------------

    def _scalar_vec(self, src) -> np.ndarray:
        """A per-message scalar address operand as a (T,) int64 column."""
        if isinstance(src, Immediate):
            return np.full(self.num_threads, int(src.value), dtype=np.int64)
        idx = self._src_plan(src, 1)
        return np.take(self.grf2d, idx.reshape(-1), axis=1) \
            .view(src.dtype.np_dtype).reshape(-1).astype(np.int64)

    def _load_payload(self, base: int, nbytes: int) -> np.ndarray:
        self._check_payload(base, nbytes)
        return self.grf2d[:, base:base + nbytes]

    def _store_payload(self, base: int, data: np.ndarray) -> None:
        self._check_payload(base, data.shape[1])
        self.grf2d[:, base:base + data.shape[1]] = data

    def _check_payload(self, base: int, nbytes: int) -> None:
        if base < 0 or base + nbytes > self.grf2d.shape[1]:
            raise IndexError(
                f"GRF payload of {nbytes} bytes at offset {base} overruns "
                f"the {self.grf2d.shape[1]}-byte register file")

    def _load_payload_rows(self, base: int, nbytes: int,
                           rows: np.ndarray) -> np.ndarray:
        self._check_payload(base, nbytes)
        return self.grf2d[rows, base:base + nbytes]

    def _store_payload_rows(self, base: int, data: np.ndarray,
                            rows: np.ndarray) -> None:
        nbytes = data.shape[1]
        self._check_payload(base, nbytes)
        self.grf2d[rows[:, None], np.arange(base, base + nbytes)] = data

    def _execute_send(self, inst: Instruction) -> None:
        msg = inst.msg
        if msg is None:
            raise ExecutionError("send without message descriptor")
        surf = self._surface(msg.surface)
        if self._wact is not None and not self._row_all:
            # Divergent partial group: only the threads parked at this
            # PC may touch memory or their payload registers.
            self._execute_send_rows(inst, surf, self._rows)
            return
        kind = msg.kind
        base = msg.payload_reg * GRF_SIZE_BYTES
        T = self.num_threads

        if kind is MsgKind.MEDIA_BLOCK_READ:
            x = self._scalar_vec(msg.addr0)
            y = self._scalar_vec(msg.addr1)
            w, h = msg.block_width, msg.block_height
            block = surf.read_block_many(x, y, w, h)  # (T, h, w)
            self._store_payload(base, block.reshape(T, -1))
        elif kind is MsgKind.MEDIA_BLOCK_WRITE:
            x = self._scalar_vec(msg.addr0)
            y = self._scalar_vec(msg.addr1)
            w, h = msg.block_width, msg.block_height
            data = np.ascontiguousarray(self._load_payload(base, w * h))
            surf.write_block_many(x, y, w, h, data.reshape(T, h, w))
        elif kind is MsgKind.OWORD_BLOCK_READ:
            offset = self._scalar_vec(msg.addr0)
            self._store_payload(
                base, surf.read_linear_many(offset, msg.payload_bytes))
        elif kind is MsgKind.OWORD_BLOCK_WRITE:
            offset = self._scalar_vec(msg.addr0)
            surf.write_linear_many(
                offset, self._load_payload(base, msg.payload_bytes))
        elif kind in (MsgKind.GATHER, MsgKind.SCATTER, MsgKind.ATOMIC):
            self._execute_scattered(inst, surf)
        else:
            raise ExecutionError(f"unhandled message kind {kind}")

    def _execute_send_rows(self, inst: Instruction, surf,
                           rows: np.ndarray) -> None:
        """Partial-group SEND: subset every per-thread vector to the
        group's rows so other threads' registers and line tracking stay
        untouched."""
        msg = inst.msg
        kind = msg.kind
        base = msg.payload_reg * GRF_SIZE_BYTES
        nrows = rows.size
        if kind is MsgKind.MEDIA_BLOCK_READ:
            x = self._scalar_vec(msg.addr0)[rows]
            y = self._scalar_vec(msg.addr1)[rows]
            w, h = msg.block_width, msg.block_height
            block = surf.read_block_many(x, y, w, h)  # (R, h, w)
            self._store_payload_rows(base, block.reshape(nrows, -1), rows)
        elif kind is MsgKind.MEDIA_BLOCK_WRITE:
            x = self._scalar_vec(msg.addr0)[rows]
            y = self._scalar_vec(msg.addr1)[rows]
            w, h = msg.block_width, msg.block_height
            data = np.ascontiguousarray(
                self._load_payload_rows(base, w * h, rows))
            surf.write_block_many(x, y, w, h, data.reshape(nrows, h, w))
        elif kind is MsgKind.OWORD_BLOCK_READ:
            offset = self._scalar_vec(msg.addr0)[rows]
            if isinstance(surf, WideScratch):
                data = surf.read_linear_many(offset, msg.payload_bytes,
                                             rows=rows)
            else:
                data = surf.read_linear_many(offset, msg.payload_bytes)
            self._store_payload_rows(base, data, rows)
        elif kind is MsgKind.OWORD_BLOCK_WRITE:
            offset = self._scalar_vec(msg.addr0)[rows]
            data = self._load_payload_rows(base, msg.payload_bytes, rows)
            if isinstance(surf, WideScratch):
                surf.write_linear_many(offset, data, rows=rows)
            else:
                surf.write_linear_many(offset, data)
        elif kind in (MsgKind.GATHER, MsgKind.SCATTER, MsgKind.ATOMIC):
            self._execute_scattered(inst, surf, rows=rows)
        else:
            raise ExecutionError(f"unhandled message kind {kind}")

    def _execute_scattered(self, inst: Instruction, surf,
                           rows: Optional[np.ndarray] = None) -> None:
        msg = inst.msg
        n = inst.exec_size
        T = self.num_threads
        addr_op = RegOperand(msg.addr_reg, 0, UD,
                             region=_contiguous_region(n))
        offsets = self._fetch(addr_op, n).astype(np.int64)  # (T, n)
        if msg.addr0 is not None:
            offsets = offsets + self._scalar_vec(msg.addr0)[:, None]
        elem = msg.elem_dtype
        offsets = offsets * elem.size
        base = msg.payload_reg * GRF_SIZE_BYTES
        mask = self._exec_mask(inst)
        if rows is not None:
            return self._execute_scattered_rows(inst, surf, rows, offsets,
                                                mask)
        # Flatten thread-major: lane order within a thread, threads in
        # ascending id — the exact order the sequential dispatch loop
        # performs these accesses, so overlap/atomic semantics match.
        flat = offsets.reshape(-1)
        fmask = None if mask is None else mask.reshape(-1)

        if msg.kind is MsgKind.GATHER:
            data = surf.gather(flat, elem, mask=fmask)
            self._store_payload(base, data.reshape(T, n).view(np.uint8))
        elif msg.kind is MsgKind.SCATTER:
            raw = np.ascontiguousarray(
                self._load_payload(base, n * elem.size)).view(elem.np_dtype)
            surf.scatter(flat, raw.reshape(-1), mask=fmask)
        else:  # ATOMIC
            operands = None
            if msg.payload_bytes:
                operands = np.ascontiguousarray(
                    self._load_payload(base, n * elem.size)) \
                    .view(elem.np_dtype).reshape(-1)
            old = _wide_atomic(surf, msg.atomic_op, flat, operands, elem,
                               fmask)
            if inst.dst is not None:
                self._write_dst(inst.dst, old.reshape(T, n), mask=mask)

    def _execute_scattered_rows(self, inst: Instruction, surf,
                                rows: np.ndarray, offsets: np.ndarray,
                                mask: Optional[np.ndarray]) -> None:
        """Partial-group gather/scatter/atomic: flatten only the group's
        rows (still thread-major within the group)."""
        msg = inst.msg
        n = inst.exec_size
        elem = msg.elem_dtype
        base = msg.payload_reg * GRF_SIZE_BYTES
        nrows = rows.size
        sub = None if mask is None else \
            np.broadcast_to(mask[rows], (nrows, n))
        flat = offsets[rows].reshape(-1)
        fmask = None if sub is None else sub.reshape(-1)

        if msg.kind is MsgKind.GATHER:
            data = surf.gather(flat, elem, mask=fmask)
            self._store_payload_rows(
                base, data.reshape(nrows, n).view(np.uint8), rows)
        elif msg.kind is MsgKind.SCATTER:
            raw = np.ascontiguousarray(
                self._load_payload_rows(base, n * elem.size, rows)) \
                .view(elem.np_dtype)
            surf.scatter(flat, raw.reshape(-1), mask=fmask)
        else:  # ATOMIC
            operands = None
            if msg.payload_bytes:
                operands = np.ascontiguousarray(
                    self._load_payload_rows(base, n * elem.size, rows)) \
                    .view(elem.np_dtype).reshape(-1)
            old = _wide_atomic(surf, msg.atomic_op, flat, operands, elem,
                               fmask)
            if inst.dst is not None:
                vals = np.zeros((self.num_threads, n), dtype=elem.np_dtype)
                vals[rows] = old.reshape(nrows, n)
                self._write_dst(inst.dst, vals,
                                mask=self._rowm if mask is None else mask)


_FAST_ATOMIC_OPS = frozenset({"add", "sub", "inc", "dec"})


def _wide_atomic(surf, op: str, offsets: np.ndarray,
                 operands: Optional[np.ndarray], elem,
                 mask: Optional[np.ndarray]) -> np.ndarray:
    """Apply a flattened (T*n)-lane atomic in thread order.

    Integer add/sub/inc/dec commute up to ordering of the *returned* old
    values, which a stable sort by address plus a grouped exclusive
    prefix sum reconstructs exactly (modular integer addition is
    order-independent); everything else (min/max/bitwise/xchg, float
    adds) falls back to the sequential lane loop on the flattened
    vector, which is the same order the per-thread path applies.
    """
    old = _fast_int_atomic(surf, op, offsets, operands, elem, mask)
    if old is None:
        old = surf.atomic(op, offsets, operands, elem, mask=mask)
    return old


def _fast_int_atomic(surf, op, offsets, operands, elem, mask):
    if op not in _FAST_ATOMIC_OPS or elem.is_float:
        return None
    n = len(offsets)
    old = np.zeros(n, dtype=elem.np_dtype)
    act = np.arange(n) if mask is None else \
        np.flatnonzero(np.asarray(mask, dtype=bool))
    if act.size == 0:
        return old
    offs = offsets[act]
    if np.any(offs % elem.size):
        return None  # misaligned: the lane loop raises the right error
    idx = offs // elem.size
    if op in ("add", "sub"):
        delta = operands[act].astype(elem.np_dtype, copy=True)
    else:  # inc / dec
        delta = np.ones(act.size, dtype=elem.np_dtype)
    if op in ("sub", "dec"):
        delta = np.negative(delta)  # modular: wraps like cur - src

    order = np.argsort(idx, kind="stable")  # stable: keeps thread order
    sidx = idx[order]
    sdelta = delta[order]
    csum = np.cumsum(sdelta, dtype=elem.np_dtype)  # wraps like hardware
    head = np.ones(sidx.size, dtype=bool)
    head[1:] = sidx[1:] != sidx[:-1]
    excl = csum - sdelta
    group_base = excl[head]
    seg_id = np.cumsum(head) - 1
    view = surf.bytes.view(elem.np_dtype)
    init = view[sidx[head]]  # value before this message, per address
    old_sorted = init[seg_id] + (excl - group_base[seg_id])
    last = np.flatnonzero(np.concatenate([head[1:], [True]]))
    view[sidx[head]] = init + (csum[last] - group_base)
    old_act = np.empty(act.size, dtype=elem.np_dtype)
    old_act[order] = old_sorted
    old[act] = old_act
    return old


class _WideEvent:
    """Per-thread data for one template memory event."""

    __slots__ = ("ev", "lines", "dram", "l3_from_lines", "words", "wmask",
                 "surface_id")

    def __init__(self, ev: MemEvent, lines: np.ndarray, dram: np.ndarray,
                 l3_from_lines: bool, words=None, wmask=None,
                 surface_id: int = 0) -> None:
        self.ev = ev
        self.lines = lines
        self.dram = dram
        self.l3_from_lines = l3_from_lines
        self.words = words
        self.wmask = wmask
        self.surface_id = surface_id


class _CFSendEvent:
    """One SEND issued by a (possibly partial) group under control flow.

    Unlike the straight-line template events, *everything* here is
    per-row: the rows that issued the message, their line footprints,
    and their own issue/consume positions on their own issue timelines.
    """

    __slots__ = ("kind", "nbytes", "l3_bytes", "l3_from_lines", "msgs",
                 "is_read", "surface", "rows", "lines", "dram", "issue_at",
                 "consumed_at", "words", "wmask", "surface_id", "index")

    def __init__(self, kind, nbytes, l3_bytes, l3_from_lines, msgs,
                 is_read, surface, rows, lines, dram, issue_at) -> None:
        self.kind = kind
        self.nbytes = nbytes
        self.l3_bytes = l3_bytes
        self.l3_from_lines = l3_from_lines
        self.msgs = msgs
        self.is_read = is_read
        self.surface = surface
        self.rows = rows                    # (R,) ascending thread ids
        self.lines = lines                  # (R,) L3 lines per row
        self.dram = dram                    # (R,) first-touch lines
        self.issue_at = issue_at            # (R,) per-row issue position
        self.consumed_at = np.full(rows.size, -1.0)  # (R,) or -1 = never
        self.words = None                   # atomics: (R, n) word addrs
        self.wmask = None
        self.surface_id = 0
        self.index = -1                     # position in _cf_events


class WideTracingExecutor(WideExecutor, TracingExecutor):
    """A :class:`WideExecutor` that reconstructs per-thread traces.

    Execution drives a single *template* :class:`ThreadTrace`: for a
    straight-line program, instruction counts, issue cycles, message
    issue positions, and load-use consumption distances are identical
    for every thread (no per-thread cost in the model depends on data
    values).  The only per-thread quantities — cache-line footprints
    and atomic target addresses — are recorded as (T,) vectors by the
    vectorized surface marking.  :meth:`drain_traces` fans the template
    out into T real traces, which feed the accumulators in thread
    order, bit-identical to sequential dispatch.

    Inherits the dependency/ALU accounting of
    :class:`~repro.sim.batch.TracingExecutor` unchanged (those are
    thread-invariant) and overrides only the SEND accounting.
    """

    def __init__(self, surfaces: Mapping[int, object] | None = None,
                 num_regs: int = 128, num_threads: int = 0) -> None:
        super().__init__(surfaces, num_regs, num_threads)
        self._wide_events: list[_WideEvent] = []
        # Control-flow tracing mode (per-thread accounting, see
        # _run_cf): off for straight-line programs.
        self._cf_trace = False
        self._cf_events: list[_CFSendEvent] = []
        self._pending_vec: dict = {}   # GRF reg -> (T,) event index or -1
        self._inst_vec: Optional[np.ndarray] = None
        self._issue_vec: Optional[np.ndarray] = None
        self._barrier_vec: Optional[np.ndarray] = None
        self._icpi = 0.0

    def begin_launch(self, machine) -> None:
        """Attach a fresh template trace for the next chunk."""
        self.begin_thread(ThreadTrace(machine))
        self._wide_events = []
        self._cf_trace = False
        self._cf_events = []
        self._pending_vec = {}

    # -- control-flow tracing mode ----------------------------------------

    def _run_cf(self, program) -> None:
        # Under divergence the issue timeline is per-thread (each
        # thread's dynamic instruction stream depends on its data), so
        # the template trace cannot be shared.  Switch to (T,) vectors
        # that replay the sequential TracingExecutor's accounting for
        # every thread in its own dynamic order.
        if self.trace is not None:
            T = self.num_threads
            self._cf_trace = True
            self._icpi = self.trace.machine.issue_cycles_per_inst
            self._inst_vec = np.zeros(T, dtype=np.int64)
            self._issue_vec = np.zeros(T, dtype=np.float64)
            self._barrier_vec = np.zeros(T, dtype=np.int64)
            self._cf_events = []
            self._pending_vec = {}
        super()._run_cf(program)

    def execute(self, inst: Instruction) -> None:
        if not self._cf_trace:
            super().execute(inst)
            return
        op = inst.opcode
        rows = self._rows
        if op is Opcode.BARRIER:
            self._barrier_vec[rows] += 1
            FunctionalExecutor.execute(self, inst)
            return
        if op is Opcode.NOP:
            FunctionalExecutor.execute(self, inst)
            return
        if op is Opcode.SEND:
            FunctionalExecutor.execute(self, inst)
            self._account_send_cf(inst, rows)
            return
        self._note_consumption_cf(inst, rows)
        FunctionalExecutor.execute(self, inst)
        self._account_alu_cf(inst, rows)

    def _account_cf(self, inst: Instruction, rows: np.ndarray) -> None:
        if not self._cf_trace:
            return
        cost = CF_COSTS[inst.opcode]
        self._inst_vec[rows] += cost
        self._issue_vec[rows] += cost * self._icpi

    def _scalar_cf(self, rows: np.ndarray, count: int) -> None:
        self._inst_vec[rows] += count
        self._issue_vec[rows] += count * self._icpi

    def _account_alu_cf(self, inst: Instruction, rows: np.ndarray) -> None:
        cost = None
        slots = None
        table = self.plans
        if table is not None:
            slot = table.slot(inst)
            if slot is not None:
                slots = table.cost_slots(self.trace.machine)
                cost = slots[slot]
        if cost is None:
            cost = _alu_cost(inst, self.trace.machine)
            if slots is not None:
                slots[slot] = cost
        self._inst_vec[rows] += cost[0]
        self._issue_vec[rows] += cost[1]

    def _note_consumption_cf(self, inst: Instruction,
                             rows: np.ndarray) -> None:
        """Per-row load-use tracking (mirrors _note_src_consumption)."""
        pend = self._pending_vec
        if not pend:
            return
        regs = None
        table = self.plans
        if table is not None:
            slot = table.slot(inst)
            if slot is not None:
                regs = table.src_regs[slot]
                if regs is None:
                    regs = table.src_regs[slot] = self._merged_src_regs(inst)
        if regs is None:
            regs = self._merged_src_regs(inst)
        for reg in regs:
            vec = pend.get(reg)
            if vec is None:
                continue
            evi = vec[rows]
            for e in np.unique(evi[evi >= 0]):
                ev = self._cf_events[e]
                erows = rows[evi == e]
                pos = np.searchsorted(ev.rows, erows)
                fresh = ev.consumed_at[pos] < 0
                if fresh.any():
                    ev.consumed_at[pos[fresh]] = self._issue_vec[erows[fresh]]
                # One consume retires the whole message's payload.
                for v2 in pend.values():
                    cur = v2[erows]
                    v2[erows] = np.where(cur == e, -1, cur)

    def _register_load_cf(self, first_reg: int, nbytes: int,
                          ev: _CFSendEvent, rows: np.ndarray) -> None:
        for reg in range(first_reg,
                         first_reg + -(-nbytes // GRF_SIZE_BYTES)):
            vec = self._pending_vec.get(reg)
            if vec is None:
                vec = self._pending_vec[reg] = \
                    np.full(self.num_threads, -1, dtype=np.int64)
            vec[rows] = ev.index

    def _memory_cf(self, rows, kind, nbytes, lines, dram, l3_bytes,
                   l3_from_lines, msgs, is_read, surface) -> _CFSendEvent:
        # Same front-end charge as ThreadTrace.memory(): one
        # instruction, two issue slots, issue_at captured *after*.
        self._inst_vec[rows] += 1
        self._issue_vec[rows] += 2 * self._icpi
        ev = _CFSendEvent(kind, nbytes, l3_bytes, l3_from_lines, msgs,
                          is_read, surface, rows.copy(),
                          np.asarray(lines), np.asarray(dram),
                          self._issue_vec[rows].astype(np.float64))
        ev.index = len(self._cf_events)
        self._cf_events.append(ev)
        return ev

    def _account_send_cf(self, inst: Instruction, rows: np.ndarray) -> None:
        """Per-group SEND accounting (mirrors the sequential
        TracingExecutor._account_send for exactly the group's rows)."""
        msg = inst.msg
        surf = self._surface(msg.surface)
        kind = msg.kind
        label = getattr(surf, "obs_label", None) or f"bti{msg.surface}"

        if kind in (MsgKind.MEDIA_BLOCK_READ, MsgKind.MEDIA_BLOCK_WRITE):
            x = self._scalar_vec(msg.addr0)[rows]
            y = self._scalar_vec(msg.addr1)[rows]
            w, h = msg.block_width, msg.block_height
            nbytes = w * h
            lines, new = surf.mark_lines_block2d_many(x, y, w, h, surf.pitch)
            messages = media_block_messages(w, h)
            if messages > 1:
                self._scalar_cf(rows, 2 * (messages - 1))
            is_read = kind is MsgKind.MEDIA_BLOCK_READ
            ev = self._memory_cf(
                rows,
                MemKind.BLOCK2D_READ if is_read else MemKind.BLOCK2D_WRITE,
                nbytes, lines, new, nbytes, False, messages, is_read, label)
            if is_read:
                self._register_load_cf(msg.payload_reg, nbytes, ev, rows)
        elif kind in (MsgKind.OWORD_BLOCK_READ, MsgKind.OWORD_BLOCK_WRITE):
            offset = self._scalar_vec(msg.addr0)[rows]
            nbytes = msg.payload_bytes
            lines, new = surf.mark_lines_range_many(offset, nbytes)
            messages = oword_block_messages(nbytes)
            if messages > 1:
                self._scalar_cf(rows, 2 * (messages - 1))
            is_read = kind is MsgKind.OWORD_BLOCK_READ
            ev = self._memory_cf(
                rows, MemKind.OWORD_READ if is_read else MemKind.OWORD_WRITE,
                nbytes, lines, new, nbytes, False, messages, is_read, label)
            if is_read:
                self._register_load_cf(msg.payload_reg, nbytes, ev, rows)
        else:  # GATHER / SCATTER / ATOMIC
            n = inst.exec_size
            elem = msg.elem_dtype
            byte_offs = self._scattered_offsets(inst)[rows]
            mask = self._exec_mask(inst)
            sub = None if mask is None else \
                np.broadcast_to(mask[rows], (rows.size, n))
            lines, new = surf.mark_lines_offsets_many(byte_offs, elem.size,
                                                      mask=sub)
            messages = scatter_messages(n)
            nbytes = n * elem.size
            if kind is MsgKind.GATHER:
                if messages > 1:
                    self._scalar_cf(rows, 2 * (messages - 1))
                ev = self._memory_cf(rows, MemKind.GATHER, nbytes, lines,
                                     new, None, True, messages, True, label)
                self._register_load_cf(msg.payload_reg, nbytes, ev, rows)
            elif kind is MsgKind.SCATTER:
                if messages > 1:
                    self._scalar_cf(rows, 2 * (messages - 1))
                self._memory_cf(rows, MemKind.SCATTER, nbytes, lines, new,
                                None, True, messages, False, label)
            else:  # ATOMIC
                ev = self._memory_cf(rows, MemKind.ATOMIC, nbytes, lines,
                                     new, None, True, messages, True, label)
                ev.words = byte_offs // 4
                ev.wmask = sub
                ev.surface_id = id(surf)
                if inst.dst is not None:
                    self._register_load_cf(
                        inst.dst.byte_offset // GRF_SIZE_BYTES, nbytes, ev,
                        rows)

    # -- memory accounting (wide) -----------------------------------------

    def _account_send(self, inst: Instruction) -> None:
        msg = inst.msg
        surf = self._surface(msg.surface)
        trace = self.trace
        kind = msg.kind
        label = getattr(surf, "obs_label", None) or f"bti{msg.surface}"

        if kind in (MsgKind.MEDIA_BLOCK_READ, MsgKind.MEDIA_BLOCK_WRITE):
            x = self._scalar_vec(msg.addr0)
            y = self._scalar_vec(msg.addr1)
            w, h = msg.block_width, msg.block_height
            nbytes = w * h
            lines, new = surf.mark_lines_block2d_many(x, y, w, h, surf.pitch)
            messages = media_block_messages(w, h)
            self._extra_messages(messages)
            is_read = kind is MsgKind.MEDIA_BLOCK_READ
            ev = trace.memory(
                MemKind.BLOCK2D_READ if is_read else MemKind.BLOCK2D_WRITE,
                nbytes=nbytes, lines=0, dram_lines=0, l3_bytes=nbytes,
                msgs=messages, is_read=is_read, surface=label)
            self._wide_events.append(_WideEvent(ev, lines, new, False))
            if is_read:
                self._register_load(msg.payload_reg, nbytes, ev)
        elif kind in (MsgKind.OWORD_BLOCK_READ, MsgKind.OWORD_BLOCK_WRITE):
            offset = self._scalar_vec(msg.addr0)
            nbytes = msg.payload_bytes
            lines, new = surf.mark_lines_range_many(offset, nbytes)
            messages = oword_block_messages(nbytes)
            self._extra_messages(messages)
            is_read = kind is MsgKind.OWORD_BLOCK_READ
            ev = trace.memory(
                MemKind.OWORD_READ if is_read else MemKind.OWORD_WRITE,
                nbytes=nbytes, lines=0, dram_lines=0, l3_bytes=nbytes,
                msgs=messages, is_read=is_read, surface=label)
            self._wide_events.append(_WideEvent(ev, lines, new, False))
            if is_read:
                self._register_load(msg.payload_reg, nbytes, ev)
        else:  # GATHER / SCATTER / ATOMIC
            n = inst.exec_size
            elem = msg.elem_dtype
            byte_offs = self._scattered_offsets(inst)  # (T, n)
            mask = self._pred_mask(inst)
            lines, new = surf.mark_lines_offsets_many(byte_offs, elem.size,
                                                      mask=mask)
            messages = scatter_messages(n)
            nbytes = n * elem.size
            if kind is MsgKind.GATHER:
                self._extra_messages(messages)
                ev = trace.memory(MemKind.GATHER, nbytes=nbytes, lines=0,
                                  dram_lines=0, l3_bytes=0, msgs=messages,
                                  surface=label)
                self._wide_events.append(_WideEvent(ev, lines, new, True))
                self._register_load(msg.payload_reg, nbytes, ev)
            elif kind is MsgKind.SCATTER:
                self._extra_messages(messages)
                ev = trace.memory(MemKind.SCATTER, nbytes=nbytes, lines=0,
                                  dram_lines=0, l3_bytes=0, msgs=messages,
                                  is_read=False, surface=label)
                self._wide_events.append(_WideEvent(ev, lines, new, True))
            else:  # ATOMIC
                ev = trace.memory(MemKind.ATOMIC, nbytes=nbytes, lines=0,
                                  dram_lines=0, l3_bytes=0, msgs=messages,
                                  surface=label)
                self._wide_events.append(_WideEvent(
                    ev, lines, new, True, words=byte_offs // 4,
                    wmask=None if mask is None else mask,
                    surface_id=id(surf)))
                if inst.dst is not None:
                    self._register_load(
                        inst.dst.byte_offset // GRF_SIZE_BYTES, nbytes, ev)

    def _scattered_offsets(self, inst: Instruction) -> np.ndarray:
        """(T, n) per-lane byte offsets (same math as execution)."""
        msg = inst.msg
        n = inst.exec_size
        addr_op = RegOperand(msg.addr_reg, 0, UD,
                             region=_contiguous_region(n))
        offsets = self._fetch(addr_op, n).astype(np.int64)
        if msg.addr0 is not None:
            offsets = offsets + self._scalar_vec(msg.addr0)[:, None]
        return offsets * msg.elem_dtype.size

    # -- trace fan-out -----------------------------------------------------

    def drain_traces(self) -> list[ThreadTrace]:
        """Fan the template trace out into T per-thread traces.

        In control-flow mode there is no template: each thread's trace
        is materialized from the (T,) accumulators and the per-row
        event records, in the thread's own dynamic issue order.
        """
        if self._cf_trace:
            return self._drain_traces_cf()
        tmpl = self.trace
        events = self._wide_events
        out = []
        for t in range(self.num_threads):
            tr = ThreadTrace(tmpl.machine)
            tr.issue_cycles = tmpl.issue_cycles
            tr.inst_count = tmpl.inst_count
            tr.barriers = tmpl.barriers
            for we in events:
                e = we.ev
                lines = int(we.lines[t])
                tr.events.append(MemEvent(
                    kind=e.kind, nbytes=e.nbytes, lines=lines,
                    dram_lines=int(we.dram[t]),
                    l3_bytes=lines * 64 if we.l3_from_lines else e.l3_bytes,
                    msgs=e.msgs, texels=e.texels, slm_cycles=e.slm_cycles,
                    issue_at=e.issue_at, consumed_at=e.consumed_at,
                    is_read=e.is_read, surface=e.surface))
                if we.words is not None:
                    words = we.words[t] if we.wmask is None else \
                        we.words[t][we.wmask[t]]
                    tr.atomic_addrs.update(
                        (we.surface_id, int(w)) for w in words)
            out.append(tr)
        self._wide_events = []
        return out

    def _drain_traces_cf(self) -> list[ThreadTrace]:
        machine = self.trace.machine
        T = self.num_threads
        per_thread: list[list] = [[] for _ in range(T)]
        for ev in self._cf_events:
            for i, t in enumerate(ev.rows):
                per_thread[t].append((ev, i))
        out = []
        for t in range(T):
            tr = ThreadTrace(machine)
            tr.issue_cycles = float(self._issue_vec[t])
            tr.inst_count = int(self._inst_vec[t])
            tr.barriers = int(self._barrier_vec[t])
            for ev, i in per_thread[t]:
                lines = int(ev.lines[i])
                consumed = ev.consumed_at[i]
                tr.events.append(MemEvent(
                    kind=ev.kind, nbytes=ev.nbytes, lines=lines,
                    dram_lines=int(ev.dram[i]),
                    l3_bytes=lines * 64 if ev.l3_from_lines else ev.l3_bytes,
                    msgs=ev.msgs, issue_at=float(ev.issue_at[i]),
                    consumed_at=None if consumed < 0 else float(consumed),
                    is_read=ev.is_read, surface=ev.surface))
                if ev.words is not None:
                    words = ev.words[i] if ev.wmask is None else \
                        ev.words[i][ev.wmask[i]]
                    tr.atomic_addrs.update(
                        (ev.surface_id, int(w)) for w in words)
            out.append(tr)
        self._cf_events = []
        self._pending_vec = {}
        self._cf_trace = False
        return out
