"""Functional executor for Gen ISA programs.

This is the "hardware" that programs produced by the CM compiler back end
run on.  It owns a :class:`~repro.isa.grf.GRFFile` per thread, a set of
flag registers, and a binding table mapping surface indices to memory
objects from :mod:`repro.memory`.

Programs may contain structured SIMD control flow
(:data:`~repro.isa.instructions.CF_OPCODES`): :meth:`run` becomes
PC-driven for those, maintaining a per-thread execution-mask frame stack
— IF/ELSE/ENDIF/BREAK only manipulate masks (every instruction is still
stepped through, even with an all-zero mask, which keeps sequential and
wide dispatch bit-identical in both results and timing), and WHILE is
the single back-edge, jumping to the instruction after its matching DO.
Vector writes inside a divergent region are merged under the active
mask; scalar (``exec_size == 1``) instructions stay unmasked, matching
CM's rule that non-SIMD-width operations inside SIMD CF are uniform.

The executor is *functional*: it computes architectural state only.
Timing is the job of :mod:`repro.sim.timing` (the eager path); the
compiler path exists to validate codegen (Section V of the paper) by
differential testing against the eager path.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.isa.dtypes import DType, UD, convert, promote, signed, unsigned
from repro.isa.grf import GRFFile, RegOperand, GRF_SIZE_BYTES
from repro.isa.instructions import (
    CF_OPCODES, CondMod, Immediate, Instruction, MathFn, MsgKind, Opcode,
)
from repro.isa.plans import PlanTable
from repro.isa.regions import Region

#: Upper bound on dynamically executed instructions in one CF program
#: run — a runaway-loop guard (a divergent WHILE whose condition never
#: clears), set far above anything a real kernel executes.
CF_STEP_LIMIT = 4_000_000


class ExecutionError(RuntimeError):
    """Raised when a program performs an illegal operation."""


def _emask_off(inst: Instruction) -> int:
    """Lane offset of the instruction's execution-mask window (``M8`` ->
    8).  Cached on the instruction: the asm-text parse runs once."""
    off = inst.__dict__.get("_moff")
    if off is None:
        em = inst.emask
        off = int(em[1:]) if em and em[0] == "M" and em[1:].isdigit() else 0
        inst.__dict__["_moff"] = off
    return off


class FunctionalExecutor:
    """Execute a straight-line Gen program for a single hardware thread.

    The executor may be *pooled*: :meth:`reset` zeroes architectural state
    so the same instance can run another thread of the same (or another)
    program.  Because a compiled program is identical for every thread,
    region byte-index plans and immediate operand arrays are memoized
    across :meth:`reset` calls — this is what makes the batched dispatch
    path in :mod:`repro.sim.device` fast.
    """

    def __init__(self, surfaces: Mapping[int, object] | None = None,
                 num_regs: int = 128) -> None:
        self.grf = GRFFile(num_regs)
        self.flags: dict[int, np.ndarray] = {}
        self.surfaces = dict(surfaces or {})
        self.instructions_executed = 0
        #: (operand, exec_size) -> byte-index array; survives reset().
        #: Keyed by operand *value* (RegOperand is a frozen dataclass),
        #: so entries are never stale regardless of program lifetime.
        self._region_plans: dict = {}
        #: (Immediate, exec_size) -> read-only broadcast array.
        self._imm_cache: dict = {}
        #: the :class:`~repro.isa.plans.PlanTable` bound to the program
        #: currently being run.  Fully-resolved per-instruction plans
        #: live here, keyed by (program, index) — never by ``id(inst)``,
        #: which goes stale when an Instruction object is recycled into
        #: a new program.  ``run()`` rebinds/rebuilds on program change,
        #: so a pooled executor holds at most one program's plans.
        self.plans: PlanTable | None = None
        #: optional sanitizer hook bundle
        #: (:class:`repro.sanitize.hooks.ExecSanitizer`); when set,
        #: ``before_inst``/``after_inst`` are called around every
        #: instruction.  Sequential dispatch only — the wide executor
        #: refuses to run with hooks attached.
        self.san = None
        #: SIMD-CF state: the (32,) active-lane mask (``None`` outside a
        #: control-flow program), the mask frame stack, the PC of the
        #: instruction currently executing, and the back-edge request.
        self._active: np.ndarray | None = None
        self._cf_frames: list = []
        self._pc: int | None = None
        self._jump: int | None = None

    def reset(self) -> None:
        """Zero architectural state (GRF, flags) for the next thread.

        Operand plans are kept: they depend only on the program text,
        not on thread state.
        """
        self.grf.bytes.fill(0)
        self.flags.clear()
        self.instructions_executed = 0
        self._active = None
        self._cf_frames = []

    def rebind(self, surfaces: Mapping[int, object]) -> None:
        """Swap the binding table (e.g. for the next launch)."""
        self.surfaces = dict(surfaces)

    # -- operand access ----------------------------------------------------

    def _src_plan(self, operand: RegOperand, n: int) -> np.ndarray:
        key = (operand, n)
        idx = self._region_plans.get(key)
        if idx is None:
            offs = self.grf._element_byte_offsets(
                operand.byte_offset, operand.dtype, operand.region, n)
            idx = offs[:, None] + np.arange(operand.dtype.size)
            self._region_plans[key] = idx
        return idx

    def _dst_plan(self, operand: RegOperand, n: int) -> np.ndarray:
        key = (operand, n, "dst")
        idx = self._region_plans.get(key)
        if idx is None:
            region = Region(n * operand.dst_stride, n, operand.dst_stride)
            offs = self.grf._element_byte_offsets(
                operand.byte_offset, operand.dtype, region, n)
            idx = offs[:, None] + np.arange(operand.dtype.size)
            self._region_plans[key] = idx
        return idx

    def _fetch(self, src, exec_size: int) -> np.ndarray:
        if isinstance(src, Immediate):
            key = (src, exec_size)
            arr = self._imm_cache.get(key)
            if arr is None:
                arr = np.full(exec_size, src.value, dtype=src.dtype.np_dtype)
                arr.flags.writeable = False
                self._imm_cache[key] = arr
            return arr
        if isinstance(src, RegOperand):
            idx = self._src_plan(src, exec_size)
            return self.grf.bytes[idx].view(src.dtype.np_dtype).ravel()
        values = getattr(src, "values", None)
        if values is not None:  # packed vector immediate
            key = (src, exec_size)
            arr = self._imm_cache.get(key)
            if arr is None:
                arr = np.resize(
                    np.asarray(values, dtype=src.dtype.np_dtype), exec_size)
                arr.flags.writeable = False
                self._imm_cache[key] = arr
            return arr
        raise ExecutionError(f"bad source operand {src!r}")

    def _write_dst(self, operand: RegOperand, values: np.ndarray,
                   mask: np.ndarray | None = None,
                   idx: np.ndarray | None = None) -> None:
        """Planned equivalent of ``grf.write_region`` (same semantics)."""
        if values.dtype != operand.dtype.np_dtype or \
                not values.flags["C_CONTIGUOUS"]:
            values = np.ascontiguousarray(values, dtype=operand.dtype.np_dtype)
        n = values.size
        if idx is None:
            idx = self._dst_plan(operand, n)
        raw = values.view(np.uint8).reshape(n, operand.dtype.size)
        if mask is None:
            self.grf.bytes[idx] = raw
        else:
            keep = np.asarray(mask, dtype=bool)
            self.grf.bytes[idx[keep]] = raw[keep]

    def _src_dtype(self, src) -> DType:
        return src.dtype


    def _flag_lanes(self, index: int) -> np.ndarray:
        if index not in self.flags:
            self.flags[index] = np.zeros(32, dtype=bool)
        return self.flags[index]

    def _pred_mask(self, inst: Instruction) -> np.ndarray | None:
        if inst.pred is None:
            return None
        lanes = self._flag_lanes(inst.pred.flag.index)[: inst.exec_size]
        return ~lanes if inst.pred.invert else lanes.copy()

    def _cf_active_lanes(self, inst: Instruction) -> np.ndarray | None:
        """The SIMD-CF active-mask window for this instruction's lanes.

        ``None`` means "no masking needed": either the program has no
        control flow, the instruction is scalar (uniform inside SIMD CF
        per the CM spec), or every covered lane is active.  Lane ``i``
        of an instruction maps to hardware channel ``emask_offset + i``
        (the legalizer stamps split chunks with their channel offset).
        """
        act = self._active
        if act is None:
            return None
        n = inst.exec_size
        if n == 1:
            return None
        off = _emask_off(inst)
        if off + n > 32:
            raise ExecutionError(
                f"operation covers lanes {off}..{off + n - 1} inside SIMD "
                f"control flow (only 32 execution-mask channels exist)")
        lanes = act[off:off + n]
        if lanes.all():
            return None
        return lanes

    def _exec_mask(self, inst: Instruction) -> np.ndarray | None:
        """Combined write-enable: predicate AND SIMD-CF active lanes."""
        pred = self._pred_mask(inst)
        lanes = self._cf_active_lanes(inst)
        if lanes is None:
            return pred
        return lanes.copy() if pred is None else pred & lanes

    # -- main loop -----------------------------------------------------------

    def bind_plans(self, table: PlanTable | None) -> None:
        """Adopt a shared plan table (e.g. one attached to a kernel).

        ``run()`` verifies the binding and replaces it if the program
        differs, so a wrong table can never be *used* — binding merely
        lets executors share plan construction work for the same
        program (and ties plan lifetime to the table's owner).
        """
        if table is not None:
            self.plans = table

    def _bind_program(self, program: Sequence[Instruction]) -> PlanTable:
        table = self.plans
        if table is None or not table.matches(program):
            self.plans = table = PlanTable(program)
        return table

    def run(self, program: Sequence[Instruction]) -> None:
        table = self._bind_program(program)
        if not table.cf_plan().has_cf:
            for inst in program:
                self.execute(inst)
            return
        self._run_cf(program)

    def _run_cf(self, program: Sequence[Instruction]) -> None:
        """PC-driven dispatch for programs with SIMD control flow."""
        self._active = np.ones(32, dtype=bool)
        self._cf_frames = []
        pc = 0
        n = len(program)
        steps = 0
        try:
            while pc < n:
                steps += 1
                if steps > CF_STEP_LIMIT:
                    raise ExecutionError(
                        f"SIMD control flow executed more than "
                        f"{CF_STEP_LIMIT} instructions (runaway loop?)")
                self._pc = pc
                self._jump = None
                self.execute(program[pc])
                pc = pc + 1 if self._jump is None else self._jump
        finally:
            self._active = None
            self._cf_frames = []
            self._pc = None
            self._jump = None

    def execute(self, inst: Instruction) -> None:
        self.instructions_executed += 1
        san = self.san
        if san is not None:
            san.before_inst(self, inst)
        op = inst.opcode
        if op is Opcode.SEND:
            self._execute_send(inst)
        elif op is Opcode.CMP:
            self._execute_cmp(inst)
        elif op in CF_OPCODES:
            self._execute_cf(inst)
        elif op is not Opcode.NOP and op is not Opcode.BARRIER:
            self._execute_alu(inst)
        if san is not None:
            san.after_inst(self, inst)

    # -- SIMD control flow -----------------------------------------------

    def _cf_cond(self, inst: Instruction) -> np.ndarray:
        """The (32,) lane set an IF/WHILE/BREAK acts on: the predicate's
        flag lanes (all lanes when unpredicated) ANDed with the current
        active mask."""
        act = self._active
        if inst.pred is None:
            return act.copy()
        lanes = self._flag_lanes(inst.pred.flag.index)[: inst.exec_size]
        if inst.pred.invert:
            lanes = ~lanes
        cond = np.zeros(32, dtype=bool)
        cond[: inst.exec_size] = lanes
        cond &= act
        return cond

    def _execute_cf(self, inst: Instruction) -> None:
        """Mask-stack semantics of the structured CF opcodes.

        Frames are ``["if", restore_mask, else_mask]`` or
        ``["do", restore_mask, body_pc]``.  No instruction is ever
        skipped; only WHILE changes the PC (via ``self._jump``).
        """
        op = inst.opcode
        act = self._active
        if act is None:
            raise ExecutionError(
                "SIMD control flow requires PC-driven dispatch; "
                "call run() rather than execute()")
        frames = self._cf_frames
        if op is Opcode.SIMD_IF:
            cond = self._cf_cond(inst)
            frames.append(["if", act, act & ~cond])
            self._active = cond
        elif op is Opcode.SIMD_ELSE:
            if not frames or frames[-1][0] != "if":
                raise ExecutionError("simd_else without an open simd_if")
            self._active = frames[-1][2]
        elif op is Opcode.SIMD_ENDIF:
            if not frames or frames[-1][0] != "if":
                raise ExecutionError("simd_endif without an open simd_if")
            self._active = frames.pop()[1]
        elif op is Opcode.SIMD_DO:
            if self._pc is None:
                raise ExecutionError(
                    "simd_do outside run() (no PC to capture)")
            frames.append(["do", act, self._pc + 1])
        elif op is Opcode.SIMD_WHILE:
            if not frames or frames[-1][0] != "do":
                raise ExecutionError("simd_while without an open simd_do")
            cond = self._cf_cond(inst)
            if cond.any():
                self._active = cond
                self._jump = frames[-1][2]
            else:
                self._active = frames.pop()[1]
        elif op is Opcode.SIMD_BREAK:
            cond = self._cf_cond(inst)
            self._active = act & ~cond
            # Broken lanes leave every IF frame up to the innermost loop
            # too — they must not resurrect at an ELSE/ENDIF before the
            # loop exit restores them.
            for fr in reversed(frames):
                if fr[0] == "do":
                    break
                fr[1] = fr[1] & ~cond
                fr[2] = fr[2] & ~cond
            else:
                raise ExecutionError("simd_break outside a simd_do loop")

    # -- ALU ------------------------------------------------------------------

    def _plan_slot(self, inst: Instruction):
        """(table, slot, cached plan) for an instruction of the bound
        program; (None, None, None) for ad-hoc ``execute()`` calls."""
        table = self.plans
        if table is not None:
            slot = table.slot(inst)
            if slot is not None:
                return table, slot, table.plans[slot]
        return None, None, None

    def _alu_plan(self, inst: Instruction) -> tuple:
        """Resolve everything about an ALU instruction that does not
        depend on thread state: source index plans / broadcast arrays and
        the promoted execution type.  A compiled program runs the same
        ``Instruction`` objects for every thread, so plans are built once
        per program and stored in the bound :class:`PlanTable` slot (ad-hoc
        instructions outside the bound program get an unmemoized plan)."""
        table, slot, plan = self._plan_slot(inst)
        if plan is not None:
            return plan
        n = inst.exec_size
        fetchers = []
        for s in inst.srcs:
            if isinstance(s, RegOperand):
                fetchers.append((self._src_plan(s, n), s.dtype.np_dtype))
            else:
                arr = np.asarray(self._fetch(s, n))
                arr.flags.writeable = False
                fetchers.append((None, arr))
        exec_dtype = None
        if inst.opcode is not Opcode.MOV and inst.opcode is not Opcode.SEL:
            exec_dtype = self._src_dtype(inst.srcs[0])
            for s in inst.srcs[1:]:
                exec_dtype = promote(exec_dtype, self._src_dtype(s))
            if not inst.dst.dtype.is_float and exec_dtype.is_float and \
                    inst.opcode in (Opcode.AND, Opcode.OR, Opcode.XOR):
                raise ExecutionError("bitwise ops on float operands")
        dst_idx = self._dst_plan(inst.dst, n) if inst.dst is not None else None
        # sel writes all lanes (the predicate only chooses the source), so
        # its write goes through an unpredicated clone.  Clone once here
        # rather than on every execution.
        nopred = _without_pred(inst) \
            if inst.opcode is Opcode.SEL and inst.pred is not None else None
        plan = (inst, fetchers, exec_dtype, dst_idx, nopred)
        if table is not None:
            table.plans[slot] = plan
        return plan

    def _execute_alu(self, inst: Instruction) -> None:
        dst = inst.dst
        if dst is None:
            raise ExecutionError(f"ALU instruction without destination: {inst}")
        _, fetchers, exec_dtype, dst_idx, nopred = self._alu_plan(inst)
        grf_bytes = self.grf.bytes
        srcs = [payload if idx is None else
                grf_bytes[idx].view(payload).ravel()
                for idx, payload in fetchers]

        if inst.opcode is Opcode.MOV:
            result = srcs[0]
        elif inst.opcode is Opcode.SEL:
            mask = self._pred_mask(inst)
            if mask is None:
                raise ExecutionError("sel requires a predicate")
            result = np.where(mask, srcs[0], srcs[1])
            # sel writes all lanes; the predicate only chooses the source.
            inst = nopred
        else:
            ops = [s if s.dtype == exec_dtype.np_dtype else
                   convert(s, exec_dtype) for s in srcs]
            result = _alu_compute(inst, exec_dtype, ops)

        if inst.sat or result.dtype != dst.dtype.np_dtype:
            result = convert(result, dst.dtype, saturate=inst.sat)
        self._write_dst(dst, result, mask=self._exec_mask(inst), idx=dst_idx)

    def _cmp_plan(self, inst: Instruction) -> tuple:
        """Like :meth:`_alu_plan`, for CMP: source plans, the promoted
        comparison dtype, the resolved comparison ufunc, and the planned
        destination indices (when CMP also writes a bool-vector dst)."""
        table, slot, plan = self._plan_slot(inst)
        if plan is not None:
            return plan
        n = inst.exec_size
        fetchers = []
        for s in inst.srcs:
            if isinstance(s, RegOperand):
                fetchers.append((self._src_plan(s, n), s.dtype.np_dtype))
            else:
                arr = np.asarray(self._fetch(s, n))
                arr.flags.writeable = False
                fetchers.append((None, arr))
        exec_dtype = promote(self._src_dtype(inst.srcs[0]),
                             self._src_dtype(inst.srcs[1]))
        cmp_fn = {
            CondMod.EQ: np.equal, CondMod.NE: np.not_equal,
            CondMod.LT: np.less, CondMod.LE: np.less_equal,
            CondMod.GT: np.greater, CondMod.GE: np.greater_equal,
        }[inst.cond_mod]
        dst_idx = self._dst_plan(inst.dst, n) if inst.dst is not None else None
        plan = (inst, fetchers, exec_dtype, cmp_fn, dst_idx)
        if table is not None:
            table.plans[slot] = plan
        return plan

    def _execute_cmp(self, inst: Instruction) -> None:
        _, fetchers, exec_dtype, cmp_fn, dst_idx = self._cmp_plan(inst)
        grf_bytes = self.grf.bytes
        a, b = [payload if idx is None else
                grf_bytes[idx].view(payload).ravel()
                for idx, payload in fetchers]
        result = cmp_fn(convert(a, exec_dtype), convert(b, exec_dtype))
        flag = self._flag_lanes(inst.flag.index if inst.flag else 0)
        lanes = self._cf_active_lanes(inst)
        if lanes is None:
            flag[: inst.exec_size] = result
        else:
            # Inside divergent control flow only active lanes update the
            # flag (inactive lanes keep their previous flag bits).
            np.copyto(flag[: inst.exec_size], result, where=lanes)
        if inst.dst is not None:
            self._write_dst(inst.dst, result.astype(inst.dst.dtype.np_dtype),
                            mask=lanes, idx=dst_idx)

    # -- memory ------------------------------------------------------------

    def _surface(self, index: int):
        try:
            return self.surfaces[index]
        except KeyError:
            raise ExecutionError(f"no surface bound at BTI {index}") from None

    def _scalar(self, src) -> int:
        if isinstance(src, Immediate):
            return int(src.value)
        return int(self.grf.read_region(src, 1)[0])

    def _execute_send(self, inst: Instruction) -> None:
        msg = inst.msg
        if msg is None:
            raise ExecutionError("send without message descriptor")
        surf = self._surface(msg.surface)
        kind = msg.kind
        base = msg.payload_reg * GRF_SIZE_BYTES

        if kind is MsgKind.MEDIA_BLOCK_READ:
            x = self._scalar(msg.addr0)
            y = self._scalar(msg.addr1)
            block = surf.read_block(x, y, msg.block_width, msg.block_height)
            self.grf.write_bytes(base, block)
        elif kind is MsgKind.MEDIA_BLOCK_WRITE:
            x = self._scalar(msg.addr0)
            y = self._scalar(msg.addr1)
            data = self.grf.read_bytes(base, msg.block_width * msg.block_height)
            surf.write_block(x, y, msg.block_width, msg.block_height, data)
        elif kind is MsgKind.OWORD_BLOCK_READ:
            offset = self._scalar(msg.addr0)
            data = surf.read_linear(offset, msg.payload_bytes)
            self.grf.write_bytes(base, data)
        elif kind is MsgKind.OWORD_BLOCK_WRITE:
            offset = self._scalar(msg.addr0)
            data = self.grf.read_bytes(base, msg.payload_bytes)
            surf.write_linear(offset, data)
        elif kind in (MsgKind.GATHER, MsgKind.SCATTER, MsgKind.ATOMIC):
            self._execute_scattered(inst, surf)
        else:
            raise ExecutionError(f"unhandled message kind {kind}")

    def _execute_scattered(self, inst: Instruction, surf) -> None:
        msg = inst.msg
        n = inst.exec_size
        addr_op = RegOperand(msg.addr_reg, 0, UD,
                             region=_contiguous_region(n))
        offsets = self._fetch(addr_op, n).astype(np.int64)
        global_off = self._scalar(msg.addr0) if msg.addr0 is not None else 0
        elem = msg.elem_dtype
        # Scattered messages take element-granular offsets (CM semantics).
        offsets = (offsets + global_off) * elem.size
        base = msg.payload_reg * GRF_SIZE_BYTES
        mask = self._exec_mask(inst)

        if msg.kind is MsgKind.GATHER:
            data = surf.gather(offsets, elem, mask=mask)
            self.grf.write_bytes(base, np.ascontiguousarray(data))
        elif msg.kind is MsgKind.SCATTER:
            raw = self.grf.read_bytes(base, n * elem.size).view(elem.np_dtype)
            surf.scatter(offsets, raw, mask=mask)
        else:  # ATOMIC
            raw = None
            if msg.payload_bytes:
                raw = self.grf.read_bytes(base, n * elem.size).view(elem.np_dtype)
            old = surf.atomic(msg.atomic_op, offsets, raw, elem, mask=mask)
            if inst.dst is not None:
                # The return payload lands only in the *active* lanes of the
                # destination region; lanes the predicate disabled keep their
                # previous contents (hardware leaves them untouched).
                self._write_dst(inst.dst, np.ascontiguousarray(old),
                                mask=mask)


def _without_pred(inst: Instruction) -> Instruction:
    clone = Instruction(**{k: v for k, v in inst.__dict__.items()
                           if not k.startswith("_")})
    clone.pred = None
    return clone


def _alu_compute(inst: Instruction, exec_dtype: DType,
                 ops: list[np.ndarray]) -> np.ndarray:
    op = inst.opcode
    if op is Opcode.ADD:
        return ops[0] + ops[1]
    if op is Opcode.SUB:
        return ops[0] - ops[1]
    if op is Opcode.MUL:
        return ops[0] * ops[1]
    if op is Opcode.MAD:
        return ops[0] + ops[1] * ops[2]
    if op is Opcode.AND:
        return ops[0] & ops[1]
    if op is Opcode.OR:
        return ops[0] | ops[1]
    if op is Opcode.XOR:
        return ops[0] ^ ops[1]
    if op is Opcode.NOT:
        return ~ops[0]
    if op is Opcode.SHL:
        return ops[0] << ops[1]
    if op is Opcode.SHR:
        # Logical shift right: signed operands are reinterpreted as
        # unsigned so negative values shift in zero bits.
        if exec_dtype.is_float:
            raise ExecutionError("shr on float operands")
        if exec_dtype.is_signed:
            ut = unsigned(exec_dtype).np_dtype
            return ops[0].view(ut) >> ops[1].view(ut)
        return ops[0] >> ops[1]
    if op is Opcode.ASR:
        # Arithmetic shift right: unsigned operands are reinterpreted as
        # signed so the sign bit replicates.
        if exec_dtype.is_float:
            raise ExecutionError("asr on float operands")
        if not exec_dtype.is_signed:
            st = signed(exec_dtype).np_dtype
            return ops[0].view(st) >> ops[1].view(st)
        return ops[0] >> ops[1]
    if op is Opcode.MIN:
        return np.minimum(ops[0], ops[1])
    if op is Opcode.MAX:
        return np.maximum(ops[0], ops[1])
    if op is Opcode.AVG:
        return (ops[0] + ops[1] + 1) >> 1
    if op is Opcode.MATH:
        return _math_compute(inst.math_fn, ops)
    raise ExecutionError(f"unhandled opcode {op}")


def _math_compute(fn: MathFn, ops: list[np.ndarray]) -> np.ndarray:
    if fn is MathFn.INV:
        return 1.0 / ops[0]
    if fn is MathFn.SQRT:
        return np.sqrt(ops[0])
    if fn is MathFn.RSQRT:
        return 1.0 / np.sqrt(ops[0])
    if fn is MathFn.LOG:
        return np.log2(ops[0])
    if fn is MathFn.EXP:
        return np.exp2(ops[0])
    if fn is MathFn.POW:
        return np.power(ops[0], ops[1])
    if fn is MathFn.FDIV:
        return ops[0] / ops[1]
    if fn is MathFn.IDIV:
        return (ops[0] // ops[1]).astype(ops[0].dtype)
    if fn is MathFn.SIN:
        return np.sin(ops[0])
    if fn is MathFn.COS:
        return np.cos(ops[0])
    raise ExecutionError(f"unhandled math fn {fn}")


def _contiguous_region(n: int) -> Region:
    width = min(n, 8)
    return Region(width, width, 1)
