"""Functional executor for straight-line Gen ISA programs.

This is the "hardware" that programs produced by the CM compiler back end
run on.  It owns a :class:`~repro.isa.grf.GRFFile` per thread, a set of
flag registers, and a binding table mapping surface indices to memory
objects from :mod:`repro.memory`.

The executor is *functional*: it computes architectural state only.
Timing is the job of :mod:`repro.sim.timing` (the eager path); the
compiler path exists to validate codegen (Section V of the paper) by
differential testing against the eager path.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.isa.dtypes import DType, UD, convert, promote
from repro.isa.grf import GRFFile, RegOperand, GRF_SIZE_BYTES
from repro.isa.instructions import (
    CondMod, Immediate, Instruction, MathFn, MsgKind, Opcode,
)
from repro.isa.regions import Region


class ExecutionError(RuntimeError):
    """Raised when a program performs an illegal operation."""


class FunctionalExecutor:
    """Execute a straight-line Gen program for a single hardware thread."""

    def __init__(self, surfaces: Mapping[int, object] | None = None,
                 num_regs: int = 128) -> None:
        self.grf = GRFFile(num_regs)
        self.flags: dict[int, np.ndarray] = {}
        self.surfaces = dict(surfaces or {})
        self.instructions_executed = 0

    # -- operand access ----------------------------------------------------

    def _fetch(self, src, exec_size: int) -> np.ndarray:
        if isinstance(src, Immediate):
            return np.full(exec_size, src.value, dtype=src.dtype.np_dtype)
        if isinstance(src, RegOperand):
            return self.grf.read_region(src, exec_size)
        values = getattr(src, "values", None)
        if values is not None:  # packed vector immediate
            arr = np.asarray(values, dtype=src.dtype.np_dtype)
            return np.resize(arr, exec_size)
        raise ExecutionError(f"bad source operand {src!r}")

    def _src_dtype(self, src) -> DType:
        return src.dtype


    def _flag_lanes(self, index: int) -> np.ndarray:
        if index not in self.flags:
            self.flags[index] = np.zeros(32, dtype=bool)
        return self.flags[index]

    def _pred_mask(self, inst: Instruction) -> np.ndarray | None:
        if inst.pred is None:
            return None
        lanes = self._flag_lanes(inst.pred.flag.index)[: inst.exec_size]
        return ~lanes if inst.pred.invert else lanes.copy()

    # -- main loop -----------------------------------------------------------

    def run(self, program: Sequence[Instruction]) -> None:
        for inst in program:
            self.execute(inst)

    def execute(self, inst: Instruction) -> None:
        self.instructions_executed += 1
        op = inst.opcode
        if op is Opcode.NOP or op is Opcode.BARRIER:
            return
        if op is Opcode.SEND:
            self._execute_send(inst)
            return
        if op is Opcode.CMP:
            self._execute_cmp(inst)
            return
        self._execute_alu(inst)

    # -- ALU ------------------------------------------------------------------

    def _execute_alu(self, inst: Instruction) -> None:
        n = inst.exec_size
        dst = inst.dst
        if dst is None:
            raise ExecutionError(f"ALU instruction without destination: {inst}")
        srcs = [self._fetch(s, n) for s in inst.srcs]
        src_dtypes = [self._src_dtype(s) for s in inst.srcs]

        if inst.opcode is Opcode.MOV:
            result = srcs[0]
        elif inst.opcode is Opcode.SEL:
            mask = self._pred_mask(inst)
            if mask is None:
                raise ExecutionError("sel requires a predicate")
            result = np.where(mask, srcs[0], srcs[1])
            # sel writes all lanes; the predicate only chooses the source.
            inst = _without_pred(inst)
        else:
            exec_dtype = src_dtypes[0]
            for t in src_dtypes[1:]:
                exec_dtype = promote(exec_dtype, t)
            if not dst.dtype.is_float and exec_dtype.is_float and \
                    inst.opcode in (Opcode.AND, Opcode.OR, Opcode.XOR):
                raise ExecutionError("bitwise ops on float operands")
            ops = [convert(s, exec_dtype) for s in srcs]
            result = _alu_compute(inst, exec_dtype, ops)

        result = convert(result, dst.dtype, saturate=inst.sat)
        self.grf.write_region(dst, result, mask=self._pred_mask(inst))

    def _execute_cmp(self, inst: Instruction) -> None:
        n = inst.exec_size
        a = self._fetch(inst.srcs[0], n)
        b = self._fetch(inst.srcs[1], n)
        exec_dtype = promote(self._src_dtype(inst.srcs[0]),
                             self._src_dtype(inst.srcs[1]))
        a = convert(a, exec_dtype)
        b = convert(b, exec_dtype)
        cmp_fn = {
            CondMod.EQ: np.equal, CondMod.NE: np.not_equal,
            CondMod.LT: np.less, CondMod.LE: np.less_equal,
            CondMod.GT: np.greater, CondMod.GE: np.greater_equal,
        }[inst.cond_mod]
        result = cmp_fn(a, b)
        flag = self._flag_lanes(inst.flag.index if inst.flag else 0)
        flag[:n] = result
        if inst.dst is not None:
            self.grf.write_region(inst.dst, result.astype(inst.dst.dtype.np_dtype))

    # -- memory ------------------------------------------------------------

    def _surface(self, index: int):
        try:
            return self.surfaces[index]
        except KeyError:
            raise ExecutionError(f"no surface bound at BTI {index}") from None

    def _scalar(self, src) -> int:
        if isinstance(src, Immediate):
            return int(src.value)
        return int(self.grf.read_region(src, 1)[0])

    def _execute_send(self, inst: Instruction) -> None:
        msg = inst.msg
        if msg is None:
            raise ExecutionError("send without message descriptor")
        surf = self._surface(msg.surface)
        kind = msg.kind
        base = msg.payload_reg * GRF_SIZE_BYTES

        if kind is MsgKind.MEDIA_BLOCK_READ:
            x = self._scalar(msg.addr0)
            y = self._scalar(msg.addr1)
            block = surf.read_block(x, y, msg.block_width, msg.block_height)
            self.grf.write_bytes(base, block)
        elif kind is MsgKind.MEDIA_BLOCK_WRITE:
            x = self._scalar(msg.addr0)
            y = self._scalar(msg.addr1)
            data = self.grf.read_bytes(base, msg.block_width * msg.block_height)
            surf.write_block(x, y, msg.block_width, msg.block_height, data)
        elif kind is MsgKind.OWORD_BLOCK_READ:
            offset = self._scalar(msg.addr0)
            data = surf.read_linear(offset, msg.payload_bytes)
            self.grf.write_bytes(base, data)
        elif kind is MsgKind.OWORD_BLOCK_WRITE:
            offset = self._scalar(msg.addr0)
            data = self.grf.read_bytes(base, msg.payload_bytes)
            surf.write_linear(offset, data)
        elif kind in (MsgKind.GATHER, MsgKind.SCATTER, MsgKind.ATOMIC):
            self._execute_scattered(inst, surf)
        else:
            raise ExecutionError(f"unhandled message kind {kind}")

    def _execute_scattered(self, inst: Instruction, surf) -> None:
        msg = inst.msg
        n = inst.exec_size
        addr_op = RegOperand(msg.addr_reg, 0, UD,
                             region=_contiguous_region(n))
        offsets = self.grf.read_region(addr_op, n).astype(np.int64)
        global_off = self._scalar(msg.addr0) if msg.addr0 is not None else 0
        elem = msg.elem_dtype
        # Scattered messages take element-granular offsets (CM semantics).
        offsets = (offsets + global_off) * elem.size
        base = msg.payload_reg * GRF_SIZE_BYTES
        mask = self._pred_mask(inst)

        if msg.kind is MsgKind.GATHER:
            data = surf.gather(offsets, elem, mask=mask)
            self.grf.write_bytes(base, np.ascontiguousarray(data))
        elif msg.kind is MsgKind.SCATTER:
            raw = self.grf.read_bytes(base, n * elem.size).view(elem.np_dtype)
            surf.scatter(offsets, raw, mask=mask)
        else:  # ATOMIC
            raw = None
            if msg.payload_bytes:
                raw = self.grf.read_bytes(base, n * elem.size).view(elem.np_dtype)
            old = surf.atomic(msg.atomic_op, offsets, raw, elem, mask=mask)
            if inst.dst is not None:
                self.grf.write_bytes(inst.dst.byte_offset,
                                     np.ascontiguousarray(old))


def _without_pred(inst: Instruction) -> Instruction:
    clone = Instruction(**{**inst.__dict__})
    clone.pred = None
    return clone


def _alu_compute(inst: Instruction, exec_dtype: DType,
                 ops: list[np.ndarray]) -> np.ndarray:
    op = inst.opcode
    if op is Opcode.ADD:
        return ops[0] + ops[1]
    if op is Opcode.SUB:
        return ops[0] - ops[1]
    if op is Opcode.MUL:
        return ops[0] * ops[1]
    if op is Opcode.MAD:
        return ops[0] + ops[1] * ops[2]
    if op is Opcode.AND:
        return ops[0] & ops[1]
    if op is Opcode.OR:
        return ops[0] | ops[1]
    if op is Opcode.XOR:
        return ops[0] ^ ops[1]
    if op is Opcode.NOT:
        return ~ops[0]
    if op is Opcode.SHL:
        return ops[0] << ops[1]
    if op is Opcode.SHR:
        return ops[0] >> ops[1]
    if op is Opcode.ASR:
        return ops[0] >> ops[1]
    if op is Opcode.MIN:
        return np.minimum(ops[0], ops[1])
    if op is Opcode.MAX:
        return np.maximum(ops[0], ops[1])
    if op is Opcode.AVG:
        return (ops[0] + ops[1] + 1) >> 1
    if op is Opcode.MATH:
        return _math_compute(inst.math_fn, ops)
    raise ExecutionError(f"unhandled opcode {op}")


def _math_compute(fn: MathFn, ops: list[np.ndarray]) -> np.ndarray:
    if fn is MathFn.INV:
        return 1.0 / ops[0]
    if fn is MathFn.SQRT:
        return np.sqrt(ops[0])
    if fn is MathFn.RSQRT:
        return 1.0 / np.sqrt(ops[0])
    if fn is MathFn.LOG:
        return np.log2(ops[0])
    if fn is MathFn.EXP:
        return np.exp2(ops[0])
    if fn is MathFn.POW:
        return np.power(ops[0], ops[1])
    if fn is MathFn.FDIV:
        return ops[0] / ops[1]
    if fn is MathFn.IDIV:
        return (ops[0] // ops[1]).astype(ops[0].dtype)
    if fn is MathFn.SIN:
        return np.sin(ops[0])
    if fn is MathFn.COS:
        return np.cos(ops[0])
    raise ExecutionError(f"unhandled math fn {fn}")


def _contiguous_region(n: int) -> Region:
    width = min(n, 8)
    return Region(width, width, 1)
