"""Control-flow graph + reconvergence analysis for SIMD-CF programs.

The structured CF opcodes (:data:`~repro.isa.instructions.CF_OPCODES`)
carry no label operands: IF/ELSE/ENDIF/BREAK only manipulate the
execution-mask stack and every thread steps through every instruction,
while WHILE is the single back-edge (to the instruction after its
matching DO).  That makes the *thread* PC almost straight-line — but
*lanes* still diverge and reconverge, and the wide executor needs to
know, once per program, where each divergent construct rejoins.

This module computes that schedule:

- a structural scan validates nesting (ELSE/ENDIF close an IF, WHILE
  closes a DO, BREAK sits inside a loop) and resolves the WHILE
  back-edge targets and the IF-frames a BREAK must peel;
- a lane-flow CFG is built (IF/ELSE/BREAK/WHILE are the branch points,
  their mask-level jump targets the extra edges) and **immediate
  post-dominators** are computed on it with the Cooper-Harvey-Kennedy
  algorithm run on the reverse graph — the classic reconvergence-point
  construction surveyed in *Control Flow Management in Modern GPUs*;
- the two agree by construction for well-formed structured programs
  (ENDIF for an IF, loop exit for WHILE/BREAK); a mismatch or a
  malformed structure raises :class:`CFError`, which the wide
  eligibility check reports as ``malformed-control-flow``.

The resulting :class:`CFPlan` is cached per program on its
:class:`~repro.isa.plans.PlanTable` (see :meth:`PlanTable.cf_plan`) so
both interpreters and the device gate share one analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import CF_OPCODES, Instruction, Opcode

__all__ = ["CFError", "CFPlan", "analyze_cf"]


class CFError(ValueError):
    """A program's SIMD control flow is structurally malformed."""


@dataclass
class CFPlan:
    """Per-program control-flow schedule (see module docstring).

    ``depth_at[pc]`` is the static mask-stack depth *before* executing
    ``pc`` — static because execution is structural (no instruction is
    ever skipped, and the only back-edge re-enters the loop *after* its
    DO), so every thread reaching ``pc`` has performed the same
    pushes/pops.  The wide executor leans on this: threads grouped at
    one PC always share frame structure, only their masks differ.
    """

    has_cf: bool
    #: WHILE pc -> first body pc (its DO + 1): the back-edge target.
    body_of: Dict[int, int] = field(default_factory=dict)
    #: BREAK pc -> frame levels of enclosing IFs inside the innermost
    #: loop; a taken break clears its lanes from these frames too, so
    #: they cannot resurrect at the IFs' ELSE/ENDIF.
    break_clear: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: BREAK pc -> frame level of the innermost enclosing DO.
    break_do_level: Dict[int, int] = field(default_factory=dict)
    #: static mask-stack depth before each pc (len == len(program)).
    depth_at: Tuple[int, ...] = ()
    #: divergent-branch pc (IF/WHILE/BREAK) -> reconvergence pc, i.e.
    #: the instruction's immediate post-dominator in the lane-flow CFG.
    reconverge_at: Dict[int, int] = field(default_factory=dict)
    max_depth: int = 0


def _structure(program: Sequence[Instruction]) -> tuple:
    """Scan + validate nesting; return structural maps.

    Returns ``(if_else, if_endif, do_while, break_do, depth_at)`` where
    the first four map construct pcs to their partners.
    """
    if_else: Dict[int, Optional[int]] = {}
    if_endif: Dict[int, int] = {}
    do_while: Dict[int, int] = {}
    break_do: Dict[int, int] = {}
    break_clear: Dict[int, Tuple[int, ...]] = {}
    break_do_level: Dict[int, int] = {}
    depth_at: List[int] = []
    stack: List[Tuple[str, int]] = []   # ("if"|"do", open pc)
    for pc, inst in enumerate(program):
        depth_at.append(len(stack))
        op = inst.opcode
        if op is Opcode.SIMD_IF:
            if_else[pc] = None
            stack.append(("if", pc))
        elif op is Opcode.SIMD_ELSE:
            if not stack or stack[-1][0] != "if":
                raise CFError(f"simd_else at {pc} without an open simd_if")
            open_pc = stack[-1][1]
            if if_else[open_pc] is not None:
                raise CFError(f"second simd_else at {pc} for if at {open_pc}")
            if_else[open_pc] = pc
        elif op is Opcode.SIMD_ENDIF:
            if not stack or stack[-1][0] != "if":
                raise CFError(f"simd_endif at {pc} without an open simd_if")
            if_endif[stack.pop()[1]] = pc
        elif op is Opcode.SIMD_DO:
            stack.append(("do", pc))
        elif op is Opcode.SIMD_WHILE:
            if not stack or stack[-1][0] != "do":
                raise CFError(f"simd_while at {pc} without an open simd_do")
            do_while[stack.pop()[1]] = pc
        elif op is Opcode.SIMD_BREAK:
            level = None
            for lvl in range(len(stack) - 1, -1, -1):
                if stack[lvl][0] == "do":
                    level = lvl
                    break
            if level is None:
                raise CFError(f"simd_break at {pc} outside any simd_do loop")
            break_do[pc] = stack[level][1]
            break_do_level[pc] = level
            break_clear[pc] = tuple(range(level + 1, len(stack)))
    if stack:
        kind, pc = stack[-1]
        raise CFError(f"unterminated simd_{kind} opened at {pc}")
    return (if_else, if_endif, do_while, break_do,
            break_clear, break_do_level, tuple(depth_at))


def _lane_flow_succ(program, if_else, if_endif, do_while, break_do) -> list:
    """Successor lists of the lane-flow CFG (exit node == len(program))."""
    n = len(program)
    else_of = {e: i for i, e in if_else.items() if e is not None}
    while_of = {w: d for d, w in do_while.items()}
    succ: List[List[int]] = []
    for pc, inst in enumerate(program):
        op = inst.opcode
        nxt = pc + 1
        if op is Opcode.SIMD_IF:
            els = if_else[pc]
            target = (els + 1) if els is not None else if_endif[pc]
            succ.append([nxt, target] if target != nxt else [nxt])
        elif op is Opcode.SIMD_ELSE:
            # then-lanes arriving here jump to the ENDIF.
            owner = else_of[pc]
            target = if_endif[owner]
            succ.append([nxt, target] if target != nxt else [nxt])
        elif op is Opcode.SIMD_WHILE:
            succ.append([while_of[pc] + 1, nxt])
        elif op is Opcode.SIMD_BREAK:
            target = do_while[break_do[pc]] + 1
            succ.append([nxt, target] if target != nxt else [nxt])
        else:
            succ.append([nxt])
    return succ


def _ipdoms(succ: List[List[int]], n: int) -> List[Optional[int]]:
    """Immediate post-dominators via Cooper-Harvey-Kennedy on the
    reverse CFG (rooted at the virtual exit node ``n``)."""
    # Reverse graph: rev_succ(v) = predecessors of v in it = succ(v).
    rev_preds: List[List[int]] = [[] for _ in range(n + 1)]
    for u, outs in enumerate(succ):
        for v in outs:
            rev_preds[v].append(u)   # reverse edge v -> u
    # Reverse-postorder of the reverse graph from the exit node.
    order: List[int] = []
    seen = [False] * (n + 1)
    stack: List[Tuple[int, int]] = [(n, 0)]
    seen[n] = True
    while stack:
        node, i = stack[-1]
        # children in the reverse graph are the original predecessors
        kids = rev_preds[node]
        if i < len(kids):
            stack[-1] = (node, i + 1)
            k = kids[i]
            if not seen[k]:
                seen[k] = True
                stack.append((k, 0))
        else:
            order.append(node)
            stack.pop()
    rpo = list(reversed(order))
    index = {v: i for i, v in enumerate(rpo)}
    idom: List[Optional[int]] = [None] * (n + 1)
    idom[n] = n

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for v in rpo:
            if v == n:
                continue
            new = None
            for p in succ[v] if v < n else []:   # preds in reverse graph
                if idom[p] is not None:
                    new = p if new is None else intersect(new, p)
            if new is not None and idom[v] != new:
                idom[v] = new
                changed = True
    return idom


def analyze_cf(program: Sequence[Instruction]) -> CFPlan:
    """Validate structure and compute the reconvergence schedule.

    Raises :class:`CFError` for malformed control flow.
    """
    has_cf = any(inst.opcode in CF_OPCODES for inst in program)
    if not has_cf:
        return CFPlan(has_cf=False, depth_at=(0,) * len(program))
    (if_else, if_endif, do_while, break_do,
     break_clear, break_do_level, depth_at) = _structure(program)
    succ = _lane_flow_succ(program, if_else, if_endif, do_while, break_do)
    n = len(program)
    idom = _ipdoms(succ, n)
    reconverge: Dict[int, int] = {}
    for pc, inst in enumerate(program):
        op = inst.opcode
        if op not in (Opcode.SIMD_IF, Opcode.SIMD_WHILE, Opcode.SIMD_BREAK):
            continue
        rp = idom[pc]
        if rp is None:
            raise CFError(f"no reconvergence point for {op.value} at {pc}")
        # Cross-check the post-dominator answer against the structural
        # expectation — they must agree for well-formed programs.
        if op is Opcode.SIMD_IF:
            expect = if_endif[pc]
        elif op is Opcode.SIMD_WHILE:
            expect = pc + 1
        else:
            expect = do_while[break_do[pc]] + 1
        if rp != expect:
            raise CFError(
                f"reconvergence mismatch at {pc} ({op.value}): "
                f"post-dominator says {rp}, structure says {expect}")
        reconverge[pc] = rp
    body_of = {w: d + 1 for d, w in do_while.items()}
    return CFPlan(
        has_cf=True, body_of=body_of, break_clear=break_clear,
        break_do_level=break_do_level, depth_at=depth_at,
        reconverge_at=reconverge,
        max_depth=(max(depth_at) + 1) if depth_at else 0)
