"""Gen ISA data types.

Gen instructions are typed per operand.  The type controls the element
width used by region addressing and the throughput of the instruction on
the EU.  The standard Gen assembly suffixes are used throughout
(``:ub``, ``:w``, ``:f`` ...) so that disassembly printed by this package
looks like the listings in the paper (e.g. Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DType:
    """A Gen ISA element type.

    Attributes:
        name: canonical lowercase Gen assembly suffix (e.g. ``"f"``).
        size: element size in bytes.
        np_dtype: the numpy dtype used to store elements of this type.
        is_float: True for floating point types.
        is_signed: True for signed integer or float types.
    """

    name: str
    size: int
    np_dtype: np.dtype
    is_float: bool
    is_signed: bool

    def __repr__(self) -> str:
        return f":{self.name}"

    @property
    def min(self):
        """Smallest representable value (for saturation semantics)."""
        if self.is_float:
            return float(np.finfo(self.np_dtype).min)
        return int(np.iinfo(self.np_dtype).min)

    @property
    def max(self):
        """Largest representable value (for saturation semantics)."""
        if self.is_float:
            return float(np.finfo(self.np_dtype).max)
        return int(np.iinfo(self.np_dtype).max)


UB = DType("ub", 1, np.dtype(np.uint8), False, False)
B = DType("b", 1, np.dtype(np.int8), False, True)
UW = DType("uw", 2, np.dtype(np.uint16), False, False)
W = DType("w", 2, np.dtype(np.int16), False, True)
UD = DType("ud", 4, np.dtype(np.uint32), False, False)
D = DType("d", 4, np.dtype(np.int32), False, True)
UQ = DType("uq", 8, np.dtype(np.uint64), False, False)
Q = DType("q", 8, np.dtype(np.int64), False, True)
HF = DType("hf", 2, np.dtype(np.float16), True, True)
F = DType("f", 4, np.dtype(np.float32), True, True)
DF = DType("df", 8, np.dtype(np.float64), True, True)

ALL_DTYPES = (UB, B, UW, W, UD, D, UQ, Q, HF, F, DF)

_BY_NAME = {t.name: t for t in ALL_DTYPES}
_BY_NUMPY = {t.np_dtype: t for t in ALL_DTYPES}


def dtype_by_name(name: str) -> DType:
    """Look up a Gen type by its assembly suffix (``"f"``, ``"ub"``, ...)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown Gen dtype {name!r}") from None


def dtype_from_numpy(np_dtype) -> DType:
    """Map a numpy dtype to the corresponding Gen type."""
    key = np.dtype(np_dtype)
    try:
        return _BY_NUMPY[key]
    except KeyError:
        raise ValueError(f"no Gen dtype for numpy dtype {key}") from None


_UNSIGNED = {1: UB, 2: UW, 4: UD, 8: UQ}
_SIGNED = {1: B, 2: W, 4: D, 8: Q}


def unsigned(t: DType) -> DType:
    """The unsigned integer type of the same width (identity if unsigned)."""
    if t.is_float:
        raise ValueError(f"no unsigned counterpart for float type {t!r}")
    return _UNSIGNED[t.size]


def signed(t: DType) -> DType:
    """The signed integer type of the same width (identity if signed)."""
    if t.is_float:
        raise ValueError(f"no signed counterpart for float type {t!r}")
    return _SIGNED[t.size]


def promote(a: DType, b: DType) -> DType:
    """C-style usual arithmetic conversion between two Gen types.

    Float beats integer; the wider type wins; mixed-signedness of equal
    width promotes to unsigned (as in C).  Sub-int integer types promote
    to :data:`D` first, matching both C integer promotion and the CM
    compiler's behaviour of computing byte/word arithmetic in dword.
    """
    if a is b:
        return a
    if a.is_float or b.is_float:
        if a.is_float and b.is_float:
            return a if a.size >= b.size else b
        return a if a.is_float else b
    # Integer promotion: anything smaller than dword computes as dword.
    a = _int_promote(a)
    b = _int_promote(b)
    if a is b:
        return a
    if a.size != b.size:
        return a if a.size > b.size else b
    # Same width, mixed signedness -> unsigned wins.
    return a if not a.is_signed else b


def _int_promote(t: DType) -> DType:
    return D if (not t.is_float and t.size < 4) else t


def convert(values: np.ndarray, dst: DType, saturate: bool = False) -> np.ndarray:
    """Convert ``values`` to ``dst`` with Gen conversion semantics.

    Float-to-int conversion truncates toward zero.  Integer narrowing wraps
    by default and clamps when ``saturate`` is set (the Gen ``.sat``
    modifier).  Float destinations never wrap.
    """
    src = np.asarray(values)
    if dst.is_float:
        return src.astype(dst.np_dtype)
    if saturate:
        lo, hi = dst.min, dst.max
        clipped = np.clip(src, lo, hi)
        return np.trunc(clipped).astype(dst.np_dtype) if np.issubdtype(
            clipped.dtype, np.floating) else clipped.astype(dst.np_dtype)
    if np.issubdtype(src.dtype, np.floating):
        # Truncate toward zero, then wrap into the destination like C.
        as_i64 = np.trunc(src).astype(np.int64, copy=False)
        return as_i64.astype(dst.np_dtype)
    return src.astype(dst.np_dtype)
