"""Gen region-based operand addressing.

A source operand region is written ``<V;W,H>`` in Gen assembly:

- ``W`` (width): number of elements in a row,
- ``H`` (horizontal stride): step, in elements, between elements of a row,
- ``V`` (vertical stride): step, in elements, between rows.

Together with the execution size ``N`` the region describes an
``N``-element gather from the register file at zero cost: element ``i``
lives at ``base + (i // W) * V + (i % W) * H`` (in element units).

Destination operands use a simple horizontal stride ``<H>``.

This module contains the arithmetic only; :mod:`repro.isa.grf` applies the
offsets to the register file bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Region:
    """A ``<V;W,H>`` source region (element units)."""

    vstride: int
    width: int
    hstride: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"region width must be positive, got {self.width}")
        if self.hstride < 0 or self.vstride < 0:
            raise ValueError("region strides must be non-negative")

    def __str__(self) -> str:
        return f"<{self.vstride};{self.width},{self.hstride}>"

    @staticmethod
    def contiguous(width: int = 8) -> "Region":
        """The canonical packed region ``<W;W,1>``."""
        return Region(width, width, 1)

    @staticmethod
    def scalar() -> "Region":
        """The broadcast region ``<0;1,0>``."""
        return Region(0, 1, 0)

    def is_contiguous(self, n: int) -> bool:
        """True if an ``n``-element access through this region is packed."""
        offs = region_element_offsets(self, n)
        return bool(np.array_equal(offs, np.arange(n)))


@dataclass(frozen=True)
class RegionDesc:
    """A fully-specified operand region: byte offset + ``<V;W,H>`` + type size.

    ``offset_bytes`` is the byte offset of the first element relative to the
    start of the containing register range (for vISA virtual operands) or of
    the GRF (for physical operands).
    """

    offset_bytes: int
    region: Region
    elem_size: int

    def byte_offsets(self, n: int) -> np.ndarray:
        """Byte offsets of the ``n`` region elements."""
        return self.offset_bytes + region_element_offsets(self.region, n) * self.elem_size


def region_element_offsets(region: Region, n: int) -> np.ndarray:
    """Element-unit offsets of an ``n``-element access through ``region``."""
    idx = np.arange(n)
    rows, cols = np.divmod(idx, region.width)
    return rows * region.vstride + cols * region.hstride


def region_for_strided(n: int, stride: int) -> Region:
    """Region describing a 1D strided select of ``n`` elements."""
    if stride == 1:
        return Region(min(n, 8), min(n, 8), 1)
    return Region(stride * min(n, 8), min(n, 8), stride) if n > 1 else Region.scalar()
