"""Program-scoped instruction plan tables.

The executors memoize everything about an instruction that does not
depend on thread state: resolved region byte-index arrays, broadcast
immediate payloads, the promoted execution dtype, source-register
footprints for load-use tracking, and per-machine ALU issue costs.

Historically those memos lived in per-executor dicts keyed by
``id(inst)``.  That keying has two failure modes in pooled executors
(serve workers, the batch ``TracingExecutor``):

- **staleness** — if a program is dropped (KernelCache eviction,
  ``Device.reset``) and an ``Instruction`` object is reused for a new
  program (same object, new meaning — the id is equal *by
  construction*), the executor silently returns the old program's plan:
  wrong region indices, wrong dtype, wrong cost;
- **unbounded growth** — the dicts survive ``reset()`` by design and
  grow by one entry per instruction per program for the life of the
  executor.

:class:`PlanTable` replaces them with a table scoped to one *program
binding* — the program list object itself.  Plan slots are keyed by
``(program, instruction index)``: executors bind exactly one table at a
time and rebuild (or rebind) whenever they are handed a different
program object, so a recycled ``Instruction`` in a new program can
never alias a stale plan, and an executor's plan footprint is bounded
by the length of the one program it is currently running.

Tables attach lazily to :class:`~repro.compiler.driver.CompiledKernel`
(see :meth:`CompiledKernel.plan_table`), so a plan table's lifetime is
exactly its kernel's — when the :class:`~repro.compiler.cache.
KernelCache` evicts a program, the plans (and any JIT megakernel, see
:mod:`repro.isa.jit`) go with it.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["PlanTable"]


class PlanTable:
    """Resolved per-instruction plans for one program binding.

    The table is *lazy*: slots fill in as the executor first touches
    each instruction, and one table can be shared by any number of
    executors running the same program (sequential, wide, and JIT
    dispatch build identical plans; slot assignment is idempotent and
    atomic under the GIL).

    Identity contract: a table is valid for exactly the program list
    object it was built from.  Executors must call :meth:`matches`
    before reusing a bound table and rebuild on mismatch — that rebuild
    is what makes recycled ``Instruction`` objects safe.
    """

    __slots__ = ("program", "insts", "_index", "plans", "src_regs",
                 "_cost_tables", "_cf")

    def __init__(self, program: Sequence) -> None:
        #: the exact program object this table is bound to (strong ref,
        #: so instruction ids stay stable for the table's lifetime).
        self.program = program
        self.insts = tuple(program)
        self._index = {id(inst): i for i, inst in enumerate(self.insts)}
        n = len(self.insts)
        #: index -> ALU/CMP plan tuple (an instruction is one or the
        #: other, so the slots can share a list).
        self.plans: list = [None] * n
        #: index -> merged source GRF-register tuple (load-use tracking).
        self.src_regs: list = [None] * n
        #: machine -> per-index (n_inst, cycles) ALU cost slots.  Keyed
        #: by the (frozen, hashable) MachineConfig value so one kernel's
        #: table serves devices with different machine models.
        self._cost_tables: dict = {}
        #: lazily-computed control-flow plan (see :mod:`repro.isa.cfg`).
        self._cf = None

    def __len__(self) -> int:
        return len(self.insts)

    def matches(self, program: Sequence) -> bool:
        """Whether this table may serve ``program``.

        Binding is by program-object identity: a new list — even one
        holding recycled ``Instruction`` objects with familiar ids —
        gets a fresh table.
        """
        return program is self.program

    def slot(self, inst) -> Optional[int]:
        """The instruction's index in the bound program, or ``None``.

        ``None`` means the instruction is not part of the bound program
        (ad-hoc ``execute()`` calls); callers fall back to building an
        unmemoized plan.
        """
        return self._index.get(id(inst))

    def cost_slots(self, machine) -> list:
        """Per-index ALU cost slots for ``machine`` (created on demand)."""
        slots = self._cost_tables.get(machine)
        if slots is None:
            slots = self._cost_tables[machine] = [None] * len(self.insts)
        return slots

    def cf_plan(self):
        """The program's control-flow/reconvergence plan (cached).

        Computed once per program by :func:`repro.isa.cfg.analyze_cf`;
        raises :class:`~repro.isa.cfg.CFError` on malformed structure.
        """
        plan = self._cf
        if plan is None:
            from repro.isa.cfg import analyze_cf
            plan = self._cf = analyze_cf(self.insts)
        return plan
