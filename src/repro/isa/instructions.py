"""Gen ISA instructions.

The instruction model covers what the CM compiler back end emits:
typed SIMD ALU instructions with region operands, compares writing flag
registers, predicated moves/selects, math (extended-function) ops, and
``send`` messages to the memory subsystem (2D media block, oword block,
scattered gather/scatter, atomics).

The textual form produced by :meth:`Instruction.asm` matches the style of
the listings in the paper, e.g.::

    mov (16|M0) r11.0<1>:f r4.3<8;8,1>:ub
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.isa.dtypes import DType
from repro.isa.grf import RegOperand


class Opcode(enum.Enum):
    MOV = "mov"
    SEL = "sel"
    ADD = "add"
    SUB = "sub"          # pseudo: emitted as add with negated src1
    MUL = "mul"
    MAD = "mad"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    ASR = "asr"
    MIN = "min"          # pseudo for sel.l
    MAX = "max"          # pseudo for sel.ge
    AVG = "avg"
    CMP = "cmp"
    MATH = "math"
    SEND = "send"
    BARRIER = "barrier"
    NOP = "nop"
    # Structured SIMD control flow (Gen's simd-goto/simd-join, exposed as
    # the IF/ELSE/ENDIF + DO/WHILE/BREAK form vISA uses).  These carry no
    # label operands: IF/ELSE/ENDIF/BREAK are pure execution-mask-stack
    # manipulation executed by *every* thread (empty-mask regions still
    # step through their instructions, which is what keeps wide and
    # sequential timing bit-identical), and the only back-edge, WHILE,
    # jumps to the instruction after its matching DO.
    SIMD_IF = "simd_if"
    SIMD_ELSE = "simd_else"
    SIMD_ENDIF = "simd_endif"
    SIMD_DO = "simd_do"
    SIMD_WHILE = "simd_while"
    SIMD_BREAK = "simd_break"


#: The structured-control-flow subset of :class:`Opcode`.
CF_OPCODES = frozenset({
    Opcode.SIMD_IF, Opcode.SIMD_ELSE, Opcode.SIMD_ENDIF,
    Opcode.SIMD_DO, Opcode.SIMD_WHILE, Opcode.SIMD_BREAK,
})


class MathFn(enum.Enum):
    INV = "inv"
    SQRT = "sqrt"
    RSQRT = "rsqt"
    LOG = "log"
    EXP = "exp"
    POW = "pow"
    IDIV = "idiv"
    FDIV = "fdiv"
    SIN = "sin"
    COS = "cos"


class CondMod(enum.Enum):
    """Conditional modifiers for ``cmp`` (result written to a flag)."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"


@dataclass(frozen=True)
class Immediate:
    """An immediate operand."""

    value: Union[int, float]
    dtype: DType

    def __str__(self) -> str:
        if self.dtype.is_float:
            return f"{self.value}:{self.dtype.name}"
        return f"{int(self.value)}:{self.dtype.name}"


@dataclass(frozen=True)
class FlagOperand:
    """A flag (predicate) register: 32 bits, one per lane."""

    index: int = 0

    def __str__(self) -> str:
        return f"f{self.index}.0"


@dataclass(frozen=True)
class Predicate:
    flag: FlagOperand
    invert: bool = False

    def __str__(self) -> str:
        bang = "~" if self.invert else ""
        return f"({bang}{self.flag})"


class MsgKind(enum.Enum):
    MEDIA_BLOCK_READ = "media_block_read"
    MEDIA_BLOCK_WRITE = "media_block_write"
    OWORD_BLOCK_READ = "oword_block_read"
    OWORD_BLOCK_WRITE = "oword_block_write"
    GATHER = "gather"
    SCATTER = "scatter"
    ATOMIC = "atomic"


@dataclass(frozen=True)
class MessageDesc:
    """A simplified ``send`` message descriptor.

    ``surface`` is a binding-table index resolved by the executor.  The
    address sources (``addr0``/``addr1``) are scalar register operands or
    immediates: (x, y) block origin for media block messages, the oword
    offset for oword block messages.  For gather/scatter/atomic messages
    the per-lane offsets live in a GRF range starting at ``addr_reg``.
    ``payload`` identifies the GRF byte range read (writes) or written
    (reads) by the message.
    """

    kind: MsgKind
    surface: int
    block_width: int = 0          # bytes per row (media block)
    block_height: int = 0         # rows (media block)
    addr0: Optional[Union[RegOperand, Immediate]] = None
    addr1: Optional[Union[RegOperand, Immediate]] = None
    addr_reg: int = -1            # GRF reg holding per-lane dword offsets
    payload_reg: int = -1         # first GRF reg of the data payload
    payload_bytes: int = 0
    atomic_op: str = ""
    elem_dtype: Optional[DType] = None

    def __str__(self) -> str:
        parts = [self.kind.value, f"bti[{self.surface}]"]
        if self.kind in (MsgKind.MEDIA_BLOCK_READ, MsgKind.MEDIA_BLOCK_WRITE):
            parts.append(f"{self.block_width}x{self.block_height}")
        if self.atomic_op:
            parts.append(self.atomic_op)
        return " ".join(parts)


Source = Union[RegOperand, Immediate]


@dataclass
class Instruction:
    """One Gen ISA instruction."""

    opcode: Opcode
    exec_size: int = 1
    dst: Optional[RegOperand] = None
    srcs: Sequence[Source] = field(default_factory=tuple)
    pred: Optional[Predicate] = None
    cond_mod: Optional[CondMod] = None
    flag: Optional[FlagOperand] = None
    math_fn: Optional[MathFn] = None
    msg: Optional[MessageDesc] = None
    sat: bool = False
    emask: str = "M0"
    comment: str = ""

    def asm(self) -> str:
        """Gen-assembly-style text for this instruction."""
        name = self.opcode.value
        if self.opcode is Opcode.MATH and self.math_fn is not None:
            name = f"math.{self.math_fn.value}"
        if self.opcode is Opcode.CMP and self.cond_mod is not None:
            name = f"cmp.{self.cond_mod.value}"
        pieces = []
        if self.pred is not None:
            pieces.append(str(self.pred))
        pieces.append(name + (".sat" if self.sat else ""))
        pieces.append(f"({self.exec_size}|{self.emask})")
        if self.opcode is Opcode.CMP and self.flag is not None:
            pieces.append(f"[{self.flag}]")
        if self.dst is not None:
            pieces.append(self.dst.dst_str())
        for s in self.srcs:
            pieces.append(s.src_str() if isinstance(s, RegOperand) else str(s))
        if self.msg is not None:
            pieces.append(str(self.msg))
        text = " ".join(pieces)
        if self.comment:
            text = f"{text}  // {self.comment}"
        return text

    def __str__(self) -> str:
        return self.asm()


def format_program(instructions: Sequence[Instruction]) -> str:
    """Pretty-print a Gen program."""
    return "\n".join(f"{i:>4}) {inst.asm()}" for i, inst in enumerate(instructions, 1))
