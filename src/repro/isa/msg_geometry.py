"""Message-split geometry shared by every dispatch path.

The Gen dataport carves oversized accesses into multiple hardware
messages: media-block I/O splits at 32 bytes x 8 rows, oword-block I/O
at 8 owords (128 bytes), and scattered/gather/atomic messages carry 16
lanes each.  Both the eager intrinsics (:mod:`repro.cm.intrinsics`) and
the compiled-path tracer (:mod:`repro.sim.batch`) charge the same split
counts; they import the geometry from here.

This module is a *leaf*: it depends on nothing inside :mod:`repro`, so
``repro.cm`` (which pulls in :mod:`repro.sim.context`) and ``repro.sim``
can both import it without creating a cycle.
"""

from __future__ import annotations

#: Media-block message limits: wider/taller blocks split into several sends.
MEDIA_MSG_WIDTH = 32   # bytes per media-block message row
MEDIA_MSG_HEIGHT = 8   # rows per media-block message

#: Oword-block messages move at most 8 owords.
OWORD_MSG_BYTES = 128

#: Scattered (gather/scatter/atomic) messages carry 16 lanes each.
SCATTER_LANES = 16


def media_block_messages(width_bytes: int, height: int) -> int:
    """Hardware messages for one media-block access of the given shape."""
    return -(-width_bytes // MEDIA_MSG_WIDTH) * -(-height // MEDIA_MSG_HEIGHT)


def oword_block_messages(nbytes: int) -> int:
    """Hardware messages for one oword-block access of ``nbytes``."""
    return -(-nbytes // OWORD_MSG_BYTES)


def scatter_messages(lanes: int) -> int:
    """Hardware messages for one scattered access of ``lanes`` lanes."""
    return -(-lanes // SCATTER_LANES)
