"""The virtual serving cluster: N devices, one scheduler, one front door.

Pipeline::

    submit() -> SubmissionQueue -> dispatcher thread -> DeviceWorker[i]
                 (admission /       (resolve, batch,      (per-device
                  backpressure)      pick device)          thread + lock)

- The **dispatcher** drains the bounded submission queue, resolves each
  request against the workload registry, lets the
  :class:`~repro.serve.batcher.DynamicBatcher` coalesce compatible
  compiled requests, and routes every batch to a device via the
  configured :class:`~repro.serve.scheduler.Policy`.
- Each **DeviceWorker** owns one simulated :class:`Device` plus a lock,
  so the device and its :class:`KernelCache` are never touched by two
  threads at once; workers run concurrently with each other, which is
  where the wall-clock parallelism comes from.
- Two clocks are kept per request: wall time (thread reality) and the
  simulated-microsecond timeline, where each device is a serial resource
  — a batch head pays the full launch overhead, coalesced followers pay
  only the pipelined gap (see :mod:`repro.serve.batcher`).

Everything is observable: ``serve_*`` counters/gauges/histograms land in
the cluster registry (the installed :mod:`repro.obs` registry when
enabled), and batch execution opens ``serve:batch`` / ``serve:request``
spans in the trace sinks.
"""

from __future__ import annotations

import queue as _stdqueue
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

import repro.sanitize as sanitize_mod
from repro.obs import get_observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import DumpReason, FlightRecorder
from repro.obs.request import RequestTrace, mint_trace_id
from repro.obs.slo import SLOTracker
from repro.obs.tracing import get_tracer, trace_span
from repro.isa.jit import JitTracingExecutor
from repro.sim.device import Device
from repro.sim.machine import GEN11_ICL, MachineConfig

from repro.serve.batcher import Batch, DynamicBatcher, WorkItem
from repro.serve.lanes import PriorityLaneQueue, normalize_lane
from repro.serve.queue import SubmissionQueue
from repro.serve.request import Request, RequestStatus, percentiles
from repro.serve.scheduler import Policy, make_policy
from repro.serve.workloads import get_workload

_SHUTDOWN = object()

#: Wall-latency histogram buckets in milliseconds (the default metric
#: buckets are microsecond-scaled for simulated time).
_MS_BUCKETS = (0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0,
               float("inf"))


class DeviceWorker(threading.Thread):
    """One thread driving one simulated device."""

    def __init__(self, index: int, device: Device,
                 cluster: "ServeCluster") -> None:
        super().__init__(name=f"serve-dev{index}", daemon=True)
        self.index = index
        self.device = device
        self.cluster = cluster
        self.inbox: _stdqueue.Queue = _stdqueue.Queue()
        #: tuned-variant accounting: "family:label" -> requests served.
        self.variants_served: Dict[str, int] = {}
        #: serializes every touch of the device and its kernel cache.
        self.lock = threading.Lock()
        #: device-free point on the simulated timeline.
        self.sim_clock_us = 0.0
        #: committed simulated busy time (overhead + kernel).
        self.busy_sim_us = 0.0
        #: estimated simulated time of batches queued on the inbox.
        self.pending_sim_us = 0.0
        self.requests_done = 0
        self.batches_done = 0
        self._pending_lock = threading.Lock()

    def load_sim_us(self) -> float:
        """The least-loaded metric: committed + estimated queued work."""
        with self._pending_lock:
            return self.busy_sim_us + self.pending_sim_us

    def note_assigned(self, estimate_us: float) -> None:
        with self._pending_lock:
            self.pending_sim_us += estimate_us

    def _note_served(self, estimate_us: float, busy_us: float) -> None:
        with self._pending_lock:
            self.pending_sim_us = max(0.0, self.pending_sim_us - estimate_us)
            self.busy_sim_us += busy_us

    def run(self) -> None:
        while True:
            batch = self.inbox.get()
            if batch is _SHUTDOWN:
                break
            try:
                self._execute(batch)
            finally:
                self.inbox.task_done()

    # -- batch execution ---------------------------------------------------

    def _execute(self, batch: Batch) -> None:
        cluster = self.cluster
        machine = self.device.machine
        with self.lock, trace_span("serve:batch", device=self.index,
                                   kernel=batch.kernel_name,
                                   size=batch.size):
            batch_busy_us = 0.0
            # Pooled JIT-capable wide executor: coalesced compiled
            # batches reuse one grid-vectorized executor across the
            # whole batch, and run_compiled binds the kernel's cached
            # megakernel into it so every request after the first skips
            # both plan construction and JIT compilation; run_compiled
            # falls back to a fresh scalar path for programs the wide
            # path cannot vectorize.
            pooled = JitTracingExecutor() if (
                batch.size > 1 and batch.items[0].kind == "compiled") \
                else None
            for pos, item in enumerate(batch.items):
                req = item.request
                req.status = RequestStatus.RUNNING
                req.t_dispatch_wall = time.perf_counter()
                req.device_index = self.index
                req.batch_id = batch.id
                req.batch_size = batch.size
                overhead_us = machine.launch_overhead_us if pos == 0 \
                    else machine.pipelined_launch_us
                start = self.sim_clock_us
                if req.arrival_sim_us is not None:
                    start = max(start, req.arrival_sim_us)
                req.start_sim_us = start
                error: Optional[str] = None
                try:
                    if req.trace is not None:
                        # Route every span the device opens (sanitize_gate,
                        # dispatch:*, chunk, fold, jit:compile) into this
                        # request's tree, whatever sink is installed.
                        with req.trace.active(), \
                                trace_span("serve:request", request=req.id,
                                           workload=req.workload,
                                           device=self.index,
                                           batch=batch.id, position=pos):
                            self._run_item(item, pooled)
                    else:
                        with trace_span("serve:request", request=req.id,
                                        workload=req.workload,
                                        device=self.index):
                            self._run_item(item, pooled)
                except Exception as exc:  # noqa: BLE001 - isolate requests
                    error = f"{type(exc).__name__}: {exc}"
                # Failed requests occupied their queue slot but are
                # charged no simulated service.
                if error is None:
                    req.overhead_sim_us = overhead_us if req.launches else 0.0
                    served = req.service_sim_us
                    self.sim_clock_us = start + served
                    batch_busy_us += served
                req.t_done_wall = time.perf_counter()
                if error is None:
                    req.finish(RequestStatus.DONE)
                else:
                    req.finish(RequestStatus.FAILED, error)
                self.requests_done += 1
                cluster._request_finished(req, self)
            self.batches_done += 1
            self._note_served(batch.estimate_us, batch_busy_us)
            cluster._batch_finished(batch, self, batch_busy_us)

    def _run_item(self, item: WorkItem, pooled) -> None:
        req = item.request
        device = self.device
        n_surfaces = len(device.surfaces)
        hits0 = device.profile.compile_cache_hits
        misses0 = device.profile.compile_cache_misses
        n_san0 = len(device.sanitizer_results)
        try:
            if item.kind == "compiled":
                launch = item.launch
                surfaces, scalars = launch.bind(device)
                kernel = device.compile(launch.body, launch.name,
                                        launch.sig, launch.scalar_params)
                run = device.run_compiled(kernel, launch.grid, surfaces,
                                          scalars=scalars, name=launch.name,
                                          executor=pooled,
                                          validate=self.cluster.validate)
                req.kernel_sim_us = run.timing.time_us
                req.dram_bytes = int(run.timing.dram_bytes)
                req.launches = 1
                req.tier = run.path
                if launch.finish is not None:
                    req.result = launch.finish(surfaces)
            elif item.kind == "tuned":
                self._run_tuned(item)
            else:
                wrun = item.runner(device)
                req.kernel_sim_us = wrun.kernel_time_us
                # Eager workloads may enqueue many kernels; their own
                # pipelined overhead beyond the first launch is theirs.
                req.kernel_sim_us += max(
                    0.0, wrun.launch_overhead_us -
                    device.machine.launch_overhead_us)
                req.dram_bytes = int(sum(
                    r.timing.dram_bytes
                    for r in device.runs[-wrun.launches:])) \
                    if wrun.launches else 0
                req.launches = wrun.launches
                req.result = wrun.name
                req.tier = "eager"
        finally:
            req.cache_hits = device.profile.compile_cache_hits - hits0
            req.cache_misses = device.profile.compile_cache_misses - misses0
            new_results = device.sanitizer_results[n_san0:]
            req.sanitized_launches = len(new_results)
            req.sanitize_findings = [r.summary() for r in new_results
                                     if not r.clean]
            # Release this request's surfaces so a long-lived pooled
            # device doesn't accumulate (and re-scan) dead bindings.
            del device.surfaces[n_surfaces:]

    def _run_tuned(self, item: WorkItem) -> None:
        """Serve a tuned request: resolve the family against THIS
        device's machine in the cluster's tuned registry (falling back
        to the family's hand-tuned default point) and run that variant.
        """
        from repro.tune.workloads import get_tunable
        req = item.request
        device = self.device
        task = item.task
        wl = get_tunable(task.family)
        entry = None
        if self.cluster.tuned is not None:
            entry = self.cluster.tuned.lookup(task.family, task.problem,
                                              device.machine.name)
        point = dict(entry.point) if entry is not None \
            else wl.space_for(task.problem).default_point()
        variant = wl.variant(task.problem, point)
        runs0 = len(device.runs)
        t0 = device.kernel_time_us
        with trace_span("tuned_variant", family=task.family,
                        variant=variant.label, kernel=variant.kernel_name,
                        machine=device.machine.name,
                        tuned=entry is not None):
            out = variant.run(device, task.inputs)
        if task.check:
            expect = wl.reference(task.problem, task.inputs)
            if not np.array_equal(out, expect):
                raise AssertionError(
                    f"tuned {task.family} variant {variant.label} output "
                    f"does not match the reference oracle")
        req.kernel_sim_us = device.kernel_time_us - t0
        req.launches = len(device.runs) - runs0
        req.dram_bytes = int(sum(r.timing.dram_bytes
                                 for r in device.runs[runs0:]))
        req.tier = "tuned"
        req.variant = variant.label
        req.result = f"{task.family}:{variant.label}"
        vkey = f"{task.family}:{variant.label}"
        self.variants_served[vkey] = self.variants_served.get(vkey, 0) + 1


class ServeCluster:
    """A pool of simulated devices behind a scheduling front end."""

    def __init__(self, num_devices: int = 2,
                 machine: Union[MachineConfig,
                                Sequence[MachineConfig]] = GEN11_ICL,
                 tuned=None,
                 policy="round-robin",
                 batching: bool = True,
                 max_batch: int = 8,
                 queue_capacity: int = 512,
                 high_watermark: Optional[int] = None,
                 lanes: bool = False,
                 dispatch_window: int = 64,
                 batch_linger_s: float = 0.001,
                 obs=None,
                 validate: str = "first",
                 slo=None,
                 recorder=True,
                 recorder_capacity: int = 256,
                 dump_dir: Optional[str] = None) -> None:
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if validate not in sanitize_mod.VALIDATE_MODES:
            raise ValueError(
                f"validate must be one of {sanitize_mod.VALIDATE_MODES}, "
                f"got {validate!r}")
        #: dispatch-gating mode for compiled launches: "first" sanitizes
        #: each kernel's first launch per device (certifying or refusing
        #: the wide path), "always" sanitizes every launch, "off" trusts
        #: the kernel and always allows wide selection.
        self.validate = validate
        self.obs = obs if obs is not None else get_observability()
        self.registry: MetricsRegistry = (
            self.obs.registry if self.obs.enabled else MetricsRegistry())
        self.policy: Policy = make_policy(policy)
        self.batcher = DynamicBatcher(max_batch=max_batch, enabled=batching)
        queue_cls = PriorityLaneQueue if lanes else SubmissionQueue
        self.queue = queue_cls(capacity=queue_capacity,
                               high_watermark=high_watermark,
                               registry=self.registry)
        #: optional SLO tracker: pass a {workload: target_wall_ms |
        #: SLObjective} mapping or a prebuilt SLOTracker.
        if isinstance(slo, SLOTracker):
            self.slo: Optional[SLOTracker] = slo
        elif slo:
            self.slo = SLOTracker(slo, registry=self.registry)
        else:
            self.slo = None
        #: always-on flight recorder (True builds one; pass an instance
        #: to share a ring across clusters; False/None disables).
        if isinstance(recorder, FlightRecorder):
            self.recorder: Optional[FlightRecorder] = recorder
        elif recorder:
            self.recorder = FlightRecorder(capacity=recorder_capacity,
                                           dump_dir=dump_dir,
                                           registry=self.registry)
        else:
            self.recorder = None
        self.dispatch_window = dispatch_window
        self.batch_linger_s = batch_linger_s
        #: a single MachineConfig builds a homogeneous pool; a sequence
        #: is striped round-robin across workers (device i gets
        #: machines[i % len]) for mixed-generation clusters.
        machines = list(machine) \
            if isinstance(machine, (list, tuple)) else [machine]
        if not machines:
            raise ValueError("machine sequence must be non-empty")
        self.machines: List[MachineConfig] = machines
        #: tuned-variant registry (repro.tune.registry.TunedRegistry) or
        #: a path to its JSON dump; consulted per device machine when
        #: serving "tuned.*" workloads, pre-seeded into each device's
        #: kernel cache at start().
        if isinstance(tuned, str):
            from repro.tune.registry import TunedRegistry
            tuned = TunedRegistry.load(tuned)
        self.tuned = tuned
        self.workers = [
            DeviceWorker(i, Device(machines[i % len(machines)],
                                   obs=self.obs), self)
            for i in range(num_devices)]
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True)
        self._outstanding = 0
        self._done_cv = threading.Condition()
        self._started = False
        self._stopped = False
        self._t_start = time.perf_counter()
        #: per-workload EMA of simulated service, for load estimates.
        self._service_est_us: Dict[str, float] = {}
        self._est_lock = threading.Lock()
        self.completed: List[Request] = []
        self._completed_lock = threading.Lock()
        #: optional completion callback (finished Request -> None), run
        #: on the finishing worker thread before the request is counted
        #: drained — the shard worker ships completions through it.
        self.on_complete = None

        self._m_requests = {
            status: self.registry.counter("serve_requests",
                                          status=status.value)
            for status in RequestStatus
        }
        self._m_batches = self.registry.counter(
            "serve_batches", "batches dispatched")
        self._m_coalesced = self.registry.counter(
            "serve_coalesced_requests",
            "requests that rode a batch as non-head members")
        self._m_overhead = self.registry.counter(
            "serve_launch_overhead_sim_us",
            "simulated launch overhead charged across all requests")
        self._m_kernel = self.registry.counter(
            "serve_kernel_sim_us", "simulated kernel time served")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServeCluster":
        if self._started:
            return self
        self._started = True
        self._t_start = time.perf_counter()
        if self.tuned is not None:
            # Warm every device's kernel cache with its own machine's
            # tuned winners before the first request arrives.
            for w in self.workers:
                with w.lock:
                    self.tuned.preseed(w.device)
        for w in self.workers:
            w.start()
        self._dispatcher.start()
        return self

    def __enter__(self) -> "ServeCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.queue.close()
        if self._started and wait:
            self._dispatcher.join()
            for w in self.workers:
                w.inbox.put(_SHUTDOWN)
            for w in self.workers:
                w.join()

    @property
    def num_devices(self) -> int:
        return len(self.workers)

    @property
    def devices(self) -> List[Device]:
        return [w.device for w in self.workers]

    # -- submission --------------------------------------------------------

    def submit(self, workload: str, params: Optional[Dict[str, Any]] = None,
               arrival_sim_us: Optional[float] = None,
               lane: str = "interactive",
               deadline_ms: Optional[float] = None,
               block: bool = False,
               timeout: Optional[float] = None) -> Request:
        """Admit one request; raises :class:`Backpressure` when full.

        ``lane`` and ``deadline_ms`` only affect drain order on a
        cluster built with ``lanes=True``; a deadline left ``None``
        inherits the workload's SLO wall target when one is configured.
        """
        if not self._started:
            self.start()
        req = Request(workload=workload, params=dict(params or {}),
                      arrival_sim_us=arrival_sim_us)
        req.lane = normalize_lane(lane)
        if deadline_ms is None and self.slo is not None:
            objective = self.slo.objective_for(workload)
            if objective is not None:
                deadline_ms = objective.target_wall_ms
        if deadline_ms is not None:
            req.deadline_wall_s = time.perf_counter() + deadline_ms / 1e3
        self._mint_trace(req)
        self.queue.submit(req, block=block, timeout=timeout)
        with self._done_cv:
            self._outstanding += 1
        return req

    def _mint_trace(self, req: Request) -> Request:
        """Stamp a trace ID + empty span tree (recorder enabled only)."""
        if self.recorder is not None:
            req.trace_id = mint_trace_id()
            req.trace = RequestTrace(req.trace_id, workload=req.workload,
                                     request_id=req.id)
        return req

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every admitted request finished; True on success."""
        with self._done_cv:
            return self._done_cv.wait_for(
                lambda: self._outstanding == 0, timeout)

    # -- race-verdict sharing ----------------------------------------------

    def drain_race_verdicts(self) -> list:
        """(kernel name, RaceVerdict) pairs newly produced by this
        cluster's devices since the last drain.

        Lock-free (each device's drain is atomic pops), so the shard
        worker can call it from its completion callback while device
        threads keep running.
        """
        fresh = []
        for w in self.workers:
            fresh.extend(w.device.drain_race_verdicts())
        return fresh

    def adopt_race_verdicts(self, pairs) -> None:
        """Adopt (kernel name, RaceVerdict) pairs onto every device, so
        a kernel another cluster already sanitized is wide-admitted here
        without a redundant sanitized first launch."""
        for w in self.workers:
            with w.lock:
                for kname, verdict in pairs:
                    w.device.adopt_race_verdict(kname, verdict)

    # -- dispatcher --------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            items = self.queue.take(max_items=self.dispatch_window,
                                    timeout=0.1)
            if not items:
                if self.queue.closed and not len(self.queue):
                    return
                continue
            if self.batcher.enabled and len(items) < self.dispatch_window \
                    and self.batch_linger_s > 0:
                # Linger briefly so near-simultaneous compatible requests
                # can coalesce instead of heading out as singletons.
                deadline = time.perf_counter() + self.batch_linger_s
                while len(items) < self.dispatch_window:
                    left = deadline - time.perf_counter()
                    if left <= 0:
                        break
                    more = self.queue.take(
                        max_items=self.dispatch_window - len(items),
                        timeout=left)
                    if not more:
                        break
                    items.extend(more)
            tracer = get_tracer()
            t_take = tracer.now_us()
            for req in items:
                if req.trace is not None and req.t_submit_wall is not None:
                    req.trace.record("queue_wait",
                                     tracer.to_us(req.t_submit_wall),
                                     t_take,
                                     depth=req.queue_depth_at_admit)
            work: List[WorkItem] = []
            for req in items:
                item = self._resolve(req)
                if item is not None:
                    work.append(item)
            t_form0 = tracer.now_us()
            batches = self.batcher.form(work)
            t_form1 = tracer.now_us()
            for batch in batches:
                idx = self.policy.select(batch, self.workers)
                batch.estimate_us = self._estimate_batch_us(batch)
                self.workers[idx].note_assigned(batch.estimate_us)
                self._m_batches.inc()
                if batch.size > 1:
                    self._m_coalesced.inc(batch.size - 1)
                t_sched = tracer.now_us()
                for pos, it in enumerate(batch.items):
                    tr = it.request.trace
                    if tr is None:
                        continue
                    tr.record("batch_assemble", t_form0, t_form1,
                              batch=batch.id, batch_size=batch.size,
                              position=pos)
                    tr.record("schedule", t_form1, t_sched,
                              policy=self.policy.name, device=idx)
                self.workers[idx].inbox.put(batch)

    def _resolve(self, req: Request) -> Optional[WorkItem]:
        try:
            wl = get_workload(req.workload)
            made = wl.make(req.params)
        except Exception as exc:  # noqa: BLE001 - bad request, not a crash
            req.finish(RequestStatus.FAILED, f"{type(exc).__name__}: {exc}")
            self._request_finished(req, None)
            return None
        if wl.kind == "compiled":
            return WorkItem(request=req, kind="compiled", launch=made)
        if wl.kind == "tuned":
            return WorkItem(request=req, kind="tuned", task=made)
        return WorkItem(request=req, kind="eager", runner=made)

    def _estimate_batch_us(self, batch: Batch) -> float:
        with self._est_lock:
            est = sum(self._service_est_us.get(it.request.workload, 0.0)
                      for it in batch.items)
        machine = self.workers[0].device.machine
        return est + machine.launch_overhead_us \
            + (batch.size - 1) * machine.pipelined_launch_us

    # -- completion callbacks (worker threads) -----------------------------

    def _request_finished(self, req: Request,
                          worker: Optional[DeviceWorker]) -> None:
        self._m_requests[req.status].inc()
        if self.slo is not None:
            req.slo_breached = self.slo.observe_request(req)
        self._retire_trace(req)
        if req.status is RequestStatus.DONE:
            self._m_kernel.inc(req.kernel_sim_us)
            self._m_overhead.inc(req.overhead_sim_us)
            pname = self.policy.name
            self.registry.histogram(
                "serve_wait_wall_ms", buckets=_MS_BUCKETS,
                policy=pname).observe(req.wait_wall_s * 1e3)
            self.registry.histogram(
                "serve_latency_wall_ms", buckets=_MS_BUCKETS,
                policy=pname).observe(req.latency_wall_s * 1e3)
            self.registry.histogram(
                "serve_service_sim_us",
                policy=pname).observe(req.service_sim_us)
            self.registry.histogram(
                "serve_latency_sim_us",
                policy=pname).observe(req.latency_sim_us)
            with self._est_lock:
                prev = self._service_est_us.get(req.workload)
                sample = req.kernel_sim_us
                self._service_est_us[req.workload] = sample if prev is None \
                    else prev + 0.3 * (sample - prev)
        with self._completed_lock:
            self.completed.append(req)
        if self.on_complete is not None:
            try:
                self.on_complete(req)
            except Exception:  # noqa: BLE001 - shipping must not wedge drain
                pass
        with self._done_cv:
            self._outstanding -= 1
            self._done_cv.notify_all()

    def _retire_trace(self, req: Request) -> None:
        """Seal the request's span tree into the flight recorder, auto-
        dumping the traces a postmortem will want (failure, SLO breach,
        sanitizer findings)."""
        tr = req.trace
        if tr is None or self.recorder is None:
            return
        tr.finish(status=req.status.value, tier=req.tier,
                  latency_wall_ms=req.latency_wall_s * 1e3,
                  latency_sim_us=req.latency_sim_us,
                  error=req.error, slo_breached=req.slo_breached)
        self.recorder.record(tr)
        if req.status is RequestStatus.FAILED:
            self.recorder.dump(tr, DumpReason.ERROR, detail=req.error or "")
        elif req.slo_breached:
            self.recorder.dump(
                tr, DumpReason.SLO_BREACH,
                detail=f"latency {req.latency_wall_s * 1e3:.3f} ms "
                       f"(sim {req.latency_sim_us:.1f} us)")
        if req.sanitize_findings:
            self.recorder.dump(tr, DumpReason.SANITIZER,
                               detail="; ".join(req.sanitize_findings))

    def _batch_finished(self, batch: Batch, worker: DeviceWorker,
                        busy_us: float) -> None:
        self.registry.counter("serve_device_busy_sim_us",
                              device=worker.index).inc(busy_us)
        self.registry.counter("serve_device_requests",
                              device=worker.index).inc(batch.size)

    # -- reporting ---------------------------------------------------------

    def export_traces(self, path_or_file) -> None:
        """Write every retained request tree as one Chrome-trace file."""
        if self.recorder is None:
            raise ValueError("flight recorder is disabled on this cluster")
        self.recorder.export_chrome(path_or_file)

    def report(self) -> Dict[str, Any]:
        """Aggregate serving statistics over everything completed so far."""
        with self._completed_lock:
            reqs = list(self.completed)
        done = [r for r in reqs if r.status is RequestStatus.DONE]
        wall_s = time.perf_counter() - self._t_start
        by_status = {s.value: sum(1 for r in reqs if r.status is s)
                     for s in RequestStatus}
        total_busy = sum(w.busy_sim_us for w in self.workers)
        horizon = max((w.sim_clock_us for w in self.workers), default=0.0)
        cache_hits = sum(r.cache_hits for r in reqs)
        cache_misses = sum(r.cache_misses for r in reqs)
        lookups = cache_hits + cache_misses
        batches = sum(w.batches_done for w in self.workers)
        tiers: Dict[str, int] = {}
        gate: Dict[str, int] = {}
        for w in self.workers:
            for tier, n in w.device.profile.tier_launches.items():
                tiers[tier] = tiers.get(tier, 0) + n
            for outcome, n in w.device.profile.gate_outcomes.items():
                gate[outcome] = gate.get(outcome, 0) + n
        variants: Dict[str, int] = {}
        for w in self.workers:
            for vkey, n in w.variants_served.items():
                variants[vkey] = variants.get(vkey, 0) + n
        extra: Dict[str, Any] = {}
        if self.slo is not None:
            extra["slo"] = self.slo.snapshot()
        if self.recorder is not None:
            extra["recorder"] = self.recorder.stats()
        return extra | {
            "policy": self.policy.name,
            "devices": self.num_devices,
            "machines": sorted({m.name for m in self.machines}),
            "tuned": {
                "enabled": self.tuned is not None,
                "entries": len(self.tuned) if self.tuned is not None else 0,
                "variants_served": variants,
            },
            "batching": self.batcher.enabled,
            "requests": by_status | {"total": len(reqs)},
            "wall_elapsed_s": wall_s,
            "throughput_rps": len(done) / wall_s if wall_s > 0 else 0.0,
            "latency_wall_ms": percentiles(
                [r.latency_wall_s * 1e3 for r in done]),
            "wait_wall_ms": percentiles(
                [r.wait_wall_s * 1e3 for r in done]),
            "latency_sim_us": percentiles(
                [r.latency_sim_us for r in done]),
            "service_sim_us": percentiles(
                [r.service_sim_us for r in done]),
            "sim": {
                "kernel_us": sum(r.kernel_sim_us for r in done),
                "launch_overhead_us": sum(r.overhead_sim_us for r in done),
                "busy_us": total_busy,
                "horizon_us": horizon,
                "batches": batches,
                "avg_batch": (len(done) / batches) if batches else 0.0,
                "dram_bytes": sum(r.dram_bytes for r in done),
            },
            "kernel_cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": cache_hits / lookups if lookups else 0.0,
            },
            "tiers": tiers,
            "sanitize_gate": gate,
            "per_device": [
                {
                    "index": w.index,
                    "machine": w.device.machine.name,
                    "variants": dict(w.variants_served),
                    "requests": w.requests_done,
                    "batches": w.batches_done,
                    "busy_sim_us": w.busy_sim_us,
                    "utilization_sim": (w.busy_sim_us / horizon)
                    if horizon > 0 else 0.0,
                    "share_of_busy": (w.busy_sim_us / total_busy)
                    if total_busy > 0 else 0.0,
                }
                for w in self.workers
            ],
        }
