"""Autoscaler: add and drain shards from observed load.

Policy, not mechanism: the :class:`Autoscaler` only *decides* (+1 / 0 /
-1) from a periodic load sample; the sharded cluster's monitor thread
executes decisions by spawning a shard process or draining one (stop
routing to it, wait for its in-flight work, then stop it — nothing is
dropped by a scale-down).

Two signals drive the decision, both already produced by the serving
stack:

- **backlog per active shard** — parent queue depth plus total
  in-flight, divided by active shards.  High backlog means requests are
  waiting on capacity; near-zero backlog means shards idle.
- **SLO burn rate** — the sliding-window burn of the parent's
  :class:`~repro.obs.slo.SLOTracker`.  Sustained burn above 1.0 spends
  error budget faster than the period allows, so capacity is added even
  if backlog alone looks tolerable.

A cooldown separates consecutive actions so one burst cannot
flip-flop the fleet, and ``min_shards``/``max_shards`` bound the range.
Every decision is recorded as a :class:`ScaleEvent` for the report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List


@dataclass(frozen=True)
class AutoscalePolicy:
    """Bounds and thresholds for shard autoscaling."""

    min_shards: int = 1
    max_shards: int = 8
    #: scale up when backlog per active shard exceeds this.
    backlog_high: float = 32.0
    #: scale down when backlog per active shard stays under this.
    backlog_low: float = 2.0
    #: scale up when SLO burn rate reaches this (regardless of backlog).
    burn_high: float = 1.0
    #: seconds between consecutive scale actions.
    cooldown_s: float = 1.0
    #: monitor sampling interval.
    interval_s: float = 0.1

    def __post_init__(self) -> None:
        if not 1 <= self.min_shards <= self.max_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        if self.backlog_low >= self.backlog_high:
            raise ValueError("backlog_low must be below backlog_high")


@dataclass
class ScaleEvent:
    """One executed scale action."""

    t_wall_s: float
    action: str  # "up" | "down"
    shards_before: int
    shards_after: int
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        return {"t_wall_s": round(self.t_wall_s, 3), "action": self.action,
                "shards_before": self.shards_before,
                "shards_after": self.shards_after, "reason": self.reason}


class Autoscaler:
    """Turns load samples into bounded, cooled-down scale decisions."""

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        self.events: List[ScaleEvent] = []
        self._last_action_t = -math.inf

    def decide(self, now_s: float, active_shards: int, backlog: int,
               burn_rate: float) -> int:
        """+1 to add a shard, -1 to drain one, 0 to hold."""
        p = self.policy
        if active_shards < p.min_shards:
            return 1  # below floor: restore immediately, no cooldown
        if now_s - self._last_action_t < p.cooldown_s:
            return 0
        per_shard = backlog / max(active_shards, 1)
        if (per_shard >= p.backlog_high or burn_rate >= p.burn_high) \
                and active_shards < p.max_shards:
            return 1
        if per_shard <= p.backlog_low and burn_rate < 0.5 * p.burn_high \
                and active_shards > p.min_shards:
            return -1
        return 0

    def reason_for(self, decision: int, active_shards: int, backlog: int,
                   burn_rate: float) -> str:
        per_shard = backlog / max(active_shards, 1)
        if decision > 0:
            if active_shards < self.policy.min_shards:
                return f"below min_shards={self.policy.min_shards}"
            if burn_rate >= self.policy.burn_high:
                return f"slo burn {burn_rate:.2f} >= {self.policy.burn_high}"
            return (f"backlog/shard {per_shard:.1f} >= "
                    f"{self.policy.backlog_high}")
        return (f"backlog/shard {per_shard:.1f} <= "
                f"{self.policy.backlog_low}, burn {burn_rate:.2f}")

    def note(self, now_s: float, action: str, before: int, after: int,
             reason: str) -> ScaleEvent:
        """Record an executed action and start the cooldown."""
        self._last_action_t = now_s
        event = ScaleEvent(now_s, action, before, after, reason)
        self.events.append(event)
        return event

    def snapshot(self) -> Dict[str, Any]:
        return {
            "policy": {
                "min_shards": self.policy.min_shards,
                "max_shards": self.policy.max_shards,
                "backlog_high": self.policy.backlog_high,
                "backlog_low": self.policy.backlog_low,
                "burn_high": self.policy.burn_high,
                "cooldown_s": self.policy.cooldown_s,
            },
            "actions": len(self.events),
            "events": [e.to_dict() for e in self.events],
        }

