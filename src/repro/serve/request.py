"""Request objects flowing through the serving layer.

A :class:`Request` names a workload (any key registered in
:mod:`repro.serve.workloads`) plus its parameters.  The cluster stamps
it as it moves through the pipeline — submitted, dispatched to a device,
completed — in two time domains:

- **wall clock** (``time.perf_counter``): what the Python worker threads
  actually took; this is the latency a caller of :meth:`ServeCluster.
  submit` observes.
- **simulated microseconds**: the analytic cost-model time the request
  occupied its device, including its share of launch overhead (one full
  driver overhead for a batch head, the pipelined gap for coalesced
  followers — the Figure 5 amortization effect, now applied across
  *requests* instead of enqueues).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

_ids = itertools.count()


class RequestStatus(Enum):
    PENDING = "pending"      # created, not yet admitted
    QUEUED = "queued"        # admitted into the submission queue
    RUNNING = "running"      # dispatched to a device worker
    DONE = "done"            # completed successfully
    REJECTED = "rejected"    # refused at admission (backpressure)
    FAILED = "failed"        # raised during execution


@dataclass
class Request:
    """One kernel-launch request."""

    workload: str
    params: Dict[str, Any] = field(default_factory=dict)
    #: optional arrival timestamp on the *simulated* timeline (set by the
    #: load generator's arrival process); None means "whenever the
    #: device is free" and charges zero simulated wait.
    arrival_sim_us: Optional[float] = None

    #: scheduling lane: ``"interactive"`` drains strictly before
    #: ``"batch"`` in a :class:`~repro.serve.lanes.PriorityLaneQueue`.
    lane: str = "interactive"
    #: absolute wall-clock deadline (``perf_counter`` seconds); lane
    #: queues order each lane earliest-deadline-first when set.
    deadline_wall_s: Optional[float] = None

    id: int = field(default_factory=lambda: next(_ids))
    status: RequestStatus = RequestStatus.PENDING
    error: Optional[str] = None
    result: Any = None

    # -- stamps filled in by the cluster ---------------------------------
    device_index: Optional[int] = None
    #: shard that served the request (sharded cluster only).
    shard_index: Optional[int] = None
    #: times this request was requeued after a shard death.
    requeues: int = 0
    #: output payload arrays, materialized from the shared-memory data
    #: plane when the request was submitted with ``payload=``.
    result_payload: Any = field(default=None, repr=False)
    batch_id: Optional[int] = None
    batch_size: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    launches: int = 0
    dram_bytes: int = 0
    #: end-to-end trace identity, minted at ``ServeCluster.submit``; the
    #: ``trace`` is the request's causal span tree
    #: (:class:`repro.obs.request.RequestTrace`), retained by the
    #: cluster's flight recorder after completion.
    trace_id: Optional[str] = None
    trace: Any = field(default=None, repr=False)
    #: dispatch tier the (last) launch took: ``sequential`` / ``wide``
    #: / ``jit`` for compiled requests, ``eager`` otherwise (``tuned``
    #: for autotuned-workload requests).
    tier: Optional[str] = None
    #: label of the tuned variant that served this request (tuned
    #: workloads only) — e.g. ``"bm=8,bn=16,ktile=16"``; which label a
    #: request gets depends on the machine of the device it landed on.
    variant: Optional[str] = None
    #: queue depth observed at admission (queue_wait span label).
    queue_depth_at_admit: int = 0
    #: SLO verdict, stamped by the cluster's tracker at completion.
    slo_breached: bool = False
    #: sanitizer accounting for this request's launches.
    sanitized_launches: int = 0
    sanitize_findings: List[str] = field(default_factory=list)

    t_submit_wall: Optional[float] = None
    t_dispatch_wall: Optional[float] = None
    t_done_wall: Optional[float] = None

    #: simulated time the device started serving this request.
    start_sim_us: Optional[float] = None
    #: simulated kernel time of this request's launches.
    kernel_sim_us: float = 0.0
    #: simulated launch overhead charged to this request (full overhead
    #: for a batch head, pipelined gap for a coalesced follower).
    overhead_sim_us: float = 0.0

    done_event: threading.Event = field(default_factory=threading.Event,
                                        repr=False)

    # -- derived metrics --------------------------------------------------

    @property
    def service_sim_us(self) -> float:
        """Simulated device occupancy: overhead + kernel time."""
        return self.overhead_sim_us + self.kernel_sim_us

    @property
    def wait_sim_us(self) -> float:
        """Simulated queueing delay (0 when no arrival stamp was given)."""
        if self.arrival_sim_us is None or self.start_sim_us is None:
            return 0.0
        return max(0.0, self.start_sim_us - self.arrival_sim_us)

    @property
    def latency_sim_us(self) -> float:
        return self.wait_sim_us + self.service_sim_us

    @property
    def wait_wall_s(self) -> float:
        if self.t_submit_wall is None or self.t_dispatch_wall is None:
            return 0.0
        return self.t_dispatch_wall - self.t_submit_wall

    @property
    def latency_wall_s(self) -> float:
        if self.t_submit_wall is None or self.t_done_wall is None:
            return 0.0
        return self.t_done_wall - self.t_submit_wall

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the request completes (or fails); True if it did."""
        return self.done_event.wait(timeout)

    def finish(self, status: RequestStatus, error: Optional[str] = None) -> None:
        self.status = status
        self.error = error
        self.done_event.set()


def percentiles(values, points=(50.0, 95.0, 99.0)) -> Dict[str, float]:
    """Nearest-rank percentiles as a ``{"p50": ...}`` dict (plus mean/max)."""
    vals = sorted(values)
    out: Dict[str, float] = {}
    if not vals:
        return {f"p{int(p) if float(p).is_integer() else p}": 0.0
                for p in points} | {"mean": 0.0, "max": 0.0}
    for p in points:
        rank = max(0, min(len(vals) - 1, int(round(p / 100.0 * len(vals))) - 1))
        key = f"p{int(p) if float(p).is_integer() else p}"
        out[key] = vals[rank]
    out["mean"] = sum(vals) / len(vals)
    out["max"] = vals[-1]
    return out
