"""Shared-memory payload pool: the sharded cluster's data plane.

The control plane between the parent and its shard processes is
pickle-cheap messages, but request *payloads* (input arrays, output
surfaces) would dominate the pipe if they rode along.  The
:class:`SurfacePool` carries them out of band, the unified-memory /
zero-copy idiom applied to serving:

- the parent owns **one** ``multiprocessing.shared_memory`` block,
  carved into fixed-size slots;
- ``put()`` writes a request's arrays into a free slot and returns a
  :class:`PayloadRef` — slot index plus per-array geometry, a few dozen
  bytes of picklable tuple that travels the submit queue;
- each shard worker attaches to the block **once** (by name) and
  ``map()``\\ s the ref into numpy views of the same physical pages —
  no serialization, no copy;
- kernels restore surfaces from the views and snapshot results straight
  back into them (:meth:`repro.memory.surfaces.Surface.restore_from` /
  ``snapshot_into``), so outputs return to the parent through the same
  pages;
- the parent releases the slot once the completion has been consumed.

Payloads that exceed ``slot_bytes`` (or arrive when every slot is busy)
are *not* dropped: ``put()`` returns ``None`` and the caller falls back
to pickling the arrays through the control queue, counting the fallback
— bounded memory, never silent.

Slot ownership survives shard death: the parent owns the block, so a
request requeued from a killed worker keeps its payload slot and the
replacement shard maps the same pages.
"""

from __future__ import annotations

import threading
from multiprocessing import shared_memory
from typing import Any, Dict, NamedTuple, Optional

import numpy as np

#: Slot-internal alignment for each packed array (a cache line).
_ALIGN = 64


class PayloadRef(NamedTuple):
    """A pickle-cheap handle to one slot's packed arrays."""

    slot: int
    #: ``(key, byte_offset, shape, dtype_str)`` per array.
    entries: tuple


def _padded(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


class SurfacePool:
    """A slab of shared-memory slots for request payloads."""

    def __init__(self, slots: int = 64, slot_bytes: int = 1 << 16) -> None:
        if slots < 1 or slot_bytes < _ALIGN:
            raise ValueError("need at least one slot of >= 64 bytes")
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._shm = shared_memory.SharedMemory(
            create=True, size=slots * slot_bytes)
        self.name = self._shm.name
        self._owner = True
        self._free = list(range(slots - 1, -1, -1))
        self._allocated: set = set()
        self._lock = threading.Lock()
        self.allocs = 0
        self.releases = 0
        #: payloads refused because no slot fit/was free (caller pickles).
        self.fallbacks = 0

    @classmethod
    def attach(cls, name: str, slots: int,
               slot_bytes: int) -> "SurfacePool":
        """Map an existing pool by name (the shard-worker side).

        Attached pools can :meth:`map` refs but never allocate or
        release slots — ownership stays with the creating process.
        """
        pool = object.__new__(cls)
        pool.slots = slots
        pool.slot_bytes = slot_bytes
        # Attaching registers the segment with the resource tracker as
        # if this process owned it — a forked worker shares the parent's
        # tracker, so a later unregister would strip the *parent's*
        # registration too.  Suppress registration for the attach
        # instead: ownership (and unlinking) stays with the creator.
        from multiprocessing import resource_tracker
        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            pool._shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig_register
        pool.name = name
        pool._owner = False
        pool._free = []
        pool._allocated = set()
        pool._lock = threading.Lock()
        pool.allocs = pool.releases = pool.fallbacks = 0
        return pool

    # -- parent side -------------------------------------------------------

    def put(self, arrays: Dict[str, np.ndarray]) -> Optional[PayloadRef]:
        """Pack ``arrays`` into a free slot; ``None`` means fall back."""
        if not self._owner:
            raise RuntimeError("attached pools cannot allocate slots")
        packed = {key: np.ascontiguousarray(arr)
                  for key, arr in arrays.items()}
        need = sum(_padded(arr.nbytes) for arr in packed.values())
        if need > self.slot_bytes:
            with self._lock:
                self.fallbacks += 1
            return None
        with self._lock:
            if not self._free:
                self.fallbacks += 1
                return None
            slot = self._free.pop()
            self._allocated.add(slot)
            self.allocs += 1
        base = slot * self.slot_bytes
        offset = 0
        entries = []
        for key, arr in packed.items():
            view = np.ndarray(arr.shape, arr.dtype, buffer=self._shm.buf,
                              offset=base + offset)
            view[...] = arr
            entries.append((key, offset, arr.shape, arr.dtype.str))
            offset += _padded(arr.nbytes)
        return PayloadRef(slot, tuple(entries))

    def release(self, ref: PayloadRef) -> None:
        with self._lock:
            if ref.slot in self._allocated:
                self._allocated.remove(ref.slot)
                self._free.append(ref.slot)
                self.releases += 1

    # -- both sides --------------------------------------------------------

    def map(self, ref: PayloadRef) -> Dict[str, np.ndarray]:
        """Zero-copy numpy views of a ref's arrays in the shared block."""
        base = ref.slot * self.slot_bytes
        return {
            key: np.ndarray(shape, np.dtype(dtype), buffer=self._shm.buf,
                            offset=base + offset)
            for key, offset, shape, dtype in ref.entries
        }

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "slots": self.slots,
                "slot_bytes": self.slot_bytes,
                "in_use": len(self._allocated),
                "allocs": self.allocs,
                "releases": self.releases,
                "fallbacks": self.fallbacks,
            }

    def close(self) -> None:
        """Unmap (both sides); the owner also unlinks the block."""
        try:
            self._shm.close()
            if self._owner:
                self._shm.unlink()
        except Exception:  # noqa: BLE001 - double-close during teardown
            pass
