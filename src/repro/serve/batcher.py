"""Dynamic batching: coalesce compatible queued requests.

The paper's Figure 5 launch-overhead story, applied across *requests*:
every enqueue pays the driver's fixed launch overhead, but back-to-back
launches of the same program pipeline behind execution and pay only the
dispatch gap (``MachineConfig.pipelined_launch_us``).  The batcher
groups queued compiled requests by :attr:`KernelLaunch.batch_key` —
same program, same signature, same grid shape — so a batch of N costs

    ``launch_overhead_us + (N - 1) * pipelined_launch_us + sum(kernel)``

instead of ``N * launch_overhead_us + sum(kernel)``, and the worker can
drive all N launches through one pooled
:class:`~repro.sim.batch.TracingExecutor` (shared operand plans).

Batching never reorders across a key: members keep their FIFO order,
and batches are emitted in order of their *earliest* member, so a
disabled batcher (``max_batch=1``) degenerates to plain FIFO.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.serve.request import Request

_batch_ids = itertools.count()


@dataclass
class WorkItem:
    """A request resolved against the workload registry."""

    request: Request
    kind: str                  # "compiled" | "eager" | "tuned"
    launch: Any = None         # KernelLaunch when compiled
    runner: Any = None         # device -> WorkloadRun when eager
    task: Any = None           # TunedTask when tuned

    @property
    def batch_key(self) -> Optional[tuple]:
        if self.kind == "compiled":
            return self.launch.batch_key
        if self.kind == "tuned":
            # Same family + same problem coalesce; the device resolves
            # them all to its machine's one tuned variant, so the batch
            # still repeats a single program.
            return self.task.batch_key
        return None


@dataclass
class Batch:
    """One dispatch unit: requests that share a device visit."""

    items: List[WorkItem]
    id: int = field(default_factory=lambda: next(_batch_ids))
    #: dispatcher's simulated-service estimate (for least-loaded routing).
    estimate_us: float = 0.0

    @property
    def size(self) -> int:
        return len(self.items)

    @property
    def affinity_key(self) -> Optional[tuple]:
        first = self.items[0]
        if first.kind == "compiled":
            return first.launch.affinity_key
        if first.kind == "tuned":
            return first.task.affinity_key
        return None

    @property
    def kernel_name(self) -> str:
        first = self.items[0]
        if first.kind == "compiled":
            return first.launch.name
        return first.request.workload


class DynamicBatcher:
    """Groups resolved work items into batches."""

    def __init__(self, max_batch: int = 8, enabled: bool = True) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch if enabled else 1
        self.enabled = enabled and max_batch > 1

    def form(self, items: List[WorkItem]) -> List[Batch]:
        """Coalesce one dispatcher drain into ordered batches."""
        if not self.enabled:
            return [Batch(items=[it]) for it in items]
        batches: List[Tuple[int, Batch]] = []  # (first position, batch)
        open_by_key: dict = {}
        for pos, item in enumerate(items):
            key = item.batch_key
            if key is None:  # eager work is never coalesced
                batches.append((pos, Batch(items=[item])))
                continue
            entry = open_by_key.get(key)
            if entry is not None and entry.size < self.max_batch:
                entry.items.append(item)
                continue
            entry = Batch(items=[item])
            open_by_key[key] = entry
            batches.append((pos, entry))
        batches.sort(key=lambda e: e[0])
        return [b for _, b in batches]
