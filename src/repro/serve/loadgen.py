"""Synthetic load generator for the serving layer.

``python -m repro.serve.loadgen`` replays a seeded trace of mixed
workloads against a :class:`~repro.serve.cluster.ServeCluster` and
prints (or dumps with ``--json``) a throughput + latency-percentile
report.

Two driving modes:

- **open-loop** (default): request arrivals follow a Poisson process at
  ``--rate`` requests/second of wall time, independent of completions —
  the "heavy traffic" shape.  A rejected submission (backpressure) is
  retried after the queue's ``retry_after_s`` hint, up to
  ``--max-retries`` times; a request that exhausts its retries counts
  as *dropped*.
- **closed-loop** (``--mode closed``): ``--concurrency`` logical
  clients each keep exactly one request in flight, submitting with
  ``block=True`` — the saturation-throughput shape.

Arrivals also carry a simulated-timeline stamp (Poisson at
``--sim-rate`` requests per simulated second), so the report's
simulated latency includes simulated queueing delay, not just service.

The exit status is non-zero if any request was dropped or failed, which
is what the CI smoke step asserts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.slo import SLObjective

from repro.serve.cluster import ServeCluster
from repro.serve.queue import Backpressure
from repro.serve.request import RequestStatus
from repro.serve.scheduler import policy_names

#: Mix presets: (workload, params-factory, weight).  Parameters are
#: drawn from small seeded menus so repeated kernels actually repeat
#: (that's what the kernel cache and the batcher feed on) while input
#: *data* still varies per request via the ``seed`` parameter.
_MIXES: Dict[str, List[Tuple[str, list, float]]] = {
    "compiled": [
        ("saxpy", [{"n": 128}, {"n": 256}, {"n": 512}], 0.3),
        ("scale", [{"n": 128}, {"n": 256}], 0.2),
        ("blur", [{"blocks_x": 2, "blocks_y": 2},
                  {"blocks_x": 4, "blocks_y": 2}], 0.15),
        ("sgemm", [{"m": 16, "n": 16, "k": 8},
                   {"m": 32, "n": 16, "k": 8}], 0.15),
        # divergent control flow: these exercise the masked-CF wide path
        ("bitonic_cf", [{"n": 256}, {"n": 512}], 0.1),
        ("kmeans_cf", [{"n": 256, "k": 8}], 0.1),
    ],
    "fig5": [
        ("fig5.transpose", [{}], 0.4),
        ("fig5.prefix", [{}], 0.3),
        ("fig5.histogram", [{}], 0.3),
    ],
    # Heavier per-request work for multi-process soaks: enough compute
    # per request that control-plane overhead is visibly amortized.
    "shard": [
        ("sgemm", [{"m": 64, "n": 64, "k": 16},
                   {"m": 32, "n": 64, "k": 16}], 0.4),
        ("saxpy", [{"n": 4096}, {"n": 8192}], 0.25),
        ("scale", [{"n": 4096}], 0.15),
        ("blur", [{"blocks_x": 8, "blocks_y": 8}], 0.2),
    ],
}
_MIXES["all"] = _MIXES["compiled"] + _MIXES["fig5"]

#: ``--lane mixed``: this fraction of requests are interactive, the
#: rest batch — an overloaded batch lane pressing on an interactive one
#: is the scenario priority lanes exist for.
_MIXED_INTERACTIVE_FRACTION = 0.25


def build_trace(seed: int, n_requests: int, mix: str,
                sim_rate_rps: float,
                lane: str = "interactive") -> List[Dict[str, Any]]:
    """The seeded request trace: workload, params, simulated arrival,
    lane (``lane="mixed"`` draws interactive vs batch per request)."""
    entries = _MIXES.get(mix)
    if entries is None:
        raise KeyError(f"unknown mix {mix!r}; choose from {sorted(_MIXES)}")
    rng = np.random.default_rng(seed)
    keys = [e[0] for e in entries]
    weights = np.asarray([e[2] for e in entries], dtype=float)
    weights /= weights.sum()
    menus = {e[0]: e[1] for e in entries}
    trace = []
    sim_t = 0.0
    for i in range(n_requests):
        sim_t += rng.exponential(1e6 / sim_rate_rps)  # us gap
        key = keys[int(rng.choice(len(keys), p=weights))]
        params = dict(menus[key][int(rng.integers(len(menus[key])))])
        params["seed"] = int(rng.integers(1 << 30))
        if lane == "mixed":
            req_lane = "interactive" \
                if rng.random() < _MIXED_INTERACTIVE_FRACTION else "batch"
        else:
            req_lane = lane
        trace.append({"workload": key, "params": params,
                      "arrival_sim_us": sim_t, "lane": req_lane})
    return trace


def _submit(cluster, entry: Dict[str, Any],
            deadline_ms: Optional[float], block: bool = False):
    return cluster.submit(entry["workload"], entry["params"],
                          arrival_sim_us=entry["arrival_sim_us"],
                          lane=entry.get("lane", "interactive"),
                          deadline_ms=deadline_ms, block=block)


def _submit_with_retry(cluster, entry: Dict[str, Any],
                       max_retries: int, counters: Dict[str, int],
                       deadline_ms: Optional[float] = None):
    for _ in range(max_retries + 1):
        try:
            return _submit(cluster, entry, deadline_ms)
        except Backpressure as bp:
            counters["rejected_submits"] += 1
            time.sleep(bp.retry_after_s)
    counters["dropped"] += 1
    return None


def run_open_loop(cluster, trace, rate_rps: float,
                  max_retries: int, counters: Dict[str, int],
                  seed: int = 0,
                  deadline_ms: Optional[float] = None) -> None:
    rng = np.random.default_rng(seed ^ 0xA881)
    t0 = time.perf_counter()
    offset = 0.0
    for entry in trace:
        offset += rng.exponential(1.0 / rate_rps)
        delay = t0 + offset - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        _submit_with_retry(cluster, entry, max_retries, counters,
                           deadline_ms=deadline_ms)


def run_closed_loop(cluster, trace, concurrency: int,
                    counters: Dict[str, int],
                    deadline_ms: Optional[float] = None) -> None:
    import threading

    it = iter(trace)
    it_lock = threading.Lock()

    def client():
        while True:
            with it_lock:
                entry = next(it, None)
            if entry is None:
                return
            try:
                req = _submit(cluster, entry, deadline_ms, block=True)
            except Exception:  # noqa: BLE001 - queue closed/timeout
                counters["dropped"] += 1
                continue
            req.wait()

    threads = [threading.Thread(target=client, daemon=True)
               for _ in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def run_loadgen(devices: int = 2, requests: int = 200, seed: int = 0,
                policy: str = "cache-affinity", mix: str = "compiled",
                mode: str = "open", rate_rps: float = 2000.0,
                sim_rate_rps: float = 25000.0, concurrency: int = 8,
                batching: bool = True, max_batch: int = 8,
                queue_capacity: int = 512,
                high_watermark: Optional[int] = None,
                max_retries: int = 50,
                sanitize: bool = False,
                slo_target_ms: Optional[float] = 250.0,
                slo_objective: float = 0.99,
                recorder: bool = True,
                trace_out: Optional[str] = None,
                dump_dir: Optional[str] = None,
                shards: int = 0,
                lane: str = "interactive",
                deadline_ms: Optional[float] = None,
                soak: Optional[int] = None,
                autoscale: bool = False,
                ship_traces: bool = True) -> Dict[str, Any]:
    """Run one load-generation pass; returns the JSON-able report.

    With ``sanitize=True`` every compiled launch runs under the full
    sanitizer (``validate="always"``) and the report gains a
    ``sanitize`` section summarizing per-device findings (single-process
    clusters only — shard workers keep sanitizer state in their own
    processes).  The cluster runs with its always-on flight recorder
    (unless ``recorder=False``) and a wall-latency SLO of
    ``slo_target_ms`` at ``slo_objective`` (``None`` disables SLO
    tracking); ``trace_out`` additionally writes every retained request
    span tree as one Chrome-trace JSON file.

    ``shards > 0`` drives a multi-process
    :class:`~repro.serve.shard.ShardedCluster` (``devices`` becomes
    devices *per shard*) and the report gains ``per_shard`` / ``lanes``
    / ``control`` sections.  ``lane`` tags every request
    (``"mixed"`` draws interactive vs batch per request), ``deadline_ms``
    overrides the SLO-derived deadline, and ``soak=N`` is shorthand for
    a closed-loop fixed-count run of ``N`` requests.  ``autoscale``
    (sharded only) lets the cluster add/drain shards from backlog and
    SLO burn rate.
    """
    if soak is not None:
        requests = soak
        mode = "closed"
    trace = build_trace(seed, requests, mix, sim_rate_rps, lane=lane)
    counters = {"rejected_submits": 0, "dropped": 0}
    slo = ({"*": SLObjective(target_wall_ms=slo_target_ms,
                             objective=slo_objective)}
           if slo_target_ms is not None else None)
    sharded = shards > 0
    if sharded:
        from repro.serve.autoscale import AutoscalePolicy
        from repro.serve.shard import ShardedCluster
        policy_obj = AutoscalePolicy(
            min_shards=1, max_shards=max(2, shards + 2)) \
            if autoscale else None
        cluster = ShardedCluster(
            shards=shards, devices_per_shard=devices, policy=policy,
            batching=batching, max_batch=max_batch,
            queue_capacity=queue_capacity, high_watermark=high_watermark,
            validate="always" if sanitize else "first",
            ship_traces=ship_traces and recorder, slo=slo,
            recorder=recorder, dump_dir=dump_dir, autoscale=policy_obj)
    else:
        cluster = ServeCluster(num_devices=devices, policy=policy,
                               batching=batching, max_batch=max_batch,
                               queue_capacity=queue_capacity,
                               high_watermark=high_watermark,
                               validate="always" if sanitize else "first",
                               slo=slo, recorder=recorder,
                               dump_dir=dump_dir)
    with cluster:
        if mode == "open":
            run_open_loop(cluster, trace, rate_rps, max_retries, counters,
                          seed=seed, deadline_ms=deadline_ms)
        else:
            run_closed_loop(cluster, trace, concurrency, counters,
                            deadline_ms=deadline_ms)
        cluster.drain(timeout=600.0)
        report = cluster.report(refresh_snapshots=True) if sharded \
            else cluster.report()
    failed = [r for r in cluster.completed
              if r.status is RequestStatus.FAILED]
    report["loadgen"] = {
        "mode": mode,
        "mix": mix,
        "seed": seed,
        "requests": requests,
        "shards": shards if sharded else None,
        "lane": lane,
        "deadline_ms": deadline_ms,
        "soak": soak,
        "rate_rps": rate_rps if mode == "open" else None,
        "concurrency": concurrency if mode == "closed" else None,
        "sim_rate_rps": sim_rate_rps,
        "rejected_submits": counters["rejected_submits"],
        "dropped": counters["dropped"],
        "failed": len(failed),
        "errors": [f"{r.workload}: {r.error}" for r in failed[:10]],
    }
    if trace_out:
        cluster.export_traces(trace_out)
        report["loadgen"]["trace_out"] = trace_out
    if sanitize and not sharded:
        results = [r for w in cluster.workers
                   for r in w.device.sanitizer_results]
        oob: Dict[str, int] = {}
        for w in cluster.workers:
            for label, lanes in w.device.oob_lanes.items():
                oob[label] = oob.get(label, 0) + lanes
        report["sanitize"] = {
            "sanitized_launches": len(results),
            "clean": all(r.clean for r in results),
            "racy_kernels": sorted({r.kernel for r in results
                                    if r.verdict is not None
                                    and not r.verdict.race_free}),
            "uninit_total": sum(r.uninit_total for r in results),
            "oob_lanes": oob,
        }
    return report


def render(report: Dict[str, Any]) -> str:
    lg = report["loadgen"]
    sim = report["sim"]
    sharded = "per_shard" in report
    if sharded:
        topo = (f"{report['shards']} shards x "
                f"{report['devices_per_shard']} devices "
                f"({report['active_shards']} active), "
                f"routing={report['routing']}")
    else:
        topo = f"{report['devices']} devices"
    lines = [
        f"serve.loadgen: {report['requests']['done']}/{lg['requests']} done "
        f"on {topo}, policy={report['policy']}, "
        + (f"batching={'on' if report['batching'] else 'off'} "
           if "batching" in report else "")
        + f"(mix={lg['mix']}, mode={lg['mode']}, seed={lg['seed']}"
        + (f", lane={lg['lane']}" if lg.get("lane") else "") + ")",
        f"  wall: {report['wall_elapsed_s']:.2f} s, "
        f"{report['throughput_rps']:.0f} req/s",
        f"  latency (wall ms): p50={report['latency_wall_ms']['p50']:.2f} "
        f"p95={report['latency_wall_ms']['p95']:.2f} "
        f"p99={report['latency_wall_ms']['p99']:.2f}",
        f"  latency (sim us):  p50={report['latency_sim_us']['p50']:.1f} "
        f"p95={report['latency_sim_us']['p95']:.1f} "
        f"p99={report['latency_sim_us']['p99']:.1f}",
        f"  sim: kernel {sim['kernel_us']:.1f} us, launch overhead "
        f"{sim['launch_overhead_us']:.1f} us"
        + (f", {sim['batches']} batches (avg {sim['avg_batch']:.2f} "
           f"req/batch)" if "batches" in sim else ""),
        f"  kernel cache: {report['kernel_cache']['hits']} hits / "
        f"{report['kernel_cache']['misses']} misses "
        f"({report['kernel_cache']['hit_rate']:.0%})",
        f"  backpressure: {lg['rejected_submits']} rejected submits, "
        f"{lg['dropped']} dropped, {lg['failed']} failed",
    ]
    tiers = report.get("tiers")
    if tiers:
        lines.append("  tiers: " + ", ".join(
            f"{k}={v}" for k, v in sorted(tiers.items())))
    gate = report.get("sanitize_gate")
    if gate:
        lines.append("  wide gate: " + ", ".join(
            f"{k}={v}" for k, v in sorted(gate.items())))
    slo = report.get("slo")
    if slo is not None:
        ov = slo["overall"]
        lines.append(
            f"  slo: {ov['breaches']}/{ov['requests']} breaches, "
            f"attainment {ov['attainment']:.2%}, "
            f"max burn rate {ov['max_burn_rate']:.2f}")
    rec = report.get("recorder")
    if rec is not None:
        lines.append(
            f"  recorder: {rec['retained']}/{rec['capacity']} traces "
            f"retained ({rec['evicted']} evicted), {rec['dumps']} dumps "
            + (f"{rec['dumps_by_reason']}" if rec["dumps_by_reason"]
               else ""))
    san = report.get("sanitize")
    if san is not None:
        lines.append(
            f"  sanitize: {san['sanitized_launches']} sanitized launches, "
            f"{'clean' if san['clean'] else 'FINDINGS'} "
            f"(racy={len(san['racy_kernels'])}, "
            f"uninit={san['uninit_total']}, "
            f"oob={sum(san['oob_lanes'].values())})")
    lanes = report.get("lanes")
    if lanes is not None:
        for lane_name in ("interactive", "batch"):
            ln = lanes.get(lane_name)
            if not ln or not ln["requests"]:
                continue
            lines.append(
                f"  lane {lane_name}: {ln['done']}/{ln['requests']} done, "
                f"slo attainment {ln['slo_attainment']:.2%} "
                f"({ln['slo_breaches']} breaches), "
                f"p95 {ln['latency_wall_ms']['p95']:.2f} ms")
    scale = report.get("autoscale")
    if scale is not None:
        lines.append(
            f"  autoscale: {scale['actions']} actions "
            + ", ".join(f"{e['action']}@{e['t_wall_s']:.1f}s"
                        for e in scale["events"][:8]))
    ctl = report.get("control")
    if ctl is not None:
        lines.append(
            f"  control: {ctl['requeued']} requeued, "
            f"{ctl['shard_deaths']} shard deaths, "
            f"{ctl['duplicates_dropped']} duplicates dropped")
    for s in report.get("per_shard", ()):
        inner = s.get("inner") or {}
        cache = inner.get("kernel_cache") or {}
        lines.append(
            f"  shard{s['index']} [{s['state']}]: "
            f"{s['requests_done']} done / {s['routed']} routed, "
            f"inflight {s['inflight']}"
            + (f", cache {cache.get('hit_rate', 0.0):.0%}"
               if cache else ""))
    for d in report.get("per_device", ()):
        lines.append(
            f"  dev{d['index']}: {d['requests']} requests, "
            f"{d['busy_sim_us']:.1f} us busy, "
            f"util {d['utilization_sim']:.0%}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Replay a seeded synthetic trace against the "
                    "multi-device serving layer.")
    parser.add_argument("--devices", type=int, default=2,
                        help="device count (per shard when --shards > 0)")
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=0,
                        help="run a multi-process ShardedCluster with this "
                             "many shard processes (0 = single process)")
    parser.add_argument("--lane", choices=("interactive", "batch", "mixed"),
                        default="interactive",
                        help="priority lane for every request, or 'mixed' "
                             "to draw per request")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline in ms (default: the "
                             "workload's SLO wall target)")
    parser.add_argument("--soak", type=int, default=None, metavar="N",
                        help="closed-loop fixed-count soak of N requests "
                             "(overrides --requests and --mode)")
    parser.add_argument("--autoscale", action="store_true",
                        help="let a sharded cluster add/drain shards from "
                             "backlog and SLO burn rate")
    parser.add_argument("--no-ship-traces", dest="ship_traces",
                        action="store_false", default=True,
                        help="do not ship worker span trees across the "
                             "process boundary (raw-throughput runs)")
    parser.add_argument("--policy", choices=policy_names(),
                        default="cache-affinity")
    parser.add_argument("--mix", choices=sorted(_MIXES),
                        default="compiled")
    parser.add_argument("--mode", choices=("open", "closed"),
                        default="open")
    parser.add_argument("--rate", type=float, default=2000.0,
                        help="open-loop arrival rate, requests/s")
    parser.add_argument("--sim-rate", type=float, default=25000.0,
                        help="simulated arrival rate, requests per "
                             "simulated second")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="closed-loop in-flight clients")
    parser.add_argument("--no-batch", dest="batching",
                        action="store_false", default=True)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--queue-capacity", type=int, default=512)
    parser.add_argument("--high-watermark", type=int, default=None)
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="also dump the report as JSON to FILE "
                             "('-' for stdout)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run every compiled launch under the "
                             "sanitizer (validate='always') and add a "
                             "sanitize section to the report")
    parser.add_argument("--slo-target-ms", type=float, default=250.0,
                        help="per-request wall-latency SLO target in ms "
                             "(<= 0 disables SLO tracking)")
    parser.add_argument("--slo-objective", type=float, default=0.99,
                        help="fraction of requests that must meet the "
                             "SLO target")
    parser.add_argument("--no-recorder", dest="recorder",
                        action="store_false", default=True,
                        help="disable the always-on flight recorder "
                             "(also disables --trace-out)")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write every retained request span tree as "
                             "one Chrome-trace JSON file")
    parser.add_argument("--dump-dir", metavar="DIR", default=None,
                        help="write one JSON file per flight-recorder "
                             "dump (SLO breach / sanitizer / error)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    report = run_loadgen(
        devices=args.devices, requests=args.requests, seed=args.seed,
        policy=args.policy, mix=args.mix, mode=args.mode,
        rate_rps=args.rate, sim_rate_rps=args.sim_rate,
        concurrency=args.concurrency, batching=args.batching,
        max_batch=args.max_batch, queue_capacity=args.queue_capacity,
        high_watermark=args.high_watermark, sanitize=args.sanitize,
        slo_target_ms=(args.slo_target_ms
                       if args.slo_target_ms > 0 else None),
        slo_objective=args.slo_objective, recorder=args.recorder,
        trace_out=args.trace_out if args.recorder else None,
        dump_dir=args.dump_dir,
        shards=args.shards, lane=args.lane, deadline_ms=args.deadline_ms,
        soak=args.soak, autoscale=args.autoscale,
        ship_traces=args.ship_traces)

    if not args.quiet:
        print(render(report))
    if args.json == "-":
        json.dump(report, sys.stdout, indent=2)
        sys.stdout.write("\n")
    elif args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
    lg = report["loadgen"]
    return 1 if (lg["dropped"] or lg["failed"]) else 0


if __name__ == "__main__":
    raise SystemExit(main())
