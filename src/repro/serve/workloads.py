"""Servable workloads: what a :class:`Request` can name.

Two kinds of entries live in the registry:

- **compiled** workloads resolve to a :class:`KernelLaunch` — a compiled
  CM kernel (body + signature + grid) plus a binder that materializes
  the request's input surfaces on the target device.  These go through
  ``Device.compile`` (per-device :class:`KernelCache`, so the
  cache-affinity policy has something to route on) and
  ``Device.run_compiled`` (pooled executor), and same-kernel/same-grid
  requests can be coalesced by the dynamic batcher.
- **eager** workloads resolve to a plain ``device -> output`` closure —
  any Figure 5 pair side from :func:`repro.report.figure5.
  workload_specs` can be served this way (``fig5.gemm``, ``fig5.spmv``,
  ...).  They are never batched and bypass the kernel cache, but they
  exercise the scheduler with realistically lumpy service times.

Input data is derived deterministically from the request parameters
(``seed`` included), so a fixed trace produces identical simulated
totals regardless of how requests interleave across devices — the
property the serving stress test pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.cache import cache_key
from repro.sim.device import Device
from repro.workloads import gemm
from repro.workloads.common import run_on


@dataclass
class KernelLaunch:
    """One compiled-kernel launch, ready to bind to any device."""

    body: Callable
    name: str
    sig: List[Tuple[str, bool]]
    scalar_params: List[str]
    grid: Tuple[int, ...]
    #: device -> (surfaces, scalars); called under the device lock.
    bind: Callable[[Device], tuple] = field(repr=False, default=None)
    #: surfaces -> result summary; raises AssertionError on bad output.
    finish: Optional[Callable[[Sequence], Any]] = field(repr=False,
                                                        default=None)

    @property
    def affinity_key(self) -> tuple:
        """The kernel-cache key: what cache-affinity routing steers on."""
        return cache_key(self.body, self.name, self.sig, self.scalar_params)

    @property
    def batch_key(self) -> tuple:
        """Coalescing key: same compiled program *and* same grid shape."""
        return self.affinity_key + (tuple(self.grid),)


@dataclass
class ServeWorkload:
    """A registry entry: ``make(params)`` builds the request's work."""

    key: str
    kind: str  # "compiled" | "eager"
    make: Callable[[Dict[str, Any]], Any]
    description: str = ""


# -- compiled kernel bodies ---------------------------------------------------
# Bodies are module-level constants so the identity-keyed KernelCache
# hits across requests (and so cache-affinity routing has a stable key).

_VEC = 16  # f32 lanes per thread chunk (one 64-byte oword block)


def _saxpy_body(cmx, xbuf, ybuf, tid):
    off = tid * (_VEC * 4)
    x = cmx.vector(np.float32, _VEC)
    cmx.read(xbuf, off, x)
    y = cmx.vector(np.float32, _VEC)
    cmx.read(ybuf, off, y)
    out = cmx.vector(np.float32, _VEC)
    out.assign(x * np.float32(2.0) + y)
    cmx.write(ybuf, off, out)


_SAXPY_SIG = [("xbuf", False), ("ybuf", False)]


def _scale_body(cmx, buf, tid):
    off = tid * (_VEC * 4)
    v = cmx.vector(np.float32, _VEC)
    cmx.read(buf, off, v)
    out = cmx.vector(np.float32, _VEC)
    out.assign(v * np.float32(3.0))
    cmx.write(buf, off, out)


_SCALE_SIG = [("buf", False)]

_BLUR_W, _BLUR_H = 32, 4  # bytes x rows handled per thread


def _blur_body(cmx, img, tx, ty):
    x0 = tx * _BLUR_W
    y0 = ty * _BLUR_H
    m = cmx.matrix(np.uint8, _BLUR_H, _BLUR_W)
    cmx.read(img, x0, y0, m)
    f = cmx.matrix(np.float32, _BLUR_H, _BLUR_W)
    f.assign(m)
    out = cmx.matrix(np.uint8, _BLUR_H, _BLUR_W)
    out.assign(f * np.float32(0.5))
    cmx.write(img, x0, y0, out)


_BLUR_SIG = [("img", True)]


# -- compiled workload factories ---------------------------------------------


def _make_saxpy(params: Dict[str, Any]) -> KernelLaunch:
    payload = params.get("_payload")
    if payload is not None:
        # Shared-memory data plane: inputs are (views of) caller-owned
        # arrays; the result is snapshotted back into the y view in
        # place, so a shared-memory payload round-trips without a pickle.
        x = np.ascontiguousarray(payload["x"], dtype=np.float32)
        y_io = payload["y"]
        y = np.array(y_io, dtype=np.float32, copy=True)
        n = int(x.size)
        if n % _VEC or np.asarray(y_io).size != n:
            raise ValueError(f"saxpy payload sizes must match and "
                             f"divide {_VEC}")
    else:
        n = int(params.get("n", 256))
        seed = int(params.get("seed", 0))
        if n % _VEC:
            raise ValueError(f"saxpy n must divide {_VEC}")
        rng = np.random.default_rng(seed ^ 0x5a)
        x = rng.standard_normal(n).astype(np.float32)
        y = rng.standard_normal(n).astype(np.float32)
        y_io = None
    expect = 2.0 * x + y

    def bind(device: Device):
        xbuf = device.buffer(n * 4)
        xbuf.restore_from(x)
        ybuf = device.buffer(n * 4)
        ybuf.restore_from(y)
        return [xbuf, ybuf], (lambda tid: {"tid": tid[0]})

    def finish(surfaces):
        out = surfaces[1].to_numpy().view(np.float32)
        assert np.allclose(out, expect, atol=1e-5), "saxpy output mismatch"
        if y_io is not None:
            surfaces[1].snapshot_into(y_io)
        return float(out.sum())

    return KernelLaunch(_saxpy_body, "serve_saxpy", _SAXPY_SIG, ["tid"],
                        (n // _VEC,), bind, finish)


def _make_scale(params: Dict[str, Any]) -> KernelLaunch:
    payload = params.get("_payload")
    if payload is not None:
        v_io = payload["v"]
        v = np.array(v_io, dtype=np.float32, copy=True)
        n = int(v.size)
        if n % _VEC:
            raise ValueError(f"scale payload size must divide {_VEC}")
    else:
        n = int(params.get("n", 256))
        seed = int(params.get("seed", 0))
        if n % _VEC:
            raise ValueError(f"scale n must divide {_VEC}")
        rng = np.random.default_rng(seed ^ 0xc3)
        v = rng.standard_normal(n).astype(np.float32)
        v_io = None
    expect = 3.0 * v

    def bind(device: Device):
        buf = device.buffer(n * 4)
        buf.restore_from(v)
        return [buf], (lambda tid: {"tid": tid[0]})

    def finish(surfaces):
        out = surfaces[0].to_numpy().view(np.float32)
        assert np.allclose(out, expect, atol=1e-5), "scale output mismatch"
        if v_io is not None:
            surfaces[0].snapshot_into(v_io)
        return float(out.sum())

    return KernelLaunch(_scale_body, "serve_scale", _SCALE_SIG, ["tid"],
                        (n // _VEC,), bind, finish)


def _make_blur(params: Dict[str, Any]) -> KernelLaunch:
    bw = int(params.get("blocks_x", 2))
    bh = int(params.get("blocks_y", 2))
    seed = int(params.get("seed", 0))
    rng = np.random.default_rng(seed ^ 0x1f)
    img = rng.integers(0, 200, size=(bh * _BLUR_H, bw * _BLUR_W),
                       dtype=np.uint8)
    expect = (img.astype(np.float32) * 0.5).astype(np.uint8)

    def bind(device: Device):
        surf = device.image2d(img.copy(), bytes_per_pixel=1)
        return [surf], (lambda tid: {"tx": tid[0], "ty": tid[1]})

    def finish(surfaces):
        out = surfaces[0].to_numpy()
        assert np.array_equal(out, expect), "blur output mismatch"
        return float(out.sum())

    return KernelLaunch(_blur_body, "serve_blur", _BLUR_SIG, ["tx", "ty"],
                        (bw, bh), bind, finish)


def _make_bitonic_cf(params: Dict[str, Any]) -> KernelLaunch:
    """One divergent local-sort launch (stages 2..32 in masked SIMD CF)."""
    from repro.workloads import bitonic

    n = int(params.get("n", 512))
    seed = int(params.get("seed", 0))
    if n % bitonic.CF_SPAN or n & (n - 1):
        raise ValueError(f"bitonic_cf n must be a power of two dividing "
                         f"{bitonic.CF_SPAN}")
    rng = np.random.default_rng(seed ^ 0x2b)
    keys = rng.integers(0, 2**31, size=n, dtype=np.uint32)
    # After the local stages every 32-key block is sorted, ascending for
    # even block indices and descending for odd ones (the bitonic
    # direction bit of the enclosing 64-key merge).
    blocks = np.sort(keys.reshape(-1, bitonic.CF_SPAN), axis=1)
    blocks[1::2] = blocks[1::2, ::-1]
    expect = blocks.reshape(-1)

    def bind(device: Device):
        buf = device.buffer(keys.copy())
        return [buf], (lambda tid: {"t": tid[0], "lgs0": 1, "lgs1": 5})

    def finish(surfaces):
        out = surfaces[0].to_numpy().view(np.uint32)
        assert np.array_equal(out, expect), "bitonic_cf output mismatch"
        return float(out[0])

    return KernelLaunch(bitonic._cf_local_body, "cf_bitonic_local",
                        [("buf", False)], ["t", "lgs0", "lgs1"],
                        (n // bitonic.CF_SPAN,), bind, finish)


def _make_kmeans_cf(params: Dict[str, Any]) -> KernelLaunch:
    """One divergent nearest-centroid assignment launch."""
    from repro.workloads import kmeans

    n = int(params.get("n", 256))
    k = int(params.get("k", 8))
    seed = int(params.get("seed", 0))
    if n % kmeans.CF_PTS:
        raise ValueError(f"kmeans_cf n must divide {kmeans.CF_PTS}")
    kp = kmeans._kpad(k)
    pts, _ = kmeans.make_points(n, k=k, seed=seed ^ 0x4d)
    rng = np.random.default_rng(seed ^ 0x4d)
    c0 = pts[rng.choice(n, k, replace=False)].copy()
    cent_host = np.zeros(2 * kp, dtype=np.float32)
    cent_host[:k] = c0[:, 0]
    cent_host[kp:kp + k] = c0[:, 1]
    expect = kmeans._labels_oracle(pts, cent_host, k, kp)

    def bind(device: Device):
        xs = device.buffer(np.ascontiguousarray(pts[:, 0]))
        ys = device.buffer(np.ascontiguousarray(pts[:, 1]))
        cent = device.buffer(cent_host.copy())
        labels = device.buffer(np.zeros(n, dtype=np.int32))
        return [xs, ys, cent, labels], (lambda tid: {"t": tid[0]})

    def finish(surfaces):
        out = surfaces[3].to_numpy()
        assert np.array_equal(out, expect), "kmeans_cf labels mismatch"
        return float(out.sum())

    body = kmeans._cf_assign_body(k, kp)  # memoized: stable cache identity
    return KernelLaunch(body, f"cf_kmeans_assign_k{k}",
                        [("xs", False), ("ys", False), ("cent", False),
                         ("labels", False)], ["t"],
                        (n // kmeans.CF_PTS,), bind, finish)


def _make_sgemm(params: Dict[str, Any]) -> KernelLaunch:
    m = int(params.get("m", 16))
    n = int(params.get("n", 16))
    k = int(params.get("k", 8))
    seed = int(params.get("seed", 0))
    if m % gemm.JIT_BM or n % gemm.JIT_BN:
        raise ValueError(f"sgemm dims must divide "
                         f"{gemm.JIT_BM}x{gemm.JIT_BN} blocks")
    a, b, c = gemm.make_inputs(m, n, k, seed=seed ^ 0x77)
    expect = gemm.reference(a, b, c, 1.0, 1.0)

    def bind(device: Device):
        abuf = device.image2d(a.copy(), bytes_per_pixel=4)
        bbuf = device.image2d(b.copy(), bytes_per_pixel=4)
        cbuf = device.image2d(c.copy(), bytes_per_pixel=4)
        return [abuf, bbuf, cbuf], \
            (lambda tid: {"tx": tid[0], "ty": tid[1]})

    def finish(surfaces):
        out = surfaces[2].to_numpy()
        assert np.allclose(out, expect, atol=1e-3), "sgemm output mismatch"
        return float(np.abs(out).sum())

    body = gemm._jit_gemm_body(k)  # memoized per k: stable cache identity
    return KernelLaunch(body, "cm_sgemm_jit", gemm._JIT_SIG, ["tx", "ty"],
                        (n // gemm.JIT_BN, m // gemm.JIT_BM), bind, finish)


# -- eager Figure 5 adapters --------------------------------------------------

_FIG5_SPECS: Optional[dict] = None


def _fig5_specs() -> dict:
    """Build (once) the quick-size Figure 5 workload pairs."""
    global _FIG5_SPECS
    if _FIG5_SPECS is None:
        from repro.report.figure5 import workload_specs
        _FIG5_SPECS = {s.key: s for s in workload_specs(quick=True)}
    return _FIG5_SPECS


def _make_fig5(key: str):
    def make(params: Dict[str, Any]) -> Callable[[Device], Any]:
        spec = _fig5_specs()[key]
        side = params.get("side", "cm")
        fn = spec.cm if side == "cm" else spec.ocl

        def run(device: Device):
            return run_on(device, f"fig5.{key}", fn)

        return run
    return make


# -- tuned workload adapters --------------------------------------------------
#
# A "tuned" request names an autotunable family (repro.tune.workloads)
# instead of a concrete kernel.  Resolution stops at a TunedTask — the
# *variant* is deliberately not chosen here, because batches form before
# a device is picked: the DeviceWorker resolves the task against its own
# machine's entry in the cluster's TunedRegistry, so the same request
# stream dispatches different kernels on a Gen9 device than on a Gen12
# or SIMD32 one.


@dataclass
class TunedTask:
    """A resolved tuned request: family + problem + deterministic data."""

    family: str
    problem: Dict[str, Any]
    inputs: Dict[str, Any] = field(repr=False, default_factory=dict)
    #: re-check the output against the family oracle on the device.
    check: bool = False

    @property
    def affinity_key(self) -> tuple:
        from repro.tune.space import param_digest
        return ("tuned", self.family, param_digest(self.problem))

    @property
    def batch_key(self) -> tuple:
        return self.affinity_key


def _make_tuned(family: str):
    def make(params: Dict[str, Any]) -> TunedTask:
        from repro.tune.workloads import get_tunable
        wl = get_tunable(family)
        problem = dict(wl.default_problem)
        problem.update({k: v for k, v in params.items() if k in problem})
        inputs = wl.make_inputs(problem, seed=int(params.get("seed", 0)))
        return TunedTask(family, problem, inputs,
                         check=bool(params.get("check", False)))
    return make


# -- the registry -------------------------------------------------------------

_REGISTRY: Dict[str, ServeWorkload] = {}


def register(wl: ServeWorkload) -> ServeWorkload:
    _REGISTRY[wl.key] = wl
    return wl


register(ServeWorkload("saxpy", "compiled", _make_saxpy,
                       "y = 2x + y over a linear buffer (params: n, seed)"))
register(ServeWorkload("scale", "compiled", _make_scale,
                       "v *= 3 over a linear buffer (params: n, seed)"))
register(ServeWorkload("blur", "compiled", _make_blur,
                       "uint8 image halving via media blocks "
                       "(params: blocks_x, blocks_y, seed)"))
register(ServeWorkload("sgemm", "compiled", _make_sgemm,
                       "C = A@B + C through the JIT pipeline "
                       "(params: m, n, k, seed)"))
register(ServeWorkload("bitonic_cf", "compiled", _make_bitonic_cf,
                       "divergent bitonic local sort via masked SIMD CF "
                       "(params: n, seed)"))
register(ServeWorkload("kmeans_cf", "compiled", _make_kmeans_cf,
                       "divergent nearest-centroid assignment loop "
                       "(params: n, k, seed)"))

for _key in ("linear", "bitonic", "histogram", "kmeans", "spmv",
             "transpose", "gemm", "prefix"):
    register(ServeWorkload(
        f"fig5.{_key}", "eager", _make_fig5(_key),
        f"quick-size Figure 5 {_key} pair side (params: side=cm|ocl)"))

for _fam in ("gemm", "linear_filter", "transpose", "systolic"):
    register(ServeWorkload(
        f"tuned.{_fam}", "tuned", _make_tuned(_fam),
        f"autotuned {_fam}: each device serves its machine's tuned "
        f"variant (params: problem dims, seed, check)"))


def get_workload(key: str) -> ServeWorkload:
    wl = _REGISTRY.get(key)
    if wl is None:
        raise KeyError(f"unknown serve workload {key!r}; "
                       f"choose from {sorted(_REGISTRY)}")
    return wl


def workload_keys() -> List[str]:
    return sorted(_REGISTRY)
