"""Multi-process sharded serving: N worker processes, one front door.

:class:`ServeCluster` scales across threads, but every device worker
still shares one GIL — compiled-kernel serving is Python-bound, so a
single process flattens out long before the machine does.  The
:class:`ShardedCluster` breaks that ceiling::

    submit() -> PriorityLaneQueue -> router thread -> shard 0..N-1
                 (lanes + EDF +        (affinity        (one process,
                  backpressure)         routing)         own ServeCluster)

- Each **shard** is a real OS process running its own inner
  :class:`~repro.serve.cluster.ServeCluster` — its own Device set,
  kernel/verdict caches, dynamic batcher, and sanitizer state.  Shards
  never share a GIL, so throughput scales with shard count.
- The **control plane** is pickle-cheap: :class:`SubmitMsg` /
  :class:`CompleteMsg` dataclasses over per-shard
  ``multiprocessing.Queue`` pairs (a dedicated outbox per shard, so a
  shard dying mid-write can never wedge a queue another shard shares).
- The **data plane** is out of band: request payload arrays ride a
  :class:`~repro.serve.pool.SurfacePool` shared-memory slab, mapped
  zero-copy into numpy on both sides; only a few-dozen-byte
  :class:`~repro.serve.pool.PayloadRef` crosses the pipe.
- **Priority lanes**: the front door is a
  :class:`~repro.serve.lanes.PriorityLaneQueue` (interactive drains
  strictly before batch, EDF within a lane), and each inner cluster
  runs one too, so lane ordering holds end to end.  Deadlines default
  from the parent's SLO targets.
- **Cache-affinity routing**: requests hash to shards by kernel
  identity (workload + shape parameters, data seed excluded), so a
  repeated kernel always lands where its compile cache is warm.
- **Autoscaling**: a monitor thread samples backlog and SLO burn rate
  into an :class:`~repro.serve.autoscale.Autoscaler`; scale-up forks a
  new shard, scale-down *drains* one (stop routing, wait for its
  in-flight work, then stop it) — no request is dropped by scaling.
- **Death recovery**: the monitor detects a dead shard process and
  requeues its in-flight requests to survivors.  A completed-ID set
  makes completion idempotent, so a request whose completion raced the
  death is never double-completed, and ``Request.requeues`` bounds
  retries.

Observability crosses the boundary: workers mint trace IDs under a
per-shard scope (:func:`~repro.obs.request.set_trace_scope`), ship
their span trees in each completion, and the parent grafts them under
a ``shard`` span in its own trace (:meth:`~repro.obs.request.
RequestTrace.graft`) — so the flight recorder, SLO tracker, and
``report()`` keep working as if the cluster were one process.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing as mp
import os
import queue as _stdqueue
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import get_observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import DumpReason, FlightRecorder
from repro.obs.request import RequestTrace, mint_trace_id, set_trace_scope
from repro.obs.slo import SLOTracker
from repro.obs.tracing import get_tracer
from repro.sim.machine import GEN11_ICL, MachineConfig

from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.cluster import ServeCluster
from repro.serve.lanes import PriorityLaneQueue, normalize_lane
from repro.serve.pool import PayloadRef, SurfacePool
from repro.serve.request import Request, RequestStatus, percentiles

#: Control-plane sentinels (strings survive pickling; object identity
#: would not).
_STOP = "__stop__"
_SNAPSHOT = "__snapshot__"
_BYE = "__bye__"

#: Start method: fork is cheap and keeps MachineConfig / registry state
#: without re-import; spawn is the portable fallback.
_CTX = mp.get_context(
    "fork" if "fork" in mp.get_all_start_methods() else "spawn")


@dataclass(frozen=True)
class ShardConfig:
    """What every shard worker process builds its inner cluster from."""

    devices_per_shard: int = 2
    policy: str = "cache-affinity"
    batching: bool = True
    max_batch: int = 8
    queue_capacity: int = 512
    validate: str = "first"
    #: inner clusters order their own queues by lane + deadline too.
    lanes: bool = True
    #: serialize each request's span tree into its completion message
    #: (cheap to turn off for raw-throughput runs).
    ship_traces: bool = True
    machine: MachineConfig = GEN11_ICL
    #: tuned-variant registry (TunedRegistry) handed to the inner
    #: cluster, so each shard serves its own machine's tuned winners.
    tuned: Any = None


@dataclass
class SubmitMsg:
    """Parent -> shard: one request, payload carried by reference."""

    origin_id: int
    workload: str
    params: Dict[str, Any]
    lane: str = "interactive"
    #: deadline as *remaining* milliseconds at route time (absolute
    #: wall stamps do not survive a process boundary).
    deadline_ms: Optional[float] = None
    arrival_sim_us: Optional[float] = None
    payload_ref: Optional[PayloadRef] = None
    #: pickle fallback when the pool had no slot for the payload.
    payload_arrays: Optional[Dict[str, Any]] = None


@dataclass
class CompleteMsg:
    """Shard -> parent: one finished request, traces included."""

    shard: int
    origin_id: int
    status: str
    error: Optional[str] = None
    result: Any = None
    kernel_sim_us: float = 0.0
    overhead_sim_us: float = 0.0
    dram_bytes: int = 0
    launches: int = 0
    tier: Optional[str] = None
    #: tuned-variant label the serving device resolved (tuned requests).
    variant: Optional[str] = None
    cache_hits: int = 0
    cache_misses: int = 0
    device_index: Optional[int] = None
    batch_id: Optional[int] = None
    batch_size: int = 1
    #: worker-side queue wait, in the worker's own wall clock.
    wait_wall_s: float = 0.0
    sanitized_launches: int = 0
    sanitize_findings: List[str] = field(default_factory=list)
    #: the worker's RequestTrace.to_dict() form, when shipped.
    trace: Optional[Dict[str, Any]] = None
    #: pickle-fallback output arrays (shared-memory payloads return
    #: through the pool pages instead).
    payload_out: Optional[Dict[str, Any]] = None
    #: (kernel name, RaceVerdict) pairs this shard's sanitized launches
    #: produced since the last completion; the parent rebroadcasts them
    #: so a kernel sanitized once is wide-admitted on every shard.
    race_verdicts: List[Tuple[str, Any]] = field(default_factory=list)


@dataclass
class VerdictMsg:
    """Parent -> shard: adopt race verdicts sanitized elsewhere."""

    verdicts: List[Tuple[str, Any]] = field(default_factory=list)


@dataclass
class SnapshotMsg:
    """Shard -> parent: periodic inner-cluster report + identity."""

    shard: int
    pid: int
    report: Dict[str, Any]


def _shard_main(shard_index: int, cfg: ShardConfig, inbox, outbox,
                pool_name: Optional[str], pool_slots: int,
                pool_slot_bytes: int) -> None:
    """Worker-process entry: run one inner cluster off the inbox."""
    set_trace_scope(f"s{shard_index}")
    pool = SurfacePool.attach(pool_name, pool_slots, pool_slot_bytes) \
        if pool_name else None
    cluster = ServeCluster(
        num_devices=cfg.devices_per_shard, machine=cfg.machine,
        tuned=cfg.tuned,
        policy=cfg.policy, batching=cfg.batching, max_batch=cfg.max_batch,
        queue_capacity=cfg.queue_capacity, validate=cfg.validate,
        lanes=cfg.lanes, slo=None, recorder=cfg.ship_traces)

    def ship(req: Request) -> None:
        trace_dict = None
        if cfg.ship_traces and req.trace is not None:
            trace_dict = req.trace.to_dict()
        payload_out = None
        if req.params.get("_payload_pickled"):
            payload = req.params.get("_payload")
            if payload:
                payload_out = {k: np.asarray(v) for k, v in payload.items()}
        outbox.put(CompleteMsg(
            shard=shard_index,
            origin_id=req.params.get("_origin_id", req.id),
            status=req.status.value, error=req.error, result=req.result,
            kernel_sim_us=req.kernel_sim_us,
            overhead_sim_us=req.overhead_sim_us,
            dram_bytes=req.dram_bytes, launches=req.launches,
            tier=req.tier, variant=req.variant, cache_hits=req.cache_hits,
            cache_misses=req.cache_misses, device_index=req.device_index,
            batch_id=req.batch_id, batch_size=req.batch_size,
            wait_wall_s=req.wait_wall_s,
            sanitized_launches=req.sanitized_launches,
            sanitize_findings=list(req.sanitize_findings),
            trace=trace_dict, payload_out=payload_out,
            race_verdicts=cluster.drain_race_verdicts()))

    cluster.on_complete = ship
    cluster.start()
    try:
        while True:
            item = inbox.get()
            if item == _STOP:
                break
            if item == _SNAPSHOT:
                outbox.put(SnapshotMsg(shard_index, os.getpid(),
                                       cluster.report()))
                continue
            if isinstance(item, VerdictMsg):
                cluster.adopt_race_verdicts(item.verdicts)
                continue
            for sub in item:
                params = dict(sub.params)
                params["_origin_id"] = sub.origin_id
                if sub.payload_ref is not None and pool is not None:
                    params["_payload"] = pool.map(sub.payload_ref)
                elif sub.payload_arrays is not None:
                    params["_payload"] = sub.payload_arrays
                    params["_payload_pickled"] = True
                try:
                    cluster.submit(sub.workload, params, lane=sub.lane,
                                   deadline_ms=sub.deadline_ms,
                                   arrival_sim_us=sub.arrival_sim_us,
                                   block=True)
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    outbox.put(CompleteMsg(
                        shard=shard_index, origin_id=sub.origin_id,
                        status=RequestStatus.FAILED.value,
                        error=f"{type(exc).__name__}: {exc}"))
        cluster.drain(timeout=60.0)
    finally:
        cluster.shutdown()
        try:
            outbox.put(SnapshotMsg(shard_index, os.getpid(),
                                   cluster.report()))
            outbox.put(_BYE)
        except Exception:  # noqa: BLE001 - parent may already be gone
            pass
        if pool is not None:
            pool.close()


class _Shard:
    """Parent-side handle for one worker process."""

    def __init__(self, index: int, proc, inbox, outbox) -> None:
        self.index = index
        self.proc = proc
        self.inbox = inbox
        self.outbox = outbox
        self.pump: Optional[threading.Thread] = None
        #: no longer routed to (scale-down or death).
        self.draining = False
        #: got the worker's _BYE (clean exit).
        self.bye = False
        #: terminally gone (dead or cleanly stopped).
        self.stopped = False
        self.stop_sent = False
        self.requests_done = 0
        self.routed = 0
        self.last_snapshot: Optional[SnapshotMsg] = None
        #: name of the MachineConfig this shard's devices simulate.
        self.machine_name: Optional[str] = None

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def state(self) -> str:
        if self.stopped:
            return "dead" if not self.bye else "stopped"
        if self.draining:
            return "draining"
        return "active"


class ShardedCluster:
    """N shard processes behind one lane-aware, autoscaled front door."""

    def __init__(self, shards: int = 2,
                 devices_per_shard: int = 2,
                 machine=GEN11_ICL,
                 tuned=None,
                 policy: str = "cache-affinity",
                 routing: str = "affinity",
                 batching: bool = True,
                 max_batch: int = 8,
                 queue_capacity: int = 1024,
                 high_watermark: Optional[int] = None,
                 shard_queue_capacity: int = 512,
                 validate: str = "first",
                 ship_traces: bool = True,
                 slo=None,
                 recorder=True,
                 recorder_capacity: int = 512,
                 dump_dir: Optional[str] = None,
                 autoscale: Optional[AutoscalePolicy] = None,
                 pool_slots: int = 64,
                 pool_slot_bytes: int = 1 << 16,
                 max_requeues: int = 2,
                 route_window: int = 64,
                 shard_inflight: Optional[int] = None) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if routing not in ("affinity", "round-robin"):
            raise ValueError("routing must be 'affinity' or 'round-robin'")
        self.routing = routing
        self.max_requeues = max_requeues
        self.route_window = route_window
        #: per-shard forwarded-but-incomplete cap.  Once a shard has
        #: this much in flight the router stops draining the front
        #: door, so under overload the backlog waits in the parent's
        #: PriorityLaneQueue — where interactive preempts batch and EDF
        #: acts — instead of in a FIFO process pipe where nothing can
        #: reorder it.  Large enough to keep every device busy through
        #: a full dispatch window.
        self.shard_inflight = shard_inflight if shard_inflight is not None \
            else max(16, 2 * devices_per_shard * max_batch)
        self.initial_shards = shards
        #: a sequence of MachineConfigs stripes generations across
        #: shards (shard i gets machines[i % len]) — a heterogeneous
        #: fleet behind one front door.
        self.machines: List[MachineConfig] = list(machine) \
            if isinstance(machine, (list, tuple)) else [machine]
        if not self.machines:
            raise ValueError("machine sequence must be non-empty")
        if isinstance(tuned, str):
            from repro.tune.registry import TunedRegistry
            tuned = TunedRegistry.load(tuned)
        self.tuned = tuned
        self.cfg = ShardConfig(
            devices_per_shard=devices_per_shard, policy=policy,
            batching=batching, max_batch=max_batch,
            queue_capacity=shard_queue_capacity, validate=validate,
            ship_traces=ship_traces, machine=self.machines[0],
            tuned=tuned)
        self.obs = get_observability()
        self.registry: MetricsRegistry = (
            self.obs.registry if self.obs.enabled else MetricsRegistry())
        self.queue = PriorityLaneQueue(capacity=queue_capacity,
                                       high_watermark=high_watermark,
                                       registry=self.registry)
        if isinstance(slo, SLOTracker):
            self.slo: Optional[SLOTracker] = slo
        elif slo:
            self.slo = SLOTracker(slo, registry=self.registry)
        else:
            self.slo = None
        if isinstance(recorder, FlightRecorder):
            self.recorder: Optional[FlightRecorder] = recorder
        elif recorder:
            self.recorder = FlightRecorder(capacity=recorder_capacity,
                                           dump_dir=dump_dir,
                                           registry=self.registry)
        else:
            self.recorder = None
        self.pool = SurfacePool(slots=pool_slots, slot_bytes=pool_slot_bytes)
        self.autoscaler = Autoscaler(autoscale) if autoscale else None

        self._shards: Dict[int, _Shard] = {}
        self._shards_lock = threading.RLock()
        self._shard_ids = itertools.count()
        self._rr = itertools.count()
        #: origin_id -> (request, its SubmitMsg, shard it was routed to).
        self._inflight: Dict[int, Tuple[Request, SubmitMsg, int]] = {}
        self._completed_ids: set = set()
        self._state_lock = threading.Lock()
        self.completed: List[Request] = []
        self._completed_lock = threading.Lock()
        self._outstanding = 0
        self._done_cv = threading.Condition()
        #: kernel name -> RaceVerdict: every verdict any shard has
        #: produced (first one sticks — the sanitize is deterministic).
        #: Rebroadcast to live shards on arrival; new shards get the
        #: full set at spawn, so scale-up never re-sanitizes a kernel.
        self._verdicts: Dict[str, Any] = {}
        self._verdicts_lock = threading.Lock()
        #: control-plane accounting (report "control" section).
        self.duplicates_dropped = 0
        self.requeued = 0
        self.shard_deaths = 0
        self.verdicts_broadcast = 0

        self._router = threading.Thread(target=self._route_loop,
                                        name="shard-router", daemon=True)
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="shard-monitor", daemon=True)
        self._stop_event = threading.Event()
        self._started = False
        self._stopped = False
        self._t_start = time.perf_counter()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ShardedCluster":
        if self._started:
            return self
        self._started = True
        self._t_start = time.perf_counter()
        for _ in range(self.initial_shards):
            self._spawn_shard()
        self._router.start()
        self._monitor.start()
        return self

    def __enter__(self) -> "ShardedCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def _spawn_shard(self) -> _Shard:
        index = next(self._shard_ids)
        inbox = _CTX.Queue()
        outbox = _CTX.Queue()
        machine = self.machines[index % len(self.machines)]
        cfg = self.cfg if machine is self.cfg.machine \
            else dataclasses.replace(self.cfg, machine=machine)
        proc = _CTX.Process(
            target=_shard_main,
            args=(index, cfg, inbox, outbox, self.pool.name,
                  self.pool.slots, self.pool.slot_bytes),
            name=f"serve-shard{index}", daemon=True)
        proc.start()
        shard = _Shard(index, proc, inbox, outbox)
        shard.machine_name = machine.name
        shard.pump = threading.Thread(target=self._pump_loop, args=(shard,),
                                      name=f"shard-pump{index}", daemon=True)
        with self._verdicts_lock:
            seed = list(self._verdicts.items())
        if seed:
            try:
                inbox.put(VerdictMsg(seed))
            except Exception:  # noqa: BLE001 - monitor will notice a death
                pass
        with self._shards_lock:
            self._shards[index] = shard
        shard.pump.start()
        return shard

    def _active_shards(self) -> List[_Shard]:
        with self._shards_lock:
            return [s for s in self._shards.values()
                    if not s.draining and not s.stopped and s.alive]

    @property
    def num_shards(self) -> int:
        return len(self._active_shards())

    def shutdown(self, wait: bool = True, drain_timeout: float = 60.0) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.queue.close()
        self._stop_event.set()
        if self._started and wait:
            self._router.join(timeout=10.0)
            self.drain(timeout=drain_timeout)
            self._monitor.join(timeout=10.0)
            with self._shards_lock:
                shards = list(self._shards.values())
            for shard in shards:
                if shard.alive and not shard.stop_sent:
                    shard.stop_sent = True
                    try:
                        shard.inbox.put(_STOP)
                    except Exception:  # noqa: BLE001 - already torn down
                        pass
            for shard in shards:
                shard.proc.join(timeout=10.0)
                if shard.alive:
                    shard.proc.terminate()
                    shard.proc.join(timeout=5.0)
                shard.stopped = True
            for shard in shards:
                if shard.pump is not None:
                    shard.pump.join(timeout=5.0)
                for q in (shard.inbox, shard.outbox):
                    try:
                        q.cancel_join_thread()
                        q.close()
                    except Exception:  # noqa: BLE001 - teardown races
                        pass
        self.pool.close()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait until every admitted request finished; True on success."""
        with self._done_cv:
            return self._done_cv.wait_for(
                lambda: self._outstanding == 0, timeout)

    # -- submission --------------------------------------------------------

    def submit(self, workload: str, params: Optional[Dict[str, Any]] = None,
               arrival_sim_us: Optional[float] = None,
               lane: str = "interactive",
               deadline_ms: Optional[float] = None,
               payload: Optional[Dict[str, Any]] = None,
               block: bool = False,
               timeout: Optional[float] = None) -> Request:
        """Admit one request into the sharded front door.

        ``payload`` maps names to numpy arrays carried out of band in
        the shared-memory pool (falling back to pickling when no slot
        fits); outputs come back on ``Request.result_payload``.
        """
        if not self._started:
            self.start()
        req = Request(workload=workload, params=dict(params or {}),
                      arrival_sim_us=arrival_sim_us)
        req.lane = normalize_lane(lane)
        if deadline_ms is None and self.slo is not None:
            objective = self.slo.objective_for(workload)
            if objective is not None:
                deadline_ms = objective.target_wall_ms
        if deadline_ms is not None:
            req.deadline_wall_s = time.perf_counter() + deadline_ms / 1e3
        payload_ref = payload_arrays = None
        if payload:
            arrays = {k: np.asarray(v) for k, v in payload.items()}
            payload_ref = self.pool.put(arrays)
            if payload_ref is None:
                payload_arrays = arrays
        req._payload_ref = payload_ref  # noqa: SLF001 - parent-side stash
        req._payload_arrays = payload_arrays  # noqa: SLF001
        if self.recorder is not None:
            req.trace_id = mint_trace_id()
            req.trace = RequestTrace(req.trace_id, workload=req.workload,
                                     request_id=req.id)
        try:
            self.queue.submit(req, block=block, timeout=timeout)
        except Exception:
            if payload_ref is not None:
                self.pool.release(payload_ref)
            raise
        with self._done_cv:
            self._outstanding += 1
        return req

    # -- routing -----------------------------------------------------------

    @staticmethod
    def route_key(workload: str, params: Dict[str, Any]) -> tuple:
        """Kernel identity for affinity routing: workload plus shape
        parameters; the data ``seed`` and internal keys are excluded so
        repeats of the same kernel stay on one shard's warm caches."""
        shape = tuple(sorted(
            (k, repr(v)) for k, v in params.items()
            if k != "seed" and not k.startswith("_")))
        return (workload,) + shape

    def _route(self, req: Request, active: List[_Shard]) -> _Shard:
        if self.routing == "affinity":
            digest = zlib.crc32(repr(
                self.route_key(req.workload, req.params)).encode())
            return active[digest % len(active)]
        return active[next(self._rr) % len(active)]

    def _to_msg(self, req: Request) -> SubmitMsg:
        deadline_ms = None
        if req.deadline_wall_s is not None:
            deadline_ms = max(
                0.0, (req.deadline_wall_s - time.perf_counter()) * 1e3)
        return SubmitMsg(
            origin_id=req.id, workload=req.workload, params=dict(req.params),
            lane=req.lane, deadline_ms=deadline_ms,
            arrival_sim_us=req.arrival_sim_us,
            payload_ref=getattr(req, "_payload_ref", None),
            payload_arrays=getattr(req, "_payload_arrays", None))

    def _route_loop(self) -> None:
        while True:
            with self._state_lock:
                inflight = len(self._inflight)
            budget = self.shard_inflight * max(1, self.num_shards) - inflight
            if budget <= 0:
                if self.queue.closed and not len(self.queue):
                    return
                with self._done_cv:
                    self._done_cv.wait(0.01)
                continue
            items = self.queue.take(
                max_items=min(self.route_window, budget), timeout=0.1)
            if not items:
                if self.queue.closed and not len(self.queue):
                    return
                continue
            active = self._active_shards()
            while not active and not self._stop_event.is_set():
                # Between a death and its recovery there may be nobody
                # to route to; the monitor restores the floor.
                time.sleep(0.01)
                active = self._active_shards()
            tracer = get_tracer()
            t_route = tracer.now_us()
            batches: Dict[int, List[SubmitMsg]] = {}
            for req in items:
                if not active:
                    self._finish_unroutable(req)
                    continue
                shard = self._route(req, active)
                msg = self._to_msg(req)
                req.shard_index = shard.index
                if req.trace is not None and req.t_submit_wall is not None:
                    req.trace.record("queue_wait",
                                     tracer.to_us(req.t_submit_wall),
                                     t_route, depth=req.queue_depth_at_admit,
                                     lane=req.lane)
                    req.trace.record("route", t_route, tracer.now_us(),
                                     shard=shard.index,
                                     routing=self.routing)
                with self._state_lock:
                    self._inflight[req.id] = (req, msg, shard.index)
                shard.routed += 1
                batches.setdefault(shard.index, []).append(msg)
            with self._shards_lock:
                live = dict(self._shards)
            for index, msgs in batches.items():
                shard = live.get(index)
                if shard is None:
                    continue
                try:
                    shard.inbox.put(msgs)
                except Exception:  # noqa: BLE001 - death recovery requeues
                    pass

    def _finish_unroutable(self, req: Request) -> None:
        req.finish(RequestStatus.FAILED, "no shard available")
        self._account_completion(req, release_payload=True)

    # -- completion (pump threads) -----------------------------------------

    def _pump_loop(self, shard: _Shard) -> None:
        while True:
            try:
                msg = shard.outbox.get(timeout=0.25)
            except _stdqueue.Empty:
                if shard.bye or not shard.alive:
                    return
                continue
            except (EOFError, OSError):
                return
            if msg == _BYE:
                shard.bye = True
                shard.stopped = True
                shard.proc.join(timeout=5.0)
                return
            if isinstance(msg, SnapshotMsg):
                shard.last_snapshot = msg
                continue
            self._complete(msg)

    def _adopt_verdicts(self, pairs, from_shard: int) -> None:
        """Record shard-produced race verdicts and rebroadcast the new
        ones so every shard (including the origin's peer devices) admits
        the kernel wide without its own sanitized launch."""
        fresh = []
        with self._verdicts_lock:
            for kname, verdict in pairs:
                if kname in self._verdicts:
                    continue
                self._verdicts[kname] = verdict
                fresh.append((kname, verdict))
        if not fresh:
            return
        self.verdicts_broadcast += len(fresh)
        with self._shards_lock:
            shards = [s for s in self._shards.values()
                      if s.alive and not s.stopped and not s.stop_sent]
        for shard in shards:
            try:
                shard.inbox.put(VerdictMsg(fresh))
            except Exception:  # noqa: BLE001 - spawn-seeding covers respawns
                pass

    def _complete(self, msg: CompleteMsg) -> None:
        if msg.race_verdicts:
            # adopt before the duplicate check: a verdict that rode a
            # duplicated completion is still news.
            self._adopt_verdicts(msg.race_verdicts, msg.shard)
        with self._state_lock:
            if msg.origin_id in self._completed_ids:
                self.duplicates_dropped += 1
                return
            entry = self._inflight.pop(msg.origin_id, None)
            if entry is None:
                self.duplicates_dropped += 1
                return
            self._completed_ids.add(msg.origin_id)
        req, sub, _ = entry
        req.shard_index = msg.shard
        req.device_index = msg.device_index
        req.batch_id = msg.batch_id
        req.batch_size = msg.batch_size
        req.kernel_sim_us = msg.kernel_sim_us
        req.overhead_sim_us = msg.overhead_sim_us
        req.dram_bytes = msg.dram_bytes
        req.launches = msg.launches
        req.tier = msg.tier
        req.variant = msg.variant
        req.cache_hits = msg.cache_hits
        req.cache_misses = msg.cache_misses
        req.result = msg.result
        req.sanitized_launches = msg.sanitized_launches
        req.sanitize_findings = list(msg.sanitize_findings)
        now = time.perf_counter()
        req.t_done_wall = now
        if req.t_submit_wall is not None:
            req.t_dispatch_wall = min(
                now, req.t_submit_wall + msg.wait_wall_s)
        if sub.payload_ref is not None:
            views = self.pool.map(sub.payload_ref)
            req.result_payload = {k: np.array(v) for k, v in views.items()}
            self.pool.release(sub.payload_ref)
        elif msg.payload_out is not None:
            req.result_payload = msg.payload_out
        req.status = RequestStatus(msg.status)
        req.error = msg.error
        if msg.trace is not None and req.trace is not None:
            req.trace.graft(msg.trace, name="shard", shard=msg.shard)
        with self._shards_lock:
            owner = self._shards.get(msg.shard)
        if owner is not None:
            owner.requests_done += 1
        req.finish(req.status, msg.error)
        self._account_completion(req)

    def _account_completion(self, req: Request,
                            release_payload: bool = False) -> None:
        """SLO, flight recorder, completed list, drain bookkeeping."""
        if release_payload:
            ref = getattr(req, "_payload_ref", None)
            if ref is not None:
                self.pool.release(ref)
        if self.slo is not None:
            req.slo_breached = self.slo.observe_request(req)
        tr = req.trace
        if tr is not None and self.recorder is not None:
            tr.finish(status=req.status.value, tier=req.tier,
                      latency_wall_ms=req.latency_wall_s * 1e3,
                      latency_sim_us=req.latency_sim_us,
                      error=req.error, slo_breached=req.slo_breached,
                      shard=req.shard_index)
            self.recorder.record(tr)
            if req.status is RequestStatus.FAILED:
                self.recorder.dump(tr, DumpReason.ERROR,
                                   detail=req.error or "")
            elif req.slo_breached:
                self.recorder.dump(
                    tr, DumpReason.SLO_BREACH,
                    detail=f"latency {req.latency_wall_s * 1e3:.3f} ms")
            if req.sanitize_findings:
                self.recorder.dump(tr, DumpReason.SANITIZER,
                                   detail="; ".join(req.sanitize_findings))
        with self._completed_lock:
            self.completed.append(req)
        with self._done_cv:
            self._outstanding -= 1
            self._done_cv.notify_all()

    # -- monitor: liveness, drain completion, autoscale --------------------

    def _monitor_loop(self) -> None:
        interval = (self.autoscaler.policy.interval_s
                    if self.autoscaler else 0.05)
        while not self._stop_event.wait(interval):
            with self._shards_lock:
                shards = list(self._shards.values())
            for shard in shards:
                if not shard.stopped and not shard.bye and not shard.alive:
                    self._on_shard_death(shard)
            for shard in shards:
                if shard.draining and not shard.stopped \
                        and not shard.stop_sent \
                        and self._inflight_count(shard.index) == 0:
                    shard.stop_sent = True
                    try:
                        shard.inbox.put(_STOP)
                    except Exception:  # noqa: BLE001
                        pass
            if self.autoscaler is not None:
                self._autoscale_tick()
            elif not self._active_shards() and not self._stop_event.is_set():
                # No autoscaler: still restore the single-shard floor
                # after a death so requeued work has somewhere to go.
                self._spawn_shard()

    def _inflight_count(self, shard_index: int) -> int:
        with self._state_lock:
            return sum(1 for _, _, idx in self._inflight.values()
                       if idx == shard_index)

    def _autoscale_tick(self) -> None:
        scaler = self.autoscaler
        now = time.perf_counter() - self._t_start
        active = self._active_shards()
        with self._state_lock:
            inflight = len(self._inflight)
        backlog = len(self.queue) + inflight
        burn = 0.0
        if self.slo is not None:
            burn = self.slo.snapshot()["overall"]["max_burn_rate"]
        decision = scaler.decide(now, len(active), backlog, burn)
        if decision == 0:
            return
        reason = scaler.reason_for(decision, len(active), backlog, burn)
        if decision > 0:
            self._spawn_shard()
            scaler.note(now, "up", len(active), len(active) + 1, reason)
        else:
            victim = min(active,
                         key=lambda s: (self._inflight_count(s.index),
                                        -s.index))
            victim.draining = True
            scaler.note(now, "down", len(active), len(active) - 1, reason)

    def _on_shard_death(self, shard: _Shard) -> None:
        """Requeue a dead shard's in-flight requests to survivors."""
        shard.stopped = True
        shard.draining = True
        self.shard_deaths += 1
        shard.proc.join(timeout=1.0)
        with self._state_lock:
            victims = [(oid, req, sub)
                       for oid, (req, sub, idx) in self._inflight.items()
                       if idx == shard.index]
        if not victims:
            return
        active = self._active_shards()
        if not active:
            active = [self._spawn_shard()]
        for oid, req, sub in victims:
            with self._state_lock:
                if oid in self._completed_ids:
                    continue  # its completion raced the death: keep it
            req.requeues += 1
            if req.requeues > self.max_requeues:
                with self._state_lock:
                    if oid in self._completed_ids:
                        continue
                    self._inflight.pop(oid, None)
                    self._completed_ids.add(oid)
                req.finish(RequestStatus.FAILED,
                           f"shard {shard.index} died; requeue budget "
                           f"({self.max_requeues}) exhausted")
                self._account_completion(req, release_payload=True)
                continue
            target = self._route(req, active)
            with self._state_lock:
                if oid in self._completed_ids:
                    continue
                self._inflight[oid] = (req, sub, target.index)
            req.shard_index = target.index
            if req.trace is not None:
                t = get_tracer().now_us()
                req.trace.record("requeue", t, t, dead_shard=shard.index,
                                 shard=target.index, attempt=req.requeues)
            self.requeued += 1
            target.routed += 1
            try:
                target.inbox.put([sub])
            except Exception:  # noqa: BLE001 - next death sweep retries
                pass

    # -- reporting ---------------------------------------------------------

    def request_snapshots(self, wait_s: float = 1.0) -> None:
        """Ask every live shard for a fresh inner report; pumps store
        the replies on each shard handle (best effort within ``wait_s``)."""
        with self._shards_lock:
            shards = [s for s in self._shards.values()
                      if s.alive and not s.stop_sent]
        before = {s.index: s.last_snapshot for s in shards}
        for shard in shards:
            try:
                shard.inbox.put(_SNAPSHOT)
            except Exception:  # noqa: BLE001
                pass
        deadline = time.monotonic() + wait_s
        while time.monotonic() < deadline:
            if all(s.last_snapshot is not before[s.index] for s in shards):
                return
            time.sleep(0.01)

    def export_traces(self, path_or_file) -> None:
        if self.recorder is None:
            raise ValueError("flight recorder is disabled on this cluster")
        self.recorder.export_chrome(path_or_file)

    def report(self, refresh_snapshots: bool = False) -> Dict[str, Any]:
        """Cluster-wide aggregation plus per-shard / lane / autoscale /
        control-plane sections."""
        if refresh_snapshots:
            self.request_snapshots()
        with self._completed_lock:
            reqs = list(self.completed)
        done = [r for r in reqs if r.status is RequestStatus.DONE]
        wall_s = time.perf_counter() - self._t_start
        by_status = {s.value: sum(1 for r in reqs if r.status is s)
                     for s in RequestStatus}
        cache_hits = sum(r.cache_hits for r in reqs)
        cache_misses = sum(r.cache_misses for r in reqs)
        lookups = cache_hits + cache_misses
        tiers: Dict[str, int] = {}
        for r in done:
            if r.tier:
                tiers[r.tier] = tiers.get(r.tier, 0) + 1
        lanes: Dict[str, Any] = {}
        for lane in ("interactive", "batch"):
            sub = [r for r in reqs if r.lane == lane]
            sub_done = [r for r in sub if r.status is RequestStatus.DONE]
            breached = sum(1 for r in sub if r.slo_breached)
            lanes[lane] = {
                "requests": len(sub),
                "done": len(sub_done),
                "slo_breaches": breached,
                "slo_attainment": (1.0 - breached / len(sub)) if sub else 1.0,
                "latency_wall_ms": percentiles(
                    [r.latency_wall_s * 1e3 for r in sub_done]),
            }
        with self._shards_lock:
            shards = sorted(self._shards.values(), key=lambda s: s.index)
        per_shard = []
        for s in shards:
            entry: Dict[str, Any] = {
                "index": s.index,
                "machine": s.machine_name,
                "state": s.state(),
                "alive": s.alive,
                "routed": s.routed,
                "requests_done": s.requests_done,
                "inflight": self._inflight_count(s.index),
            }
            if s.last_snapshot is not None:
                inner = s.last_snapshot.report
                entry["pid"] = s.last_snapshot.pid
                entry["inner"] = {
                    "requests": inner.get("requests"),
                    "throughput_rps": inner.get("throughput_rps"),
                    "kernel_cache": inner.get("kernel_cache"),
                    "tiers": inner.get("tiers"),
                    "sim": inner.get("sim"),
                    "per_device": inner.get("per_device"),
                }
            per_shard.append(entry)
        # Shards run independent simulated timelines; the cluster-wide
        # makespan is the slowest shard's horizon (needs snapshots).
        horizon = max(
            (s.last_snapshot.report.get("sim", {}).get("horizon_us", 0.0)
             for s in shards if s.last_snapshot is not None), default=0.0)
        # Which tuned variant served each request, split by the machine
        # of the shard that ran it — the heterogeneity evidence.
        machine_of = {s.index: s.machine_name for s in shards}
        variants_by_machine: Dict[str, Dict[str, int]] = {}
        for r in done:
            if r.variant is None:
                continue
            mname = machine_of.get(r.shard_index) or "?"
            per = variants_by_machine.setdefault(mname, {})
            key = f"{r.workload}:{r.variant}"
            per[key] = per.get(key, 0) + 1
        extra: Dict[str, Any] = {}
        if self.slo is not None:
            extra["slo"] = self.slo.snapshot()
        if self.recorder is not None:
            extra["recorder"] = self.recorder.stats()
        if self.autoscaler is not None:
            extra["autoscale"] = self.autoscaler.snapshot()
        return extra | {
            "shards": len(shards),
            "active_shards": len(self._active_shards()),
            "devices_per_shard": self.cfg.devices_per_shard,
            "machines": sorted({m.name for m in self.machines}),
            "tuned": {
                "enabled": self.tuned is not None,
                "entries": len(self.tuned) if self.tuned is not None else 0,
                "variants_by_machine": variants_by_machine,
            },
            "policy": self.cfg.policy,
            "routing": self.routing,
            "requests": by_status | {"total": len(reqs)},
            "wall_elapsed_s": wall_s,
            "throughput_rps": len(done) / wall_s if wall_s > 0 else 0.0,
            "latency_wall_ms": percentiles(
                [r.latency_wall_s * 1e3 for r in done]),
            "latency_sim_us": percentiles(
                [r.latency_sim_us for r in done]),
            "sim": {
                "kernel_us": sum(r.kernel_sim_us for r in done),
                "launch_overhead_us": sum(r.overhead_sim_us for r in done),
                "dram_bytes": sum(r.dram_bytes for r in done),
                "horizon_us": horizon,
            },
            "kernel_cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": cache_hits / lookups if lookups else 0.0,
            },
            "tiers": tiers,
            "lanes": lanes | {"queue_depths": self.queue.lane_depths()},
            "per_shard": per_shard,
            "pool": self.pool.stats(),
            "control": {
                "duplicates_dropped": self.duplicates_dropped,
                "requeued": self.requeued,
                "shard_deaths": self.shard_deaths,
                "requeue_budget": self.max_requeues,
                "verdicts_known": len(self._verdicts),
                "verdicts_broadcast": self.verdicts_broadcast,
            },
        }
