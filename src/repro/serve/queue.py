"""Bounded submission queue with admission control and backpressure.

The cluster front door.  Admission follows a watermark contract:

- depth < ``high_watermark``: the request is admitted immediately.
- depth >= ``high_watermark`` (or the queue is at ``capacity``): the
  submit is **rejected** with :class:`Backpressure`, carrying a
  ``retry_after_s`` hint derived from the dispatcher's observed drain
  rate — the serving-layer equivalent of HTTP 429 + ``Retry-After``.
  ``submit(block=True)`` instead parks the caller until space frees
  (the closed-loop load-generator mode).

Depth is exported as a gauge and admissions/rejections as counters on
the registry the cluster provides, so a loadgen report can show how hard
the front door was hit.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry

from repro.serve.request import Request, RequestStatus


class Backpressure(RuntimeError):
    """Submission refused; retry after ``retry_after_s`` seconds."""

    def __init__(self, depth: int, capacity: int,
                 retry_after_s: float) -> None:
        super().__init__(
            f"submission queue full ({depth}/{capacity}); "
            f"retry after {retry_after_s * 1e3:.1f} ms")
        self.depth = depth
        self.capacity = capacity
        self.retry_after_s = retry_after_s


class ShutDown(RuntimeError):
    """Submitted to a closed queue."""


class SubmissionQueue:
    """FIFO request queue with watermark admission control."""

    def __init__(self, capacity: int = 512,
                 high_watermark: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.high_watermark = high_watermark if high_watermark is not None \
            else capacity
        if not 1 <= self.high_watermark <= capacity:
            raise ValueError("high_watermark must be in [1, capacity]")
        self._items: deque = deque()
        self._cv = threading.Condition()
        self._closed = False
        #: EMA of seconds between dequeues; seeds the retry-after hint.
        self._drain_interval_s = 1e-3
        self._last_take: Optional[float] = None
        self.registry = registry if registry is not None else MetricsRegistry()
        self._depth = self.registry.gauge(
            "serve_queue_depth", "requests waiting for dispatch")
        self._admitted = self.registry.counter(
            "serve_queue_admitted", "requests admitted")
        self._rejected = self.registry.counter(
            "serve_queue_rejected", "submissions rejected by backpressure")

    def __len__(self) -> int:
        with self._cv:
            return len(self._items)

    # -- producer side ----------------------------------------------------

    def retry_after_s(self, overflow: int) -> float:
        """Backpressure hint: time for the dispatcher to drain ``overflow``."""
        return min(1.0, max(1e-3, overflow * self._drain_interval_s))

    def submit(self, request: Request, block: bool = False,
               timeout: Optional[float] = None) -> Request:
        """Admit ``request`` or raise :class:`Backpressure`.

        ``block=True`` waits for space below the watermark instead of
        rejecting (closed-loop callers); ``timeout`` bounds the wait.
        """
        with self._cv:
            if block:
                ok = self._cv.wait_for(
                    lambda: self._closed
                    or len(self._items) < self.high_watermark,
                    timeout)
                if not ok:
                    raise Backpressure(len(self._items), self.capacity,
                                       self.retry_after_s(1))
            if self._closed:
                raise ShutDown("submission queue is closed")
            depth = len(self._items)
            if depth >= self.high_watermark or depth >= self.capacity:
                self._rejected.inc()
                raise Backpressure(
                    depth, self.capacity,
                    self.retry_after_s(depth - self.high_watermark + 1))
            request.status = RequestStatus.QUEUED
            request.t_submit_wall = time.perf_counter()
            request.queue_depth_at_admit = depth
            self._items.append(request)
            self._admitted.inc()
            self._depth.set(len(self._items))
            self._cv.notify_all()
            return request

    # -- consumer side ----------------------------------------------------

    def take(self, max_items: int = 1,
             timeout: Optional[float] = None) -> List[Request]:
        """Block for at least one request, then drain up to ``max_items``.

        Returns an empty list only when the queue is closed and empty
        (dispatcher shutdown) or the timeout expired.
        """
        with self._cv:
            ok = self._cv.wait_for(
                lambda: self._items or self._closed, timeout)
            if not ok or not self._items:
                return []
            out = []
            while self._items and len(out) < max_items:
                out.append(self._items.popleft())
            now = time.perf_counter()
            if self._last_take is not None:
                # Per-request drain interval, smoothed.
                sample = (now - self._last_take) / max(len(out), 1)
                self._drain_interval_s += 0.2 * (sample -
                                                 self._drain_interval_s)
            self._last_take = now
            self._depth.set(len(self._items))
            self._cv.notify_all()
            return out

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed
