"""Bounded submission queue with admission control and backpressure.

The cluster front door.  Admission follows a watermark contract:

- depth < ``high_watermark``: the request is admitted immediately.
- depth >= ``high_watermark`` (or the queue is at ``capacity``): the
  submit is **rejected** with :class:`Backpressure`, carrying a
  ``retry_after_s`` hint derived from the dispatcher's observed drain
  rate — the serving-layer equivalent of HTTP 429 + ``Retry-After``.
  ``submit(block=True)`` instead parks the caller until space frees
  (the closed-loop load-generator mode).

Depth is exported as a gauge and admissions/rejections as counters on
the registry the cluster provides, so a loadgen report can show how hard
the front door was hit.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry

from repro.serve.request import Request, RequestStatus


class Backpressure(RuntimeError):
    """Submission refused; retry after ``retry_after_s`` seconds."""

    def __init__(self, depth: int, capacity: int,
                 retry_after_s: float) -> None:
        super().__init__(
            f"submission queue full ({depth}/{capacity}); "
            f"retry after {retry_after_s * 1e3:.1f} ms")
        self.depth = depth
        self.capacity = capacity
        self.retry_after_s = retry_after_s


class ShutDown(RuntimeError):
    """Submitted to a closed queue."""


#: Per-request retry hint used while the drain rate is unmeasured (no
#: ``take()`` has completed yet — first requests after start or reset).
#: Without it the hint collapses to the 1 ms floor and rejected clients
#: hot-loop against a dispatcher that has not even woken up.
DEFAULT_RETRY_S = 0.02

#: Bounds every retry hint, measured or not.
MIN_RETRY_S = 1e-3
MAX_RETRY_S = 1.0


class SubmissionQueue:
    """FIFO request queue with watermark admission control."""

    def __init__(self, capacity: int = 512,
                 high_watermark: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.high_watermark = high_watermark if high_watermark is not None \
            else capacity
        if not 1 <= self.high_watermark <= capacity:
            raise ValueError("high_watermark must be in [1, capacity]")
        self._items: deque = deque()
        self._cv = threading.Condition()
        self._closed = False
        #: EMA of seconds between dequeues; seeds the retry-after hint.
        self._drain_interval_s = 1e-3
        self._last_take: Optional[float] = None
        self.registry = registry if registry is not None else MetricsRegistry()
        self._depth = self.registry.gauge(
            "serve_queue_depth", "requests waiting for dispatch")
        self._admitted = self.registry.counter(
            "serve_queue_admitted", "requests admitted")
        self._rejected = self.registry.counter(
            "serve_queue_rejected", "submissions rejected by backpressure")

    def __len__(self) -> int:
        with self._cv:
            return self._size()

    # -- storage hooks (subclasses reorder without touching admission) -----

    def _push(self, request: Request) -> None:
        self._items.append(request)

    def _pop(self) -> Request:
        return self._items.popleft()

    def _size(self) -> int:
        return len(self._items)

    # -- producer side ----------------------------------------------------

    def retry_after_s(self, overflow: int) -> float:
        """Backpressure hint: time for the dispatcher to drain ``overflow``.

        While the drain rate is unmeasured (nothing taken yet) or the
        EMA has degenerated (zero / non-finite interval), the hint is a
        bounded default rather than the raw seed — a freshly started or
        reset queue should tell clients "come back in a beat", not
        "hammer me every millisecond".
        """
        interval = self._drain_interval_s
        if self._last_take is None or not math.isfinite(interval) \
                or interval <= 0.0:
            interval = DEFAULT_RETRY_S
        return min(MAX_RETRY_S, max(MIN_RETRY_S, overflow * interval))

    def submit(self, request: Request, block: bool = False,
               timeout: Optional[float] = None) -> Request:
        """Admit ``request`` or raise :class:`Backpressure`.

        ``block=True`` waits for space below the watermark instead of
        rejecting (closed-loop callers); ``timeout`` bounds the wait.
        """
        with self._cv:
            if block:
                ok = self._cv.wait_for(
                    lambda: self._closed
                    or self._size() < self.high_watermark,
                    timeout)
                if not ok:
                    raise Backpressure(self._size(), self.capacity,
                                       self.retry_after_s(1))
            if self._closed:
                raise ShutDown("submission queue is closed")
            depth = self._size()
            if depth >= self.high_watermark or depth >= self.capacity:
                self._rejected.inc()
                raise Backpressure(
                    depth, self.capacity,
                    self.retry_after_s(depth - self.high_watermark + 1))
            request.status = RequestStatus.QUEUED
            request.t_submit_wall = time.perf_counter()
            request.queue_depth_at_admit = depth
            self._push(request)
            self._admitted.inc()
            self._depth.set(self._size())
            self._cv.notify_all()
            return request

    # -- consumer side ----------------------------------------------------

    def take(self, max_items: int = 1,
             timeout: Optional[float] = None) -> List[Request]:
        """Block for at least one request, then drain up to ``max_items``.

        Returns an empty list only when the queue is closed and empty
        (dispatcher shutdown) or the timeout expired.
        """
        with self._cv:
            ok = self._cv.wait_for(
                lambda: self._size() or self._closed, timeout)
            if not ok or not self._size():
                return []
            out = []
            while self._size() and len(out) < max_items:
                out.append(self._pop())
            now = time.perf_counter()
            if self._last_take is not None:
                # Per-request drain interval, smoothed (non-negative by
                # construction; the monotonic clock never runs backward).
                sample = (now - self._last_take) / max(len(out), 1)
                self._drain_interval_s += 0.2 * (sample -
                                                 self._drain_interval_s)
            self._last_take = now
            self._depth.set(self._size())
            self._cv.notify_all()
            return out

    def close(self) -> None:
        with self._cv:
            self._closed = True
            self._cv.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed
