"""Priority lanes and deadline-aware ordering over the backpressure queue.

The serving layer distinguishes two traffic classes:

- **interactive** — a user is waiting; these carry (or inherit from
  their workload's SLO target) a wall-clock deadline.
- **batch** — throughput work that tolerates delay; it may be starved
  by interactive traffic under overload, and that is the point: an
  overloaded batch lane must not spend the interactive lane's error
  budget.

:class:`PriorityLaneQueue` keeps the :class:`~repro.serve.queue.
SubmissionQueue` admission contract untouched (capacity, watermark,
:class:`~repro.serve.queue.Backpressure` with a drain-rate retry hint,
blocking submits) and changes only the *order* requests leave in:

1. the interactive lane drains strictly before the batch lane;
2. within a lane, earliest absolute deadline first (EDF); requests
   without a deadline sort last, among themselves in FIFO order.

Per-lane depth is exported as a ``serve_queue_depth{lane=...}`` gauge
next to the base queue's aggregate gauge.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

from repro.serve.queue import SubmissionQueue
from repro.serve.request import Request

#: Drain-priority order: earlier lanes preempt later ones entirely.
LANES = ("interactive", "batch")

#: Lane assigned to requests naming an unknown lane.
DEFAULT_LANE = "interactive"


def normalize_lane(lane: Optional[str]) -> str:
    return lane if lane in LANES else DEFAULT_LANE


class PriorityLaneQueue(SubmissionQueue):
    """Two-lane EDF queue behind the standard admission front door."""

    def __init__(self, capacity: int = 512,
                 high_watermark: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        #: per-lane min-heaps of (deadline, seq, request); the heaps are
        #: the storage — the base class deque stays empty.
        self._heaps: Dict[str, List[tuple]] = {lane: [] for lane in LANES}
        self._seq = itertools.count()
        super().__init__(capacity=capacity, high_watermark=high_watermark,
                         registry=registry)
        self._lane_depth = {
            lane: self.registry.gauge("serve_queue_depth", lane=lane)
            for lane in LANES
        }

    # -- storage hooks (called under the base queue's condition lock) ------

    def _push(self, request: Request) -> None:
        lane = normalize_lane(request.lane)
        deadline = request.deadline_wall_s
        heapq.heappush(
            self._heaps[lane],
            (deadline if deadline is not None else math.inf,
             next(self._seq), request))
        self._lane_depth[lane].set(len(self._heaps[lane]))

    def _pop(self) -> Request:
        for lane in LANES:
            heap = self._heaps[lane]
            if heap:
                _, _, request = heapq.heappop(heap)
                self._lane_depth[lane].set(len(heap))
                return request
        raise IndexError("pop from an empty lane queue")

    def _size(self) -> int:
        return sum(len(heap) for heap in self._heaps.values())

    # -- introspection -----------------------------------------------------

    def lane_depths(self) -> Dict[str, int]:
        with self._cv:
            return {lane: len(heap) for lane, heap in self._heaps.items()}
