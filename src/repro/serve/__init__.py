"""``repro.serve`` — the multi-device serving layer.

Quickstart::

    from repro.serve import ServeCluster

    with ServeCluster(num_devices=4, policy="cache-affinity") as cluster:
        req = cluster.submit("sgemm", {"m": 16, "n": 16, "k": 8})
        req.wait()
        print(req.status, req.latency_wall_s, cluster.report())

See ``docs/serving.md`` for the architecture, the scheduling policies,
dynamic-batching semantics and the backpressure contract, and
``python -m repro.serve.loadgen --help`` for the load generator.
"""

from repro.serve.autoscale import AutoscalePolicy, Autoscaler, ScaleEvent
from repro.serve.batcher import Batch, DynamicBatcher, WorkItem
from repro.serve.cluster import DeviceWorker, ServeCluster
from repro.serve.lanes import LANES, PriorityLaneQueue, normalize_lane
from repro.serve.pool import PayloadRef, SurfacePool
from repro.serve.queue import Backpressure, ShutDown, SubmissionQueue
from repro.serve.request import Request, RequestStatus, percentiles
from repro.serve.scheduler import (
    CacheAffinityPolicy, LeastLoadedPolicy, Policy, RoundRobinPolicy,
    make_policy, policy_names,
)
from repro.serve.shard import (
    CompleteMsg, ShardConfig, ShardedCluster, SnapshotMsg, SubmitMsg,
)
from repro.serve.workloads import (
    KernelLaunch, ServeWorkload, get_workload, workload_keys,
)

__all__ = [
    "ServeCluster", "DeviceWorker",
    "ShardedCluster", "ShardConfig",
    "SubmitMsg", "CompleteMsg", "SnapshotMsg",
    "Request", "RequestStatus", "percentiles",
    "SubmissionQueue", "Backpressure", "ShutDown",
    "PriorityLaneQueue", "LANES", "normalize_lane",
    "SurfacePool", "PayloadRef",
    "Autoscaler", "AutoscalePolicy", "ScaleEvent",
    "DynamicBatcher", "Batch", "WorkItem",
    "Policy", "RoundRobinPolicy", "LeastLoadedPolicy",
    "CacheAffinityPolicy", "make_policy", "policy_names",
    "KernelLaunch", "ServeWorkload", "get_workload", "workload_keys",
]
