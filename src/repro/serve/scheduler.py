"""Scheduling policies: which device serves the next batch.

A policy sees the list of device workers (their accumulated simulated
busy time, queued estimate, and kernel cache) and picks an index for
each :class:`~repro.serve.batcher.Batch` the dispatcher formed.  All
policies preserve FIFO dispatch order — they choose *where*, never
*when*.

- :class:`RoundRobinPolicy` (``"round-robin"``, alias ``"fifo"``):
  rotate through devices in submission order.
- :class:`LeastLoadedPolicy` (``"least-loaded"``): pick the device with
  the smallest accumulated simulated busy time, counting an estimate
  for batches already queued on its inbox; ties go to the lowest index.
- :class:`CacheAffinityPolicy` (``"cache-affinity"``): steer a compiled
  kernel to the device whose :class:`KernelCache` already holds the
  program (first placement decided by least-loaded), so repeat kernels
  hit a warm cache instead of recompiling on every device.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class Policy:
    """Base scheduling policy."""

    name = "base"

    def select(self, batch, workers: Sequence) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget learned placement state (new loadgen run)."""


class RoundRobinPolicy(Policy):
    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, batch, workers: Sequence) -> int:
        idx = self._next % len(workers)
        self._next += 1
        return idx

    def reset(self) -> None:
        self._next = 0


class LeastLoadedPolicy(Policy):
    name = "least-loaded"

    def select(self, batch, workers: Sequence) -> int:
        return min(range(len(workers)),
                   key=lambda i: (workers[i].load_sim_us(), i))


class CacheAffinityPolicy(Policy):
    name = "cache-affinity"

    def __init__(self, fallback: Optional[Policy] = None) -> None:
        self.fallback = fallback if fallback is not None \
            else LeastLoadedPolicy()
        #: kernel cache key -> home device index.
        self._home: Dict[tuple, int] = {}

    def select(self, batch, workers: Sequence) -> int:
        key = batch.affinity_key
        if key is None:  # eager workloads have no compiled program
            return self.fallback.select(batch, workers)
        idx = self._home.get(key)
        if idx is not None:
            return idx
        idx = self.fallback.select(batch, workers)
        self._home[key] = idx
        return idx

    def reset(self) -> None:
        self._home.clear()
        self.fallback.reset()


_POLICIES = {
    "fifo": RoundRobinPolicy,
    "round-robin": RoundRobinPolicy,
    "least-loaded": LeastLoadedPolicy,
    "cache-affinity": CacheAffinityPolicy,
}


def policy_names() -> List[str]:
    return sorted(_POLICIES)


def make_policy(policy) -> Policy:
    """Resolve a policy instance from a name or pass one through."""
    if isinstance(policy, Policy):
        return policy
    cls = _POLICIES.get(str(policy))
    if cls is None:
        raise KeyError(f"unknown scheduling policy {policy!r}; "
                       f"choose from {policy_names()}")
    return cls()
