"""Aggregated sanitizer results and their observability wiring.

A :class:`KernelSanitizeResult` captures everything the checkers found
for one sanitized kernel launch; a :class:`SanitizerReport` aggregates
results across kernels/devices, serializes to JSON (the CI artifact),
and publishes counters into a :class:`~repro.obs.metrics.MetricsRegistry`
(``sanitize_oob_lanes{surface=...}``, ``sanitize_race_conflicts`` and
``sanitize_uninit_reads`` labelled per kernel).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sanitize.race import RaceVerdict
from repro.sanitize.uninit import UninitRead


@dataclass
class KernelSanitizeResult:
    """Checker outcomes for one sanitized kernel launch."""

    kernel: str
    verdict: Optional[RaceVerdict] = None
    uninit: List[UninitRead] = field(default_factory=list)
    uninit_total: int = 0
    oob_lanes: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return ((self.verdict is None or self.verdict.race_free)
                and self.uninit_total == 0)

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "race": self.verdict.to_dict() if self.verdict else None,
            "uninit_reads": [u.to_dict() for u in self.uninit],
            "uninit_total": self.uninit_total,
            "oob_lanes": dict(self.oob_lanes),
            "clean": self.clean,
        }

    def summary(self) -> str:
        bits = []
        if self.verdict is not None:
            bits.append("race_free" if self.verdict.race_free else
                        f"RACY ({len(self.verdict.conflicts)} conflicts)")
        if self.uninit_total:
            bits.append(f"UNINIT ({self.uninit_total} lane reads)")
        if self.oob_lanes:
            oob = ", ".join(f"{k}={v}" for k, v in self.oob_lanes.items())
            bits.append(f"oob[{oob}]")
        return f"{self.kernel}: {'; '.join(bits) if bits else 'clean'}"


@dataclass
class SanitizerReport:
    """All sanitized launches of a run, ready for JSON/metrics export."""

    results: List[KernelSanitizeResult] = field(default_factory=list)

    def add(self, result: KernelSanitizeResult) -> KernelSanitizeResult:
        self.results.append(result)
        return result

    @property
    def clean(self) -> bool:
        return all(r.clean for r in self.results)

    def to_dict(self) -> dict:
        racy = sum(1 for r in self.results
                   if r.verdict is not None and not r.verdict.race_free)
        return {
            "kernels": len(self.results),
            "clean": self.clean,
            "racy": racy,
            "uninit_total": sum(r.uninit_total for r in self.results),
            "oob_lanes_total": sum(sum(r.oob_lanes.values())
                                   for r in self.results),
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    def publish(self, registry) -> None:
        """Increment sanitizer counters in an obs metrics registry."""
        for r in self.results:
            if r.verdict is not None and not r.verdict.race_free:
                registry.counter("sanitize_race_conflicts",
                                 kernel=r.kernel).inc(
                    len(r.verdict.conflicts))
            if r.uninit_total:
                registry.counter("sanitize_uninit_reads",
                                 kernel=r.kernel).inc(r.uninit_total)
            for label, lanes in r.oob_lanes.items():
                registry.counter("sanitize_oob_lanes",
                                 surface=label).inc(lanes)

    def summary(self) -> str:
        lines = [r.summary() for r in self.results]
        status = "clean" if self.clean else "FINDINGS"
        lines.append(f"sanitize: {len(self.results)} kernel(s), {status}")
        return "\n".join(lines)
