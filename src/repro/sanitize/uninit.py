"""Uninitialized-GRF-read tracking for compiled-kernel execution.

The functional executor zeroes the register file between threads, so a
kernel that reads a register it never wrote silently computes with
zeros — plausible-looking results that mask a codegen or register
allocation bug.  :class:`UninitTracker` shadows the 4 KB register file
with a per-byte validity bitmap: destination writes mark bytes valid,
source fetches check them, and execution masks are honoured so
predicated-off lanes never false-positive (a lane the predicate
disables neither reads its sources nor taints its destination).

The tracker is driven by the executor's sanitizer hooks (see
:class:`repro.sanitize.hooks.ExecSanitizer`): ``before_inst`` checks the
source operands an instruction is about to fetch, ``after_inst`` marks
the bytes it defined.  Reported bytes are marked valid immediately so a
single missing initialization produces one finding, not a cascade
through every dependent instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.isa.grf import GRF_SIZE_BYTES, RegOperand

#: cap on retained findings; the total count keeps incrementing past it.
_MAX_FINDINGS = 32


@dataclass(frozen=True)
class UninitRead:
    """One read of never-written GRF bytes by an active lane."""

    thread: object
    inst: int
    opcode: str
    reg: int
    subreg: int
    lanes: tuple

    def to_dict(self) -> dict:
        return {
            "thread": list(self.thread) if isinstance(self.thread, tuple)
            else self.thread,
            "inst": self.inst, "opcode": self.opcode,
            "reg": self.reg, "subreg": self.subreg,
            "lanes": list(self.lanes),
        }

    def __str__(self) -> str:
        return (f"uninitialized read of r{self.reg}.{self.subreg} lanes "
                f"{list(self.lanes)} by {self.opcode} (inst {self.inst}, "
                f"thread {self.thread})")


class UninitTracker:
    """Shadow validity bitmap over one thread's register file."""

    def __init__(self, num_regs: int = 128) -> None:
        self.valid = np.zeros(num_regs * GRF_SIZE_BYTES, dtype=bool)
        self.findings: List[UninitRead] = []
        self.total = 0
        self.cur_thread: object = -1

    def begin_thread(self, key) -> None:
        self.valid.fill(False)
        self.cur_thread = key

    # -- marking ----------------------------------------------------------

    def mark_range(self, start: int, nbytes: int) -> None:
        self.valid[start:start + nbytes] = True

    def mark_plan(self, idx: np.ndarray,
                  mask: Optional[np.ndarray] = None) -> None:
        """Mark a planned ``(lanes, elem_size)`` byte-index array valid."""
        if mask is None:
            self.valid[idx] = True
        else:
            self.valid[idx[np.asarray(mask, dtype=bool)]] = True

    # -- checking ---------------------------------------------------------

    def check_plan(self, idx: np.ndarray, mask: Optional[np.ndarray],
                   inst_ix: int, opcode: str, operand: RegOperand) -> None:
        """Check a planned byte-index array; report lanes whose bytes were
        never written, then mark them to suppress cascaded findings."""
        ok = self.valid[idx]
        bad = ~ok.all(axis=1) if ok.ndim > 1 else ~ok
        if mask is not None:
            bad = bad & np.asarray(mask, dtype=bool)
        if not bad.any():
            return
        self.total += int(bad.sum())
        if len(self.findings) < _MAX_FINDINGS:
            lanes = tuple(int(i) for i in np.flatnonzero(bad)[:8])
            self.findings.append(UninitRead(
                thread=self.cur_thread, inst=inst_ix, opcode=opcode,
                reg=operand.reg, subreg=operand.subreg, lanes=lanes))
        self.valid[idx[bad]] = True
