"""Cross-thread data-race detection over surface accesses.

The simulator dispatches hardware threads *sequentially*, so any
cross-thread memory dependency is silently resolved by dispatch order —
the exact class of bug that makes the grid-vectorized wide path
(:mod:`repro.isa.wide`) produce different results from sequential
dispatch, and that is undefined behaviour on real hardware.  The
:class:`RaceDetector` records per-thread read/write/atomic shadow sets
for every attached surface (buffers, images, SLM) while a kernel runs
sequentially, applies barrier-based happens-before (a barrier ends the
current *epoch*: accesses in different epochs are ordered, accesses in
the same epoch by different threads are concurrent), and emits a
:class:`RaceVerdict` naming the conflicting threads, instruction
indices, and byte ranges.

Attachment is cooperative: ``Surface`` access methods forward every
access to their ``_san_rec`` recorder when one is set, so the eager CM
intrinsics, the compiled :class:`~repro.isa.executor.FunctionalExecutor`
SEND paths, and the OpenCL SLM builtins are all covered by the same six
notification hooks without knowing about the detector.

The shadow representation exploits the sequential dispatch order:
threads are interned in first-seen order and, within an epoch, accesses
arrive in non-decreasing thread order.  Per surface and access category
the detector keeps *first-owner* and *last-owner* byte maps — a byte was
touched by two or more distinct threads exactly when its first and last
owner differ.  That turns conflict checking into a handful of vectorized
comparisons per epoch instead of per-access set algebra.

Known limit: epochs are global across the detector, so a barrier in one
work-group also appears to order *other* work-groups' accesses to shared
global surfaces.  Work-groups run sequentially in this simulator, so a
cross-group conflict split across another group's barrier can be missed;
conflicts within any single dispatch phase are always caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

#: access-category codes used throughout this module
READ, WRITE, ATOMIC = "r", "w", "a"

#: cap on reported conflicts per (surface, category-pair, epoch); a racy
#: kernel usually conflicts on huge byte ranges, so a few runs suffice.
_MAX_RUNS = 4


@dataclass(frozen=True)
class Conflict:
    """One conflicting pair of cross-thread accesses."""

    surface: str
    kind: str  # "write-write" | "read-write" | "atomic-write" | "atomic-read"
    thread_a: object
    thread_b: object
    inst_a: int
    inst_b: int
    byte_range: Tuple[int, int]
    epoch: int

    def to_dict(self) -> dict:
        return {
            "surface": self.surface, "kind": self.kind,
            "thread_a": _jsonable(self.thread_a),
            "thread_b": _jsonable(self.thread_b),
            "inst_a": self.inst_a, "inst_b": self.inst_b,
            "byte_range": list(self.byte_range), "epoch": self.epoch,
        }

    def __str__(self) -> str:
        lo, hi = self.byte_range
        return (f"{self.kind} race on {self.surface}"
                f"[{lo}:{hi}] between thread {self.thread_a} "
                f"(inst {self.inst_a}) and thread {self.thread_b} "
                f"(inst {self.inst_b}) in epoch {self.epoch}")


@dataclass
class RaceVerdict:
    """Per-kernel outcome of a sanitized sequential run."""

    race_free: bool
    conflicts: List[Conflict] = field(default_factory=list)
    threads: int = 0
    epochs: int = 1
    events: int = 0
    surfaces: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "race_free": self.race_free,
            "conflicts": [c.to_dict() for c in self.conflicts],
            "threads": self.threads, "epochs": self.epochs,
            "events": self.events, "surfaces": self.surfaces,
        }

    def __str__(self) -> str:
        if self.race_free:
            return (f"race_free ({self.threads} threads, "
                    f"{self.events} accesses, {self.epochs} epoch(s))")
        return "; ".join(str(c) for c in self.conflicts)


class _CatShadow:
    """First/last owner maps for one access category on one surface."""

    __slots__ = ("first_t", "last_t", "first_i", "last_i", "lo", "hi")

    def __init__(self, nbytes: int) -> None:
        self.first_t = np.full(nbytes, -1, dtype=np.int32)
        self.last_t = np.full(nbytes, -1, dtype=np.int32)
        self.first_i = np.zeros(nbytes, dtype=np.int32)
        self.last_i = np.zeros(nbytes, dtype=np.int32)
        self.lo = nbytes
        self.hi = 0

    @property
    def touched(self) -> bool:
        return self.hi > self.lo

    def note_slice(self, s: int, e: int, tid: int, inst: int) -> None:
        ft = self.first_t[s:e]
        fresh = ft < 0
        if fresh.any():
            ft[fresh] = tid
            self.first_i[s:e][fresh] = inst
        self.last_t[s:e] = tid
        self.last_i[s:e] = inst
        if s < self.lo:
            self.lo = s
        if e > self.hi:
            self.hi = e

    def note_bytes(self, idx: np.ndarray, tid: int, inst: int) -> None:
        if idx.size == 0:
            return
        fresh = self.first_t[idx] < 0
        if fresh.any():
            nb = idx[fresh]
            self.first_t[nb] = tid
            self.first_i[nb] = inst
        self.last_t[idx] = tid
        self.last_i[idx] = inst
        lo, hi = int(idx.min()), int(idx.max()) + 1
        if lo < self.lo:
            self.lo = lo
        if hi > self.hi:
            self.hi = hi

    def reset_epoch(self) -> None:
        if self.touched:
            self.first_t[self.lo:self.hi] = -1
            self.last_t[self.lo:self.hi] = -1
        self.lo = self.first_t.size
        self.hi = 0


class _SurfShadow:
    """Per-surface shadow state: one :class:`_CatShadow` per category."""

    __slots__ = ("label", "nbytes", "cats")

    def __init__(self, label: str, nbytes: int) -> None:
        self.label = label
        self.nbytes = nbytes
        self.cats: Dict[str, _CatShadow] = {}

    def cat(self, kind: str) -> _CatShadow:
        sh = self.cats.get(kind)
        if sh is None:
            sh = self.cats[kind] = _CatShadow(self.nbytes)
        return sh


class RaceDetector:
    """Records sequential-dispatch shadow sets and judges race freedom.

    Usage: :meth:`attach` the surfaces a kernel binds, call
    :meth:`begin_thread` before each hardware thread runs (thread keys
    may be any hashable — linear indices, grid tuples, OpenCL subgroup
    ids), :meth:`barrier` at every happens-before edge, and
    :meth:`finish` after the grid completes to obtain the verdict (this
    also detaches the recorder).
    """

    #: surfaces whose obs label marks them thread-private (the compiled
    #: path's spill scratch is zeroed per thread; accesses can never
    #: conflict across threads).
    SKIP_LABELS = ("scratch",)

    def __init__(self) -> None:
        self._shadows: Dict[int, _SurfShadow] = {}
        self._attached: list = []
        self._thread_ids: Dict[object, int] = {}
        self._thread_keys: List[object] = []
        self.cur_thread = -1
        #: current instruction index; executor hooks keep it fresh, the
        #: eager paths leave it at -1 and the per-access event ordinal is
        #: reported instead.
        self.cur_inst = -1
        self.epoch = 0
        self.events = 0
        self.conflicts: List[Conflict] = []

    # -- wiring ----------------------------------------------------------

    def attach(self, surfaces: Iterable) -> "RaceDetector":
        for surf in surfaces:
            self.attach_surface(surf)
        return self

    def attach_surface(self, surf) -> None:
        if surf is None or getattr(surf, "obs_label", "") in self.SKIP_LABELS:
            return
        if surf._san_rec is self:
            return
        surf._san_rec = self
        self._attached.append(surf)
        self._shadows[id(surf)] = _SurfShadow(
            getattr(surf, "obs_label", "surface"), surf.bytes.size)

    def detach(self) -> None:
        for surf in self._attached:
            if surf._san_rec is self:
                surf._san_rec = None
        self._attached.clear()

    # -- thread / epoch structure ----------------------------------------

    def begin_thread(self, key) -> None:
        tid = self._thread_ids.get(key)
        if tid is None:
            tid = len(self._thread_keys)
            self._thread_ids[key] = tid
            self._thread_keys.append(key)
        self.cur_thread = tid
        self.cur_inst = -1

    def barrier(self) -> None:
        """End the current epoch: accesses before and after are ordered."""
        self._finalize_epoch()
        self.epoch += 1

    # -- access notifications (called from Surface methods) ---------------

    def note_range(self, surf, kind: str, start: int, nbytes: int) -> None:
        if nbytes <= 0:
            return
        self.events += 1
        sh = self._shadows[id(surf)]
        s = max(int(start), 0)
        e = min(int(start) + int(nbytes), sh.nbytes)
        if e > s:
            sh.cat(kind).note_slice(s, e, self.cur_thread, self._inst())

    def note_offsets(self, surf, kind: str, byte_offsets, elem_size: int,
                     mask=None) -> None:
        offs = np.asarray(byte_offsets, dtype=np.int64).ravel()
        if mask is not None:
            offs = offs[np.asarray(mask, dtype=bool).ravel()]
        if offs.size == 0:
            return
        self.events += 1
        idx = (offs[:, None] + np.arange(elem_size)).ravel()
        sh = self._shadows[id(surf)]
        idx = idx[(idx >= 0) & (idx < sh.nbytes)]
        sh.cat(kind).note_bytes(idx, self.cur_thread, self._inst())

    def note_rect(self, surf, kind: str, x0: int, x1: int, y0: int, y1: int,
                  pitch: int) -> None:
        """A clamped 2D block access: rows ``[y0, y1)``, byte columns
        ``[x0, x1)`` of a surface with row ``pitch``."""
        if x1 <= x0 or y1 <= y0:
            return
        self.events += 1
        sh = self._shadows[id(surf)]
        cat = sh.cat(kind)
        tid, inst = self.cur_thread, self._inst()
        for row in range(y0, y1):
            cat.note_slice(row * pitch + x0, row * pitch + x1, tid, inst)

    def _inst(self) -> int:
        return self.cur_inst if self.cur_inst >= 0 else self.events

    # -- verdict ----------------------------------------------------------

    def finish(self) -> RaceVerdict:
        self._finalize_epoch()
        self.detach()
        return RaceVerdict(
            race_free=not self.conflicts,
            conflicts=list(self.conflicts),
            threads=len(self._thread_keys),
            epochs=self.epoch + 1,
            events=self.events,
            surfaces=[sh.label for sh in self._shadows.values()])

    def _finalize_epoch(self) -> None:
        for sh in self._shadows.values():
            self._check_surface(sh)
            for cat in sh.cats.values():
                cat.reset_epoch()

    def _check_surface(self, sh: _SurfShadow) -> None:
        r = sh.cats.get(READ)
        w = sh.cats.get(WRITE)
        a = sh.cats.get(ATOMIC)
        if w is not None and w.touched:
            # write-write: first and last writer differ
            self._report(sh, "write-write", w, w,
                         self._span_mask(w, w, lambda wf, wl, _f, _l:
                                         wf != wl))
        for kind, ca, cb in (("read-write", r, w),
                             ("atomic-write", a, w),
                             ("atomic-read", a, r)):
            if ca is None or cb is None or not ca.touched or not cb.touched:
                continue
            self._report(sh, kind, ca, cb, self._span_mask(
                ca, cb, lambda af, al, bf, bl:
                (af >= 0) & (bf >= 0) &
                ~((af == al) & (bf == bl) & (af == bf))))

    @staticmethod
    def _span_mask(ca: _CatShadow, cb: _CatShadow, rule):
        lo = min(ca.lo, cb.lo)
        hi = max(ca.hi, cb.hi)
        if hi <= lo:
            return lo, np.zeros(0, dtype=bool)
        return lo, rule(ca.first_t[lo:hi], ca.last_t[lo:hi],
                        cb.first_t[lo:hi], cb.last_t[lo:hi])

    def _report(self, sh: _SurfShadow, kind: str, ca: _CatShadow,
                cb: _CatShadow, span_mask) -> None:
        lo, mask = span_mask
        bad = np.flatnonzero(mask)
        if bad.size == 0:
            return
        # group conflicting bytes into contiguous runs and report a pair
        # of accesses per run (capped; racy kernels conflict over huge
        # ranges and one representative pair per run is enough to debug).
        breaks = np.flatnonzero(np.diff(bad) > 1)
        starts = np.concatenate(([bad[0]], bad[breaks + 1]))
        ends = np.concatenate((bad[breaks], [bad[-1]])) + 1
        for s, e in list(zip(starts, ends))[:_MAX_RUNS]:
            b0 = int(lo + s)
            ta, ia = int(ca.first_t[b0]), int(ca.first_i[b0])
            tb, ib = int(cb.last_t[b0]), int(cb.last_i[b0])
            if ta == tb:  # same endpoint thread: take the other end
                ta, ia = int(ca.last_t[b0]), int(ca.last_i[b0])
            self.conflicts.append(Conflict(
                surface=sh.label, kind=kind,
                thread_a=self._key(ta), thread_b=self._key(tb),
                inst_a=ia, inst_b=ib,
                byte_range=(int(lo + s), int(lo + e)), epoch=self.epoch))

    def _key(self, tid: int):
        if 0 <= tid < len(self._thread_keys):
            return self._thread_keys[tid]
        return tid


def _jsonable(value):
    if isinstance(value, tuple):
        return list(value)
    return value


def certify(run_fn, surfaces: Iterable,
            detector: Optional[RaceDetector] = None) -> RaceVerdict:
    """Run ``run_fn(detector)`` with ``surfaces`` attached and return the
    verdict — convenience wrapper for tests and ad-hoc certification."""
    det = detector if detector is not None else RaceDetector()
    det.attach(surfaces)
    try:
        run_fn(det)
    finally:
        verdict = det.finish()
    return verdict
