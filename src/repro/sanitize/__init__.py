"""repro.sanitize — kernel sanitizer subsystem.

Three checkers over the simulated GPU stack, all running during
*sequential* dispatch (the wide grid-vectorized path is exactly what
the verdicts guard):

- :class:`~repro.sanitize.race.RaceDetector` — cross-thread data races
  on surfaces/SLM with barrier-based happens-before; its
  :class:`~repro.sanitize.race.RaceVerdict` gates
  ``Device.run_compiled(wide=None)``'s wide-path auto-selection.
- OOB/clip sanitizer (:mod:`repro.sanitize.oob`) — counts
  silently-clamped out-of-bounds lanes per surface; strict mode raises
  :class:`~repro.memory.surfaces.OOBError`.
- :class:`~repro.sanitize.uninit.UninitTracker` — uninitialized-GRF
  reads via a shadow validity bitmap, honouring execution masks.

``python -m repro.sanitize`` runs any registered workload under all
checkers and emits a :class:`~repro.sanitize.report.SanitizerReport`
(JSON-able; the CI sanitizer job uploads it as an artifact).

The dispatch-gating default comes from :func:`default_validate`
(overridable with the ``REPRO_SANITIZE`` environment variable:
``first`` | ``always`` | ``off``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Optional

from repro.sanitize.hooks import ExecSanitizer
from repro.sanitize.oob import (  # noqa: F401  (re-exported API)
    OOBError, collect as collect_oob, set_strict, strict, strict_enabled,
)
from repro.sanitize.race import Conflict, RaceDetector, RaceVerdict
from repro.sanitize.report import KernelSanitizeResult, SanitizerReport
from repro.sanitize.uninit import UninitRead, UninitTracker

__all__ = [
    "Conflict", "ExecSanitizer", "KernelSanitizeResult", "OOBError",
    "RaceDetector", "RaceVerdict", "SanitizerReport", "UninitRead",
    "UninitTracker", "collect_oob", "current_session", "default_validate",
    "session", "set_strict", "strict", "strict_enabled",
]

#: valid Device/ServeCluster validate modes
VALIDATE_MODES = ("first", "always", "off")


def default_validate() -> str:
    """The dispatch-gating mode used when none is passed explicitly."""
    mode = os.environ.get("REPRO_SANITIZE", "first").lower()
    return mode if mode in VALIDATE_MODES else "first"


class SanitizerSession:
    """Process-wide sanitizing scope for eager (CM / OpenCL) launches.

    While a session is current, ``Device.run_cm`` and the OpenCL
    runtime attach a fresh :class:`RaceDetector` per kernel enqueue,
    feed barrier edges from the work-group scheduler, and fold each
    kernel's verdict plus per-surface OOB clip deltas into
    :attr:`report`.  Compiled launches that run sanitized-sequential
    (``validate`` gating in ``Device.run_compiled``) also append their
    results here when a session is current.
    """

    def __init__(self, strict_oob: bool = False) -> None:
        self.report = SanitizerReport()
        self.strict_oob = strict_oob
        self.race: Optional[RaceDetector] = None
        self._kernel: Optional[str] = None
        self._oob_base: Dict[int, tuple] = {}

    # -- per-kernel scope (driven by the dispatch paths) -------------------

    def begin_kernel(self, name: str, surfaces) -> RaceDetector:
        if self.race is not None:  # unfinished kernel: fold it first
            self.finish_kernel()
        self.race = RaceDetector()
        self._kernel = name
        self._oob_base = {}
        for surf in surfaces:
            self.attach_surface(surf)
        return self.race

    def attach_surface(self, surf) -> None:
        if self.race is None or surf is None:
            return
        self.race.attach_surface(surf)
        self._oob_base.setdefault(
            id(surf), (surf, int(getattr(surf, "oob_clipped_lanes", 0))))

    def finish_kernel(self) -> Optional[KernelSanitizeResult]:
        if self.race is None:
            return None
        verdict = self.race.finish()
        oob: Dict[str, int] = {}
        for surf, base in self._oob_base.values():
            delta = int(getattr(surf, "oob_clipped_lanes", 0)) - base
            if delta:
                label = getattr(surf, "obs_label", "surface")
                oob[label] = oob.get(label, 0) + delta
        result = self.report.add(KernelSanitizeResult(
            kernel=self._kernel or "kernel", verdict=verdict,
            oob_lanes=oob))
        self.race = None
        self._kernel = None
        self._oob_base = {}
        return result


_CURRENT: Optional[SanitizerSession] = None


def current_session() -> Optional[SanitizerSession]:
    return _CURRENT


@contextmanager
def session(strict_oob: bool = False):
    """Install a :class:`SanitizerSession` for the enclosed block."""
    global _CURRENT
    prev, prev_strict = _CURRENT, strict_enabled()
    sess = SanitizerSession(strict_oob=strict_oob)
    _CURRENT = sess
    if strict_oob:
        set_strict(True)
    try:
        yield sess
    finally:
        sess.finish_kernel()
        _CURRENT = prev
        set_strict(prev_strict)
