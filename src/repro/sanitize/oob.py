"""Out-of-bounds / clip sanitizer API.

The Gen media block unit *clamps* out-of-bounds block coordinates to the
surface edge and *drops* out-of-bounds writes — behaviour workloads
legitimately rely on (the paper's linear filter reads its borders
through edge replication), so the simulator cannot simply raise.
Instead every silently-clamping access path in
:mod:`repro.memory.surfaces` (block reads/writes, their ``_many`` wide
variants, and the sampler-style pixel paths) counts the lanes it
clipped or dropped into ``Surface.oob_clipped_lanes`` and keeps a small
ring of diagnostic events.

This module is the user-facing switchboard over that counting:

- **counting mode** (default): clips accumulate per surface and flow
  into ``repro.obs`` metrics (``sanitize_oob_lanes{surface=...}``) and
  ``Device.report()``.
- **strict mode** (:func:`strict` / :func:`set_strict`): the next
  clipped access raises :class:`OOBError` (a subclass of
  ``IndexError``) with a source-level diagnostic naming the surface,
  the access kind, and the offending coordinates.

The counters live inline in ``surfaces.py`` (no import cycle: surfaces
never import this package); this module re-exports the error type and
provides collection helpers.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable

from repro.memory import surfaces as _surfaces
from repro.memory.surfaces import OOBError

__all__ = ["OOBError", "strict", "set_strict", "strict_enabled",
           "collect", "reset"]


def set_strict(enabled: bool) -> None:
    """Globally toggle strict OOB mode (raise instead of count)."""
    _surfaces.STRICT_OOB = bool(enabled)


def strict_enabled() -> bool:
    return _surfaces.STRICT_OOB


@contextmanager
def strict():
    """Context manager: strict OOB mode for the enclosed block."""
    prev = _surfaces.STRICT_OOB
    _surfaces.STRICT_OOB = True
    try:
        yield
    finally:
        _surfaces.STRICT_OOB = prev


def collect(surfs: Iterable) -> Dict[str, int]:
    """Per-surface clipped-lane counts (surfaces with zero clips omitted)."""
    out: Dict[str, int] = {}
    for surf in surfs:
        lanes = getattr(surf, "oob_clipped_lanes", 0)
        if lanes:
            label = getattr(surf, "obs_label", "surface")
            out[label] = out.get(label, 0) + int(lanes)
    return out


def reset(surfs: Iterable) -> None:
    """Zero the clip counters and diagnostic events on ``surfs``."""
    for surf in surfs:
        surf.oob_clipped_lanes = 0
        surf.oob_events = []
