"""Executor-side sanitizer hooks.

:class:`ExecSanitizer` is the object a sequential
:class:`~repro.isa.executor.FunctionalExecutor` (or its tracing
subclass) carries in its ``san`` slot.  The executor calls
``before_inst`` / ``after_inst`` around every instruction; the hooks

- keep the attached :class:`~repro.sanitize.race.RaceDetector`'s
  current instruction index fresh and forward BARRIER opcodes as
  happens-before edges, and
- drive the :class:`~repro.sanitize.uninit.UninitTracker` by checking
  the exact byte-index plans the executor itself uses for operand
  access (``_src_plan`` / ``_dst_plan``), so validity tracking follows
  regioning, strides, and execution masks bit-for-bit.

The wide executor never carries hooks — sanitized launches are always
sequential (that is the point: the verdict decides whether the wide
path is safe).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.isa.executor import _contiguous_region
from repro.isa.grf import GRF_SIZE_BYTES, RegOperand
from repro.isa.instructions import Immediate, MsgKind, Opcode
from repro.isa.dtypes import UD
from repro.sanitize.race import RaceDetector
from repro.sanitize.uninit import UninitTracker


class ExecSanitizer:
    """Per-launch bundle of executor-driven checkers."""

    def __init__(self, race: Optional[RaceDetector] = None,
                 uninit: Optional[UninitTracker] = None) -> None:
        self.race = race
        self.uninit = uninit

    def begin_thread(self, key) -> None:
        if self.race is not None:
            self.race.begin_thread(key)
        if self.uninit is not None:
            self.uninit.begin_thread(key)

    def mark_grf_valid(self, start: int, nbytes: int) -> None:
        """Host-seeded GRF bytes (scalar kernel parameters) are defined."""
        if self.uninit is not None:
            self.uninit.mark_range(start, nbytes)

    # -- executor hooks ----------------------------------------------------

    def before_inst(self, ex, inst) -> None:
        # instructions_executed was already incremented for this inst
        inst_ix = ex.instructions_executed - 1
        if self.race is not None:
            self.race.cur_inst = inst_ix
            if inst.opcode is Opcode.BARRIER:
                self.race.barrier()
        if self.uninit is not None:
            self._check_sources(ex, inst, inst_ix)

    def after_inst(self, ex, inst) -> None:
        if self.uninit is not None:
            self._mark_dest(ex, inst)

    # -- uninit: source checks --------------------------------------------

    def _check_sources(self, ex, inst, inst_ix: int) -> None:
        op = inst.opcode
        if op is Opcode.NOP or op is Opcode.BARRIER:
            return
        un = self.uninit
        opname = op.name.lower()
        if op is Opcode.SEND:
            self._check_send_sources(ex, inst, inst_ix, opname)
            return
        n = inst.exec_size
        pred = ex._pred_mask(inst)
        act = ex._cf_active_lanes(inst)
        if op is Opcode.SEL and pred is not None:
            # each lane reads exactly one source: src0 where the
            # predicate is set, src1 where it is not; inside divergent
            # control flow only the CF-active lanes read at all.
            for src, lane_mask in ((inst.srcs[0], pred),
                                   (inst.srcs[1], ~pred)):
                if act is not None:
                    lane_mask = lane_mask & act
                if isinstance(src, RegOperand):
                    un.check_plan(ex._src_plan(src, n), lane_mask,
                                  inst_ix, opname, src)
            return
        mask = ex._exec_mask(inst)
        for src in inst.srcs:
            if isinstance(src, RegOperand):
                un.check_plan(ex._src_plan(src, n), mask,
                              inst_ix, opname, src)

    def _check_send_sources(self, ex, inst, inst_ix: int,
                            opname: str) -> None:
        msg = inst.msg
        if msg is None:
            return
        un = self.uninit
        kind = msg.kind
        base = msg.payload_reg * GRF_SIZE_BYTES
        for addr in (msg.addr0, msg.addr1):
            if isinstance(addr, RegOperand):
                un.check_plan(ex._src_plan(addr, 1), None,
                              inst_ix, opname, addr)
        if kind is MsgKind.MEDIA_BLOCK_WRITE:
            self._check_payload(ex, inst_ix, opname, msg.payload_reg, base,
                                msg.block_width * msg.block_height)
        elif kind is MsgKind.OWORD_BLOCK_WRITE:
            self._check_payload(ex, inst_ix, opname, msg.payload_reg, base,
                                msg.payload_bytes)
        elif kind in (MsgKind.GATHER, MsgKind.SCATTER, MsgKind.ATOMIC):
            n = inst.exec_size
            mask = ex._exec_mask(inst)
            addr_op = RegOperand(msg.addr_reg, 0, UD,
                                 region=_contiguous_region(n))
            un.check_plan(ex._src_plan(addr_op, n), mask,
                          inst_ix, opname, addr_op)
            if kind is MsgKind.SCATTER or (
                    kind is MsgKind.ATOMIC and msg.payload_bytes):
                elem_size = msg.elem_dtype.size
                idx = (base + np.arange(n)[:, None] * elem_size
                       + np.arange(elem_size))
                un.check_plan(idx, mask, inst_ix, opname,
                              RegOperand(msg.payload_reg, 0, msg.elem_dtype))

    def _check_payload(self, ex, inst_ix: int, opname: str, reg: int,
                       base: int, nbytes: int) -> None:
        # block-write payloads are not lane-maskable: check every byte.
        idx = np.arange(base, base + nbytes)[None, :]
        self.uninit.check_plan(idx, None, inst_ix, opname,
                               RegOperand(reg, 0, UD))

    # -- uninit: destination marking --------------------------------------

    def _mark_dest(self, ex, inst) -> None:
        op = inst.opcode
        un = self.uninit
        if op is Opcode.SEND:
            msg = inst.msg
            if msg is None:
                return
            base = msg.payload_reg * GRF_SIZE_BYTES
            kind = msg.kind
            if kind is MsgKind.MEDIA_BLOCK_READ:
                un.mark_range(base, msg.block_width * msg.block_height)
            elif kind is MsgKind.OWORD_BLOCK_READ:
                un.mark_range(base, msg.payload_bytes)
            elif kind is MsgKind.GATHER:
                # inactive lanes receive zeros from the surface gather,
                # so the whole landing pad is defined.
                un.mark_range(base, inst.exec_size * msg.elem_dtype.size)
            elif kind is MsgKind.ATOMIC and inst.dst is not None:
                # the old-value payload lands only in active lanes;
                # disabled lanes keep their previous (possibly
                # undefined) contents.
                un.mark_plan(ex._dst_plan(inst.dst, inst.exec_size),
                             ex._exec_mask(inst))
            return
        dst = inst.dst
        if dst is None or isinstance(dst, Immediate):
            return
        n = inst.exec_size
        if op is Opcode.CMP or op is Opcode.SEL:
            # CMP's bool-vector dst and SEL both write every CF-active
            # lane (SEL's predicate only chooses the source; outside
            # divergent control flow that is every lane).
            un.mark_plan(ex._dst_plan(dst, n), ex._cf_active_lanes(inst))
            return
        un.mark_plan(ex._dst_plan(dst, n), ex._exec_mask(inst))
