"""``python -m repro.sanitize`` — run workloads under all checkers.

Runs a corpus of registered workloads (the Table I kernels on both the
CM and OpenCL paths, plus the serving layer's compiled kernels) inside
a :func:`repro.sanitize.session`, printing each kernel's verdict and
exiting non-zero if any checker found something.  The JSON report
(``--json``) is the artifact the CI sanitizer job uploads.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

import repro.sanitize as sanitize


def _table1_runs() -> Dict[str, Callable]:
    """Table I workloads at quick sizes, CM and OpenCL sides."""
    from repro.workloads import conv, gemm, stencil, systolic

    g = stencil.make_grid(64, 32)
    img, w3 = conv.make_conv3x3_inputs(64, 32)
    acts, w1 = conv.make_conv1x1_inputs(hw=128, cin=32, cout=32)
    sa, sb, sc = systolic.make_inputs(64, 32, 32)
    ga, gb, gc = gemm.make_inputs(64, 32, 32)
    return {
        "table1.stencil2d.cm": lambda d: stencil.run_cm(d, g),
        "table1.stencil2d.ocl": lambda d: stencil.run_ocl(d, g),
        "table1.conv3x3.cm": lambda d: conv.run_cm_conv3x3(d, img, w3),
        "table1.conv3x3.ocl": lambda d: conv.run_ocl_conv3x3(d, img, w3),
        "table1.conv1x1.cm": lambda d: conv.run_cm_conv1x1(d, acts, w1),
        "table1.conv1x1.ocl": lambda d: conv.run_ocl_conv1x1(d, acts, w1),
        "table1.systolic.cm": lambda d: systolic.run_cm(d, sa, sb, sc),
        "table1.systolic.ocl": lambda d: systolic.run_ocl(d, sa, sb, sc),
        "table1.sgemm.cm": lambda d: gemm.run_cm_sgemm(d, ga, gb, gc),
        "table1.sgemm.ocl": lambda d: gemm.run_ocl_sgemm(d, ga, gb, gc),
    }


def _serve_runs() -> Dict[str, Callable]:
    """The serving registry's compiled kernels, sanitized-sequential."""
    from repro.serve.workloads import get_workload, workload_keys

    def run_launch(key):
        def run(device):
            launch = get_workload(key).make({"seed": 11})
            surfaces, scalars = launch.bind(device)
            kern = device.compile(launch.body, launch.name, launch.sig,
                                  launch.scalar_params)
            device.run_compiled(kern, launch.grid, surfaces,
                                scalars=scalars, name=launch.name,
                                validate="always")
            if launch.finish is not None:
                launch.finish(surfaces)
        return run

    return {f"serve.{key}": run_launch(key)
            for key in workload_keys()
            if get_workload(key).kind == "compiled"}


def workload_registry() -> Dict[str, Callable]:
    reg = _table1_runs()
    reg.update(_serve_runs())
    return reg


def run_corpus(names, strict_oob: bool = False,
               quiet: bool = False) -> sanitize.SanitizerReport:
    from repro.sim.device import Device

    registry = workload_registry()
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise KeyError(f"unknown workload(s) {unknown}; "
                       f"choose from {sorted(registry)}")
    report = sanitize.SanitizerReport()
    for name in names:
        device = Device()
        with sanitize.session(strict_oob=strict_oob) as sess:
            registry[name](device)
        # compiled launches fold into the session via the device path;
        # eager/OCL kernels are recorded by the session itself.
        for result in sess.report.results:
            report.add(result)
        if not quiet:
            for result in sess.report.results:
                print(f"[{name}] {result.summary()}")
    return report


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize",
        description="Run registered workloads under the race, OOB and "
                    "uninit-GRF checkers.")
    parser.add_argument("--workloads", metavar="K1,K2", default=None,
                        help="comma-separated subset (default: all)")
    parser.add_argument("--strict-oob", action="store_true",
                        help="raise on any clipped out-of-bounds lane "
                             "instead of counting")
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the SanitizerReport as JSON "
                             "('-' for stdout)")
    parser.add_argument("--list", action="store_true",
                        help="list runnable workloads and exit")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    registry = workload_registry()
    if args.list:
        for name in sorted(registry):
            print(name)
        return 0
    names = (args.workloads.split(",") if args.workloads
             else sorted(registry))
    report = run_corpus(names, strict_oob=args.strict_oob,
                        quiet=args.quiet)
    if args.json == "-":
        sys.stdout.write(report.to_json() + "\n")
    elif args.json:
        report.write_json(args.json)
    if not args.quiet:
        print(report.summary())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
