"""OpenCL memory operations: global/SLM access, images, subgroup extensions.

Global buffer access is per-work-item (gather/scatter); coalescing is
modeled by charging unique cache lines per message, so a subgroup reading
16 consecutive dwords costs one line while a strided read costs 16.  The
``cl_intel_subgroups`` block read/write and ``cl_intel_media_block_io``
extensions provide the coalesced block messages the paper's tuned
baselines use — at the price of AoS-distributed data that needs shuffle
moves to rearrange (modeled in :class:`MediaBlock`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cm.dtypes import as_cm_dtype
from repro.isa.dtypes import F, UB, UD
from repro.memory.slm import (
    ATOMIC_OPS_PER_CYCLE, SharedLocalMemory, bank_conflict_cycles,
)
from repro.memory.surfaces import Image2DSurface, Surface
from repro.ocl.simt import SimtValue
from repro.sim import context as ctx
from repro.sim.trace import MemKind


def _lane_mask(mask) -> Optional[np.ndarray]:
    if mask is None:
        return None
    if isinstance(mask, SimtValue):
        return mask.vals.astype(bool)
    return np.asarray(mask, dtype=bool)


def _byte_offsets(index: SimtValue, elem_size: int) -> np.ndarray:
    return index.vals.astype(np.int64) * elem_size


# -- global buffer access ------------------------------------------------------


def load(buffer: Surface, index: SimtValue, dtype=UD, mask=None) -> SimtValue:
    """Per-work-item load ``buffer[index]`` (element index)."""
    dt = as_cm_dtype(dtype)
    m = _lane_mask(mask)
    offs = _byte_offsets(index, dt.size)
    data = buffer.gather(offs, dt, mask=m)
    lines, new = buffer.mark_lines_offsets(offs, dt.size, mask=m)
    ev = ctx.emit_memory(MemKind.GATHER, nbytes=index.width * dt.size,
                         lines=lines, dram_lines=new,
                         surface=buffer.obs_label)
    out = SimtValue(data, dt)
    out._dep = ev
    return out


def store(buffer: Surface, index: SimtValue, value: SimtValue,
          mask=None) -> None:
    """Per-work-item store ``buffer[index] = value``."""
    m = _lane_mask(mask)
    offs = _byte_offsets(index, value.dtype.size)
    buffer.scatter(offs, value.vals, mask=m)
    lines, new = buffer.mark_lines_offsets(offs, value.dtype.size, mask=m)
    ctx.emit_memory(MemKind.SCATTER, nbytes=value.width * value.dtype.size,
                    lines=lines, dram_lines=new, is_read=False,
                    surface=buffer.obs_label)


def vload(buffer: Surface, width: int, index: SimtValue, dtype=UD,
          mask=None) -> list:
    """``vloadN``: each work-item loads ``width`` consecutive elements
    starting at ``index*width``; one (wider) gather message.  Returns one
    SimtValue per vector component."""
    dt = as_cm_dtype(dtype)
    m = _lane_mask(mask)
    base = index.vals.astype(np.int64) * width
    all_offs = ((base[:, None] + np.arange(width)) * dt.size).ravel()
    all_mask = None if m is None else np.repeat(m, width)
    lines, new = buffer.mark_lines_offsets(all_offs, dt.size, mask=all_mask)
    comps = [buffer.gather((base + c) * dt.size, dt, mask=m)
             for c in range(width)]
    n = index.width * width
    ev = ctx.emit_memory(MemKind.GATHER, nbytes=n * dt.size,
                         lines=lines, dram_lines=new,
                         surface=buffer.obs_label)
    out = []
    for c in range(width):
        v = SimtValue(comps[c], dt)
        v._dep = ev
        out.append(v)
    return out


def vstore(buffer: Surface, width: int, index: SimtValue, values: list,
           mask=None) -> None:
    """``vstoreN``: the scatter counterpart of :func:`vload`."""
    m = _lane_mask(mask)
    base = index.vals.astype(np.int64) * width
    dt = values[0].dtype
    all_offs = ((base[:, None] + np.arange(width)) * dt.size).ravel()
    all_mask = None if m is None else np.repeat(m, width)
    lines, new = buffer.mark_lines_offsets(all_offs, dt.size, mask=all_mask)
    for c, v in enumerate(values):
        buffer.scatter((base + c) * dt.size,
                       v.vals.astype(dt.np_dtype, copy=False), mask=m)
    n = index.width * width
    ctx.emit_memory(MemKind.SCATTER, nbytes=n * dt.size,
                    lines=lines, dram_lines=new, is_read=False,
                    surface=buffer.obs_label)


def load_uniform(buffer: Surface, index: int, dtype=UD):
    """A uniform scalar load (the compiler emits one scalar message)."""
    dt = as_cm_dtype(dtype)
    data = buffer.gather(np.asarray([index * dt.size]), dt)
    lines, new = buffer.mark_lines_range(index * dt.size, dt.size)
    ev = ctx.emit_memory(MemKind.GATHER, nbytes=dt.size, lines=lines,
                         dram_lines=new, surface=buffer.obs_label)
    ctx.consume(ev)
    v = data[0]
    return float(v) if dt.is_float else int(v)


# -- shared local memory --------------------------------------------------------


def slm_load(slm: SharedLocalMemory, index: SimtValue, dtype=UD,
             mask=None) -> SimtValue:
    dt = as_cm_dtype(dtype)
    m = _lane_mask(mask)
    offs = _byte_offsets(index, dt.size)
    data = slm.gather(offs, dt, mask=m)
    ev = ctx.emit_memory(MemKind.SLM_READ, nbytes=index.width * dt.size,
                         slm_cycles=bank_conflict_cycles(offs, mask=m))
    out = SimtValue(data, dt)
    out._dep = ev
    return out


def slm_store(slm: SharedLocalMemory, index: SimtValue, value: SimtValue,
              mask=None) -> None:
    m = _lane_mask(mask)
    offs = _byte_offsets(index, value.dtype.size)
    slm.scatter(offs, value.vals, mask=m)
    ctx.emit_memory(MemKind.SLM_WRITE, nbytes=value.width * value.dtype.size,
                    slm_cycles=bank_conflict_cycles(offs, mask=m),
                    is_read=False)


# -- atomics ------------------------------------------------------------------


def _slm_atomic(slm: SharedLocalMemory, op: str, index: SimtValue,
                operand: Optional[SimtValue], dtype, mask) -> SimtValue:
    dt = as_cm_dtype(dtype)
    m = _lane_mask(mask)
    offs = _byte_offsets(index, dt.size)
    vals = operand.vals.astype(dt.np_dtype) if operand is not None else None
    old = slm.atomic(op, offs, vals, dt, mask=m)
    cycles = bank_conflict_cycles(offs, mask=m, same_address_broadcast=False,
                                  ops_per_cycle=ATOMIC_OPS_PER_CYCLE)
    ev = ctx.emit_memory(MemKind.SLM_ATOMIC, nbytes=index.width * dt.size,
                         slm_cycles=cycles)
    out = SimtValue(old, dt)
    out._dep = ev
    return out


def atomic_inc_slm(slm: SharedLocalMemory, index: SimtValue,
                   mask=None) -> SimtValue:
    return _slm_atomic(slm, "inc", index, None, UD, mask)


def atomic_add_slm(slm: SharedLocalMemory, index: SimtValue,
                   value: SimtValue, mask=None) -> SimtValue:
    return _slm_atomic(slm, "add", index, value, value.dtype, mask)


def _global_atomic(buffer: Surface, op: str, index: SimtValue,
                   operand: Optional[SimtValue], dtype, mask) -> SimtValue:
    dt = as_cm_dtype(dtype)
    m = _lane_mask(mask)
    offs = _byte_offsets(index, dt.size)
    vals = operand.vals.astype(dt.np_dtype) if operand is not None else None
    old = buffer.atomic(op, offs, vals, dt, mask=m)
    lines, new = buffer.mark_lines_offsets(offs, dt.size, mask=m)
    ev = ctx.emit_memory(MemKind.ATOMIC, nbytes=index.width * dt.size,
                         lines=lines, dram_lines=new,
                         surface=buffer.obs_label)
    thread = ctx.current()
    if thread is not None:
        active = offs if m is None else offs[m]
        thread.trace.atomic_global(active // 4, surface_id=id(buffer))
    out = SimtValue(old, dt)
    out._dep = ev
    return out


def atomic_inc_global(buffer: Surface, index: SimtValue, mask=None) -> SimtValue:
    return _global_atomic(buffer, "inc", index, None, UD, mask)


def atomic_add_global(buffer: Surface, index: SimtValue, value: SimtValue,
                      mask=None) -> SimtValue:
    return _global_atomic(buffer, "add", index, value, value.dtype, mask)


def atomic_min_global(buffer: Surface, index: SimtValue, value: SimtValue,
                      mask=None) -> SimtValue:
    return _global_atomic(buffer, "min", index, value, value.dtype, mask)


def atomic_max_global(buffer: Surface, index: SimtValue, value: SimtValue,
                      mask=None) -> SimtValue:
    return _global_atomic(buffer, "max", index, value, value.dtype, mask)


# -- images -------------------------------------------------------------------


def read_imagef(image: Image2DSurface, x: SimtValue, y: SimtValue,
                mask=None) -> Tuple[SimtValue, ...]:
    """Sampler read returning per-channel floats (coords clamped).

    One message per subgroup; the sampler fetches one texel per lane and
    the image unit converts the 8-bit channels to float.  To keep CM and
    OpenCL kernels numerically identical, channels are returned
    de-normalized (0..255) rather than 0..1.
    """
    m = _lane_mask(mask)
    pixels = image.read_pixels(x.vals.astype(np.int64), y.vals.astype(np.int64))
    xs = np.clip(x.vals.astype(np.int64), 0, image.width - 1)
    ys = np.clip(y.vals.astype(np.int64), 0, image.height - 1)
    offs = ys * image.pitch + xs * image.bytes_per_pixel
    lines, new = image.mark_lines_offsets(offs, image.bytes_per_pixel, mask=m)
    ev = ctx.emit_memory(
        MemKind.SAMPLER,
        nbytes=x.width * image.bytes_per_pixel,
        lines=lines, dram_lines=new,
        l3_bytes=x.width * image.bytes_per_pixel,
        texels=x.width if m is None else int(np.count_nonzero(m)),
        surface=image.obs_label)
    channels = []
    for c in range(4):
        if c < image.bytes_per_pixel:
            ch = SimtValue(pixels[:, c].astype(F.np_dtype), F)
        else:
            ch = SimtValue(np.zeros(x.width, dtype=F.np_dtype), F)
        ch._dep = ev
        channels.append(ch)
    return tuple(channels)


def write_imageui(image: Image2DSurface, x: SimtValue, y: SimtValue,
                  channels: Tuple[SimtValue, ...], mask=None) -> None:
    """Image write of per-channel integer values (one scatter message)."""
    m = _lane_mask(mask)
    n = x.width
    raw = np.zeros((n, image.bytes_per_pixel), dtype=np.uint8)
    for c in range(image.bytes_per_pixel):
        if c < len(channels):
            raw[:, c] = np.clip(channels[c].vals, 0, 255).astype(np.uint8)
    xs = x.vals.astype(np.int64)
    ys = y.vals.astype(np.int64)
    if m is not None:
        xs, ys, raw = xs[m], ys[m], raw[m]
    image.write_pixels(xs, ys, raw)
    offs = ys * image.pitch + xs * image.bytes_per_pixel
    lines, new = image.mark_lines_offsets(offs, image.bytes_per_pixel)
    ctx.emit_memory(MemKind.IMAGE_WRITE, nbytes=n * image.bytes_per_pixel,
                    lines=lines, dram_lines=new, is_read=False,
                    surface=image.obs_label)


# -- cl_intel_subgroups ---------------------------------------------------------


def sub_group_shuffle(val: SimtValue, idx) -> SimtValue:
    """``intel_sub_group_shuffle``: read another lane's value.

    Dynamic lane indices lower to register-indirect moves (2 instructions);
    this is the shuffle cost the paper notes the OpenCL compiler cannot
    optimize away.
    """
    if isinstance(idx, SimtValue):
        lanes = idx.vals.astype(np.int64) % val.width
        ctx.emit_alu(val.width, val.dtype, inst_factor=2)
    else:
        lanes = np.full(val.width, int(idx) % val.width)
        ctx.emit_alu(val.width, val.dtype)
    return SimtValue(val.vals[lanes].copy(), val.dtype)


def sub_group_broadcast(val: SimtValue, lane: int) -> SimtValue:
    ctx.emit_alu(val.width, val.dtype)
    return SimtValue(np.full(val.width, val.vals[int(lane)],
                             dtype=val.dtype.np_dtype), val.dtype)


def _sub_group_reduce(val: SimtValue, np_fn) -> SimtValue:
    width = val.width // 2
    while width >= 1:
        ctx.emit_alu(width, val.dtype)
        width //= 2
    out = np_fn(val.vals)
    return SimtValue(np.full(val.width, out, dtype=val.dtype.np_dtype),
                     val.dtype)


def sub_group_reduce_add(val: SimtValue) -> SimtValue:
    return _sub_group_reduce(val, np.sum)


def sub_group_reduce_min(val: SimtValue) -> SimtValue:
    return _sub_group_reduce(val, np.min)


def sub_group_reduce_max(val: SimtValue) -> SimtValue:
    return _sub_group_reduce(val, np.max)


def intel_sub_group_block_read(buffer: Surface, elem_offset: int,
                               dtype=UD) -> SimtValue:
    """Coalesced block read: lane ``i`` gets element ``elem_offset + i``."""
    dt = as_cm_dtype(dtype)
    info_width = _subgroup_width()
    nbytes = info_width * dt.size
    data = buffer.read_linear(elem_offset * dt.size, nbytes).view(dt.np_dtype)
    lines, new = buffer.mark_lines_range(elem_offset * dt.size, nbytes)
    ev = ctx.emit_memory(MemKind.OWORD_READ, nbytes=nbytes,
                         lines=lines, dram_lines=new, l3_bytes=nbytes,
                         surface=buffer.obs_label)
    out = SimtValue(data.copy(), dt)
    out._dep = ev
    return out


def intel_sub_group_block_read_rows(buffer: Surface, elem_offset: int,
                                    rows: int, pitch_elems: int,
                                    dtype=UD) -> list:
    """A tile of ``rows`` subgroup block reads (``row stride pitch_elems``).

    OpenCL buffers have no 2D block message: every row is its own
    ``intel_sub_group_block_read`` with its own address setup — the
    amortization CM's media block read provides and this cannot.
    Returns one SimtValue per row.
    """
    dt = as_cm_dtype(dtype)
    width = _subgroup_width()
    out = []
    lines = new = 0
    for r in range(rows):
        off = (elem_offset + r * pitch_elems) * dt.size
        ln, nw = buffer.mark_lines_range(off, width * dt.size)
        lines += ln
        new += nw
        data = buffer.read_linear(off, width * dt.size).view(dt.np_dtype)
        out.append(SimtValue(data.copy(), dt))
    nbytes = rows * width * dt.size
    # Per-message header setup beyond the first (same rule as CM's
    # multi-message block transfers).
    ctx.emit_scalar(2 * (rows - 1)) if rows > 1 else None
    ev = ctx.emit_memory(MemKind.OWORD_READ, nbytes=nbytes, lines=lines,
                         dram_lines=new, l3_bytes=nbytes, msgs=rows,
                         surface=buffer.obs_label)
    for v in out:
        v._dep = ev
    return out


def intel_sub_group_block_write(buffer: Surface, elem_offset: int,
                                value: SimtValue) -> None:
    nbytes = value.width * value.dtype.size
    buffer.write_linear(elem_offset * value.dtype.size,
                        value.vals.astype(value.dtype.np_dtype, copy=False))
    lines, new = buffer.mark_lines_range(elem_offset * value.dtype.size, nbytes)
    ctx.emit_memory(MemKind.OWORD_WRITE, nbytes=nbytes,
                    lines=lines, dram_lines=new, l3_bytes=nbytes,
                    is_read=False, surface=buffer.obs_label)


def _subgroup_width() -> int:
    from repro.ocl.builtins import _info

    return _info().simd


class MediaBlock:
    """Result of ``cl_intel_media_block_io`` reads.

    The hardware distributes the raw block across the subgroup's lanes in
    array-of-structures order; any SoA view a kernel needs costs shuffle
    moves (``gather_row``), which the SIMT compiler cannot remove — this
    is the layout tax of Section III.
    """

    def __init__(self, rows: np.ndarray, width: int) -> None:
        self._rows = rows  # (height, width_bytes) uint8
        self._width = width  # subgroup width
        self._dep = None

    def gather_row(self, row: int, byte_indices) -> SimtValue:
        """Shuffle bytes of one block row into a SoA lane vector."""
        idx = np.asarray(byte_indices, dtype=np.int64)
        if idx.size != self._width:
            raise ValueError(
                f"gather of {idx.size} bytes != subgroup width {self._width}")
        # Register-indirect shuffle: 2 instructions per gathered vector.
        if self._dep is not None:
            ctx.consume(self._dep)
        ctx.emit_alu(self._width, UB, inst_factor=2)
        return SimtValue(self._rows[row, idx].copy().astype(UB.np_dtype), UB)

    @property
    def height(self) -> int:
        return self._rows.shape[0]

    @property
    def width_bytes(self) -> int:
        return self._rows.shape[1]


def intel_media_block_read(image: Image2DSurface, x: int, y: int,
                           width_bytes: int, height: int) -> MediaBlock:
    """2D media block read (raw bytes, clamped at edges)."""
    block = image.read_block(int(x), int(y), width_bytes, height)
    lines, new = image.mark_lines_block2d(int(x), int(y), width_bytes,
                                          height, image.pitch)
    messages = -(-width_bytes // 32) * -(-height // 8)
    ev = ctx.emit_memory(
        MemKind.BLOCK2D_READ, nbytes=width_bytes * height,
        lines=lines, dram_lines=new, l3_bytes=width_bytes * height,
        msgs=messages, surface=image.obs_label)
    mb = MediaBlock(block, _subgroup_width())
    mb._dep = ev
    return mb


def intel_media_block_write(image: Image2DSurface, x: int, y: int,
                            rows: np.ndarray) -> None:
    """2D media block write of raw bytes assembled by the kernel."""
    rows = np.ascontiguousarray(rows, dtype=np.uint8)
    height, width_bytes = rows.shape
    image.write_block(int(x), int(y), width_bytes, height, rows)
    lines, new = image.mark_lines_block2d(int(x), int(y), width_bytes,
                                          height, image.pitch)
    messages = -(-width_bytes // 32) * -(-height // 8)
    ctx.emit_memory(
        MemKind.BLOCK2D_WRITE, nbytes=width_bytes * height,
        lines=lines, dram_lines=new, l3_bytes=width_bytes * height,
        msgs=messages, is_read=False, surface=image.obs_label)
