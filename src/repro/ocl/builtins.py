"""OpenCL work-item builtins and math functions.

These read the subgroup execution state installed by
:mod:`repro.ocl.runtime` on the current thread context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.cm.dtypes import as_cm_dtype, convert_values
from repro.isa.dtypes import F, UD
from repro.memory.slm import SharedLocalMemory
from repro.ocl.simt import SimtValue
from repro.sim import context as ctx

#: Sentinel yielded by kernels at barrier points.
BARRIER = object()


@dataclass
class SubgroupInfo:
    """Execution state of one subgroup (= one Gen hardware thread)."""

    simd: int
    global_ids: Tuple[np.ndarray, ...]
    local_ids: Tuple[np.ndarray, ...]
    group_ids: Tuple[int, ...]
    global_size: Tuple[int, ...]
    local_size: Tuple[int, ...]
    slm: Optional[SharedLocalMemory]
    subgroup_id: int = 0


def _info() -> SubgroupInfo:
    thread = ctx.require()
    info = getattr(thread, "ocl_info", None)
    if info is None:
        raise RuntimeError("not inside an OpenCL NDRange kernel")
    return info


def get_sub_group_size() -> int:
    return _info().simd


def get_sub_group_local_id() -> SimtValue:
    info = _info()
    return SimtValue(np.arange(info.simd, dtype=UD.np_dtype), UD)


def get_global_id(dim: int) -> SimtValue:
    info = _info()
    if dim >= len(info.global_ids):
        return SimtValue(np.zeros(info.simd, dtype=UD.np_dtype), UD)
    return SimtValue(info.global_ids[dim].astype(UD.np_dtype), UD)


def get_local_id(dim: int) -> SimtValue:
    info = _info()
    if dim >= len(info.local_ids):
        return SimtValue(np.zeros(info.simd, dtype=UD.np_dtype), UD)
    return SimtValue(info.local_ids[dim].astype(UD.np_dtype), UD)


def get_group_id(dim: int) -> int:
    info = _info()
    return info.group_ids[dim] if dim < len(info.group_ids) else 0


def get_global_size(dim: int) -> int:
    info = _info()
    return info.global_size[dim] if dim < len(info.global_size) else 1


def get_local_size(dim: int) -> int:
    info = _info()
    return info.local_size[dim] if dim < len(info.local_size) else 1


def get_num_groups(dim: int) -> int:
    return get_global_size(dim) // get_local_size(dim)


def barrier():
    """Work-group barrier.  Kernels must ``yield ocl.barrier()``."""
    thread = ctx.require()
    thread.trace.barrier()
    return BARRIER


# -- uniform helpers ---------------------------------------------------------
#
# OpenCL has no "read a lane's value on the host" primitive; a kernel that
# needs a uniform trip count from per-lane data pays a subgroup reduction.
# These helpers model that (log2 tree of SIMD ops) and return a Python
# scalar usable in uniform control flow.


def _uniform_reduce(val: SimtValue, np_fn):
    width = val.width // 2
    while width >= 1:
        ctx.emit_alu(width, val.dtype)
        width //= 2
    return np_fn(val.vals)


def uniform_max(val: SimtValue):
    out = _uniform_reduce(val, np.max)
    return float(out) if val.dtype.is_float else int(out)


def uniform_min(val: SimtValue):
    out = _uniform_reduce(val, np.min)
    return float(out) if val.dtype.is_float else int(out)


def uniform_any(val: SimtValue) -> bool:
    return bool(_uniform_reduce(val, np.any))


# -- math / misc --------------------------------------------------------------


def _unary_math(x: SimtValue, np_fn) -> SimtValue:
    dt = x.dtype if x.dtype.is_float else F
    vals = convert_values(x.vals, dt)
    ctx.emit_alu(x.width, dt, is_math=True)
    return SimtValue(np_fn(vals).astype(dt.np_dtype), dt)


def native_sqrt(x: SimtValue) -> SimtValue:
    return _unary_math(x, np.sqrt)


def native_rsqrt(x: SimtValue) -> SimtValue:
    return _unary_math(x, lambda v: 1.0 / np.sqrt(v))


def native_recip(x: SimtValue) -> SimtValue:
    return _unary_math(x, lambda v: 1.0 / v)


def _binary_sel(a, b, np_fn) -> SimtValue:
    base = a if isinstance(a, SimtValue) else b
    av, a_dt = base._coerce(a)
    bv, b_dt = base._coerce(b)
    from repro.cm.dtypes import common_type

    dt = common_type(a_dt, b_dt)
    ctx.emit_alu(base.width, dt)
    out = np_fn(convert_values(av, dt), convert_values(bv, dt))
    return SimtValue(out.astype(dt.np_dtype), dt)


def fmin_(a, b) -> SimtValue:
    return _binary_sel(a, b, np.minimum)


def fmax_(a, b) -> SimtValue:
    return _binary_sel(a, b, np.maximum)


min_ = fmin_
max_ = fmax_


def mad(a, b, c) -> SimtValue:
    """Fused multiply-add ``a*b + c`` (one Gen ``mad``)."""
    base = next(v for v in (a, b, c) if isinstance(v, SimtValue))
    av, a_dt = base._coerce(a)
    bv, b_dt = base._coerce(b)
    cv, c_dt = base._coerce(c)
    from repro.cm.dtypes import common_type

    dt = common_type(common_type(a_dt, b_dt), c_dt)
    ctx.emit_alu(base.width, dt)
    out = (convert_values(av, dt) * convert_values(bv, dt)
           + convert_values(cv, dt))
    return SimtValue(out.astype(dt.np_dtype), dt)


def convert(x: SimtValue, dtype) -> SimtValue:
    """``convert_<type>()``: explicit conversion."""
    return x.astype(as_cm_dtype(dtype))
