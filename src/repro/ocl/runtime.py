"""NDRange launch: work-groups, subgroups, barrier scheduling.

The runtime dispatches an OpenCL NDRange onto simulated hardware threads:
each subgroup of ``simd`` consecutive work-items (along dimension 0)
becomes one hardware thread with its own trace.  Work-groups share an SLM
allocation and synchronize at barriers; kernels that use barriers are
generator functions (``yield ocl.barrier()``), and the scheduler runs all
subgroups of a work-group phase by phase, verifying that every subgroup
reaches the same number of barriers (a hang on real hardware otherwise).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

import repro.sanitize as sanitize_mod
from repro.memory.slm import SharedLocalMemory
from repro.ocl.builtins import BARRIER, SubgroupInfo
from repro.sim import context as ctx_mod
from repro.sim.context import ThreadContext
from repro.sim.device import Device, KernelRun
from repro.sim.trace import ThreadTrace


@dataclass
class NDRangeResult:
    """Outcome of one NDRange enqueue."""

    run: KernelRun

    @property
    def total_time_us(self) -> float:
        return self.run.total_time_us

    @property
    def kernel_time_us(self) -> float:
        return self.run.kernel_time_us


def _normalize(size) -> Tuple[int, ...]:
    if isinstance(size, (int, np.integer)):
        return (int(size),)
    return tuple(int(s) for s in size)


def enqueue(device: Device, kernel: Callable, global_size, local_size=None,
            args: Tuple = (), simd: int = 16, slm_bytes: int = 0,
            name: Optional[str] = None) -> NDRangeResult:
    """Enqueue ``kernel`` over an NDRange (1D or 2D).

    ``simd`` is the dispatch width the OpenCL compiler chose (8/16/32).
    ``slm_bytes`` is the work-group local memory allocation.  ``args`` are
    passed through to every kernel invocation (surfaces, SLM handles are
    given per-work-group as a keyword if the kernel takes ``slm``).
    """
    gsize = _normalize(global_size)
    lsize = _normalize(local_size) if local_size is not None else \
        (min(gsize[0], 8 * simd),) + (1,) * (len(gsize) - 1)
    if len(lsize) < len(gsize):
        lsize = lsize + (1,) * (len(gsize) - len(lsize))
    for d, (g, l) in enumerate(zip(gsize, lsize)):
        if g % l:
            raise ValueError(
                f"global size {g} not divisible by local size {l} in dim {d}")
    if lsize[0] % simd:
        raise ValueError(
            f"local size {lsize[0]} not a multiple of SIMD width {simd}")

    device.begin_enqueue()
    wants_slm = "slm" in inspect.signature(kernel).parameters
    n_groups = [g // l for g, l in zip(gsize, lsize)]
    traces: list[ThreadTrace] = []
    kname = name or getattr(kernel, "__name__", "ocl")

    sess = sanitize_mod.current_session()
    if sess is not None:
        sess.begin_kernel(kname, device.surfaces)

    for gy in range(n_groups[1] if len(n_groups) > 1 else 1):
        for gx in range(n_groups[0]):
            group_ids = (gx, gy)[: len(gsize)]
            slm = SharedLocalMemory(slm_bytes) if slm_bytes else None
            if sess is not None and slm is not None:
                sess.attach_surface(slm)
            traces.extend(
                _run_workgroup(device, kernel, args, gsize, lsize,
                               group_ids, simd, slm, wants_slm, sess))

    if sess is not None:
        sess.finish_kernel()
    device._collect_oob(device.surfaces)
    run = device.submit(traces, kname)
    return NDRangeResult(run)


def _subgroup_contexts(device: Device, gsize, lsize, group_ids, simd, slm):
    """Build (ThreadContext, SubgroupInfo) for every subgroup of one WG."""
    local_linear = int(np.prod(lsize))
    n_subgroups = local_linear // simd
    out = []
    for sg in range(n_subgroups):
        lin = sg * simd + np.arange(simd)
        lid0 = lin % lsize[0]
        lid1 = lin // lsize[0]
        local_ids = (lid0,) if len(gsize) == 1 else (lid0, lid1)
        global_ids = tuple(
            g * l + lid for g, l, lid in zip(group_ids, lsize, local_ids))
        trace = ThreadTrace(device.machine)
        thread = ThreadContext(trace, thread_id=(sg,) + tuple(group_ids))
        thread.ocl_info = SubgroupInfo(
            simd=simd, global_ids=global_ids, local_ids=local_ids,
            group_ids=tuple(group_ids), global_size=tuple(gsize),
            local_size=tuple(lsize), slm=slm, subgroup_id=sg)
        out.append((thread, trace))
    return out


def _run_workgroup(device, kernel, args, gsize, lsize, group_ids, simd,
                   slm, wants_slm, sess=None):
    contexts = _subgroup_contexts(device, gsize, lsize, group_ids, simd, slm)
    kwargs = {"slm": slm} if wants_slm else {}
    race = sess.race if sess is not None else None

    if not inspect.isgeneratorfunction(kernel):
        for thread, _trace in contexts:
            ctx_mod.activate(thread)
            if race is not None:
                race.begin_thread(thread.thread_id)
            try:
                kernel(*args, **kwargs)
            finally:
                ctx_mod.deactivate()
        return [t for _, t in contexts]

    # Barrier-synchronized execution: run all subgroups phase by phase.
    gens = []
    for thread, _trace in contexts:
        ctx_mod.activate(thread)
        try:
            gens.append(kernel(*args, **kwargs))
        finally:
            ctx_mod.deactivate()
    live = list(range(len(gens)))
    while live:
        next_live = []
        states = set()
        for i in live:
            thread, _trace = contexts[i]
            ctx_mod.activate(thread)
            if race is not None:
                race.begin_thread(thread.thread_id)
            try:
                yielded = next(gens[i])
            except StopIteration:
                states.add("done")
            else:
                if yielded is not BARRIER:
                    raise RuntimeError(
                        "OpenCL kernels may only yield ocl.barrier()")
                states.add("barrier")
                next_live.append(i)
            finally:
                ctx_mod.deactivate()
        if len(states) > 1:
            raise RuntimeError(
                "barrier divergence: some subgroups finished while others "
                "are waiting at a barrier (this hangs on real hardware)")
        # every live subgroup reached the barrier: happens-before edge.
        if race is not None and next_live:
            race.barrier()
        live = next_live
    return [t for _, t in contexts]
