"""OpenCL-style SIMT programming model (the paper's baseline).

Kernels are written per work-item; the runtime executes them implicitly
vectorized over a subgroup (one Gen hardware thread, dispatch SIMD width
8/16/32 — the vectorization IGC performs).  Work-groups provide shared
local memory and barriers; Intel extensions (``cl_intel_subgroups``,
``cl_intel_media_block_io``) are available, since the paper's baselines
are expert-tuned kernels that use them.

A kernel is a Python function reading its indices through
:func:`get_global_id` etc.  Kernels that use barriers are generator
functions that ``yield ocl.barrier()``::

    def histogram_kernel(src, hist):
        gid = ocl.get_global_id(0)
        ...
        yield ocl.barrier()
        ...

Launch with :func:`enqueue` over an NDRange.
"""

from repro.ocl.simt import SimtValue, where, select
from repro.ocl.builtins import (
    BARRIER, barrier, get_global_id, get_global_size, get_group_id,
    get_local_id, get_local_size, get_num_groups, get_sub_group_local_id,
    get_sub_group_size, uniform_max, uniform_min, uniform_any,
    native_sqrt, native_rsqrt, native_recip, fmin_, fmax_, min_, max_,
    convert, mad,
)
from repro.ocl.memory import (
    atomic_add_global, atomic_add_slm, atomic_inc_global, atomic_inc_slm,
    atomic_min_global, atomic_max_global,
    intel_sub_group_block_read, intel_sub_group_block_read_rows,
    intel_sub_group_block_write,
    intel_media_block_read, intel_media_block_write,
    load, load_uniform, read_imagef, slm_load, slm_store, store,
    vload, vstore,
    sub_group_broadcast, sub_group_reduce_add, sub_group_reduce_max,
    sub_group_reduce_min, sub_group_shuffle, write_imageui,
)
from repro.ocl.runtime import NDRangeResult, enqueue

__all__ = [
    "SimtValue", "where", "select",
    "BARRIER", "barrier",
    "get_global_id", "get_global_size", "get_group_id", "get_local_id",
    "get_local_size", "get_num_groups", "get_sub_group_local_id",
    "get_sub_group_size",
    "uniform_max", "uniform_min", "uniform_any",
    "native_sqrt", "native_rsqrt", "native_recip",
    "fmin_", "fmax_", "min_", "max_", "convert", "mad",
    "load", "store", "load_uniform", "slm_load", "slm_store",
    "vload", "vstore",
    "read_imagef", "write_imageui",
    "atomic_inc_slm", "atomic_add_slm", "atomic_inc_global",
    "atomic_add_global", "atomic_min_global", "atomic_max_global",
    "sub_group_shuffle", "sub_group_broadcast", "sub_group_reduce_add",
    "sub_group_reduce_min", "sub_group_reduce_max",
    "intel_sub_group_block_read", "intel_sub_group_block_read_rows",
    "intel_sub_group_block_write",
    "intel_media_block_read", "intel_media_block_write",
    "enqueue", "NDRangeResult",
]
