"""SIMT values: per-work-item scalars, implicitly vectorized.

A :class:`SimtValue` holds one scalar per work-item of the executing
subgroup.  Arithmetic on SIMT values models the SIMD instructions the
OpenCL compiler emits after vectorizing the kernel at the dispatch width:
every operation charges a full-subgroup-width instruction, whether or not
all lanes contribute — the SIMT lockstep cost the paper contrasts with
CM's per-instruction SIMD size control.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.cm.dtypes import (
    as_cm_dtype, common_type, convert_values, scalar_dtype,
)
from repro.isa.dtypes import DType, UW
from repro.sim import context as ctx

Scalar = Union[int, float, np.integer, np.floating, np.bool_]


def _is_scalar(x) -> bool:
    return isinstance(x, (int, float, np.integer, np.floating, np.bool_))


class SimtValue:
    """One value per work-item in the current subgroup."""

    __slots__ = ("vals", "dtype", "_dep")

    def __init__(self, vals: np.ndarray, dtype: DType) -> None:
        self.vals = vals
        self.dtype = dtype
        self._dep = None  # MemEvent that produced this value, if any

    def _use(self) -> None:
        if self._dep is not None:
            ctx.consume(self._dep)

    @classmethod
    def of(cls, values, dtype=None) -> "SimtValue":
        arr = np.asarray(values)
        dt = as_cm_dtype(dtype) if dtype is not None else as_cm_dtype(arr.dtype)
        return cls(arr.astype(dt.np_dtype, copy=False), dt)

    @classmethod
    def splat(cls, value: Scalar, width: int, dtype=None) -> "SimtValue":
        dt = as_cm_dtype(dtype) if dtype is not None else scalar_dtype(value)
        return cls(np.full(width, value, dtype=dt.np_dtype), dt)

    @property
    def width(self) -> int:
        return self.vals.size

    def to_numpy(self) -> np.ndarray:
        return self.vals.copy()

    def astype(self, dtype) -> "SimtValue":
        """Explicit conversion (``convert_<type>`` in OpenCL C)."""
        self._use()
        dt = as_cm_dtype(dtype)
        ctx.emit_alu(self.width, dt if dt.size >= self.dtype.size else self.dtype)
        return SimtValue(convert_values(self.vals, dt), dt)

    # -- operand coercion -------------------------------------------------

    def _coerce(self, other):
        if isinstance(other, SimtValue):
            if other.width != self.width:
                raise ValueError(
                    f"SIMT width mismatch: {self.width} vs {other.width}")
            return other.vals, other.dtype
        if _is_scalar(other):
            dt = scalar_dtype(other)
            return np.full(self.width, other, dtype=dt.np_dtype), dt
        raise TypeError(f"cannot mix {type(other).__name__} into SIMT math")

    def _binop(self, other, np_fn, is_math=False, reverse=False,
               compare=False) -> "SimtValue":
        self._use()
        if isinstance(other, SimtValue):
            other._use()
        b, b_dt = self._coerce(other)
        a = self.vals
        if reverse:
            a, b = b, a
            exec_dt = common_type(b_dt, self.dtype)
        else:
            exec_dt = common_type(self.dtype, b_dt)
        av = convert_values(a, exec_dt)
        bv = convert_values(b, exec_dt)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            out = np_fn(av, bv)
        ctx.emit_alu(self.width, exec_dt, is_math=is_math)
        if compare:
            return SimtValue(out.astype(UW.np_dtype), UW)
        return SimtValue(out.astype(exec_dt.np_dtype, copy=False), exec_dt)

    def __add__(self, o): return self._binop(o, np.add)
    def __radd__(self, o): return self._binop(o, np.add, reverse=True)
    def __sub__(self, o): return self._binop(o, np.subtract)
    def __rsub__(self, o): return self._binop(o, np.subtract, reverse=True)
    def __mul__(self, o): return self._binop(o, np.multiply)
    def __rmul__(self, o): return self._binop(o, np.multiply, reverse=True)
    def __truediv__(self, o): return self._binop(o, _c_divide, is_math=True)
    def __rtruediv__(self, o):
        return self._binop(o, _c_divide, is_math=True, reverse=True)
    def __floordiv__(self, o): return self._binop(o, _c_divide, is_math=True)
    def __mod__(self, o): return self._binop(o, _c_mod, is_math=True)
    def __and__(self, o): return self._binop(o, np.bitwise_and)
    def __rand__(self, o): return self._binop(o, np.bitwise_and, reverse=True)
    def __or__(self, o): return self._binop(o, np.bitwise_or)
    def __ror__(self, o): return self._binop(o, np.bitwise_or, reverse=True)
    def __xor__(self, o): return self._binop(o, np.bitwise_xor)
    def __lshift__(self, o): return self._binop(o, np.left_shift)
    def __rshift__(self, o): return self._binop(o, np.right_shift)

    def __neg__(self):
        self._use()
        ctx.emit_alu(self.width, self.dtype)
        return SimtValue(-self.vals, self.dtype)

    def __invert__(self):
        self._use()
        ctx.emit_alu(self.width, self.dtype)
        return SimtValue(~self.vals, self.dtype)

    def __abs__(self):
        self._use()
        ctx.emit_alu(self.width, self.dtype)
        return SimtValue(np.abs(self.vals), self.dtype)

    def __lt__(self, o): return self._binop(o, np.less, compare=True)
    def __le__(self, o): return self._binop(o, np.less_equal, compare=True)
    def __gt__(self, o): return self._binop(o, np.greater, compare=True)
    def __ge__(self, o): return self._binop(o, np.greater_equal, compare=True)
    def __eq__(self, o): return self._binop(o, np.equal, compare=True)      # noqa: A003
    def __ne__(self, o): return self._binop(o, np.not_equal, compare=True)  # noqa: A003

    __hash__ = None

    def as_mask(self) -> np.ndarray:
        """Host-side boolean view of a comparison result."""
        self._use()
        return self.vals.astype(bool)

    def __repr__(self) -> str:
        return f"SimtValue<{self.dtype.name},{self.width}>({self.vals!r})"


def _c_divide(a, b):
    if np.issubdtype(a.dtype, np.floating):
        return a / b
    q = np.where(b != 0, np.trunc(a / np.where(b != 0, b, 1)), 0)
    return q.astype(a.dtype)


def _c_mod(a, b):
    if np.issubdtype(a.dtype, np.floating):
        return np.fmod(a, b)
    return (a - _c_divide(a, b) * b).astype(a.dtype)


def where(cond: SimtValue, a, b) -> SimtValue:
    """Per-lane select (OpenCL ``select``/ternary; Gen ``sel``)."""
    if not isinstance(cond, SimtValue):
        raise TypeError("where() condition must be a SimtValue mask")
    for v in (cond, a, b):
        if isinstance(v, SimtValue):
            v._use()
    av, a_dt = cond._coerce(a)
    bv, b_dt = cond._coerce(b)
    dt = common_type(a_dt, b_dt)
    ctx.emit_alu(cond.width, dt)
    out = np.where(cond.vals.astype(bool),
                   convert_values(av, dt), convert_values(bv, dt))
    return SimtValue(out, dt)


#: OpenCL-style alias: select(b, a, cond) == cond ? a : b
def select(b, a, cond: SimtValue) -> SimtValue:
    return where(cond, a, b)
