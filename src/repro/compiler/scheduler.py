"""vISA list scheduling (the finalizer's scheduling stage, Section V).

The only transformation implemented is the one that matters for the
paper's workloads: **send hoisting**.  A memory read is moved as early as
its dependences allow, which widens the distance between a load and its
first consumer so the EU's other instructions (and the other hardware
threads) can hide the latency — the effect the paper credits for the CM
k-means kernel's overlapped scattered reads.

Dependences are computed conservatively over virtual registers at whole
vreg granularity:

- true dependence: an instruction reading a vreg stays after the last
  writer of that vreg,
- anti/output dependence: a writer stays after every earlier reader and
  writer of its destination vreg,
- memory operations never move past other memory operations touching the
  same surface (binding-table index), and writes never move at all.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.compiler.visa import VInstr, VOperand, VProgram
from repro.isa.instructions import Opcode

_MSG_ADDR_KEYS = ("x", "y", "offset", "global_offset", "addr")


def _reads_writes(instr: VInstr) -> Tuple[Set[int], Set[int]]:
    """(vreg ids read, vreg ids written) by one vISA instruction."""
    reads: Set[int] = set()
    writes: Set[int] = set()
    for s in instr.srcs:
        if isinstance(s, VOperand):
            reads.add(s.vreg.id)
    if instr.msg:
        for key in _MSG_ADDR_KEYS:
            v = instr.msg.get(key)
            if isinstance(v, VOperand):
                reads.add(v.vreg.id)
        payload = instr.msg.get("payload")
        if isinstance(payload, VOperand):
            reads.add(payload.vreg.id)
    if instr.dst is not None:
        writes.add(instr.dst.vreg.id)
        if instr.dst.dst_stride != 1 or instr.dst.offset_bytes:
            reads.add(instr.dst.vreg.id)  # partial write: merge semantics
    if instr.cond_mod is not None or instr.pred_flag is not None:
        # Flag dependences: model the flag as pseudo-vreg -1.
        (writes if instr.cond_mod is not None else reads).add(-1)
        if instr.pred_flag is not None:
            reads.add(-1)
    return reads, writes


def _is_memory_read(instr: VInstr) -> bool:
    return (instr.op is Opcode.SEND and instr.msg is not None
            and instr.msg["kind"].endswith(("read", "gather")))


def _is_memory(instr: VInstr) -> bool:
    return instr.op is Opcode.SEND


def schedule_sends(prog: VProgram) -> int:
    """Hoist memory reads earlier in place; returns how many moved."""
    instrs = prog.instrs
    moved = 0
    for i in range(1, len(instrs)):
        instr = instrs[i]
        if not _is_memory_read(instr):
            continue
        reads, writes = _reads_writes(instr)
        surface = instr.msg["bti"]
        target = i
        for j in range(i - 1, -1, -1):
            other = instrs[j]
            o_reads, o_writes = _reads_writes(other)
            if _is_memory(other) and other.msg is not None and \
                    other.msg["bti"] == surface:
                break  # same-surface ordering is preserved
            if o_writes & reads:        # true dependence
                break
            if (o_reads | o_writes) & writes:  # anti/output dependence
                break
            target = j
        if target < i:
            instrs.insert(target, instrs.pop(i))
            moved += 1
    return moved


def dependency_distance(prog: VProgram) -> Dict[int, int]:
    """Instructions between each read-send and its first consumer.

    Used by tests to check the scheduler actually widened load-use
    distances.
    """
    out: Dict[int, int] = {}
    for i, instr in enumerate(prog.instrs):
        if not _is_memory_read(instr) or instr.dst is None:
            continue
        dst = instr.dst.vreg.id
        for j in range(i + 1, len(prog.instrs)):
            reads, _writes = _reads_writes(prog.instrs[j])
            if dst in reads:
                out[i] = j - i
                break
        else:
            out[i] = len(prog.instrs) - i
    return out
