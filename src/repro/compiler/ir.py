"""SSA intermediate representation with rdregion/wrregion intrinsics.

LLVM IR is SSA: every value is defined once.  Partial reads and writes of
CM vectors/matrices therefore cannot mutate; the paper's Section V models
them with two intrinsics, reproduced here:

- ``rdregion(v; vstride, width, hstride, offset)`` — extract a strided
  region of ``v`` as a new (smaller) value,
- ``wrregion(old, new; vstride, width, hstride, offset)`` — a copy of
  ``old`` with ``new`` inserted at the strided region (returns the whole
  updated vector, preserving SSA).

Region parameters use *element* units for strides/width and *bytes* for
the start offset, matching the ``llvm.genx.rdregioni`` example in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.isa.dtypes import DType


@dataclass(frozen=True)
class VecType:
    """``<n x dtype>``."""

    dtype: DType
    n: int

    def __str__(self) -> str:
        return f"<{self.n} x {self.dtype.name}>"

    @property
    def size_bytes(self) -> int:
        return self.n * self.dtype.size


class Value:
    """An SSA value."""

    _counter = 0

    def __init__(self, vtype: VecType, name: str = "") -> None:
        Value._counter += 1
        self.id = Value._counter
        self.vtype = vtype
        self.name = name or f"v{self.id}"
        self.producer: Optional["Instr"] = None

    def __repr__(self) -> str:
        return f"%{self.name}:{self.vtype}"


@dataclass(frozen=True)
class Region:
    """rdregion/wrregion parameters (element strides, byte offset)."""

    vstride: int
    width: int
    hstride: int
    offset_bytes: int

    def element_indices(self, n: int, elem_size: int) -> np.ndarray:
        """Flat element indices selected for an n-element access."""
        i = np.arange(n)
        rows, cols = np.divmod(i, self.width)
        return (self.offset_bytes // elem_size
                + rows * self.vstride + cols * self.hstride)

    def __str__(self) -> str:
        return (f"<{self.vstride};{self.width},{self.hstride}>"
                f"@{self.offset_bytes}")


Operand = Union[Value, int, float]


class Instr:
    """One SSA instruction.

    ``op`` is a lowercase mnemonic: arithmetic (``add``, ``mul``, ``mad``,
    ``min``, ``max``, ``mov``, ``sel``, ``cmp.lt`` ...), math
    (``math.inv`` ...), the region intrinsics (``rdregion``,
    ``wrregion``), ``constant``, and memory ops (``media.read``,
    ``media.write``, ``oword.read``, ``oword.write``, ``gather``,
    ``scatter``).
    """

    def __init__(self, op: str, result: Optional[Value],
                 operands: Sequence[Operand] = (),
                 region: Optional[Region] = None,
                 attrs: Optional[dict] = None) -> None:
        self.op = op
        self.result = result
        self.operands = list(operands)
        self.region = region
        self.attrs = attrs or {}
        if result is not None:
            result.producer = self

    def value_operands(self) -> List[Value]:
        return [o for o in self.operands if isinstance(o, Value)]

    def __repr__(self) -> str:
        lhs = f"{self.result!r} = " if self.result is not None else ""
        ops = ", ".join(
            repr(o) if isinstance(o, Value) else str(o) for o in self.operands)
        region = f" {self.region}" if self.region is not None else ""
        attrs = f" {self.attrs}" if self.attrs else ""
        return f"{lhs}{self.op} {ops}{region}{attrs}"


@dataclass
class SurfaceParam:
    """A kernel surface argument bound to a binding-table index."""

    name: str
    bti: int
    is_image: bool = False

    def __repr__(self) -> str:
        kind = "image2d" if self.is_image else "buffer"
        return f"{kind} {self.name}@bti[{self.bti}]"


@dataclass
class Function:
    """A straight-line CM kernel in SSA form."""

    name: str
    params: List[SurfaceParam] = field(default_factory=list)
    instrs: List[Instr] = field(default_factory=list)
    constants: Dict[int, np.ndarray] = field(default_factory=dict)

    def append(self, instr: Instr) -> Optional[Value]:
        self.instrs.append(instr)
        return instr.result

    def uses(self) -> Dict[int, List[Instr]]:
        """value id -> instructions that read it."""
        out: Dict[int, List[Instr]] = {}
        for ins in self.instrs:
            for v in ins.value_operands():
                out.setdefault(v.id, []).append(ins)
        return out

    def constant_of(self, value: Value) -> Optional[np.ndarray]:
        """The constant payload of a value, if it is one."""
        return self.constants.get(value.id)

    def __str__(self) -> str:
        lines = [f"define @{self.name}({', '.join(map(repr, self.params))}) {{"]
        for ins in self.instrs:
            lines.append(f"  {ins!r}")
        lines.append("}")
        return "\n".join(lines)


def make_constant(fn: Function, values: np.ndarray, dtype: DType) -> Value:
    """Materialize a constant vector value in ``fn``."""
    arr = np.ascontiguousarray(values, dtype=dtype.np_dtype).reshape(-1)
    val = Value(VecType(dtype, arr.size), name=f"c{Value._counter + 1}")
    fn.append(Instr("constant", val))
    fn.constants[val.id] = arr
    return val
