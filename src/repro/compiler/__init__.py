"""The CM compiler (CMC), Section V of the paper.

Pipeline (mirroring Fig. 3):

1. **Front end** (:mod:`repro.compiler.frontend`): traces a restricted CM
   kernel (Python loops unroll; divergence via ``simd_if`` /
   ``simd_while``) into an SSA IR where partial vector reads/writes are
   the ``rdregion``/``wrregion`` intrinsics and divergent regions are
   structured-CF markers.
2. **Middle end** (:mod:`repro.compiler.passes`): constant folding,
   region collapsing, dead-vector removal, vector decomposition, then
   baling analysis.
3. **vISA** (:mod:`repro.compiler.visa`): emission into a virtual ISA
   with unlimited virtual registers; legalization splits operations to
   the 2-GRF / native-SIMD limits, searching for ``<V;W,H>`` regions that
   keep each chunk a single instruction (this is what turns the linear
   filter's 6x24 select into the nine SIMD16 movs of Fig. 4).
4. **Finalizer** (:mod:`repro.compiler.finalizer`): linear-scan register
   allocation onto the 128x32B GRF (spilling to scratch via oword
   messages), emitting executable Gen ISA for
   :class:`repro.isa.executor.FunctionalExecutor`.

Use :func:`compile_kernel` to run the whole pipeline and
:meth:`CompiledKernel.run` to execute the result.
"""

from repro.compiler.cache import (
    GLOBAL_KERNEL_CACHE, CacheStats, KernelCache, compile_kernel_cached,
)
from repro.compiler.driver import CompiledKernel, compile_kernel
from repro.compiler.frontend import trace_kernel
from repro.compiler.ir import Function

__all__ = [
    "compile_kernel", "CompiledKernel", "trace_kernel", "Function",
    "KernelCache", "CacheStats", "compile_kernel_cached",
    "GLOBAL_KERNEL_CACHE",
]
