"""vISA: the virtual ISA between the middle end and the finalizer.

vISA is "very close to Gen ISA but offers more convenience as a
compilation target as it has unlimited virtual registers and hides
various hardware-specific restrictions" (Section V).  Emission from the
SSA IR happens here together with **legalization**: every operation is
split into chunks that satisfy

- the 2-GRF operand limit (chunk elements x element size <= 64 bytes),
- the native SIMD widths (1/2/4/8/16/32),
- expressibility of each source chunk as a single ``<V;W,H>`` region and
  each destination chunk as a strided run.

The chunk search is what turns the linear filter's 6x24 byte-to-float
select into nine SIMD16 movs whose regions hop across matrix rows
(Fig. 4): a chunk spanning two 24-byte rows legalizes as ``<16;8,1>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.compiler.ir import Function, Instr, Value
from repro.compiler.passes.baling import BaleInfo, ROOT_OPS
from repro.compiler.passes.region_collapse import region_from_indices
from repro.isa.dtypes import D, DType, UW
from repro.isa.instructions import CondMod, MathFn, Opcode

_OPCODE_MAP = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "mad": Opcode.MAD, "min": Opcode.MIN, "max": Opcode.MAX,
    "and": Opcode.AND, "or": Opcode.OR, "xor": Opcode.XOR,
    "shl": Opcode.SHL, "shr": Opcode.SHR, "asr": Opcode.ASR,
    "mov": Opcode.MOV,
}


class CompileError(RuntimeError):
    pass


@dataclass
class VReg:
    """A virtual register: a contiguous byte range, unlimited supply."""

    id: int
    size_bytes: int
    name: str = ""

    def __repr__(self) -> str:
        return f"V{self.id}<{self.size_bytes}B>"


@dataclass
class VOperand:
    """An operand addressing a virtual register with a region."""

    vreg: VReg
    dtype: DType
    offset_bytes: int = 0
    # source region (element units); None means packed contiguous
    vstride: int = 0
    width: int = 1
    hstride: int = 0
    dst_stride: int = 1

    @classmethod
    def packed(cls, vreg: VReg, dtype: DType, offset_bytes: int = 0,
               n: int = 1) -> "VOperand":
        w = min(n, 8)
        return cls(vreg, dtype, offset_bytes, vstride=w, width=w, hstride=1)

    def __repr__(self) -> str:
        return (f"{self.vreg!r}.{self.offset_bytes}"
                f"<{self.vstride};{self.width},{self.hstride}>"
                f":{self.dtype.name}")


@dataclass
class VImm:
    value: Union[int, float]
    dtype: DType

    def __repr__(self) -> str:
        return f"{self.value}:{self.dtype.name}"


@dataclass
class VVectorImm:
    """A packed vector immediate (materializing non-splat constants)."""

    values: np.ndarray
    dtype: DType

    def __repr__(self) -> str:
        return f"{list(self.values)}:{self.dtype.name}"


VSource = Union[VOperand, VImm, VVectorImm]


@dataclass
class VInstr:
    op: Opcode
    exec_size: int = 1
    dst: Optional[VOperand] = None
    srcs: List[VSource] = field(default_factory=list)
    cond_mod: Optional[CondMod] = None
    math_fn: Optional[MathFn] = None
    pred_flag: Optional[int] = None
    msg: Optional[dict] = None  # send message description
    #: first execution-mask channel this instruction covers.  Non-zero
    #: only for chunks of a legalized wide op inside a divergent region:
    #: lane i of the chunk maps to SIMD-CF channel ``emask_off + i``.
    emask_off: int = 0

    def __repr__(self) -> str:
        parts = [self.op.value, f"({self.exec_size})"]
        if self.dst is not None:
            parts.append(repr(self.dst))
        parts.extend(repr(s) for s in self.srcs)
        if self.msg:
            parts.append(str(self.msg))
        return " ".join(parts)


@dataclass
class VProgram:
    """The vISA module for one kernel."""

    name: str
    instrs: List[VInstr] = field(default_factory=list)
    vregs: List[VReg] = field(default_factory=list)
    #: parameter name -> VReg holding its runtime value
    params: Dict[str, VReg] = field(default_factory=dict)

    def new_vreg(self, size_bytes: int, name: str = "") -> VReg:
        vreg = VReg(len(self.vregs) + 1, size_bytes, name)
        self.vregs.append(vreg)
        return vreg

    def __str__(self) -> str:
        lines = [f".kernel {self.name}"]
        lines += [f".decl {v!r} {v.name}" for v in self.vregs]
        lines += [f"  {i!r}" for i in self.instrs]
        return "\n".join(lines)


#: IR control-flow markers -> the structured-CF Gen opcodes.
_CF_OP_MAP = {
    "simd.if": Opcode.SIMD_IF, "simd.else": Opcode.SIMD_ELSE,
    "simd.endif": Opcode.SIMD_ENDIF, "simd.do": Opcode.SIMD_DO,
    "simd.while": Opcode.SIMD_WHILE, "simd.break": Opcode.SIMD_BREAK,
}


class _Emitter:
    def __init__(self, fn: Function, bales: BaleInfo) -> None:
        self.fn = fn
        self.bales = bales
        self.prog = VProgram(fn.name)
        #: storage class representative: value id -> root value id
        self._class: Dict[int, int] = {}
        self._vreg_of_class: Dict[int, VReg] = {}
        self._materialized_consts: Dict[int, VReg] = {}
        #: does this function contain divergent (simd.*) control flow?
        self._has_cf = any(i.op.startswith("simd.") for i in fn.instrs)
        #: storage classes mutated by wrregion chains (set in emit()).
        self._mutated_reps: set = set()
        #: current divergent-region nesting depth during the emit walk.
        self._cf_depth = 0

    # -- storage classes ----------------------------------------------------

    def _rep(self, v: Value) -> int:
        vid = v.id
        while self._class.get(vid, vid) != vid:
            vid = self._class[vid]
        return vid

    def _union(self, child: Value, parent: Value) -> None:
        self._class[self._rep(child)] = self._rep(parent)

    def _assign_classes(self) -> None:
        # wrregion chains share storage with their base vector.
        for instr in self.fn.instrs:
            if instr.op == "wrregion" and isinstance(instr.operands[0], Value):
                self._union(instr.result, instr.operands[0])

    def vreg_for(self, v: Value) -> VReg:
        rep = self._rep(v)
        if rep not in self._vreg_of_class:
            self._vreg_of_class[rep] = self.prog.new_vreg(
                v.vtype.size_bytes, name=v.name)
        vreg = self._vreg_of_class[rep]
        if v.vtype.size_bytes > vreg.size_bytes:
            vreg.size_bytes = v.vtype.size_bytes
        return vreg

    # -- constants ------------------------------------------------------------

    def materialize_constant(self, v: Value) -> VReg:
        """Emit movs filling a vreg with a non-splat constant vector."""
        if v.id in self._materialized_consts:
            return self._materialized_consts[v.id]
        arr = self.fn.constants[v.id]
        dt = v.vtype.dtype
        vreg = self.vreg_for(v)
        # Gen vector immediates pack 8 elements; one mov per 8.
        for i in range(0, arr.size, 8):
            chunk = arr[i:i + 8]
            dst = VOperand(vreg, dt, offset_bytes=i * dt.size)
            self.prog.instrs.append(VInstr(
                Opcode.MOV, exec_size=len(chunk), dst=dst,
                srcs=[VVectorImm(chunk.copy(), dt)]))
        self._materialized_consts[v.id] = vreg
        return vreg

    def _const_splat(self, v: Value):
        arr = self.fn.constant_of(v)
        if arr is None or arr.size == 0:
            return None
        if np.all(arr == arr.flat[0]):
            return arr.flat[0]
        return None

    # -- operand lowering -------------------------------------------------

    def _src_indices(self, instr: Instr, op_index: int, n: int):
        """(value, element-index array) for operand ``op_index`` of a root."""
        regions = self.bales.src_regions.get(id(instr), {})
        op = instr.operands[op_index]
        if op_index in regions:
            rd = regions[op_index]
            base = rd.operands[0]
            elem = base.vtype.dtype.size
            # The region formula covers replicate patterns directly:
            # element i = offset + (i // width) * vstride + (i % width) * h.
            idx = rd.region.element_indices(rd.result.vtype.n, elem)
            if idx.size != n:
                # broadcast scalar-region reads
                idx = np.resize(idx, n)
            return base, idx
        if isinstance(op, Value):
            return op, np.arange(n) if op.vtype.n == n else np.zeros(n, int)
        return op, None

    # -- emission --------------------------------------------------------

    def emit(self) -> VProgram:
        self._assign_classes()
        self._mutated_reps = {
            self._rep(i.operands[0]) for i in self.fn.instrs
            if i.op == "wrregion" and isinstance(i.operands[0], Value)}
        if self._has_cf:
            # Constants must live in registers before the first divergent
            # region: a lazy materialization at the first consumer could
            # land inside a loop body, where the init movs would re-run
            # every iteration under the loop mask (corrupting mutated
            # classes and leaving never-active lanes uninitialized).
            for instr in self.fn.instrs:
                if instr.op == "constant":
                    self.materialize_constant(instr.result)
        for instr in self.fn.instrs:
            if self.bales.is_absorbed(instr):
                continue
            op = instr.op
            if op == "constant":
                uses = self.fn.uses().get(instr.result.id, [])
                del uses  # materialized lazily by consumers
                continue
            if op.startswith("simd."):
                self._emit_cf(instr)
                continue
            if op == "param":
                vreg = self.prog.new_vreg(4, name=instr.attrs["name"])
                self.prog.params[instr.attrs["name"]] = vreg
                self._vreg_of_class[self._rep(instr.result)] = vreg
                continue
            if op in ROOT_OPS:
                self._emit_root(instr)
            elif op == "wrregion":
                self._emit_wrregion_copy(instr)
            elif op == "rdregion":
                self._emit_rdregion_copy(instr)
            elif op.startswith(("media.", "oword.")) or op in ("gather",
                                                               "scatter"):
                self._emit_memory(instr)
            else:
                raise CompileError(f"cannot emit {op!r}")
        return self.prog

    # .. structured control flow .............................................

    def _emit_cf(self, instr: Instr) -> None:
        """Lower a ``simd.*`` marker to its masked-CF Gen instruction.

        Conditional markers (if/while/break) carry a full-width UW
        condition vector; each lowers to ``cmp.ne f0, cond, 0``
        immediately followed by the f0-predicated CF instruction.  The
        unconditional markers (else/endif/do) are bare mask-stack ops.
        """
        op = _CF_OP_MAP[instr.op]
        width = int(instr.attrs.get("width", 0) or 1)
        if width > 32:
            raise CompileError(
                f"divergent control flow is limited to 32 lanes "
                f"(got width {width})")
        if instr.operands:
            cond = instr.operands[0]
            if self.fn.constant_of(cond) is not None:
                self.materialize_constant(cond)
            src = VOperand.packed(self.vreg_for(cond), cond.vtype.dtype,
                                  n=cond.vtype.n)
            self.prog.instrs.append(VInstr(
                Opcode.CMP, exec_size=cond.vtype.n,
                srcs=[src, VImm(0, cond.vtype.dtype)],
                cond_mod=CondMod.NE))
            self.prog.instrs.append(VInstr(op, exec_size=width,
                                           pred_flag=0))
        else:
            self.prog.instrs.append(VInstr(op, exec_size=width))
        if instr.op in ("simd.if", "simd.do"):
            self._cf_depth += 1
        elif instr.op in ("simd.endif", "simd.while"):
            self._cf_depth -= 1

    def _check_cf_dst(self, dst_idx) -> None:
        """Divergent-region writes must map element i to lane i.

        Masked execution identifies destination elements with SIMD-CF
        channels; a strided or offset write region inside a divergent
        region would pair element k with channel k's active bit, which
        is only meaningful for full-width lane-major writes.
        """
        n = len(dst_idx)
        if self._cf_depth and n > 1 and \
                not np.array_equal(dst_idx, np.arange(n)):
            raise CompileError(
                "partial-region writes inside simd_if/simd_while are not "
                "supported; assign whole CF-width vectors in divergent "
                "regions")

    # .. roots ...............................................................

    def _effective_dst(self, instr: Instr):
        """(dst value, element indices, dtype) after dst conv/wrregion bales."""
        result = instr.result
        dtype = result.vtype.dtype
        conv = self.bales.dst_conv.get(id(instr))
        if conv is not None:
            result = conv.result
            dtype = result.vtype.dtype
        wr = self.bales.dst_wrregion.get(id(instr))
        if wr is not None:
            base = wr.operands[0]
            elem = base.vtype.dtype.size
            idx = wr.region.element_indices(wr.operands[1].vtype.n, elem)
            return wr.result, idx, wr.result.vtype.dtype
        n = result.vtype.n
        return result, np.arange(n), dtype

    def _lower_source(self, instr: Instr, i: int, n: int):
        op = instr.operands[i]
        if isinstance(op, Value):
            const_splat = self._const_splat(op)
            if const_splat is not None and op.producer is not None \
                    and op.producer.op == "constant" \
                    and not (self._has_cf
                             and self._rep(op) in self._mutated_reps):
                # A mutated class's init constant cannot fold to an
                # immediate under CF: in-loop reads must see the updated
                # register, not the initial value.
                return ("imm", VImm(const_splat.item(), op.vtype.dtype), None)
            if self.fn.constant_of(op) is not None:
                self.materialize_constant(op)
            base, idx = self._src_indices(instr, i, n)
            return ("reg", base, idx)
        # python scalar
        dt = D if isinstance(op, (int, np.integer)) else \
            instr.result.vtype.dtype
        return ("imm", VImm(op, dt), None)

    def _overlaps_hazardously(self, dst_val, dst_idx, srcs) -> bool:
        """True when a split op could read registers an earlier chunk wrote.

        Gen reads all sources before writing within ONE instruction, but
        legalization splits wide ops: if the destination storage aliases a
        source with a *different* element pattern, a later chunk may read
        data an earlier chunk already overwrote.
        """
        dst_rep = self._rep(dst_val)
        for kind, payload, idx in srcs:
            if kind != "reg" or idx is None:
                continue
            if self._rep(payload) != dst_rep:
                continue
            if not np.array_equal(idx, dst_idx):
                return True
        return False

    def _emit_root(self, instr: Instr) -> None:
        if instr.op == "sel":
            self._emit_sel(instr)
            return
        is_cmp = instr.op.startswith("cmp.")
        dst_val, dst_idx, dst_dtype = self._effective_dst(instr)
        n = len(dst_idx)
        srcs = [self._lower_source(instr, i, n)
                for i in range(len(instr.operands))]
        opcode = Opcode.CMP if is_cmp else _OPCODE_MAP[instr.op]
        cond = CondMod(instr.op.split(".")[1]) if is_cmp else None
        if self._overlaps_hazardously(dst_val, dst_idx, srcs):
            # Compute into a fresh temporary, then copy into the aliased
            # destination region (the copy's source cannot alias its dst).
            tmp = self.prog.new_vreg(n * dst_dtype.size, name="ovl")
            tmp_val_idx = np.arange(n)
            self._emit_legalized(opcode, cond, tmp, dst_dtype,
                                 tmp_val_idx, srcs, n)
            dst_vreg = self.vreg_for(dst_val)
            self._emit_legalized(
                Opcode.MOV, None, dst_vreg, dst_dtype, dst_idx,
                [("vreg", (tmp, dst_dtype), tmp_val_idx)], n)
            return
        dst_vreg = self.vreg_for(dst_val)
        self._emit_legalized(opcode, cond, dst_vreg, dst_dtype, dst_idx,
                             srcs, n)

    def _emit_sel(self, instr: Instr) -> None:
        """sel(mask, x, y): cmp to a flag, then predicated sel."""
        dst_val, dst_idx, dst_dtype = self._effective_dst(instr)
        n = len(dst_idx)
        mask_src = self._lower_source(instr, 0, n)
        x_src = self._lower_source(instr, 1, n)
        y_src = self._lower_source(instr, 2, n)
        dst_vreg = self.vreg_for(dst_val)
        self._check_cf_dst(dst_idx)
        in_cf = self._cf_depth > 0 and n > 1
        chunks = self._chunks(n, dst_dtype, dst_idx,
                              [mask_src, x_src, y_src])
        for lo, hi in chunks:
            off = lo if in_cf else 0
            cmp_srcs = [self._chunk_operand(mask_src, lo, hi),
                        VImm(0, UW)]
            self.prog.instrs.append(VInstr(
                Opcode.CMP, exec_size=hi - lo, dst=None, srcs=cmp_srcs,
                cond_mod=CondMod.NE, emask_off=off))
            dst = self._dst_operand(dst_vreg, dst_dtype, dst_idx, lo, hi)
            self.prog.instrs.append(VInstr(
                Opcode.SEL, exec_size=hi - lo, dst=dst,
                srcs=[self._chunk_operand(x_src, lo, hi),
                      self._chunk_operand(y_src, lo, hi)],
                pred_flag=0, emask_off=off))

    # .. legalization ........................................................

    def _chunks(self, n: int, dst_dtype: DType, dst_idx, srcs):
        """Split [0, n) into legal executable chunks."""
        max_elem = dst_dtype.size
        for kind, payload, idx in srcs:
            if kind == "reg":
                max_elem = max(max_elem, payload.vtype.dtype.size)
            elif kind == "vreg":
                max_elem = max(max_elem, payload[1].size)
        out = []
        lo = 0
        while lo < n:
            for e in (32, 16, 8, 4, 2, 1):
                if lo + e > n or e * max_elem > 64:
                    continue
                if not _arith_progression(dst_idx[lo:lo + e]):
                    continue
                ok = True
                for kind, payload, idx in srcs:
                    if kind in ("reg", "vreg") and idx is not None and \
                            region_from_indices(idx[lo:lo + e]) is None:
                        ok = False
                        break
                if ok:
                    out.append((lo, lo + e))
                    lo += e
                    break
            else:
                raise CompileError("cannot legalize operation chunk")
        return out

    def _chunk_operand(self, src, lo: int, hi: int) -> VSource:
        kind, payload, idx = src
        if kind == "imm":
            return payload
        if kind == "vreg":
            vreg, dtype = payload
            sub = idx[lo:hi]
            region = region_from_indices(sub - sub[0])
            return VOperand(vreg, dtype,
                            offset_bytes=int(sub[0]) * dtype.size,
                            vstride=region.vstride, width=region.width,
                            hstride=region.hstride)
        value = payload
        elem = value.vtype.dtype.size
        vreg = self.vreg_for(value)
        sub = idx[lo:hi]
        region = region_from_indices(sub - sub[0])
        return VOperand(vreg, value.vtype.dtype,
                        offset_bytes=int(sub[0]) * elem,
                        vstride=region.vstride, width=region.width,
                        hstride=region.hstride)

    def _dst_operand(self, vreg: VReg, dtype: DType, dst_idx, lo: int,
                     hi: int) -> VOperand:
        sub = dst_idx[lo:hi]
        stride = int(sub[1] - sub[0]) if len(sub) > 1 else 1
        return VOperand(vreg, dtype, offset_bytes=int(sub[0]) * dtype.size,
                        dst_stride=max(stride, 1))

    def _emit_legalized(self, opcode, cond, dst_vreg, dst_dtype, dst_idx,
                        srcs, n) -> None:
        self._check_cf_dst(dst_idx)
        in_cf = self._cf_depth > 0 and n > 1
        for lo, hi in self._chunks(n, dst_dtype, dst_idx, srcs):
            dst = self._dst_operand(dst_vreg, dst_dtype, dst_idx, lo, hi)
            ops = [self._chunk_operand(s, lo, hi) for s in srcs]
            self.prog.instrs.append(VInstr(
                opcode, exec_size=hi - lo, dst=dst, srcs=ops,
                cond_mod=cond, emask_off=lo if in_cf else 0))

    # .. unbaled region ops (plain copies) ..................................

    def _emit_rdregion_copy(self, instr: Instr) -> None:
        base = instr.operands[0]
        if self.fn.constant_of(base) is not None:
            self.materialize_constant(base)
        elem = base.vtype.dtype.size
        n = instr.result.vtype.n
        idx = instr.region.element_indices(n, elem)
        dst_vreg = self.vreg_for(instr.result)
        self._emit_legalized(Opcode.MOV, None, dst_vreg,
                             instr.result.vtype.dtype, np.arange(n),
                             [("reg", base, idx)], n)

    def _emit_wrregion_copy(self, instr: Instr) -> None:
        old, new = instr.operands
        elem = old.vtype.dtype.size
        if isinstance(new, Value) and self.fn.constant_of(new) is not None:
            self.materialize_constant(new)
        n = new.vtype.n
        dst_idx = instr.region.element_indices(n, elem)
        src = ("reg", new, np.arange(n))
        if self._overlaps_hazardously(instr.result, dst_idx, [src]):
            tmp = self.prog.new_vreg(n * new.vtype.dtype.size, name="ovl")
            self._emit_legalized(Opcode.MOV, None, tmp, new.vtype.dtype,
                                 np.arange(n), [src], n)
            src = ("vreg", (tmp, new.vtype.dtype), np.arange(n))
        dst_vreg = self.vreg_for(instr.result)  # same class as old
        self._emit_legalized(Opcode.MOV, None, dst_vreg,
                             instr.result.vtype.dtype, dst_idx, [src], n)

    # .. memory ...............................................................

    def _addr_operand(self, op):
        if isinstance(op, Value):
            return VOperand.packed(self.vreg_for(op), D, 0, 1)
        return VImm(int(op), D)

    def _emit_memory(self, instr: Instr) -> None:
        op = instr.op
        msg: dict = {"kind": op, "bti": instr.operands[0]}
        if op == "media.read":
            msg.update(x=self._addr_operand(instr.operands[1]),
                       y=self._addr_operand(instr.operands[2]),
                       width=instr.attrs["width"],
                       height=instr.attrs["height"])
            dst = VOperand.packed(self.vreg_for(instr.result),
                                  instr.result.vtype.dtype)
            self.prog.instrs.append(VInstr(Opcode.SEND, dst=dst, msg=msg))
        elif op == "media.write":
            data = instr.operands[3]
            msg.update(x=self._addr_operand(instr.operands[1]),
                       y=self._addr_operand(instr.operands[2]),
                       width=instr.attrs["width"],
                       height=instr.attrs["height"],
                       payload=self._payload(data))
            self.prog.instrs.append(VInstr(Opcode.SEND, msg=msg))
        elif op == "oword.read":
            msg.update(offset=self._addr_operand(instr.operands[1]),
                       nbytes=instr.result.vtype.size_bytes)
            dst = VOperand.packed(self.vreg_for(instr.result),
                                  instr.result.vtype.dtype)
            self.prog.instrs.append(VInstr(Opcode.SEND, dst=dst, msg=msg))
        elif op == "oword.write":
            data = instr.operands[2]
            msg.update(offset=self._addr_operand(instr.operands[1]),
                       nbytes=data.vtype.size_bytes,
                       payload=self._payload(data))
            self.prog.instrs.append(VInstr(Opcode.SEND, msg=msg))
        elif op == "gather":
            offs = instr.operands[2]
            msg.update(global_offset=self._addr_operand(instr.operands[1]),
                       addr=self._payload(offs),
                       elem=instr.result.vtype.dtype,
                       n=instr.result.vtype.n)
            dst = VOperand.packed(self.vreg_for(instr.result),
                                  instr.result.vtype.dtype)
            self.prog.instrs.append(VInstr(Opcode.SEND, dst=dst, msg=msg))
        elif op == "scatter":
            offs, data = instr.operands[2], instr.operands[3]
            msg.update(global_offset=self._addr_operand(instr.operands[1]),
                       addr=self._payload(offs),
                       elem=data.vtype.dtype,
                       n=data.vtype.n,
                       payload=self._payload(data))
            self.prog.instrs.append(VInstr(Opcode.SEND, msg=msg))
        else:
            raise CompileError(f"unknown memory op {op!r}")

    def _payload(self, value: Value) -> VOperand:
        if self.fn.constant_of(value) is not None:
            self.materialize_constant(value)
        return VOperand.packed(self.vreg_for(value), value.vtype.dtype,
                               n=value.vtype.n)


def _arith_progression(idx: np.ndarray) -> bool:
    if len(idx) <= 1:
        return True
    d = np.diff(idx)
    return bool(np.all(d == d[0]) and d[0] >= 0)


def emit_visa(fn: Function, bales: BaleInfo) -> VProgram:
    """Lower an optimized Function to legalized vISA."""
    return _Emitter(fn, bales).emit()
