"""Compiled-kernel cache: memoize :func:`repro.compiler.compile_kernel`.

``compile_kernel`` re-runs the full frontend -> passes -> vISA ->
finalizer pipeline on every call, which makes repeated launches of the
same kernel pay the whole compile each time (the production runtimes the
paper targets cache JIT results keyed on source + signature).  This
module provides that cache:

- **Key**: the kernel body callable (identity), the kernel name, the
  surface signature ``(name, is_image)`` tuple, the scalar-parameter
  names, and the ``optimize`` flag.  The cache holds a strong reference
  to the body, so identity keys stay valid for the cache's lifetime.
- **Invalidation**: keys never observe *closure mutation* — if a body
  closes over state and that state changes, call :meth:`KernelCache.
  invalidate` (by kernel name) or :meth:`KernelCache.clear` explicitly.
  Factory functions that rebuild the body callable per configuration get
  a fresh key automatically (each new function object misses once).
- **Bounded**: an optional ``maxsize`` turns the cache into an LRU.
- **Thread-safe**: lookups, insertions, evictions and invalidations are
  serialized by a per-cache re-entrant lock, so one cache can be shared
  by the serving layer's device workers (:mod:`repro.serve`).  A miss
  compiles *inside* the lock: concurrent requests for the same kernel
  wait and then hit instead of compiling twice.

Hit/miss/eviction/invalidation counters are kept per cache and surfaced
through :meth:`repro.sim.device.Device.report`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.compiler.driver import CompiledKernel, compile_kernel
from repro.obs.metrics import MetricsRegistry


@dataclass
class CacheStats:
    """Counters for one :class:`KernelCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def _release_derived(kernel) -> None:
    """Drop a kernel's derived state (plan table, JIT megakernel) when
    it leaves the cache, so long-lived serving processes cannot leak
    plans for programs they will never run again."""
    release = getattr(kernel, "release_derived", None)
    if release is not None:
        release()


def cache_key(body: Callable, name: str,
              surfaces: Sequence[Tuple[str, bool]],
              scalar_params: Sequence[str] = (),
              optimize: bool = True) -> tuple:
    """The memoization key for one ``compile_kernel`` call."""
    return (body, name,
            tuple((str(nm), bool(img)) for nm, img in surfaces),
            tuple(str(p) for p in scalar_params),
            bool(optimize))


class KernelCache:
    """An LRU cache of :class:`CompiledKernel` results."""

    def __init__(self, maxsize: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be a positive int or None")
        self.maxsize = maxsize
        self.stats = CacheStats()
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        # Optional mirror into a metrics registry (Device passes the
        # observability registry when enabled); None keeps lookups free
        # of any registry overhead.
        self._m_hits = self._m_misses = None
        self._m_evictions = self._m_invalidations = None
        if registry is not None:
            self._m_hits = registry.counter(
                "kernel_cache_hits", "compiled-kernel cache hits")
            self._m_misses = registry.counter(
                "kernel_cache_misses", "compiled-kernel cache misses")
            self._m_evictions = registry.counter(
                "kernel_cache_evictions", "LRU evictions")
            self._m_invalidations = registry.counter(
                "kernel_cache_invalidations", "explicit invalidations")

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def contains(self, body: Callable, name: str,
                 surfaces: Sequence[Tuple[str, bool]],
                 scalar_params: Sequence[str] = (),
                 optimize: bool = True) -> bool:
        """True if the exact compile result is resident (no side effects).

        The serving layer's cache-affinity router uses this to steer a
        request to the device whose cache already holds the program.
        """
        key = cache_key(body, name, surfaces, scalar_params, optimize)
        with self._lock:
            return key in self._entries

    def lookup(self, body: Callable, name: str,
               surfaces: Sequence[Tuple[str, bool]],
               scalar_params: Sequence[str] = (),
               optimize: bool = True) -> Tuple[CompiledKernel, bool]:
        """Return ``(kernel, was_hit)``, compiling on miss."""
        key = cache_key(body, name, surfaces, scalar_params, optimize)
        with self._lock:
            kernel = self._entries.get(key)
            if kernel is not None:
                self.stats.hits += 1
                if self._m_hits is not None:
                    self._m_hits.inc()
                self._entries.move_to_end(key)
                return kernel, True
            self.stats.misses += 1
            if self._m_misses is not None:
                self._m_misses.inc()
            kernel = compile_kernel(body, name, surfaces,
                                    scalar_params=scalar_params,
                                    optimize=optimize)
            self._entries[key] = kernel
            if self.maxsize is not None and len(self._entries) > self.maxsize:
                _key, evicted = self._entries.popitem(last=False)
                _release_derived(evicted)
                self.stats.evictions += 1
                if self._m_evictions is not None:
                    self._m_evictions.inc()
            return kernel, False

    def get_or_compile(self, body: Callable, name: str,
                       surfaces: Sequence[Tuple[str, bool]],
                       scalar_params: Sequence[str] = (),
                       optimize: bool = True) -> CompiledKernel:
        kernel, _hit = self.lookup(body, name, surfaces,
                                   scalar_params, optimize)
        return kernel

    def invalidate(self, name: Optional[str] = None,
                   body: Optional[Callable] = None) -> int:
        """Drop entries matching ``name`` and/or ``body``; returns count.

        With no arguments this is :meth:`clear` (everything goes).
        """
        if name is None and body is None:
            return self.clear()
        with self._lock:
            doomed = [k for k in self._entries
                      if (name is None or k[1] == name)
                      and (body is None or k[0] is body)]
            for k in doomed:
                _release_derived(self._entries.pop(k))
            self.stats.invalidations += len(doomed)
            if self._m_invalidations is not None:
                self._m_invalidations.inc(len(doomed))
            return len(doomed)

    def clear(self) -> int:
        with self._lock:
            n = len(self._entries)
            for kernel in self._entries.values():
                _release_derived(kernel)
            self._entries.clear()
            self.stats.invalidations += n
            if self._m_invalidations is not None:
                self._m_invalidations.inc(n)
            return n


#: Process-wide default cache used by :func:`compile_kernel_cached` and
#: (unless overridden) by :class:`repro.sim.device.Device`.
GLOBAL_KERNEL_CACHE = KernelCache()


def compile_kernel_cached(body: Callable, name: str,
                          surfaces: Sequence[Tuple[str, bool]],
                          scalar_params: Sequence[str] = (),
                          optimize: bool = True,
                          cache: Optional[KernelCache] = None) -> CompiledKernel:
    """Drop-in replacement for :func:`compile_kernel` with memoization."""
    cache = cache if cache is not None else GLOBAL_KERNEL_CACHE
    return cache.get_or_compile(body, name, surfaces,
                                scalar_params=scalar_params,
                                optimize=optimize)
