"""Vector constant folding through rdregion/wrregion (Section V).

Extends classic constant folding so that constants propagate through the
region intrinsics: a ``rdregion`` of a constant vector folds to the
gathered constant, a ``wrregion`` of two constants folds to the merged
constant, and element-wise arithmetic on constants folds to its result.
"""

from __future__ import annotations

import numpy as np

from repro.cm.dtypes import convert_values
from repro.compiler.ir import Function, Instr, Value

_FOLDABLE = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "min": np.minimum, "max": np.maximum,
    "and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor,
    "shl": np.left_shift, "shr": np.right_shift, "asr": np.right_shift,
}

#: Shift ops fold in the *result* type: ``shr`` results are unsigned (so
#: numpy's right_shift is logical) and ``asr`` results signed (arithmetic).
_SHIFT_OPS = frozenset({"shl", "shr", "asr"})


def _operand_constant(fn: Function, op) -> np.ndarray | None:
    if isinstance(op, Value):
        return fn.constant_of(op)
    if isinstance(op, (int, float, np.integer, np.floating)):
        return np.asarray(op)
    return None


def _fold_to_constant(fn: Function, instr: Instr, values: np.ndarray) -> None:
    result = instr.result
    arr = convert_values(np.broadcast_to(values, (result.vtype.n,)),
                         result.vtype.dtype)
    fn.constants[result.id] = np.ascontiguousarray(arr)
    instr.op = "constant"
    instr.operands = []
    instr.region = None
    instr.attrs = {}


def constant_fold(fn: Function) -> int:
    """Fold constants in place; returns the number of folded instructions."""
    folded = 0
    for instr in fn.instrs:
        if instr.result is None or instr.op == "constant":
            continue
        if instr.op in _FOLDABLE and len(instr.operands) == 2:
            a = _operand_constant(fn, instr.operands[0])
            b = _operand_constant(fn, instr.operands[1])
            if a is not None and b is not None:
                if instr.op in _SHIFT_OPS:
                    a = convert_values(a, instr.result.vtype.dtype)
                with np.errstate(over="ignore"):
                    _fold_to_constant(fn, instr, _FOLDABLE[instr.op](a, b))
                folded += 1
        elif instr.op == "mov" and len(instr.operands) == 1:
            a = _operand_constant(fn, instr.operands[0])
            if a is not None:
                _fold_to_constant(fn, instr, a)
                folded += 1
        elif instr.op == "rdregion":
            a = _operand_constant(fn, instr.operands[0])
            if a is not None:
                idx = instr.region.element_indices(
                    instr.result.vtype.n, instr.operands[0].vtype.dtype.size)
                _fold_to_constant(fn, instr, a[idx])
                folded += 1
        elif instr.op == "wrregion":
            old = _operand_constant(fn, instr.operands[0])
            new = _operand_constant(fn, instr.operands[1])
            if old is not None and new is not None:
                merged = old.copy()
                idx = instr.region.element_indices(
                    instr.operands[1].vtype.n,
                    instr.operands[0].vtype.dtype.size)
                merged[idx] = new
                _fold_to_constant(fn, instr, merged)
                folded += 1
    return folded
