"""Baling analysis (Section V).

A *bale* is a group of IR instructions that map onto a single vISA/Gen
instruction: the main (root) operation plus

- ``rdregion`` producers folded into source operand regions,
- a type-converting ``mov`` folded into the root's destination,
- a ``wrregion`` consumer folded into the root's destination region.

The analysis marks which instructions are absorbed ("baled in"); emission
then skips them and attaches their region/type information to the root.
An instruction with multiple uses is never baled into one of them (the
real pass clones it instead; cloning is unnecessary here because the
front end produces single-use temporaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.compiler.ir import Function, Instr, Value

#: Root operations that accept source regions / destination regions.
ROOT_OPS = {
    "add", "sub", "mul", "mad", "min", "max", "and", "or", "xor",
    "shl", "shr", "asr", "mov", "sel",
} | {f"cmp.{c}" for c in ("lt", "le", "gt", "ge", "eq", "ne")}


@dataclass
class BaleInfo:
    """Result of baling analysis."""

    #: instruction id -> reason it is absorbed into another instruction
    absorbed: Dict[int, str] = field(default_factory=dict)
    #: root instr id -> {operand index -> source rdregion instr}
    src_regions: Dict[int, Dict[int, Instr]] = field(default_factory=dict)
    #: root instr id -> the wrregion instr acting as its destination
    dst_wrregion: Dict[int, Instr] = field(default_factory=dict)
    #: root instr id -> the conversion mov folded into its destination
    dst_conv: Dict[int, Instr] = field(default_factory=dict)

    def is_absorbed(self, instr: Instr) -> bool:
        return id(instr) in self.absorbed


def _cf_segments(fn: Function) -> Dict[int, int]:
    """instr id -> control-flow segment index (empty when straight-line).

    Every ``simd.*`` marker starts a new segment.  Folding an absorbed
    instruction into a root moves its work to the root's position; when
    the two sit in different segments that move crosses a divergent
    boundary (e.g. a read hoisted into a loop body re-reads mutated
    state every iteration), so bales must stay within one segment.
    """
    seg: Dict[int, int] = {}
    if not any(i.op.startswith("simd.") for i in fn.instrs):
        return seg
    current = 0
    for instr in fn.instrs:
        if instr.op.startswith("simd."):
            current += 1
        seg[id(instr)] = current
    return seg


def analyze_bales(fn: Function) -> BaleInfo:
    info = BaleInfo()
    uses = fn.uses()
    seg = _cf_segments(fn)

    def single_use(v: Value) -> bool:
        return len(uses.get(v.id, ())) == 1

    def same_segment(a: Instr, b: Instr) -> bool:
        return not seg or seg.get(id(a)) == seg.get(id(b))

    # 1. Fold rdregions into their single consumer's source operands.
    for instr in fn.instrs:
        if instr.op not in ROOT_OPS:
            continue
        for i, op in enumerate(instr.operands):
            if not isinstance(op, Value) or op.producer is None:
                continue
            prod = op.producer
            if prod.op == "rdregion" and single_use(op) \
                    and same_segment(prod, instr):
                info.absorbed[id(prod)] = "src_region"
                info.src_regions.setdefault(id(instr), {})[i] = prod

    # 2. Fold a conversion mov into its producer's destination.
    for instr in fn.instrs:
        if instr.op != "mov" or len(instr.operands) != 1:
            continue
        src = instr.operands[0]
        if not isinstance(src, Value) or src.producer is None:
            continue
        prod = src.producer
        if (prod.op in ROOT_OPS and prod.op != "mov" and single_use(src)
                and id(prod) not in info.absorbed
                and src.vtype.n == instr.result.vtype.n
                and same_segment(prod, instr)):
            info.absorbed[id(instr)] = "dst_conv"
            info.dst_conv[id(prod)] = instr

    # 3. Fold wrregions into the producer of their 'new' operand.
    for instr in fn.instrs:
        if instr.op != "wrregion":
            continue
        new = instr.operands[1]
        if not isinstance(new, Value) or new.producer is None:
            continue
        prod = new.producer
        root = prod
        # The producer may itself have been folded as a dst conversion.
        if id(prod) in info.absorbed:
            if info.absorbed[id(prod)] != "dst_conv":
                continue
            root = prod.operands[0].producer
        if (root is not None and root.op in ROOT_OPS and single_use(new)
                and id(root) not in info.dst_wrregion
                and same_segment(root, instr)):
            info.absorbed[id(instr)] = "dst_region"
            info.dst_wrregion[id(root)] = instr
    return info
