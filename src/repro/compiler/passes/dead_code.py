"""Dead vector removal.

Generalized dead-code elimination over vector values: anything not
reachable from a side-effecting instruction (memory writes) is removed.
Additionally, a ``wrregion`` whose written elements are completely
overwritten by a later ``wrregion`` in the same single-use chain is
elided — the element-liveness case the paper's "dead vector removal"
covers.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.ir import Function, Value

SIDE_EFFECTS = {"media.write", "oword.write", "scatter"}


def _elide_overwritten_wrregions(fn: Function) -> int:
    """wrregion chains: drop writes fully shadowed by the next write."""
    uses = fn.uses()
    removed = 0
    for instr in fn.instrs:
        if instr.op != "wrregion":
            continue
        old = instr.operands[0]
        if not isinstance(old, Value) or old.producer is None:
            continue
        prev = old.producer
        if prev.op != "wrregion" or len(uses.get(old.id, ())) != 1:
            continue
        elem = old.vtype.dtype.size
        prev_idx = prev.region.element_indices(prev.operands[1].vtype.n, elem)
        cur_idx = instr.region.element_indices(instr.operands[1].vtype.n, elem)
        if np.isin(prev_idx, cur_idx).all():
            # prev's write is fully shadowed: skip it in the chain.
            instr.operands[0] = prev.operands[0]
            removed += 1
    return removed


def dead_code_eliminate(fn: Function) -> int:
    """Remove dead instructions in place; returns how many were removed."""
    removed = _elide_overwritten_wrregions(fn)
    live: set[int] = set()
    worklist = []
    for instr in fn.instrs:
        if instr.op in SIDE_EFFECTS:
            worklist.append(instr)
    seen_instrs = set()
    while worklist:
        instr = worklist.pop()
        if id(instr) in seen_instrs:
            continue
        seen_instrs.add(id(instr))
        for v in instr.value_operands():
            if v.id not in live:
                live.add(v.id)
                if v.producer is not None:
                    worklist.append(v.producer)
    kept = []
    for instr in fn.instrs:
        if instr.op in SIDE_EFFECTS or (
                instr.result is not None and instr.result.id in live):
            kept.append(instr)
        else:
            removed += 1
            if instr.result is not None:
                fn.constants.pop(instr.result.id, None)
    fn.instrs = kept
    return removed
