"""Region collapsing: instruction combining for rdregion/wrregion.

Patterns folded (Section V's "region collapsing" examples):

- ``rdregion(rdregion(x, R1), R2)`` — composes into a single rdregion
  when the combined element pattern is expressible as a ``<V;W,H>``
  region,
- ``rdregion(wrregion(old, new, R), R)`` with the *same* region —
  forwards ``new`` directly,
- ``wrregion`` that overwrites the whole vector contiguously — becomes
  a plain value forward (the old value is irrelevant).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.compiler.ir import Function, Region, Value


def region_from_indices(indices: np.ndarray,
                        offset_scale: int = 1) -> Optional[Region]:
    """Find ``<V;W,H>`` region parameters reproducing ``indices``.

    Returns None when no single region matches.  ``offset_scale`` converts
    the leading index into the byte offset (element size).
    """
    n = len(indices)
    base = int(indices[0])
    rel = indices - base
    for width in (16, 8, 4, 2, 1):
        if n % width:
            continue
        h = int(rel[1] - rel[0]) if width > 1 else 0
        v = int(rel[width]) if n > width else 0
        i = np.arange(n)
        candidate = (i // width) * v + (i % width) * h
        if np.array_equal(candidate, rel) and h >= 0 and v >= 0:
            if n == width and v == 0:
                v = width * h  # canonical contiguous form, e.g. <16;16,1>
            return Region(vstride=v, width=width, hstride=max(h, 0),
                          offset_bytes=base * offset_scale)
    return None


def _same_region(a: Region, b: Region) -> bool:
    return (a.vstride, a.width, a.hstride, a.offset_bytes) == \
        (b.vstride, b.width, b.hstride, b.offset_bytes)


def region_collapse(fn: Function) -> int:
    """Collapse regions in place; returns the number of rewrites."""
    rewrites = 0
    uses = fn.uses()
    for instr in fn.instrs:
        if instr.op == "rdregion" and "replicate" not in instr.attrs:
            src = instr.operands[0]
            prod = src.producer
            if prod is None:
                continue
            if prod.op == "rdregion" and "replicate" not in prod.attrs:
                elem = prod.operands[0].vtype.dtype.size
                outer = instr.region.element_indices(
                    instr.result.vtype.n, src.vtype.dtype.size)
                inner = prod.region.element_indices(
                    prod.result.vtype.n, elem)
                combined = region_from_indices(inner[outer], elem)
                if combined is not None:
                    instr.operands[0] = prod.operands[0]
                    instr.region = combined
                    rewrites += 1
            elif prod.op == "wrregion" and _same_region(prod.region,
                                                        instr.region):
                new_val = prod.operands[1]
                if new_val.vtype.n == instr.result.vtype.n:
                    _forward(fn, uses, instr.result, new_val)
                    instr.op = "mov"
                    instr.operands = [new_val]
                    instr.region = None
                    rewrites += 1
        elif instr.op == "wrregion":
            old, new = instr.operands[0], instr.operands[1]
            if isinstance(new, Value) and new.vtype.n == old.vtype.n:
                r = instr.region
                if (r.offset_bytes == 0 and r.hstride == 1
                        and r.width >= 1 and _covers_all(r, old)):
                    instr.op = "mov"
                    instr.operands = [new]
                    instr.region = None
                    rewrites += 1
    return rewrites


def _covers_all(region: Region, old: Value) -> bool:
    idx = region.element_indices(old.vtype.n, old.vtype.dtype.size)
    return bool(np.array_equal(np.sort(idx), np.arange(old.vtype.n)))


def _forward(fn: Function, uses, _from: Value, _to: Value) -> None:
    # Left intentionally minimal: the mov this rewrites into is cleaned up
    # by dead-code elimination after copy propagation at bale time.
    del fn, uses, _from, _to
