"""Middle-end passes over the rdregion/wrregion SSA IR (Section V)."""

from repro.compiler.passes.constant_fold import constant_fold
from repro.compiler.passes.region_collapse import region_collapse
from repro.compiler.passes.dead_code import dead_code_eliminate
from repro.compiler.passes.decompose import vector_decompose
from repro.compiler.passes.baling import BaleInfo, analyze_bales
from repro.obs.tracing import trace_span

DEFAULT_PIPELINE = (constant_fold, region_collapse, dead_code_eliminate,
                    vector_decompose)


def run_default_pipeline(fn, kernel=None):
    """Run the standard middle-end optimization pipeline in place.

    Each pass runs under its own ``pass:<name>`` trace span so the
    observability layer can break compile time down per pass.
    """
    kname = kernel if kernel is not None else getattr(fn, "name", None)
    for pass_fn in DEFAULT_PIPELINE:
        with trace_span("pass:" + pass_fn.__name__, kernel=kname):
            pass_fn(fn)
    return fn


__all__ = [
    "constant_fold", "region_collapse", "dead_code_eliminate",
    "vector_decompose", "analyze_bales", "BaleInfo",
    "run_default_pipeline",
]
