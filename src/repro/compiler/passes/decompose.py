"""Vector decomposition (Section V).

If a large vector can be divided into segments whose rdregions and
wrregions are disjoint, it is split into multiple small vectors, which
increases the register allocator's flexibility (smaller, independently
placeable live ranges instead of one monolithic block).

This implementation handles the common case: a vector variable whose
entire wrregion chain and all rdregions partition cleanly at a half
boundary.  Each half becomes its own SSA chain; accesses are re-based
into the half they fall in.  The pass iterates, so a 4-way splittable
vector decomposes in two rounds of :func:`vector_decompose`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


from repro.compiler.ir import Function, Instr, Region, Value, VecType


def _chain_of(fn: Function, uses) -> List[List[Instr]]:
    """Collect wrregion chains rooted at constants (vector variables)."""
    chains = []
    for instr in fn.instrs:
        if instr.op != "constant":
            continue
        chain = [instr]
        cur = instr.result
        while True:
            consumers = [u for u in uses.get(cur.id, []) if u.op == "wrregion"
                         and u.operands[0] is cur]
            if len(consumers) != 1:
                break
            chain.append(consumers[0])
            cur = consumers[0].result
        if len(chain) > 1:
            chains.append(chain)
    return chains


def _access_span(instr: Instr, elem: int) -> Tuple[int, int]:
    """(first, last) element index touched by a region access."""
    if instr.op == "rdregion":
        n = instr.result.vtype.n
    else:
        n = instr.operands[1].vtype.n
    idx = instr.region.element_indices(n, elem)
    return int(idx.min()), int(idx.max())


def vector_decompose(fn: Function) -> int:
    """Split half-separable vector chains in place; returns split count."""
    uses = fn.uses()
    splits = 0
    for chain in _chain_of(fn, uses):
        base = chain[0].result
        n = base.vtype.n
        if n < 4 or n % 2:
            continue
        half = n // 2
        elem = base.vtype.dtype.size
        accesses: List[Tuple[Instr, int]] = []  # (instr, half index)
        ok = True
        versions = [c.result for c in chain]
        for version in versions:
            for user in uses.get(version.id, []):
                if user.op == "rdregion":
                    lo, hi = _access_span(user, elem)
                elif user.op == "wrregion" and user.operands[0] is version:
                    lo, hi = _access_span(user, elem)
                else:
                    ok = False
                    break
                if hi < half:
                    accesses.append((user, 0))
                elif lo >= half:
                    accesses.append((user, 1))
                else:
                    ok = False
                    break
            if not ok:
                break
        if not ok or not accesses:
            continue

        splits += 1
        halves = _split_chain(fn, chain, half, accesses)
        del halves
        uses = fn.uses()
    return splits


def _split_chain(fn: Function, chain: List[Instr], half: int,
                 accesses: List[Tuple[Instr, int]]) -> None:
    base_instr = chain[0]
    base = base_instr.result
    elem = base.vtype.dtype.size
    const = fn.constants[base.id]
    htype = VecType(base.vtype.dtype, half)

    # Two fresh constant roots.
    lo_val = Value(htype, name=f"{base.name}.lo")
    hi_val = Value(htype, name=f"{base.name}.hi")
    lo_instr = Instr("constant", lo_val)
    hi_instr = Instr("constant", hi_val)
    fn.constants[lo_val.id] = const[:half].copy()
    fn.constants[hi_val.id] = const[half:].copy()

    pos = fn.instrs.index(base_instr)
    fn.instrs[pos:pos + 1] = [lo_instr, hi_instr]
    fn.constants.pop(base.id, None)

    which: Dict[int, int] = {id(instr): h for instr, h in accesses}
    current = [lo_val, hi_val]
    # For every whole-vector version, the (lo, hi) half values live there.
    snapshots: Dict[int, Tuple[Value, Value]] = {
        base.id: (lo_val, hi_val)}

    for instr in chain[1:]:
        h = which[id(instr)]
        r = instr.region
        offset = r.offset_bytes - (half * elem if h else 0)
        instr.operands[0] = current[h]
        instr.region = Region(r.vstride, r.width, r.hstride, offset)
        old_result = instr.result
        new_result = Value(htype, name=f"{old_result.name}.h{h}")
        instr.result = new_result
        new_result.producer = instr
        current = list(current)
        current[h] = new_result
        snapshots[old_result.id] = (current[0], current[1])

    # Point every rdregion at the half value live at the version it read.
    for instr, h in accesses:
        if instr.op != "rdregion":
            continue
        version = instr.operands[0]
        if isinstance(version, Value) and version.id in snapshots:
            instr.operands[0] = snapshots[version.id][h]
        r = instr.region
        instr.region = Region(r.vstride, r.width, r.hstride,
                              r.offset_bytes - (half * elem if h else 0))
