"""Trace-mode front end: CM kernels to SSA IR.

A restricted CM kernel (Python loops unroll at trace time; *scalar*
control flow must not depend on traced values; per-lane divergence goes
through :func:`simd_if` / :func:`simd_while`, which emit structured-CF
markers) is executed with *trace vectors* that build IR instead of
computing.  Matrices are flattened to vectors — exactly what CMC does —
and every ``select`` becomes a ``rdregion`` (reads) or ``wrregion``
(writes).

The traced kernel's surface arguments are declared via ``params``;
integer arguments (thread coordinates etc.) become symbolic scalars that
lower to scalar IR, so one compiled binary serves every thread.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cm.dtypes import as_cm_dtype, common_type, scalar_dtype
from repro.compiler.ir import (
    Function, Instr, Region, SurfaceParam, Value, VecType, make_constant,
)
from repro.isa.dtypes import D, DType, UW

_BIN_OPS = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply,
    "min": np.minimum, "max": np.maximum,
    "and": np.bitwise_and, "or": np.bitwise_or, "xor": np.bitwise_xor,
    "shl": np.left_shift, "shr": np.right_shift, "asr": np.right_shift,
}


class TraceError(RuntimeError):
    """The kernel used a feature the trace front end does not support."""


class _Tracer:
    """Builds one Function while a kernel body runs."""

    def __init__(self, name: str) -> None:
        self.fn = Function(name)
        #: nesting depth of divergent (simd_if / simd_while) regions.
        #: When positive, whole-variable writes merge into the existing
        #: storage class instead of rebinding, so inactive lanes keep
        #: their values and loop bodies see loop-carried state.
        self.cf_depth = 0

    def emit(self, op: str, result_type: Optional[VecType],
             operands: Sequence = (), region: Optional[Region] = None,
             attrs: Optional[dict] = None) -> Optional[Value]:
        result = Value(result_type) if result_type is not None else None
        self.fn.append(Instr(op, result, operands, region=region, attrs=attrs))
        return result

    def constant(self, values, dtype: DType) -> Value:
        return make_constant(self.fn, np.asarray(values), dtype)


# Thread-local: device workers compile concurrently, and a module-wide
# tracer slot would let one thread's trace teardown clobber another's
# in-flight trace.
_trace_state = threading.local()


def _tracer() -> _Tracer:
    tracer = getattr(_trace_state, "tracer", None)
    if tracer is None:
        raise TraceError("no kernel is being traced")
    return tracer


class TraceScalar:
    """A symbolic integer (kernel parameter or address arithmetic)."""

    def __init__(self, value: Value) -> None:
        self.value = value

    def _binop(self, other, op: str, reverse: bool = False) -> "TraceScalar":
        tr = _tracer()
        if isinstance(other, TraceScalar):
            rhs = other.value
        elif isinstance(other, (int, np.integer)):
            rhs = int(other)
        else:
            raise TraceError(f"cannot mix {type(other).__name__} into "
                             "scalar address arithmetic")
        if op == "shr":
            op = "asr"  # scalars compute in :d — C >> on signed is arithmetic
        a, b = (rhs, self.value) if reverse else (self.value, rhs)
        out = tr.emit(op, VecType(D, 1), [a, b])
        return TraceScalar(out)

    def __add__(self, o): return self._binop(o, "add")
    def __radd__(self, o): return self._binop(o, "add", reverse=True)
    def __sub__(self, o): return self._binop(o, "sub")
    def __mul__(self, o): return self._binop(o, "mul")
    def __rmul__(self, o): return self._binop(o, "mul", reverse=True)
    def __lshift__(self, o): return self._binop(o, "shl")
    def __rshift__(self, o): return self._binop(o, "shr")

    def __repr__(self) -> str:
        return f"TraceScalar({self.value!r})"


ScalarOrTrace = Union[int, TraceScalar]


class TraceRef:
    """A region reference into a trace variable (select/row/column)."""

    def __init__(self, var: "TraceVar", region: Region, n: int,
                 shape: Tuple[int, ...]) -> None:
        self.var = var
        self.region = region
        self.n = n
        self.shape = shape
        self.dtype = var.dtype

    # reads ---------------------------------------------------------------

    def _read_value(self) -> Value:
        tr = _tracer()
        return tr.emit("rdregion", VecType(self.dtype, self.n),
                       [self.var.current], region=self.region)

    def _as_temp(self) -> "TraceTemp":
        return TraceTemp(self._read_value(), self.dtype, self.shape)

    def __add__(self, o): return self._as_temp() + o
    def __sub__(self, o): return self._as_temp() - o
    def __mul__(self, o): return self._as_temp() * o
    def select(self, *args, **kw):
        return self._as_temp_ref_error()

    def _as_temp_ref_error(self):
        raise TraceError("nested selects are not supported by the trace "
                         "front end; collapse them in the kernel source")

    # writes --------------------------------------------------------------

    def assign(self, value) -> "TraceRef":
        tr = _tracer()
        new = _coerce_to_value(value, self.dtype, self.n)
        updated = tr.emit("wrregion", self.var.current.vtype,
                          [self.var.current, new], region=self.region)
        self.var.current = updated
        return self

    def __iadd__(self, o):
        self.assign(self._as_temp() + o)
        return self

    def __isub__(self, o):
        self.assign(self._as_temp() - o)
        return self

    def __imul__(self, o):
        self.assign(self._as_temp() * o)
        return self


class _Arith:
    """Shared arithmetic for temps and variables."""

    dtype: DType
    shape: Tuple[int, ...]

    def _value(self) -> Value:
        raise NotImplementedError

    @property
    def n(self) -> int:
        return int(np.prod(self.shape))

    def _binop(self, other, op: str, reverse: bool = False) -> "TraceTemp":
        tr = _tracer()
        a = self._value()
        if isinstance(other, (TraceTemp, TraceVar)):
            b = other._value()
            b_dt = other.dtype
        elif isinstance(other, TraceRef):
            b = other._read_value()
            b_dt = other.dtype
        elif isinstance(other, TraceScalar):
            b = other.value  # scalar register, broadcast by the region
            b_dt = D
        elif isinstance(other, (int, float, np.integer, np.floating)):
            b_dt = scalar_dtype(other)
            b = other
        elif isinstance(other, (np.ndarray, list, tuple)):
            arr = np.asarray(other)
            b_dt = as_cm_dtype(arr.dtype)
            b = tr.constant(arr, b_dt)
        else:
            raise TraceError(f"cannot trace operand {type(other).__name__}")
        exec_dt = common_type(self.dtype, b_dt)
        if op == "shr" and exec_dt.is_signed and not exec_dt.is_float:
            op = "asr"  # C semantics: >> on a signed type is arithmetic
        ops = [b, a] if reverse else [a, b]
        out = tr.emit(op, VecType(exec_dt, self.n), ops)
        return TraceTemp(out, exec_dt, self.shape)

    def __add__(self, o): return self._binop(o, "add")
    def __radd__(self, o): return self._binop(o, "add", reverse=True)
    def __sub__(self, o): return self._binop(o, "sub")
    def __rsub__(self, o): return self._binop(o, "sub", reverse=True)
    def __mul__(self, o): return self._binop(o, "mul")
    def __rmul__(self, o): return self._binop(o, "mul", reverse=True)
    def __and__(self, o): return self._binop(o, "and")
    def __or__(self, o): return self._binop(o, "or")
    def __xor__(self, o): return self._binop(o, "xor")
    def __lshift__(self, o): return self._binop(o, "shl")
    def __rshift__(self, o): return self._binop(o, "shr")

    def _cmp(self, other, cond: str) -> "TraceTemp":
        tr = _tracer()
        a = self._value()
        if isinstance(other, (TraceTemp, TraceVar)):
            b = other._value()
        elif isinstance(other, TraceScalar):
            b = other.value
        elif isinstance(other, TraceRef):
            b = other._read_value()
        else:
            b = other
        out = tr.emit(f"cmp.{cond}", VecType(UW, self.n), [a, b])
        return TraceTemp(out, UW, self.shape)

    def __lt__(self, o): return self._cmp(o, "lt")
    def __le__(self, o): return self._cmp(o, "le")
    def __gt__(self, o): return self._cmp(o, "gt")
    def __ge__(self, o): return self._cmp(o, "ge")
    def __eq__(self, o): return self._cmp(o, "eq")   # noqa: A003
    def __ne__(self, o): return self._cmp(o, "ne")   # noqa: A003

    __hash__ = None


class TraceTemp(_Arith):
    """The SSA result of an expression."""

    def __init__(self, value: Value, dtype: DType,
                 shape: Tuple[int, ...]) -> None:
        self.value = value
        self.dtype = dtype
        self.shape = shape

    def _value(self) -> Value:
        return self.value


class TraceVar(_Arith):
    """A named CM vector/matrix variable (mutable; SSA via versioning)."""

    def __init__(self, dtype, shape: Tuple[int, ...], init=None,
                 name: str = "") -> None:
        tr = _tracer()
        self.dtype = as_cm_dtype(dtype)
        self.shape = shape
        n = int(np.prod(shape))
        if init is None:
            init = np.zeros(n, dtype=self.dtype.np_dtype)
        if isinstance(init, (int, float, np.integer, np.floating)):
            init = np.full(n, init, dtype=self.dtype.np_dtype)
        if isinstance(init, (np.ndarray, list, tuple)):
            self.current = tr.constant(
                np.asarray(init).reshape(-1).astype(self.dtype.np_dtype),
                self.dtype)
        else:
            raise TraceError("trace variables initialize from constants")
        if name:
            self.current.name = name

    def _value(self) -> Value:
        return self.current

    # -- regions --------------------------------------------------------

    def select(self, *args) -> TraceRef:
        if len(self.shape) == 1:
            size, stride, offset = (list(args) + [0])[:3] if len(args) >= 2 \
                else (args[0], 1, 0)
            region = Region(vstride=size * stride, width=size,
                            hstride=stride,
                            offset_bytes=offset * self.dtype.size)
            return TraceRef(self, region, size, (size,))
        vsize, vstride, hsize, hstride = args[:4]
        i, j = (list(args[4:]) + [0, 0])[:2]
        cols = self.shape[1]
        region = Region(vstride=vstride * cols, width=hsize,
                        hstride=hstride,
                        offset_bytes=(i * cols + j) * self.dtype.size)
        return TraceRef(self, region, vsize * hsize, (vsize, hsize))

    def row(self, i: int) -> TraceRef:
        cols = self.shape[1]
        region = Region(vstride=cols, width=cols, hstride=1,
                        offset_bytes=i * cols * self.dtype.size)
        return TraceRef(self, region, cols, (cols,))

    def column(self, j: int) -> TraceRef:
        rows, cols = self.shape
        region = Region(vstride=cols, width=1, hstride=0,
                        offset_bytes=j * self.dtype.size)
        return TraceRef(self, region, rows, (rows,))

    def replicate(self, rep: int, vstride: int = 0, width: int = 1,
                  hstride: int = 0, offset: int = 0) -> TraceTemp:
        tr = _tracer()
        region = Region(vstride=vstride, width=width, hstride=hstride,
                        offset_bytes=offset * self.dtype.size)
        out = tr.emit("rdregion", VecType(self.dtype, rep * width),
                      [self.current], region=region,
                      attrs={"replicate": rep})
        return TraceTemp(out, self.dtype, (rep * width,))

    # -- whole-variable assignment ----------------------------------------

    def _write_back(self, out: Value) -> Value:
        """Bind a whole-variable write.

        Outside divergent control flow this is a plain SSA rebind.
        Inside a ``simd_if``/``simd_while`` region the new value is
        merged into the variable's existing storage with a full-width
        ``wrregion``: the wrregion keeps the storage class alive, so the
        finalized mov executes under the region's emask — inactive lanes
        keep their old values and loop iterations see carried state.
        """
        tr = _tracer()
        if tr.cf_depth:
            region = Region(vstride=self.n, width=self.n, hstride=1,
                            offset_bytes=0)
            out = tr.emit("wrregion", self.current.vtype,
                          [self.current, out], region=region)
        self.current = out
        return out

    def assign(self, value) -> "TraceVar":
        self._write_back(_coerce_to_value(value, self.dtype, self.n))
        return self

    def merge(self, x, mask, y=None) -> "TraceVar":
        tr = _tracer()
        if y is not None:
            x, y, mask = x, mask, y
        mask_val = _coerce_to_value(mask, UW, self.n)
        xv = _coerce_to_value(x, self.dtype, self.n)
        if y is None:
            out = tr.emit("sel", VecType(self.dtype, self.n),
                          [mask_val, xv, self.current])
        else:
            yv = _coerce_to_value(y, self.dtype, self.n)
            out = tr.emit("sel", VecType(self.dtype, self.n),
                          [mask_val, xv, yv])
        self._write_back(out)
        return self

    def __iadd__(self, o):
        self.assign(self._binop(o, "add"))
        return self

    def __isub__(self, o):
        self.assign(self._binop(o, "sub"))
        return self

    def __imul__(self, o):
        self.assign(self._binop(o, "mul"))
        return self


def _coerce_to_value(value, dtype: DType, n: int) -> Value:
    """Get an SSA Value of <n x dtype> from any traceable operand."""
    tr = _tracer()
    if isinstance(value, TraceRef):
        value = value._as_temp()
    if isinstance(value, (TraceTemp, TraceVar)):
        src = value._value()
        if value.dtype is not dtype:
            src = tr.emit("mov", VecType(dtype, n), [src])
        elif isinstance(value, (TraceRef,)):
            pass
        return src
    if isinstance(value, TraceScalar):
        # a symbolic scalar (kernel parameter / address arithmetic):
        # broadcast it across the lanes with a mov whose 1-wide source
        # region splats during legalization.
        return tr.emit("mov", VecType(dtype, n), [value.value])
    if isinstance(value, (int, float, np.integer, np.floating)):
        return tr.constant(np.full(n, value, dtype=dtype.np_dtype), dtype)
    if isinstance(value, (np.ndarray, list, tuple)):
        arr = np.asarray(value).reshape(-1).astype(dtype.np_dtype)
        if arr.size != n:
            raise TraceError(f"constant has {arr.size} elements, need {n}")
        return tr.constant(arr, dtype)
    raise TraceError(f"cannot assign {type(value).__name__}")


# -- memory intrinsics (trace mode) --------------------------------------------


def _scalar_operand(x: ScalarOrTrace):
    return x.value if isinstance(x, TraceScalar) else int(x)


def read(surface: SurfaceParam, arg0, arg1=None, arg2=None,
         aligned: bool = True) -> None:
    """Trace-mode ``cm.read``: media block (image) or oword block (buffer)."""
    tr = _tracer()
    if surface.is_image:
        m = arg2
        rows, cols = m.shape
        out = tr.emit("media.read", VecType(m.dtype, m.n),
                      [surface.bti, _scalar_operand(arg0),
                       _scalar_operand(arg1)],
                      attrs={"width": cols * m.dtype.size, "height": rows})
        m._write_back(out)
    else:
        v = arg1
        out = tr.emit("oword.read", VecType(v.dtype, v.n),
                      [surface.bti, _scalar_operand(arg0)],
                      attrs={"aligned": aligned})
        v._write_back(out)


def write(surface: SurfaceParam, arg0, arg1=None, arg2=None) -> None:
    """Trace-mode ``cm.write``."""
    tr = _tracer()
    if surface.is_image:
        m = arg2
        rows, cols = m.shape
        tr.emit("media.write", None,
                [surface.bti, _scalar_operand(arg0), _scalar_operand(arg1),
                 m._value()],
                attrs={"width": cols * m.dtype.size, "height": rows})
    else:
        v = arg1
        tr.emit("oword.write", None,
                [surface.bti, _scalar_operand(arg0), v._value()])


def read_scattered(surface: SurfaceParam, global_offset, element_offsets,
                   ret: TraceVar) -> None:
    tr = _tracer()
    offs = _coerce_to_value(element_offsets, as_cm_dtype(np.uint32), ret.n)
    out = tr.emit("gather", VecType(ret.dtype, ret.n),
                  [surface.bti, _scalar_operand(global_offset), offs])
    ret._write_back(out)


def write_scattered(surface: SurfaceParam, global_offset, element_offsets,
                    values) -> None:
    tr = _tracer()
    n = values.n
    offs = _coerce_to_value(element_offsets, as_cm_dtype(np.uint32), n)
    tr.emit("scatter", None,
            [surface.bti, _scalar_operand(global_offset), offs,
             values._value()])


# -- SIMD (divergent) control flow, trace mode ---------------------------------
#
# The eager path interprets divergence with a mask stack
# (:mod:`repro.cm.simd_cf`); trace mode instead emits structured
# ``simd.*`` IR markers that lower to the masked-CF Gen opcodes
# (SIMD_IF/ELSE/ENDIF/DO/WHILE/BREAK).  Conditions are full-width UW
# vectors (cmp results); the vISA emitter turns each one into a
# ``cmp.ne f0, cond, 0`` plus the predicated CF instruction.


class SimdIfTrace:
    """Trace-mode ``simd_if``: emits ``simd.if`` ... ``simd.endif``."""

    def __init__(self, cond) -> None:
        self._cond = cond
        self._entered = False
        self._width = 0

    def __enter__(self) -> "SimdIfTrace":
        tr = _tracer()
        cond = self._cond
        n = getattr(cond, "n", None)
        if n is None:
            raise TraceError("simd_if needs a traced vector condition")
        tr.emit("simd.if", None, [_coerce_to_value(cond, UW, n)],
                attrs={"width": n})
        tr.cf_depth += 1
        self._entered = True
        self._width = n
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            tr = _tracer()
            tr.cf_depth -= 1
            tr.emit("simd.endif", None, [], attrs={"width": self._width})
        return False

    def orelse(self) -> "SimdElseTrace":
        """The else-block; must open immediately after the if-block."""
        if not self._entered:
            raise TraceError("orelse() before the simd_if block ran")
        return SimdElseTrace(self._width)


class SimdElseTrace:
    """Rewrites the just-emitted ``simd.endif`` into ``simd.else``."""

    def __init__(self, width: int) -> None:
        self._width = width

    def __enter__(self) -> "SimdElseTrace":
        tr = _tracer()
        instrs = tr.fn.instrs
        if not instrs or instrs[-1].op != "simd.endif":
            raise TraceError(
                "orelse() must immediately follow its simd_if block; no "
                "instructions may be traced between the two blocks")
        instrs[-1].op = "simd.else"
        tr.cf_depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            tr = _tracer()
            tr.cf_depth -= 1
            tr.emit("simd.endif", None, [], attrs={"width": self._width})
        return False


def simd_if(cond) -> SimdIfTrace:
    """Open a divergent if-region in the traced kernel."""
    return SimdIfTrace(cond)


def simd_while(body_fn: Callable) -> None:
    """Trace a lane-divergent do-while loop.

    ``body_fn()`` is traced exactly once; it must return the loop
    condition (a traced UW vector).  Lanes whose condition is non-zero
    re-enter the body; the loop reconverges when every lane's condition
    is zero.  Variables carried across iterations must be created
    *before* the loop (their in-loop writes become masked merges into
    the pre-loop storage).
    """
    tr = _tracer()
    tr.emit("simd.do", None, [])
    tr.cf_depth += 1
    cond = body_fn()
    if cond is None:
        raise TraceError("simd_while body must return the loop condition")
    n = getattr(cond, "n", None)
    if n is None:
        raise TraceError("simd_while needs a traced vector condition")
    cv = _coerce_to_value(cond, UW, n)
    tr.cf_depth -= 1
    tr.emit("simd.while", None, [cv], attrs={"width": n})


def simd_break_if(cond) -> None:
    """Deactivate lanes (until the loop exits) where ``cond`` is true."""
    tr = _tracer()
    if tr.cf_depth == 0:
        raise TraceError("simd_break_if outside a simd_while loop")
    n = getattr(cond, "n", None)
    if n is None:
        raise TraceError("simd_break_if needs a traced vector condition")
    tr.emit("simd.break", None, [_coerce_to_value(cond, UW, n)],
            attrs={"width": n})


def cm_min(a, b) -> TraceTemp:
    """Elementwise minimum (mirrors the eager ``cm.cm_min``)."""
    return a._binop(b, "min")


def cm_max(a, b) -> TraceTemp:
    """Elementwise maximum (mirrors the eager ``cm.cm_max``)."""
    return a._binop(b, "max")


# -- the tracing entry point ---------------------------------------------------


def trace_kernel(body: Callable, name: str,
                 surfaces: Sequence[Tuple[str, bool]],
                 scalar_params: Sequence[str] = ()) -> Function:
    """Trace ``body`` into a :class:`Function`.

    ``surfaces`` is a list of (name, is_image) pairs assigned consecutive
    binding-table indices; ``scalar_params`` become symbolic integers.
    ``body`` is called as ``body(cmx, *surface_params, *scalar_traces)``
    where ``cmx`` is this module (providing the trace-mode CM API).
    """
    import repro.compiler.frontend as cmx

    tracer = _Tracer(name)
    _trace_state.tracer = tracer
    try:
        params = [SurfaceParam(nm, bti, is_image)
                  for bti, (nm, is_image) in enumerate(surfaces)]
        tracer.fn.params = params
        scalars = []
        for nm in scalar_params:
            val = tracer.emit("param", VecType(D, 1), [], attrs={"name": nm})
            val.name = nm
            scalars.append(TraceScalar(val))
        body(cmx, *params, *scalars)
        if tracer.cf_depth:
            raise TraceError("kernel returned inside a divergent region "
                             "(unbalanced simd_if/simd_while)")
    finally:
        _trace_state.tracer = None
    return tracer.fn


# Convenience constructors mirroring the eager cm API.


def vector(dtype, n: int, init=None) -> TraceVar:
    return TraceVar(dtype, (n,), init)


def matrix(dtype, rows: int, cols: int, init=None) -> TraceVar:
    return TraceVar(dtype, (rows, cols), init)
