"""The finalizer: register allocation and Gen ISA encoding.

Takes legalized vISA, performs linear-scan register allocation onto the
128 x 32-byte GRF (reserving r0 for the thread payload and the top
registers for spill staging), inserts spill/fill code around accesses to
virtual registers that did not get a physical home (scratch lives in a
dedicated scratch surface at BTI 255, like the real stack/scratch space),
and encodes executable :class:`repro.isa.instructions.Instruction`
objects for the functional executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


from repro.compiler.visa import (
    CompileError, VImm, VInstr, VOperand, VProgram, VReg, VVectorImm,
)
from repro.isa.dtypes import DType, UD
from repro.isa.grf import GRF_SIZE_BYTES, NUM_GRF, RegOperand
from repro.isa.instructions import (
    FlagOperand,
    Immediate,
    Instruction,
    MessageDesc,
    MsgKind,
    Opcode,
    Predicate,
)
from repro.isa.regions import Region

#: Binding-table index of the scratch (spill) surface.
SCRATCH_BTI = 255
#: First allocatable register (r0 is the hardware thread payload).
FIRST_REG = 1
#: Registers reserved at the top of the file for spill staging: three
#: slots of two GRFs each (dst + two sources can all be spilled).
SPILL_STAGING_REGS = 6


@dataclass
class Allocation:
    """Where each virtual register ended up."""

    grf_offset: Dict[int, int] = field(default_factory=dict)   # vreg id -> byte
    scratch_offset: Dict[int, int] = field(default_factory=dict)
    scratch_bytes: int = 0
    spills: int = 0
    max_grf_bytes: int = 0


def _live_ranges(prog: VProgram) -> Dict[int, Tuple[int, int]]:
    ranges: Dict[int, Tuple[int, int]] = {}

    def touch(vreg: VReg, pos: int) -> None:
        lo, hi = ranges.get(vreg.id, (pos, pos))
        ranges[vreg.id] = (min(lo, pos), max(hi, pos))

    loops: List[Tuple[int, int]] = []
    do_stack: List[int] = []
    for pos, instr in enumerate(prog.instrs):
        if instr.op is Opcode.SIMD_DO:
            do_stack.append(pos)
        elif instr.op is Opcode.SIMD_WHILE and do_stack:
            loops.append((do_stack.pop(), pos))
        if instr.dst is not None:
            touch(instr.dst.vreg, pos)
        for s in instr.srcs:
            if isinstance(s, VOperand):
                touch(s.vreg, pos)
        if instr.msg:
            for key in ("x", "y", "offset", "global_offset", "payload",
                        "addr"):
                v = instr.msg.get(key)
                if isinstance(v, VOperand):
                    touch(v.vreg, pos)
    # Parameters are written before the program runs.
    for vreg in prog.params.values():
        lo, hi = ranges.get(vreg.id, (0, 0))
        ranges[vreg.id] = (0, max(hi, 0))
    # Linear positions lie about loops: a vreg live anywhere inside a
    # [do, while] region may be read again via the back edge, so its
    # range must cover the whole region or the allocator could recycle
    # its register mid-loop.  Inner loops pop first, so nested regions
    # extend inside-out.
    for do_pos, while_pos in loops:
        for vid, (lo, hi) in ranges.items():
            if lo <= while_pos and hi >= do_pos:
                ranges[vid] = (min(lo, do_pos), max(hi, while_pos))
    return ranges


def allocate_registers(prog: VProgram,
                       num_grf: int = NUM_GRF) -> Allocation:
    """Linear-scan allocation; vregs that do not fit go to scratch."""
    alloc = Allocation()
    ranges = _live_ranges(prog)
    capacity = (num_grf - SPILL_STAGING_REGS) * GRF_SIZE_BYTES
    base = FIRST_REG * GRF_SIZE_BYTES
    # [start_byte, end_byte, expiry, vreg_id]
    active: List[Tuple[int, int, int, int]] = []
    order = sorted(((ranges[v.id][0], v) for v in prog.vregs
                    if v.id in ranges), key=lambda t: (t[0], t[1].id))
    for start_pos, vreg in order:
        size = -(-vreg.size_bytes // GRF_SIZE_BYTES) * GRF_SIZE_BYTES
        expiry = ranges[vreg.id][1]
        active = [a for a in active if a[2] >= start_pos]
        # first-fit scan of the free space
        taken = sorted((a[0], a[1]) for a in active)
        cursor = base
        placed = None
        for lo, hi in taken:
            if cursor + size <= lo:
                placed = cursor
                break
            cursor = max(cursor, hi)
        if placed is None and cursor + size <= capacity:
            placed = cursor
        if placed is None:
            # Spill: whole-vreg scratch slot, staged through reserved regs.
            if vreg.size_bytes > 2 * GRF_SIZE_BYTES:
                raise CompileError(
                    f"virtual register {vreg!r} is too large to spill")
            alloc.scratch_offset[vreg.id] = alloc.scratch_bytes
            alloc.scratch_bytes += size
            alloc.spills += 1
            continue
        active.append((placed, placed + size, expiry, vreg.id))
        alloc.grf_offset[vreg.id] = placed
        alloc.max_grf_bytes = max(alloc.max_grf_bytes, placed + size)
    return alloc


class _Encoder:
    """vISA -> executable Gen instructions, with spill/fill insertion."""

    def __init__(self, prog: VProgram, alloc: Allocation) -> None:
        self.prog = prog
        self.alloc = alloc
        self.out: List[Instruction] = []
        base = (NUM_GRF - SPILL_STAGING_REGS) * GRF_SIZE_BYTES
        slot = 2 * GRF_SIZE_BYTES
        self._staging_slots = (base, base + slot, base + 2 * slot)
        self._current_staging: Dict[int, int] = {}

    # -- operand encoding ----------------------------------------------------

    def _vreg_base(self, vreg: VReg) -> Optional[int]:
        return self.alloc.grf_offset.get(vreg.id)

    def _encode_operand(self, op: VOperand, exec_size: int,
                        is_dst: bool) -> RegOperand:
        base = self._vreg_base(op.vreg)
        if base is None:  # spilled: staged at the reserved top registers
            base = self._current_staging[op.vreg.id]
        byte = base + op.offset_bytes
        if byte % op.dtype.size:
            raise CompileError(
                f"misaligned operand at byte {byte} for {op.dtype.name}")
        reg, rem = divmod(byte, GRF_SIZE_BYTES)
        subreg = rem // op.dtype.size
        if rem % op.dtype.size:
            raise CompileError("sub-register offset not element aligned")
        if is_dst:
            return RegOperand(reg, subreg, op.dtype,
                              dst_stride=op.dst_stride)
        region = Region(op.vstride, op.width, op.hstride) \
            if op.width else Region.scalar()
        return RegOperand(reg, subreg, op.dtype, region=region)

    # -- spill plumbing -----------------------------------------------------

    def _fill(self, vreg: VReg, staging_base: int) -> None:
        """Load a spilled vreg from scratch into a staging slot."""
        off = self.alloc.scratch_offset[vreg.id]
        size = -(-vreg.size_bytes // 16) * 16
        self.out.append(Instruction(
            Opcode.SEND,
            msg=MessageDesc(
                kind=MsgKind.OWORD_BLOCK_READ, surface=SCRATCH_BTI,
                addr0=Immediate(off, UD),
                payload_reg=staging_base // GRF_SIZE_BYTES,
                payload_bytes=size),
            comment=f"fill {vreg.name or vreg.id}"))

    def _spill(self, vreg: VReg, staging_base: int) -> None:
        off = self.alloc.scratch_offset[vreg.id]
        size = -(-vreg.size_bytes // 16) * 16
        self.out.append(Instruction(
            Opcode.SEND,
            msg=MessageDesc(
                kind=MsgKind.OWORD_BLOCK_WRITE, surface=SCRATCH_BTI,
                addr0=Immediate(off, UD),
                payload_reg=staging_base // GRF_SIZE_BYTES,
                payload_bytes=size),
            comment=f"spill {vreg.name or vreg.id}"))

    def _spilled_operands(self, instr: VInstr) -> List[VReg]:
        seen = []
        def check(op):
            if isinstance(op, VOperand) and \
                    op.vreg.id in self.alloc.scratch_offset and \
                    op.vreg not in seen:
                seen.append(op.vreg)
        for s in instr.srcs:
            check(s)
        if instr.dst is not None:
            check(instr.dst)
        if instr.msg:
            for key in ("x", "y", "offset", "global_offset", "payload",
                        "addr"):
                check(instr.msg.get(key))
        return seen

    # -- instruction encoding -----------------------------------------------

    def encode(self) -> List[Instruction]:
        for instr in self.prog.instrs:
            spilled = self._spilled_operands(instr)
            if len(spilled) > len(self._staging_slots):
                raise CompileError(
                    f"{len(spilled)} spilled operands in one instruction "
                    f"exceed the {len(self._staging_slots)} staging slots")
            self._current_staging = {}
            for slot, vreg in zip(self._staging_slots, spilled):
                self._current_staging[vreg.id] = slot
                self._fill(vreg, slot)
            if instr.op is Opcode.SEND:
                self._encode_send(instr)
            else:
                self._encode_alu(instr)
            if instr.dst is not None and \
                    instr.dst.vreg.id in self.alloc.scratch_offset:
                self._spill(instr.dst.vreg,
                            self._current_staging[instr.dst.vreg.id])
        return self.out

    def _encode_alu(self, instr: VInstr) -> None:
        srcs = []
        for s in instr.srcs:
            if isinstance(s, VImm):
                srcs.append(Immediate(s.value, s.dtype))
            elif isinstance(s, VVectorImm):
                srcs.append(VectorImmediate(tuple(s.values.tolist()), s.dtype))
            else:
                srcs.append(self._encode_operand(s, instr.exec_size, False))
        dst = None
        if instr.dst is not None:
            dst = self._encode_operand(instr.dst, instr.exec_size, True)
        pred = None
        if instr.pred_flag is not None:
            pred = Predicate(FlagOperand(instr.pred_flag))
        self.out.append(Instruction(
            instr.op, exec_size=instr.exec_size, dst=dst, srcs=srcs,
            pred=pred, cond_mod=instr.cond_mod,
            flag=FlagOperand(0) if instr.cond_mod else None,
            math_fn=instr.math_fn, emask=f"M{instr.emask_off}"))

    def _addr(self, v):
        if isinstance(v, VImm):
            return Immediate(int(v.value), UD)
        return self._encode_operand(v, 1, False)

    def _payload_reg(self, op: VOperand) -> int:
        base = self._vreg_base(op.vreg)
        if base is None:
            base = self._current_staging[op.vreg.id]
        byte = base + op.offset_bytes
        if byte % GRF_SIZE_BYTES:
            raise CompileError("message payload must be GRF aligned")
        return byte // GRF_SIZE_BYTES

    def _encode_send(self, instr: VInstr) -> None:
        msg = instr.msg
        kind = msg["kind"]
        bti = msg["bti"]
        if kind in ("media.read", "media.write"):
            payload = instr.dst if kind == "media.read" else msg["payload"]
            desc = MessageDesc(
                kind=MsgKind.MEDIA_BLOCK_READ if kind == "media.read"
                else MsgKind.MEDIA_BLOCK_WRITE,
                surface=bti,
                block_width=msg["width"], block_height=msg["height"],
                addr0=self._addr(msg["x"]), addr1=self._addr(msg["y"]),
                payload_reg=self._payload_reg(payload))
        elif kind in ("oword.read", "oword.write"):
            payload = instr.dst if kind == "oword.read" else msg["payload"]
            desc = MessageDesc(
                kind=MsgKind.OWORD_BLOCK_READ if kind == "oword.read"
                else MsgKind.OWORD_BLOCK_WRITE,
                surface=bti,
                addr0=self._addr(msg["offset"]),
                payload_reg=self._payload_reg(payload),
                payload_bytes=msg["nbytes"])
        elif kind in ("gather", "scatter"):
            payload = instr.dst if kind == "gather" else msg["payload"]
            desc = MessageDesc(
                kind=MsgKind.GATHER if kind == "gather" else MsgKind.SCATTER,
                surface=bti,
                addr0=self._addr(msg["global_offset"]),
                addr_reg=self._payload_reg(msg["addr"]),
                payload_reg=self._payload_reg(payload),
                payload_bytes=msg["n"] * msg["elem"].size,
                elem_dtype=msg["elem"])
            self.out.append(Instruction(
                Opcode.SEND, exec_size=msg["n"], msg=desc))
            return
        else:
            raise CompileError(f"unknown send kind {kind!r}")
        self.out.append(Instruction(Opcode.SEND, msg=desc))


@dataclass(frozen=True)
class VectorImmediate:
    """A packed vector immediate (up to 8 elements on Gen)."""

    values: tuple
    dtype: DType

    def __str__(self) -> str:
        return f"v{list(self.values)}:{self.dtype.name}"


def finalize(prog: VProgram,
             num_grf: int = NUM_GRF) -> Tuple[List[Instruction], Allocation]:
    """Allocate registers and encode executable Gen instructions."""
    alloc = allocate_registers(prog, num_grf)
    encoder = _Encoder(prog, alloc)
    return encoder.encode(), alloc
