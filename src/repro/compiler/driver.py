"""Compiler driver: front end -> passes -> vISA -> finalizer -> run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.compiler.finalizer import (
    SCRATCH_BTI, Allocation, finalize,
)
from repro.compiler.frontend import trace_kernel
from repro.compiler.ir import Function
from repro.compiler.passes import analyze_bales, run_default_pipeline
from repro.compiler.scheduler import schedule_sends
from repro.compiler.visa import VProgram, emit_visa
from repro.isa.executor import FunctionalExecutor
from repro.isa.instructions import Instruction, format_program
from repro.memory.surfaces import BufferSurface, Surface
from repro.obs.tracing import trace_span


@dataclass
class CompiledKernel:
    """The output of the full pipeline, ready to execute per thread."""

    name: str
    ir: Function
    visa: VProgram
    program: List[Instruction]
    allocation: Allocation
    surfaces: List[str] = field(default_factory=list)
    #: lazily-built derived execution state whose lifetime must match
    #: the kernel's (program-scoped instruction plans, JIT megakernel).
    #: ``KernelCache`` calls :meth:`release_derived` on eviction.
    _plan_table: object = field(default=None, repr=False, compare=False)
    _jit: object = field(default=None, repr=False, compare=False)

    @property
    def num_instructions(self) -> int:
        return len(self.program)

    def plan_table(self):
        """The program-scoped :class:`~repro.isa.plans.PlanTable`.

        Built on first use and shared by every executor that runs this
        kernel (sequential, wide, and JIT dispatch), so plan
        construction happens once per cached program — and dies with it.
        """
        table = self._plan_table
        if table is None:
            from repro.isa.plans import PlanTable
            table = PlanTable(self.program)
            self._plan_table = table
        return table

    def release_derived(self) -> None:
        """Drop derived state (plans, JIT) when the kernel is evicted."""
        self._plan_table = None
        self._jit = None

    def asm(self) -> str:
        """Gen-assembly listing of the compiled kernel."""
        return format_program(self.program)

    def run(self, surfaces: Sequence[Surface],
            scalars: Dict[str, int] | None = None) -> FunctionalExecutor:
        """Execute one hardware thread of the compiled kernel.

        ``surfaces`` bind positionally to the kernel's surface params;
        ``scalars`` supplies the symbolic integer parameters (thread
        coordinates etc.).
        """
        table = {i: s for i, s in enumerate(surfaces)}
        if self.allocation.scratch_bytes:
            table[SCRATCH_BTI] = BufferSurface.allocate(
                self.allocation.scratch_bytes)
        ex = FunctionalExecutor(table)
        ex.bind_plans(self.plan_table())
        for name, value in (scalars or {}).items():
            vreg = self.visa.params.get(name)
            if vreg is None:
                continue  # optimized away
            base = self.allocation.grf_offset[vreg.id]
            ex.grf.write_bytes(base, np.asarray([value], dtype=np.int32))
        ex.run(self.program)
        return ex


def compile_kernel(body: Callable, name: str,
                   surfaces: Sequence[Tuple[str, bool]],
                   scalar_params: Sequence[str] = (),
                   optimize: bool = True) -> CompiledKernel:
    """Run the full CMC pipeline on a traceable kernel body.

    ``body(cmx, *surface_params, *scalars)`` is traced with the
    trace-mode CM API (see :mod:`repro.compiler.frontend`).

    When tracing is enabled (:mod:`repro.obs`), the whole compile runs
    under a ``compile`` span with one ``pass:*`` child per stage, so a
    Chrome-trace export shows the per-pass time breakdown.
    """
    with trace_span("compile", kernel=name) as span:
        with trace_span("pass:frontend", kernel=name):
            fn = trace_kernel(body, name, surfaces, scalar_params)
        # The linear-program passes assume straight-line code: constant
        # folding and dead-code elimination are unsound across a loop's
        # back edge, and the send scheduler must not hoist memory ops
        # over a divergent-region boundary.  Divergent kernels keep the
        # unoptimized (but legalized) pipeline; baling stays on (it is
        # restricted to within-region folds for CF functions).
        has_cf = any(i.op.startswith("simd.") for i in fn.instrs)
        if optimize and not has_cf:
            run_default_pipeline(fn, kernel=name)
        with trace_span("pass:baling", kernel=name):
            bales = analyze_bales(fn)
        with trace_span("pass:emit_visa", kernel=name):
            visa = emit_visa(fn, bales)
        if optimize and not has_cf:
            with trace_span("pass:schedule_sends", kernel=name):
                schedule_sends(visa)
        with trace_span("pass:finalize", kernel=name):
            program, alloc = finalize(visa)
        span.set(instructions=len(program))
    return CompiledKernel(
        name=name, ir=fn, visa=visa, program=program, allocation=alloc,
        surfaces=[nm for nm, _img in surfaces])
