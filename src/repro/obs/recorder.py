"""Always-on flight recorder: a bounded ring of request span trees.

Production postmortems need the trace of the request that *already*
misbehaved — turning tracing on after the page is too late.  The
:class:`FlightRecorder` therefore retains the last ``capacity``
completed :class:`~repro.obs.request.RequestTrace` trees in a ring
buffer regardless of whether any trace sink is installed (the
request-trace bridge works without one), and snapshots the full causal
trace of any request that:

- breached its SLO (:mod:`repro.obs.slo`),
- produced sanitizer findings (race / OOB / uninit verdicts), or
- failed outright,

into its bounded :attr:`dumps` list (optionally also one JSON file per
dump under ``dump_dir``).  Dumps survive ring eviction — they carry a
materialized copy of the tree, not a reference.

Costs are bounded by construction: the ring is a ``deque(maxlen=...)``
plus an id index, recording is O(1), and each tree is capped at
:data:`repro.obs.request.MAX_SPANS` spans.  The serve-path overhead of
the whole always-on pipeline (minting + tree building + ring) is gated
<5% by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.request import RequestTrace, traces_to_chrome


class DumpReason:
    """Why a flight-recorder dump was taken."""

    SLO_BREACH = "slo_breach"
    SANITIZER = "sanitizer"
    ERROR = "error"
    MANUAL = "manual"

    ALL = (SLO_BREACH, SANITIZER, ERROR, MANUAL)


@dataclass
class FlightDump:
    """One dumped request: reason + a materialized copy of its tree."""

    reason: str
    trace_id: str
    workload: str
    detail: str = ""
    #: ``RequestTrace.to_dict()`` snapshot taken at dump time.
    trace: Dict[str, Any] = field(default_factory=dict)
    #: path of the JSON file written for this dump (``dump_dir`` set).
    path: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"reason": self.reason, "trace_id": self.trace_id,
                "workload": self.workload, "detail": self.detail,
                "trace": self.trace}


class FlightRecorder:
    """Bounded ring buffer of completed request traces + breach dumps."""

    def __init__(self, capacity: int = 256, max_dumps: int = 64,
                 dump_dir: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if max_dumps < 1:
            raise ValueError("max_dumps must be >= 1")
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.dump_dir = dump_dir
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        #: trace_id -> RequestTrace, insertion-ordered (oldest first).
        self._ring: "OrderedDict[str, RequestTrace]" = OrderedDict()
        self.dumps: deque = deque(maxlen=max_dumps)
        self._lock = threading.Lock()
        self.recorded = 0
        self.evicted = 0
        self.dumped = 0
        #: dumps dropped because :attr:`dumps` was full (never silent).
        self.dumps_dropped = 0
        self._m_recorded = self.registry.counter(
            "recorder_traces", "request traces recorded")
        self._m_evicted = self.registry.counter(
            "recorder_evicted", "request traces evicted from the ring")

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # -- recording ---------------------------------------------------------

    def record(self, trace: RequestTrace) -> None:
        """Retain a completed trace, evicting the oldest beyond capacity."""
        with self._lock:
            self._ring[trace.trace_id] = trace
            self._ring.move_to_end(trace.trace_id)
            self.recorded += 1
            while len(self._ring) > self.capacity:
                self._ring.popitem(last=False)
                self.evicted += 1
                self._m_evicted.inc()
        self._m_recorded.inc()

    def get(self, trace_id: str) -> Optional[RequestTrace]:
        """The retained trace for ``trace_id`` (None once evicted)."""
        with self._lock:
            return self._ring.get(trace_id)

    def traces(self) -> List[RequestTrace]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._ring.values())

    # -- dumping -----------------------------------------------------------

    def dump(self, trace: Union[RequestTrace, str], reason: str,
             detail: str = "") -> Optional[FlightDump]:
        """Snapshot a trace (object or retained trace ID) into
        :attr:`dumps`; returns None for an unknown/evicted ID."""
        if reason not in DumpReason.ALL:
            raise ValueError(f"unknown dump reason {reason!r}; "
                             f"choose from {DumpReason.ALL}")
        if isinstance(trace, str):
            trace = self.get(trace)
            if trace is None:
                return None
        dump = FlightDump(reason=reason, trace_id=trace.trace_id,
                          workload=trace.workload, detail=detail,
                          trace=trace.to_dict())
        if self.dump_dir is not None:
            os.makedirs(self.dump_dir, exist_ok=True)
            dump.path = os.path.join(
                self.dump_dir, f"{trace.trace_id}.{reason}.json")
            with open(dump.path, "w") as fh:
                json.dump(dump.to_dict(), fh, indent=2)
        with self._lock:
            if len(self.dumps) == self.dumps.maxlen:
                self.dumps_dropped += 1
            self.dumps.append(dump)
            self.dumped += 1
        self.registry.counter("recorder_dumps", reason=reason).inc()
        return dump

    # -- export / reporting ------------------------------------------------

    def to_chrome(self) -> dict:
        """One Chrome-trace document of every retained request tree."""
        return traces_to_chrome(self.traces())

    def export_chrome(self, path_or_file) -> None:
        doc = self.to_chrome()
        if hasattr(path_or_file, "write"):
            json.dump(doc, path_or_file)
        else:
            with open(path_or_file, "w") as fh:
                json.dump(doc, fh)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            retained = len(self._ring)
            by_reason: Dict[str, int] = {}
            for d in self.dumps:
                by_reason[d.reason] = by_reason.get(d.reason, 0) + 1
        return {
            "capacity": self.capacity,
            "retained": retained,
            "recorded": self.recorded,
            "evicted": self.evicted,
            "dumps": self.dumped,
            "dumps_dropped": self.dumps_dropped,
            "dumps_by_reason": by_reason,
        }
