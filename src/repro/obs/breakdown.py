"""Per-kernel time-breakdown profiler.

The analytic model (:mod:`repro.sim.timing`) reports kernel time as the
*max* of independent resource bounds; good for totals, useless for
attribution.  This module folds the same per-thread trace events into
additive *buckets* — ALU issue, load/store per surface, SLM bank
serialization, atomic serialization, barrier wait — and distributes the
kernel's modeled time across them proportionally to each bucket's cycle
weight.  The buckets therefore sum to ``KernelTiming.time_us`` exactly,
which is what lets ``python -m repro.report.profile`` print a breakdown
table whose rows add up to the Figure 5 numbers (launch overhead is
reported as a separate line on top, matching the queue model).

Each bucket maps onto a cost-model term documented in
``docs/cost_model.md``; see ``docs/observability.md`` for the taxonomy.

The module is deliberately dependency-free (events and machine configs
are duck-typed) so ``repro.sim`` can import it without cycles.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

#: Bucket names that are not derived from a surface label.
ALU = "alu"
BARRIER = "barrier"
SLM = "slm"
ATOMIC = "atomic"
OTHER = "other"

#: Cache line size (mirrors repro.sim.timing.LINE_BYTES).
_LINE_BYTES = 64


@dataclass
class TimeBreakdown:
    """Where one kernel's modeled time went, in additive microseconds."""

    kernel: str
    time_us: float
    launch_overhead_us: float
    num_threads: int
    bound_by: str
    #: bucket -> microseconds; sums to ``time_us``.
    buckets: Dict[str, float] = field(default_factory=dict)
    #: bucket -> unnormalized cycle weight (for debugging the attribution).
    raw_cycles: Dict[str, float] = field(default_factory=dict)
    launches: int = 1

    @property
    def total_us(self) -> float:
        return self.time_us + self.launch_overhead_us

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "time_us": self.time_us,
            "launch_overhead_us": self.launch_overhead_us,
            "total_us": self.total_us,
            "num_threads": self.num_threads,
            "launches": self.launches,
            "bound_by": self.bound_by,
            "buckets_us": dict(self.buckets),
            "raw_cycles": dict(self.raw_cycles),
        }

    def render(self, width: int = 28) -> str:
        """ASCII table: one row per bucket, largest first."""
        lines = [f"{self.kernel}: {self.time_us:10.1f} us kernel "
                 f"+ {self.launch_overhead_us:.1f} us launch "
                 f"({self.num_threads} threads, {self.launches} launches, "
                 f"bound by {self.bound_by})"]
        total = self.time_us or 1.0
        for bucket, us in sorted(self.buckets.items(),
                                 key=lambda kv: -kv[1]):
            frac = us / total
            bar = "#" * max(1, int(frac * width)) if us > 0 else ""
            lines.append(f"  {bucket:<18s} {us:10.1f} us {frac:6.1%} {bar}")
        lines.append(f"  {'(bucket sum)':<18s} "
                     f"{sum(self.buckets.values()):10.1f} us")
        return "\n".join(lines)


def merge_breakdowns(breakdowns: Iterable["TimeBreakdown"],
                     kernel: Optional[str] = None) -> TimeBreakdown:
    """Aggregate several launches of the same kernel into one breakdown."""
    items = [b for b in breakdowns if b is not None]
    if not items:
        raise ValueError("no breakdowns to merge")
    buckets: Dict[str, float] = defaultdict(float)
    raw: Dict[str, float] = defaultdict(float)
    for b in items:
        for k, v in b.buckets.items():
            buckets[k] += v
        for k, v in b.raw_cycles.items():
            raw[k] += v
    # The dominant bound of the longest launch describes the aggregate.
    longest = max(items, key=lambda b: b.time_us)
    return TimeBreakdown(
        kernel=kernel or items[0].kernel,
        time_us=sum(b.time_us for b in items),
        launch_overhead_us=sum(b.launch_overhead_us for b in items),
        num_threads=sum(b.num_threads for b in items),
        bound_by=longest.bound_by,
        buckets=dict(buckets),
        raw_cycles=dict(raw),
        launches=sum(b.launches for b in items))


class BreakdownAccumulator:
    """Streaming fold of thread traces into attribution weights.

    Mirrors :class:`repro.sim.timing.TimingAccumulator`'s streaming
    contract — feed each trace as its thread retires, finalize once the
    enqueue's :class:`KernelTiming` is known.  The weights model what
    each event *costs* on its resource (bytes over the port it uses,
    serialization cycles, exposed load latency at the consumer), so the
    normalized buckets show which machine effect dominates even when the
    binding bound is something global like DRAM bandwidth.
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.raw: Dict[str, float] = defaultdict(float)
        self.num_threads = 0

    def add(self, trace) -> None:
        m = self.machine
        raw = self.raw
        self.num_threads += 1
        if trace.issue_cycles:
            raw[ALU] += trace.issue_cycles
        if trace.barriers:
            raw[BARRIER] += trace.barriers * m.barrier_cycles
        for ev in trace.events:
            kname = ev.kind.name
            if kname.startswith("SLM"):
                bucket = ATOMIC if kname == "SLM_ATOMIC" else SLM
                raw[bucket] += max(ev.slm_cycles, 1)
            elif kname == "ATOMIC":
                bucket = ATOMIC
                raw[bucket] += (ev.msgs * m.atomic_cycles_per_op
                                + self._transfer_cycles(ev))
            else:
                op = "load" if ev.is_read else "store"
                label = ev.surface if ev.surface is not None else "mem"
                bucket = f"{op}:{label}"
                cost = self._transfer_cycles(ev)
                if kname == "SAMPLER":
                    cost += ev.texels / m.sampler_texels_per_cycle
                raw[bucket] += cost
            # Exposed load-use latency stalls the thread; attribute it to
            # the event's bucket (same rule as ThreadTrace.exec_cycles).
            if ev.is_read and ev.consumed_at is not None:
                covered = ev.consumed_at - ev.issue_at
                raw[bucket] += max(0.0, ev.latency(m) - covered)

    def extend(self, traces: Iterable) -> None:
        for tr in traces:
            self.add(tr)

    def _transfer_cycles(self, ev) -> float:
        m = self.machine
        return (ev.l3_bytes / m.l3_bytes_per_cycle
                + ev.nbytes / m.dataport_bytes_per_cycle
                + ev.dram_lines * _LINE_BYTES / m.dram_bytes_per_cycle)

    def finalize(self, kernel: str, timing,
                 launch_overhead_us: float = 0.0) -> TimeBreakdown:
        """Distribute ``timing.time_us`` across the accumulated buckets."""
        time_us = timing.time_us
        weight = sum(self.raw.values())
        if weight > 0:
            scale = time_us / weight
            buckets = {k: v * scale for k, v in self.raw.items()}
        elif time_us > 0:
            buckets = {OTHER: time_us}
        else:
            buckets = {}
        return TimeBreakdown(
            kernel=kernel, time_us=time_us,
            launch_overhead_us=launch_overhead_us,
            num_threads=self.num_threads, bound_by=timing.bound_by,
            buckets=buckets, raw_cycles=dict(self.raw))
