"""Per-request causal span trees, keyed by trace ID.

The compiler/dispatch spans of :mod:`repro.obs.tracing` answer "where
did *this process* spend its time"; they cannot answer "where did
*request 4182* spend its time" once the serving layer interleaves many
requests across the queue, the dispatcher, and N device workers.  This
module adds the request axis:

- :func:`mint_trace_id` issues a process-unique trace ID (stamped on a
  :class:`~repro.serve.request.Request` at ``ServeCluster.submit``),
- :class:`RequestTrace` accumulates one **span tree** per request —
  explicit cross-thread stage spans (``queue_wait``, ``schedule``,
  ``batch_assemble``) recorded by the cluster, plus every
  :func:`~repro.obs.tracing.trace_span` opened while the trace is
  :meth:`~RequestTrace.active` (the device's ``sanitize_gate``,
  ``dispatch:{sequential|wide|jit}``, ``chunk`` and ``fold`` spans land
  here with correct parent linkage, regardless of which worker thread
  runs them),
- :func:`traces_to_chrome` renders many trees into one Chrome-trace
  document, one timeline row per request.

The bridge is deliberately one-way: activation costs one contextvar
write per request, and a ``trace_span`` call checks one contextvar
before its usual sink check, so the always-on flight recorder stays
inside its <5% serve-path overhead budget
(``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import itertools
import json
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

from repro.obs import tracing as _tracing

_trace_ids = itertools.count()

#: Scope prefix baked into minted trace IDs.  Empty in a plain process;
#: shard workers set it (``set_trace_scope("s3")``) so IDs minted on
#: both sides of a process boundary can never collide when the parent
#: stitches worker trees into its flight recorder.
_trace_scope = ""

#: Hard per-trace span cap: an eager workload that enqueues hundreds of
#: kernels would otherwise grow its tree without bound.  Exceeding the
#: cap sets ``RequestTrace.truncated`` (never silently).
MAX_SPANS = 1024


def set_trace_scope(scope: str) -> None:
    """Namespace minted trace IDs (e.g. ``"s3"`` inside shard worker 3)."""
    global _trace_scope
    _trace_scope = f"{scope}-" if scope else ""


def mint_trace_id() -> str:
    """A process-unique trace ID (``t-000000`` style, monotonic),
    carrying the process's scope prefix when one is set."""
    return f"t-{_trace_scope}{next(_trace_ids):06x}"


class SpanNode:
    """One node of a request's span tree."""

    __slots__ = ("name", "t0_us", "dur_us", "attrs", "children")

    def __init__(self, name: str, t0_us: float,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.t0_us = t0_us
        self.dur_us = 0.0
        self.attrs = attrs if attrs is not None else {}
        self.children: List["SpanNode"] = []

    @property
    def t1_us(self) -> float:
        return self.t0_us + self.dur_us

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"name": self.name,
                             "t0_us": round(self.t0_us, 3),
                             "dur_us": round(self.dur_us, 3)}
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SpanNode":
        """Rebuild a span subtree from its :meth:`to_dict` form."""
        node = cls(d["name"], float(d.get("t0_us", 0.0)),
                   dict(d.get("attrs", {})))
        node.dur_us = float(d.get("dur_us", 0.0))
        node.children = [cls.from_dict(c) for c in d.get("children", ())]
        return node

    def __repr__(self) -> str:
        return (f"SpanNode({self.name!r}, dur={self.dur_us:.1f}us, "
                f"children={len(self.children)})")


class RequestTrace:
    """The causal span tree of one serving request.

    Stage spans recorded by different threads (submit thread, dispatcher,
    device worker) attach at the root in recording order; spans opened
    via :func:`trace_span` while the trace is :meth:`active` nest under
    whatever span is open in that context.  A lock guards mutation —
    stages are causally ordered, but the recording threads differ.
    """

    def __init__(self, trace_id: str, workload: str = "",
                 request_id: Optional[int] = None) -> None:
        self.trace_id = trace_id
        self.workload = workload
        self.request_id = request_id
        #: request-level outcome metadata, filled by :meth:`finish`.
        self.meta: Dict[str, Any] = {}
        self.roots: List[SpanNode] = []
        self.truncated = False
        self._stack: List[SpanNode] = []
        self._n = 0
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def push(self, name: str, attrs: Dict[str, Any],
             t0_us: float) -> Optional[SpanNode]:
        """Open a nested span (called by the ``trace_span`` bridge)."""
        with self._lock:
            if self._n >= MAX_SPANS:
                self.truncated = True
                return None
            node = SpanNode(name, t0_us, attrs)
            parent = self._stack[-1] if self._stack else None
            (parent.children if parent is not None
             else self.roots).append(node)
            self._stack.append(node)
            self._n += 1
            return node

    def pop(self, node: SpanNode, t1_us: float) -> None:
        """Close a span previously opened with :meth:`push`."""
        with self._lock:
            node.dur_us = t1_us - node.t0_us
            # LIFO in the overwhelming case; scan defensively otherwise.
            if self._stack and self._stack[-1] is node:
                self._stack.pop()
            elif node in self._stack:
                self._stack.remove(node)

    def record(self, name: str, t0_us: float, t1_us: float,
               **attrs) -> Optional[SpanNode]:
        """Record a completed root-level stage span (cross-thread safe)."""
        with self._lock:
            if self._n >= MAX_SPANS:
                self.truncated = True
                return None
            node = SpanNode(name, t0_us, attrs)
            node.dur_us = max(0.0, t1_us - t0_us)
            self.roots.append(node)
            self._n += 1
            return node

    @contextmanager
    def active(self):
        """Route every ``trace_span`` in this context into the tree."""
        token = _tracing.activate_request(self)
        try:
            yield self
        finally:
            _tracing.deactivate_request(token)

    def finish(self, **meta) -> "RequestTrace":
        """Stamp request-level outcome metadata (status, tier, latency)."""
        self.meta.update(meta)
        if self.truncated:
            self.meta["truncated_at_spans"] = MAX_SPANS
        return self

    def graft(self, other, name: str = "shard",
              **attrs) -> Optional[SpanNode]:
        """Adopt another trace's whole span tree as one nested root span.

        This is the cross-process stitch: a shard worker serializes its
        tree (:meth:`to_dict`), ships it over the completion queue, and
        the parent grafts it here so the worker's ``serve:request`` /
        ``dispatch:*`` spans land in the parent's flight recorder with
        explicit parent linkage.  ``other`` may be a
        :class:`RequestTrace` or its dict form.  Timestamps under the
        graft stay on the child process's clock; the graft span carries
        the child's own trace ID in its attrs.
        """
        if isinstance(other, dict):
            other = RequestTrace.from_dict(other)
        t0 = min((r.t0_us for r in other.roots), default=0.0)
        t1 = max((r.t1_us for r in other.roots), default=t0)
        with self._lock:
            n_new = 1 + other.num_spans
            if self._n + n_new > MAX_SPANS:
                self.truncated = True
                return None
            node = SpanNode(name, t0,
                            {"trace_id": other.trace_id, **attrs})
            node.dur_us = t1 - t0
            node.children = list(other.roots)
            self.roots.append(node)
            self._n += n_new
            return node

    # -- queries -----------------------------------------------------------

    @property
    def num_spans(self) -> int:
        return self._n

    def _walk(self) -> Iterable[SpanNode]:
        stack = list(reversed(self.roots))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def find(self, name: str) -> List[SpanNode]:
        """All spans named ``name`` (prefix match on ``name:*`` allowed)."""
        return [n for n in self._walk()
                if n.name == name or n.name.startswith(name + ":")]

    def span_names(self) -> List[str]:
        return [n.name for n in self._walk()]

    @property
    def tier(self) -> Optional[str]:
        """The dispatch tier this request's kernel took, if recorded."""
        for n in self._walk():
            if n.name.startswith("dispatch:"):
                return n.name.split(":", 1)[1]
        return self.meta.get("tier")

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "workload": self.workload,
            "request_id": self.request_id,
            "meta": dict(self.meta),
            "spans": [r.to_dict() for r in self.roots],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RequestTrace":
        """Rebuild a trace from its :meth:`to_dict` form (the shape that
        crosses the shard process boundary)."""
        trace = cls(d["trace_id"], workload=d.get("workload", ""),
                    request_id=d.get("request_id"))
        trace.meta = dict(d.get("meta", {}))
        trace.roots = [SpanNode.from_dict(s) for s in d.get("spans", ())]
        trace._n = sum(1 for _ in trace._walk())
        trace.truncated = "truncated_at_spans" in trace.meta
        return trace

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    def to_chrome_events(self, tid: Optional[int] = None) -> List[dict]:
        """Chrome trace-event rows; one ``tid`` per request by default."""
        row = tid if tid is not None else (
            self.request_id if self.request_id is not None else 0)
        events = []
        stack = [(n, None) for n in reversed(self.roots)]
        while stack:
            node, _parent = stack.pop()
            args = dict(node.attrs)
            args["trace_id"] = self.trace_id
            events.append({"name": node.name, "ph": "X", "cat": "request",
                           "ts": node.t0_us, "dur": node.dur_us,
                           "pid": 0, "tid": row, "args": args})
            stack.extend((c, node) for c in reversed(node.children))
        return events

    def __repr__(self) -> str:
        return (f"RequestTrace({self.trace_id!r}, workload="
                f"{self.workload!r}, spans={self._n})")


def traces_to_chrome(traces: Iterable[RequestTrace]) -> dict:
    """Merge request trees into one Chrome-trace document.

    Each request gets its own ``tid`` row named after its trace ID, so
    Perfetto shows one waterfall per request instead of one interleaved
    soup per worker thread.
    """
    events: List[dict] = [{"name": "process_name", "ph": "M", "pid": 0,
                           "tid": 0, "args": {"name": "repro.serve"}}]
    for trace in traces:
        row = trace.request_id if trace.request_id is not None else 0
        events.append({"name": "thread_name", "ph": "M", "pid": 0,
                       "tid": row,
                       "args": {"name": f"{trace.trace_id} "
                                        f"{trace.workload}"}})
        events.extend(trace.to_chrome_events(tid=row))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
