"""Metrics registry: named counters, gauges and histograms with labels.

A :class:`MetricsRegistry` holds *families* keyed by metric name; each
family yields one *child* instrument per distinct label set (``kernel=``,
``pass_name=``, ``cache=`` ...), following the Prometheus data model the
production runtimes the paper targets would scrape.  Instruments are
plain Python objects with O(1) updates — cheap enough to sit on the
device dispatch path — and the registry renders to a flat dict for JSON
reports or ``Device.report()``.

This module has no dependencies on the simulator so it can be imported
from any layer (``repro.sim``, ``repro.compiler``, ``repro.memory``)
without cycles.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

#: Default histogram bucket upper bounds (microseconds scale works for
#: both host-side pass timings and simulated kernel times).
DEFAULT_BUCKETS = (10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0,
                   50000.0, 100000.0, float("inf"))

LabelSet = Tuple[Tuple[str, object], ...]


def _label_key(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted(labels.items()))


def format_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down (or track a high-water mark)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """A bucketed distribution (cumulative ``le`` buckets, plus sum/count)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelSet = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        bounds = sorted(float(b) for b in buckets)
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets = tuple(bounds)
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def value(self) -> float:
        """For uniform snapshots a histogram reports its sum."""
        return self.sum


class _Family:
    """All children of one metric name (one per label set)."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: type, help: str = "",
                 buckets: Optional[Iterable[float]] = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: Dict[LabelSet, object] = {}

    def labels(self, label_dict: Dict[str, object]):
        key = _label_key(label_dict)
        child = self.children.get(key)
        if child is None:
            if self.kind is Histogram:
                child = Histogram(self.name, key,
                                  self.buckets or DEFAULT_BUCKETS)
            else:
                child = self.kind(self.name, key)
            self.children[key] = child
        return child


class MetricsRegistry:
    """Registry of metric families; the single source of counters."""

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}

    def _family(self, name: str, kind: type, help: str = "",
                buckets: Optional[Iterable[float]] = None) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            fam = _Family(name, kind, help, buckets)
            self._families[name] = fam
        elif fam.kind is not kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{fam.kind.__name__}, not {kind.__name__}")
        return fam

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._family(name, Counter, help).labels(labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._family(name, Gauge, help).labels(labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Iterable[float]] = None,
                  **labels) -> Histogram:
        return self._family(name, Histogram, help, buckets).labels(labels)

    # -- introspection ----------------------------------------------------

    def get(self, name: str, **labels):
        """The child for (name, labels), or None if never touched."""
        fam = self._families.get(name)
        if fam is None:
            return None
        return fam.children.get(_label_key(labels))

    def families(self) -> Iterable[str]:
        return self._families.keys()

    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` view of every instrument."""
        out: Dict[str, float] = {}
        for fam in self._families.values():
            for key, child in fam.children.items():
                out[fam.name + format_labels(key)] = child.value
        return out

    def as_dict(self) -> Dict[str, list]:
        """Structured dump: one entry per family with per-child samples."""
        out: Dict[str, list] = {}
        for fam in self._families.values():
            samples = []
            for key, child in fam.children.items():
                sample = {"labels": dict(key), "value": child.value}
                if isinstance(child, Histogram):
                    sample["count"] = child.count
                    sample["mean"] = child.mean
                samples.append(sample)
            out[fam.name] = samples
        return out
