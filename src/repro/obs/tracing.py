"""Structured span tracing with Chrome-trace and JSONL sinks.

``trace_span("compile", kernel="sgemm")`` wraps a region of host work in
a timed span.  Spans nest naturally (the compiler driver opens a
``compile`` span, each pass opens a ``pass:*`` span inside it) and are
emitted to the installed sink as Chrome trace-event "complete" (``ph:
"X"``) events, loadable in ``chrome://tracing`` / Perfetto.

The disabled path is a single global load plus one attribute check that
returns a shared no-op context manager — no allocation, no timestamps —
so instrumentation left in hot code costs nothing when tracing is off
(see ``benchmarks/bench_obs_overhead.py``).

This module depends only on the standard library so every layer of the
stack (sim, compiler, memory) can import it without cycles.
"""

from __future__ import annotations

import contextvars
import json
import time
from typing import IO, Optional, Union


class NullSink:
    """Swallows everything; the zero-cost default."""

    enabled = False
    __slots__ = ()

    def emit(self, event: dict) -> None:  # pragma: no cover - never called
        pass


NULL_SINK = NullSink()


class ChromeTraceSink:
    """Collects trace events in memory for a ``chrome://tracing`` export."""

    enabled = True

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def to_trace(self) -> dict:
        """The trace-event JSON document (events sorted by start time)."""
        events = sorted(self.events, key=lambda e: (e["ts"], -e.get("dur", 0)))
        meta = {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                "args": {"name": "repro"}}
        return {"traceEvents": [meta] + events, "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        return json.dumps(self.to_trace())

    def export(self, path_or_file: Union[str, IO]) -> None:
        if hasattr(path_or_file, "write"):
            json.dump(self.to_trace(), path_or_file)
        else:
            with open(path_or_file, "w") as fh:
                json.dump(self.to_trace(), fh)


class JsonlSink:
    """Streams one JSON object per span to a file (append mode)."""

    enabled = True

    def __init__(self, path_or_file: Union[str, IO]) -> None:
        if hasattr(path_or_file, "write"):
            self._fh = path_or_file
            self._owns = False
        else:
            self._fh = open(path_or_file, "a")
            self._owns = True

    def emit(self, event: dict) -> None:
        self._fh.write(json.dumps(event) + "\n")

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class TeeSink:
    """Fans one event stream out to several sinks."""

    enabled = True

    def __init__(self, *sinks) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)


class _Span:
    """A live span; records wall time on exit and emits one event.

    When a request trace is active (see :func:`activate_request`), the
    span is additionally pushed into that trace's tree so per-request
    causal chains survive across the serving layer's thread handoffs.
    """

    __slots__ = ("tracer", "name", "attrs", "t0", "req", "_node")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict,
                 req=None) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.req = req
        self._node = None

    def __enter__(self) -> "_Span":
        self.t0 = self.tracer.now_us()
        if self.req is not None:
            self._node = self.req.push(self.name, self.attrs, self.t0)
        return self

    def set(self, **attrs) -> None:
        """Attach extra attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = self.tracer.now_us()
        if self._node is not None:
            self.req.pop(self._node, t1)
        if self.tracer.sink.enabled:
            event = {"name": self.name, "ph": "X", "cat": "repro",
                     "ts": self.t0, "dur": t1 - self.t0, "pid": 0, "tid": 0}
            if self.attrs:
                event["args"] = self.attrs
            self.tracer.sink.emit(event)
        return False


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def set(self, **attrs) -> None:
        pass

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Emits spans to a sink with a monotonic microsecond clock."""

    def __init__(self, sink=NULL_SINK) -> None:
        self.sink = sink
        self._epoch = time.perf_counter()

    @property
    def enabled(self) -> bool:
        return self.sink.enabled

    def now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def to_us(self, t_perf: float) -> float:
        """Convert an absolute ``time.perf_counter()`` stamp to this
        tracer's microsecond timeline (for cross-thread stage spans
        whose start was captured before the span could be opened)."""
        return (t_perf - self._epoch) * 1e6

    def span(self, name: str, attrs: Optional[dict] = None) -> _Span:
        return _Span(self, name, attrs or {})


#: The process-wide tracer; swapped by ``repro.obs.install``.
_TRACER = Tracer(NULL_SINK)


def get_tracer() -> Tracer:
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    global _TRACER
    _TRACER = tracer
    return tracer


#: The request trace (a ``repro.obs.request.RequestTrace``) active in
#: the current context, if any; set by the serving layer around each
#: request's execution so device/compiler spans land in its tree.
_ACTIVE_REQUEST: contextvars.ContextVar = contextvars.ContextVar(
    "repro_active_request_trace", default=None)


def activate_request(trace) -> contextvars.Token:
    """Route subsequent ``trace_span`` calls in this context into
    ``trace`` (anything with ``push(name, attrs, t0)`` / ``pop(node,
    t1)``).  Returns a token for :func:`deactivate_request`."""
    return _ACTIVE_REQUEST.set(trace)


def deactivate_request(token: contextvars.Token) -> None:
    _ACTIVE_REQUEST.reset(token)


def active_request():
    return _ACTIVE_REQUEST.get()


#: Span names never bridged into request trees: per-chunk retire
#: accounting fires once per execution chunk, so on large grids it would
#: dominate both the tree size and the always-on recorder's per-request
#: cost.  Sinks still receive these spans when tracing is enabled.
_NO_BRIDGE = frozenset(("chunk",))


def trace_span(name: str, **attrs):
    """Open a span on the global tracer (no-op when tracing is disabled).

    With a request trace active the span is recorded into that trace's
    tree even when no sink is installed — that is what keeps the flight
    recorder always-on without enabling process-wide tracing.
    """
    tracer = _TRACER
    req = _ACTIVE_REQUEST.get()
    if req is not None and name in _NO_BRIDGE:
        req = None
    if req is None and not tracer.sink.enabled:
        return NULL_SPAN
    return _Span(tracer, name, attrs, req)
