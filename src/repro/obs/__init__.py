"""Cross-cutting observability: metrics, span traces, time breakdowns.

One :class:`Observability` object bundles the three instruments this
layer offers:

- a :class:`~repro.obs.metrics.MetricsRegistry` of labeled counters /
  gauges / histograms (kernel launches, cache hit ratios, per-pass
  timings),
- a :class:`~repro.obs.tracing.Tracer` emitting structured spans
  (``compile`` > ``pass:*``, ``dispatch`` > ``chunk``) to a Chrome-trace
  or JSONL sink,
- per-kernel :class:`~repro.obs.breakdown.TimeBreakdown` attribution
  computed by the device as threads retire.

The default is :data:`DISABLED`: a null sink, no breakdowns, and spans
that compile down to one attribute check (zero-cost-when-disabled is a
hard requirement — the PR 1 batch-engine speedup must survive, see
``benchmarks/bench_obs_overhead.py``).  Enable globally::

    import repro.obs as obs
    with obs.observed() as o:
        ...run workloads...
    o.export_chrome("trace.json")
    print(o.registry.snapshot())

or per device: ``Device(obs=obs.Observability())``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.obs.breakdown import (
    BreakdownAccumulator, TimeBreakdown, merge_breakdowns,
)
from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, format_labels,
)
from repro.obs.recorder import DumpReason, FlightDump, FlightRecorder
from repro.obs.request import (
    RequestTrace, SpanNode, mint_trace_id, set_trace_scope,
    traces_to_chrome,
)
from repro.obs.slo import SLObjective, SLOTracker
from repro.obs.tracing import (
    ChromeTraceSink, JsonlSink, NULL_SINK, NullSink, TeeSink, Tracer,
    active_request, get_tracer, set_tracer, trace_span,
)

__all__ = [
    "Observability", "DISABLED",
    "get_observability", "install", "enable", "disable", "observed",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "format_labels",
    "Tracer", "trace_span", "get_tracer", "set_tracer", "active_request",
    "ChromeTraceSink", "JsonlSink", "NullSink", "NULL_SINK", "TeeSink",
    "BreakdownAccumulator", "TimeBreakdown", "merge_breakdowns",
    "RequestTrace", "SpanNode", "mint_trace_id", "set_trace_scope",
    "traces_to_chrome",
    "SLObjective", "SLOTracker",
    "FlightRecorder", "FlightDump", "DumpReason",
]


class _SpanMetricsSink:
    """Wraps a sink and mirrors span durations into a histogram family."""

    enabled = True

    def __init__(self, inner, registry: MetricsRegistry) -> None:
        self.inner = inner
        self.registry = registry

    def emit(self, event: dict) -> None:
        self.inner.emit(event)
        self.registry.histogram(
            "span_duration_us", span=event["name"]).observe(
                event.get("dur", 0.0))


class Observability:
    """A bundle of registry + tracer + breakdown switch."""

    def __init__(self, enabled: bool = True, sink=None,
                 registry: Optional[MetricsRegistry] = None,
                 breakdowns: bool = True,
                 span_metrics: bool = True) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.breakdowns = enabled and breakdowns
        if enabled:
            self.sink = sink if sink is not None else ChromeTraceSink()
            tracer_sink = (_SpanMetricsSink(self.sink, self.registry)
                           if span_metrics else self.sink)
            self.tracer = Tracer(tracer_sink)
        else:
            self.sink = NULL_SINK
            self.tracer = Tracer(NULL_SINK)

    @property
    def chrome(self) -> Optional[ChromeTraceSink]:
        """The ChromeTraceSink if one is attached (possibly inside a tee)."""
        candidates = [self.sink]
        if isinstance(self.sink, TeeSink):
            candidates = list(self.sink.sinks)
        for s in candidates:
            if isinstance(s, ChromeTraceSink):
                return s
        return None

    def export_chrome(self, path_or_file) -> None:
        chrome = self.chrome
        if chrome is None:
            raise ValueError("no ChromeTraceSink attached to this "
                             "Observability instance")
        chrome.export(path_or_file)


#: The shared no-op instance used when nothing is enabled.
DISABLED = Observability(enabled=False)

_current: Observability = DISABLED


def get_observability() -> Observability:
    return _current


def install(obs: Observability) -> Observability:
    """Make ``obs`` the process-wide default (devices pick it up on
    construction; the global tracer serves compiler spans)."""
    global _current
    _current = obs
    set_tracer(obs.tracer)
    return obs


def enable(**kwargs) -> Observability:
    return install(Observability(enabled=True, **kwargs))


def disable() -> Observability:
    return install(DISABLED)


@contextmanager
def observed(**kwargs):
    """Enable observability for a block, restoring the previous state."""
    previous = _current
    obs = enable(**kwargs)
    try:
        yield obs
    finally:
        install(previous)
