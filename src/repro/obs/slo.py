"""Service-level objectives: per-workload latency targets, attainment,
and sliding-window burn rate.

An :class:`SLObjective` says "``objective`` of requests for
``workload`` must finish within ``target``" — targets exist in both of
the serving layer's time domains (wall milliseconds and simulated
microseconds; either or both may be set).  The :class:`SLOTracker`
observes every completed request, keeps a sliding window per workload,
and derives the two numbers an operator actually pages on:

- **attainment**: the fraction of requests in the window that met the
  objective's target (the SLI);
- **burn rate**: how fast the error budget is being spent —
  ``(1 - attainment) / (1 - objective)``.  Burn 1.0 means the budget
  exactly lasts the period; burn 2.0 means it is gone in half the
  period; sustained burn > 1 is an alert.

Observations also land in the metrics registry as ``slo_requests`` /
``slo_breaches`` counters and ``slo_attainment`` / ``slo_burn_rate``
gauges (labeled by workload), so the same numbers are scrapeable and
show up in ``ServeCluster.report()`` and the loadgen summary.

A breach verdict is returned from :meth:`SLOTracker.observe` so the
cluster can hand the request's span tree to the flight recorder
(:mod:`repro.obs.recorder`) while the full causal trace still exists.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.obs.metrics import MetricsRegistry

#: Error budgets below this are clamped so burn rate stays finite even
#: for a (degenerate) 100% objective.
_MIN_BUDGET = 1e-6


@dataclass(frozen=True)
class SLObjective:
    """One latency objective: targets, required fraction, window size."""

    workload: str = "*"
    #: wall-clock latency target in milliseconds (None = not bounded).
    target_wall_ms: Optional[float] = None
    #: simulated latency target in microseconds (None = not bounded).
    target_sim_us: Optional[float] = None
    #: required fraction of requests meeting the target (e.g. 0.99).
    objective: float = 0.99
    #: sliding-window length in requests for attainment / burn rate.
    window: int = 256

    def __post_init__(self) -> None:
        if not 0.0 < self.objective <= 1.0:
            raise ValueError(f"objective must be in (0, 1], "
                             f"got {self.objective}")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.target_wall_ms is None and self.target_sim_us is None:
            raise ValueError("an SLObjective needs at least one of "
                             "target_wall_ms / target_sim_us")

    @property
    def budget(self) -> float:
        """The error budget: allowed breach fraction."""
        return max(1.0 - self.objective, _MIN_BUDGET)

    def met_by(self, latency_wall_ms: float, latency_sim_us: float,
               failed: bool = False) -> bool:
        """Did a request with these latencies meet the objective's
        target?  Failed requests never meet it."""
        if failed:
            return False
        if self.target_wall_ms is not None \
                and latency_wall_ms > self.target_wall_ms:
            return False
        if self.target_sim_us is not None \
                and latency_sim_us > self.target_sim_us:
            return False
        return True

    def describe(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"objective": self.objective,
                             "window": self.window}
        if self.target_wall_ms is not None:
            d["target_wall_ms"] = self.target_wall_ms
        if self.target_sim_us is not None:
            d["target_sim_us"] = self.target_sim_us
        return d


class _WorkloadState:
    """Sliding window + lifetime totals for one workload."""

    __slots__ = ("objective", "window", "requests", "breaches")

    def __init__(self, objective: SLObjective) -> None:
        self.objective = objective
        self.window: deque = deque(maxlen=objective.window)
        self.requests = 0
        self.breaches = 0

    def observe(self, ok: bool) -> None:
        self.window.append(ok)
        self.requests += 1
        if not ok:
            self.breaches += 1

    @property
    def attainment(self) -> float:
        """Fraction of window requests that met the target (1.0 empty)."""
        if not self.window:
            return 1.0
        return sum(self.window) / len(self.window)

    @property
    def burn_rate(self) -> float:
        """Window error rate over the error budget."""
        return (1.0 - self.attainment) / self.objective.budget

    def snapshot(self) -> Dict[str, Any]:
        return self.objective.describe() | {
            "requests": self.requests,
            "breaches": self.breaches,
            "attainment": self.attainment,
            "burn_rate": self.burn_rate,
            "attainment_total": ((self.requests - self.breaches)
                                 / self.requests) if self.requests else 1.0,
        }


#: What ``ServeCluster(slo=...)`` accepts per workload.
SLOSpec = Union[float, SLObjective]


class SLOTracker:
    """Tracks objectives for many workloads; ``"*"`` is the default.

    ``objectives`` maps workload key to either an :class:`SLObjective`
    or a bare float, shorthand for a wall-latency target in
    milliseconds at the default 0.99 objective.
    """

    def __init__(self, objectives: Optional[Dict[str, SLOSpec]] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._objectives: Dict[str, SLObjective] = {}
        for key, spec in (objectives or {}).items():
            if not isinstance(spec, SLObjective):
                spec = SLObjective(workload=key,
                                   target_wall_ms=float(spec))
            self._objectives[key] = spec
        self._states: Dict[str, _WorkloadState] = {}
        self._lock = threading.Lock()

    def objective_for(self, workload: str) -> Optional[SLObjective]:
        return self._objectives.get(workload, self._objectives.get("*"))

    @property
    def has_objectives(self) -> bool:
        return bool(self._objectives)

    def observe(self, workload: str, latency_wall_ms: float,
                latency_sim_us: float, failed: bool = False) -> bool:
        """Record one completed request; returns True when it breached."""
        obj = self.objective_for(workload)
        if obj is None:
            return False
        ok = obj.met_by(latency_wall_ms, latency_sim_us, failed=failed)
        with self._lock:
            state = self._states.get(workload)
            if state is None:
                state = self._states[workload] = _WorkloadState(obj)
            state.observe(ok)
            attainment = state.attainment
            burn = state.burn_rate
        reg = self.registry
        reg.counter("slo_requests", workload=workload).inc()
        if not ok:
            reg.counter("slo_breaches", workload=workload).inc()
        reg.gauge("slo_attainment", workload=workload).set(attainment)
        reg.gauge("slo_burn_rate", workload=workload).set(burn)
        return not ok

    def observe_request(self, req) -> bool:
        """Convenience: observe a finished ``repro.serve`` Request."""
        from repro.serve.request import RequestStatus
        return self.observe(req.workload,
                            req.latency_wall_s * 1e3,
                            req.latency_sim_us,
                            failed=req.status is not RequestStatus.DONE)

    def snapshot(self) -> Dict[str, Any]:
        """Per-workload SLI snapshot plus an ``overall`` rollup."""
        with self._lock:
            per = {key: state.snapshot()
                   for key, state in sorted(self._states.items())}
        requests = sum(s["requests"] for s in per.values())
        breaches = sum(s["breaches"] for s in per.values())
        overall = {
            "requests": requests,
            "breaches": breaches,
            "attainment": ((requests - breaches) / requests)
            if requests else 1.0,
            "max_burn_rate": max(
                (s["burn_rate"] for s in per.values()), default=0.0),
        }
        return {"overall": overall, "workloads": per}
