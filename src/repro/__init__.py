"""C-for-Metal (CGO 2021) reproduction.

An explicit SIMD programming stack for a simulated Intel Gen GPU:

- :mod:`repro.cm` — the CM language (vector/matrix types, select
  regioning, memory intrinsics, SIMD control flow),
- :mod:`repro.ocl` — an OpenCL-style SIMT baseline stack,
- :mod:`repro.compiler` — the CM compiler (SSA rdregion/wrregion IR,
  baling, legalization, vISA, register allocation, Gen ISA emission),
- :mod:`repro.isa`, :mod:`repro.memory`, :mod:`repro.sim` — the simulated
  hardware substrate,
- :mod:`repro.workloads` — paired CM/OpenCL implementations of the
  paper's evaluation workloads.
"""

from repro.sim.device import Device
from repro.sim.machine import (GEN9_SKL, GEN11_ICL, GEN12_TGL, SIMD32_APL,
                               MachineConfig)

__version__ = "1.0.0"

__all__ = ["Device", "MachineConfig", "GEN11_ICL", "GEN9_SKL",
           "GEN12_TGL", "SIMD32_APL", "__version__"]
