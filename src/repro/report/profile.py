"""Per-kernel time-breakdown profiler CLI.

``python -m repro.report.profile <workload>`` runs one Figure 5 workload
with observability enabled and prints where the modeled time went, kernel
by kernel: ALU issue, loads/stores per surface, SLM serialization,
atomics, barrier wait — buckets that sum to the kernel's modeled time
(launch overhead on top), see :mod:`repro.obs.breakdown`.

Options:

- ``--side {cm,ocl}``: which half of the workload pair to profile
  (default ``cm``).
- ``--quick`` / ``--full``: reduced or paper-size inputs.
- ``--json``: print a machine-readable document *instead of* the table
  (stdout stays clean for redirection; CI archives it as an artifact).
- ``--trace FILE``: export the structured span trace (compile passes,
  dispatches, chunks) as Chrome trace-event JSON for ``chrome://tracing``.
- ``--jsonl FILE``: additionally stream every span to a JSONL event log.

For ``gemm`` the profiler also runs the compiled-path SGEMM
(:func:`repro.workloads.gemm.run_cm_sgemm_compiled`), so the exported
trace contains real ``compile`` / ``pass:*`` spans next to the
``dispatch`` spans.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.obs import (
    ChromeTraceSink, JsonlSink, TeeSink, merge_breakdowns, observed,
)
from repro.obs.breakdown import TimeBreakdown
from repro.report.figure5 import workload_specs
from repro.sim.device import Device
from repro.workloads import gemm
from repro.workloads.common import run_and_time


def _merged_breakdowns(devices: List[Device]) -> List[TimeBreakdown]:
    """Group every run on ``devices`` by kernel name and merge."""
    groups: dict = {}
    for dev in devices:
        for r in dev.runs:
            if r.breakdown is not None:
                groups.setdefault(r.name, []).append(r.breakdown)
    return [merge_breakdowns(bs, kernel=name)
            for name, bs in groups.items()]


def profile_workload(key: str, quick: bool = True, side: str = "cm",
                     trace_path: Optional[str] = None,
                     jsonl_path: Optional[str] = None) -> dict:
    """Run one workload under observability; return the report document."""
    specs = {s.key: s for s in workload_specs(quick)}
    if key not in specs:
        raise KeyError(f"unknown workload {key!r}; "
                       f"choose from {sorted(specs)}")
    spec = specs[key]
    chrome = ChromeTraceSink()
    jsonl = JsonlSink(jsonl_path) if jsonl_path else None
    sink = TeeSink(chrome, jsonl) if jsonl else chrome
    with observed(sink=sink) as obs:
        fn = spec.cm if side == "cm" else spec.ocl
        run = run_and_time(spec.name, fn, obs=obs)
        devices = [run.device]
        if key == "gemm" and side == "cm":
            # Exercise the full compile pipeline so the trace contains
            # compile-pass spans (the eager path interprets, no compile).
            ga, gb, gc = gemm.make_inputs(128, 128, 8, seed=3)
            jit_dev = Device(run.device.machine, obs=obs)
            out = gemm.run_cm_sgemm_compiled(jit_dev, ga, gb, gc)
            ref = gemm.reference(ga, gb, gc, 1.0, 1.0)
            if not np.allclose(out, ref, atol=1e-3):
                raise AssertionError("compiled SGEMM mismatch vs reference")
            devices.append(jit_dev)
        metrics = obs.registry.snapshot()
        span_events = list(chrome.events)
    if trace_path:
        chrome.export(trace_path)
    if jsonl is not None:
        jsonl.close()

    breakdowns = _merged_breakdowns(devices)
    breakdowns.sort(key=lambda b: -b.time_us)
    doc = {
        "workload": key,
        "name": spec.name,
        "side": side,
        "quick": quick,
        "total_time_us": run.total_time_us,
        "kernel_time_us": run.kernel_time_us,
        "launches": run.launches,
        "kernels": [b.to_dict() for b in breakdowns],
        "metrics": metrics,
        "span_events": len(span_events),
    }
    doc["_breakdowns"] = breakdowns  # for the ASCII renderer; not serialized
    return doc


def render_report(doc: dict) -> str:
    lines = [f"{doc['name']} ({doc['side']}, "
             f"{'quick' if doc['quick'] else 'full'}): "
             f"{doc['total_time_us']:.1f} us total, "
             f"{doc['kernel_time_us']:.1f} us in kernels, "
             f"{doc['launches']} launches", ""]
    for b in doc["_breakdowns"]:
        lines.append(b.render())
        lines.append("")
    lines.append(f"{doc['span_events']} trace spans recorded")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report.profile",
        description="Per-kernel time-breakdown profiler for the Figure 5 "
                    "workloads.")
    parser.add_argument("workload",
                        help="workload key: linear, bitonic, histogram, "
                             "kmeans, spmv, transpose, gemm, prefix")
    parser.add_argument("--side", choices=("cm", "ocl"), default="cm")
    size = parser.add_mutually_exclusive_group()
    size.add_argument("--quick", action="store_true", default=True,
                      help="reduced input sizes (default)")
    size.add_argument("--full", dest="quick", action="store_false",
                      help="paper-size inputs")
    parser.add_argument("--json", action="store_true",
                        help="print machine-readable JSON instead of the "
                             "ASCII table")
    parser.add_argument("--trace", metavar="FILE",
                        help="export Chrome trace-event JSON to FILE")
    parser.add_argument("--jsonl", metavar="FILE",
                        help="stream span events to FILE as JSON lines")
    args = parser.parse_args(argv)

    try:
        doc = profile_workload(args.workload, quick=args.quick,
                               side=args.side, trace_path=args.trace,
                               jsonl_path=args.jsonl)
    except KeyError as e:
        parser.error(str(e))
    if args.json:
        doc = {k: v for k, v in doc.items() if not k.startswith("_")}
        json.dump(doc, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        print(render_report(doc))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
