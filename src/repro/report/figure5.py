"""Figure 5 as a report: speedup bars for every workload.

``python -m repro.report.figure5`` runs a reduced-size version of every
Figure 5 workload pair (a couple of minutes of simulation) and renders
an ASCII bar chart of ``OpenCL time / CM time``, next to the paper's
published band.  The full-size numbers live in the benchmark harness
(``pytest benchmarks/ --benchmark-only``); this module is the quick look.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.workloads import (
    bitonic, gemm, histogram, kmeans, linear_filter, prefix_sum, spmv,
    transpose,
)
from repro.workloads.common import run_and_time


@dataclass
class Fig5Row:
    name: str
    cm_us: float
    ocl_us: float
    paper: str

    @property
    def speedup(self) -> float:
        return self.ocl_us / self.cm_us


@dataclass
class WorkloadSpec:
    """One Figure 5 workload pair: CM and OpenCL closures over a Device.

    The closures carry their (already generated) inputs, so a spec can
    be run against any device — ``collect_figure5`` uses both sides for
    speedups, ``repro.report.profile`` runs one side for a breakdown.
    """

    key: str          # CLI handle, e.g. "gemm"
    name: str         # display name, e.g. "SGEMM"
    paper: str        # the paper's published speedup band
    cm: Callable      # device -> output
    ocl: Callable     # device -> output


def workload_specs(quick: bool = True) -> List[WorkloadSpec]:
    """Build every Figure 5 workload pair at quick or full size."""
    rng = np.random.default_rng(1)
    specs: List[WorkloadSpec] = []

    img = linear_filter.make_image(256 if quick else 512,
                                   192 if quick else 384)
    specs.append(WorkloadSpec(
        "linear", "linear filter", ">2.0",
        lambda d: linear_filter.run_cm(d, img),
        lambda d: linear_filter.run_ocl_optimized(d, img)))

    keys = bitonic.make_input(12 if quick else 15)
    specs.append(WorkloadSpec(
        "bitonic", "bitonic sort", "1.6-2.3",
        lambda d: bitonic.run_cm(d, keys),
        lambda d: bitonic.run_ocl(d, keys)))

    px = histogram.make_homogeneous(1 << (18 if quick else 20))
    specs.append(WorkloadSpec(
        "histogram", "histogram (flat img)", "up to 2.7",
        lambda d: histogram.run_cm(d, px),
        lambda d: histogram.run_ocl(d, px)))

    pts, _ = kmeans.make_points(1 << (14 if quick else 15), k=16)
    c0 = pts[rng.choice(len(pts), 16, replace=False)].copy()
    specs.append(WorkloadSpec(
        "kmeans", "k-means", "1.3-1.5",
        lambda d: kmeans.run_cm(d, pts, c0, 2),
        lambda d: kmeans.run_ocl(d, pts, c0, 2)))

    m = spmv.make_webbase()
    x = rng.standard_normal(m.ncols).astype(np.float32)
    specs.append(WorkloadSpec(
        "spmv", "SpMV (webbase)", "2.6",
        lambda d: spmv.run_cm(d, m, x),
        lambda d: spmv.run_ocl(d, m, x)))

    a = transpose.make_matrix(256 if quick else 1024)
    specs.append(WorkloadSpec(
        "transpose", "transpose", "up to 2.2",
        lambda d: transpose.run_cm(d, a),
        lambda d: transpose.run_ocl(d, a)))

    # GEMM needs enough C blocks to fill the machine even in quick mode.
    ga, gb, gc = gemm.make_inputs(256, 256, 128 if quick else 256)
    specs.append(WorkloadSpec(
        "gemm", "SGEMM", "~1.10",
        lambda d: gemm.run_cm_sgemm(d, ga, gb, gc),
        lambda d: gemm.run_ocl_sgemm(d, ga, gb, gc)))

    v = prefix_sum.make_input(1 << (14 if quick else 16))
    specs.append(WorkloadSpec(
        "prefix", "prefix sum", "1.6",
        lambda d: prefix_sum.run_cm(d, v),
        lambda d: prefix_sum.run_ocl(d, v)))
    return specs


def _pair(spec: WorkloadSpec) -> Fig5Row:
    cm_run = run_and_time("cm", spec.cm)
    ocl_run = run_and_time("ocl", spec.ocl)
    return Fig5Row(spec.name, cm_run.total_time_us, ocl_run.total_time_us,
                   spec.paper)


def collect_figure5(quick: bool = True) -> List[Fig5Row]:
    """Run every Figure 5 workload pair and return speedup rows."""
    return [_pair(spec) for spec in workload_specs(quick)]


def render_figure5(rows: List[Fig5Row], width: int = 40) -> str:
    """ASCII bar chart in the style of the paper's Figure 5."""
    top = max(max(r.speedup for r in rows), 1.0)
    lines = ["Speedup of CM over OpenCL (OpenCL time / CM time)", ""]
    for r in rows:
        bar = "#" * max(1, int(r.speedup / top * width))
        lines.append(f"{r.name:22s} {bar} {r.speedup:4.2f}x  "
                     f"(paper: {r.paper})")
    lines.append("")
    lines.append(f"{'':22s} 1.0x baseline = OpenCL")
    return "\n".join(lines)


def main() -> None:
    rows = collect_figure5(quick=True)
    print(render_figure5(rows))


if __name__ == "__main__":
    main()
