"""Request-waterfall viewer for flight-recorder trace exports.

``python -m repro.report.flight TRACE.json`` reads a Chrome-trace file
produced by the serving layer (``loadgen --trace-out``,
``FlightRecorder.export_chrome``, or a single flight dump written under
``--dump-dir``) and prints one ASCII waterfall per request: every span
of the causal tree on its own line, indented by depth, with a bar
positioned on the request's own timeline.

Options:

- ``--trace-id ID`` (repeatable): show only these requests.
- ``--slowest N``: show the N longest requests (default 5; 0 = all).
- ``--width COLS``: bar width in characters (default 48).
- ``--min-us US``: hide spans shorter than this (default 0).

The viewer groups events by the ``trace_id`` each span carries in its
``args``, so it works on any merge of request trees — including a file
where many requests share one timeline.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional


def load_events(path: str) -> List[dict]:
    """Trace-event rows from a Chrome-trace document or a flight dump."""
    with open(path) as fh:
        doc = json.load(fh)
    if isinstance(doc, list):  # bare event array
        return doc
    if "traceEvents" in doc:
        return doc["traceEvents"]
    if "trace" in doc:  # FlightDump.to_dict(): rebuild rows from the tree
        return _tree_to_events(doc["trace"])
    raise ValueError(f"{path}: not a Chrome trace or flight dump")


def _tree_to_events(trace: Dict[str, Any]) -> List[dict]:
    events: List[dict] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        args = dict(node.get("attrs", {}))
        args["trace_id"] = trace.get("trace_id", "?")
        events.append({"name": node["name"], "ph": "X",
                       "ts": node["t0_us"], "dur": node["dur_us"],
                       "tid": trace.get("request_id", 0), "args": args,
                       "_depth": depth})
        for child in node.get("children", []):
            walk(child, depth + 1)

    for root in trace.get("spans", []):
        walk(root, 0)
    return events


def group_requests(events: List[dict]) -> Dict[str, List[dict]]:
    """Complete spans ("X" phase) grouped by their ``trace_id`` arg."""
    groups: Dict[str, List[dict]] = {}
    names: Dict[int, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            names[ev.get("tid", 0)] = ev["args"]["name"]
    for ev in events:
        if ev.get("ph") != "X":
            continue
        tid = ev.get("args", {}).get("trace_id")
        if tid is None:
            tid = names.get(ev.get("tid", 0), f"tid-{ev.get('tid', 0)}")
        groups.setdefault(str(tid), []).append(ev)
    for evs in groups.values():
        evs.sort(key=lambda e: (e["ts"], -e.get("dur", 0.0)))
    return groups


def _nest(events: List[dict]) -> List[dict]:
    """Assign a ``_depth`` to each span by time containment."""
    open_stack: List[dict] = []
    for ev in events:
        if "_depth" in ev:  # flight-dump path already knows depth
            continue
        t0, t1 = ev["ts"], ev["ts"] + ev.get("dur", 0.0)
        while open_stack:
            p = open_stack[-1]
            if t0 < p["ts"] + p.get("dur", 0.0) - 1e-9 \
                    and t1 <= p["ts"] + p.get("dur", 0.0) + 1e-9:
                break
            open_stack.pop()
        ev["_depth"] = len(open_stack)
        open_stack.append(ev)
    return events


_INTERESTING_ATTRS = ("kernel", "tier", "outcome", "policy", "device",
                      "batch", "batch_size", "position", "depth", "chunk",
                      "grid", "threads")


def render_request(trace_id: str, events: List[dict], width: int = 48,
                   min_us: float = 0.0) -> str:
    _nest(events)
    t0 = min(e["ts"] for e in events)
    t1 = max(e["ts"] + e.get("dur", 0.0) for e in events)
    span_total = max(t1 - t0, 1e-9)
    label_w = max((len("  " * e["_depth"] + e["name"]) for e in events),
                  default=0)
    lines = [f"{trace_id}: {len(events)} spans, {span_total:.1f} us"]
    for ev in events:
        dur = ev.get("dur", 0.0)
        if dur < min_us and ev["_depth"] > 0:
            continue
        lo = int((ev["ts"] - t0) / span_total * width)
        hi = int((ev["ts"] + dur - t0) / span_total * width)
        hi = max(hi, lo + 1)
        bar = " " * lo + "#" * (hi - lo) + " " * (width - hi)
        label = "  " * ev["_depth"] + ev["name"]
        attrs = ev.get("args", {})
        extra = " ".join(f"{k}={attrs[k]}" for k in _INTERESTING_ATTRS
                         if k in attrs)
        lines.append(f"  {label:<{label_w}} |{bar}| "
                     f"{dur:9.1f} us  {extra}".rstrip())
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report.flight",
        description="Print per-request ASCII waterfalls from a serving "
                    "trace export or flight dump.")
    parser.add_argument("trace", help="Chrome-trace JSON (loadgen "
                        "--trace-out) or a flight-dump JSON file")
    parser.add_argument("--trace-id", action="append", default=None,
                        help="show only this request (repeatable)")
    parser.add_argument("--slowest", type=int, default=5,
                        help="show the N longest requests (0 = all)")
    parser.add_argument("--width", type=int, default=48)
    parser.add_argument("--min-us", type=float, default=0.0,
                        help="hide nested spans shorter than this")
    args = parser.parse_args(argv)

    groups = group_requests(load_events(args.trace))
    if not groups:
        print(f"{args.trace}: no request spans found", file=sys.stderr)
        return 1
    if args.trace_id:
        missing = [t for t in args.trace_id if t not in groups]
        for t in missing:
            print(f"trace id {t!r} not in {args.trace} "
                  f"(have {len(groups)} requests)", file=sys.stderr)
        selected = [(t, groups[t]) for t in args.trace_id if t in groups]
        if not selected:
            return 1
    else:
        def total_us(evs):
            return (max(e["ts"] + e.get("dur", 0.0) for e in evs)
                    - min(e["ts"] for e in evs))
        selected = sorted(groups.items(), key=lambda kv: -total_us(kv[1]))
        if args.slowest:
            selected = selected[:args.slowest]
    out = []
    for tid, evs in selected:
        out.append(render_request(tid, evs, width=args.width,
                                  min_us=args.min_us))
    print("\n\n".join(out))
    print(f"\n{len(selected)} of {len(groups)} requests shown "
          f"from {args.trace}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
