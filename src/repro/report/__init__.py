"""Report generators for the paper's tables and figures."""

from repro.report.figure5 import Fig5Row, collect_figure5, render_figure5

__all__ = ["Fig5Row", "collect_figure5", "render_figure5"]
