"""Report generators for the paper's tables and figures."""

from repro.report.figure5 import (
    Fig5Row, WorkloadSpec, collect_figure5, render_figure5, workload_specs,
)

__all__ = [
    "Fig5Row", "WorkloadSpec", "collect_figure5", "render_figure5",
    "workload_specs",
]
