"""Drive the CM compiler and inspect every stage (Section V / Fig. 3-4).

Traces the linear filter into rdregion/wrregion SSA IR, runs the
middle-end passes, lowers to vISA, allocates registers, prints the Gen
assembly (including the nine SIMD16 movs of Fig. 4), and finally
executes the compiled binary against the numpy reference.

Run:  python examples/compile_and_inspect.py
"""

import numpy as np

from repro.compiler import compile_kernel, trace_kernel
from repro.compiler.passes import run_default_pipeline
from repro.memory.surfaces import Image2DSurface
from repro.workloads import linear_filter as lf


def linear_body(cmx, inbuf, outbuf, hpos, vpos):
    """Algorithm 2, written against the trace-mode CM API."""
    in_m = cmx.matrix(np.uint8, 8, 32)
    cmx.read(inbuf, hpos * 24, vpos * 6, in_m)
    m = cmx.matrix(np.float32, 6, 24)
    m.assign(in_m.select(6, 1, 24, 1, 1, 3))
    for (i, j) in [(0, 0), (0, 3), (0, 6), (1, 0), (1, 6),
                   (2, 0), (2, 3), (2, 6)]:
        m += in_m.select(6, 1, 24, 1, i, j)
    out = cmx.matrix(np.uint8, 6, 24)
    out.assign(m * np.float32(0.1111))
    cmx.write(outbuf, hpos * 24 + 3, vpos * 6 + 1, out)


def main() -> None:
    surfaces = [("inbuf", True), ("outbuf", True)]
    scalars = ["hpos", "vpos"]

    print("== 1. SSA IR with rdregion/wrregion (front end) ==")
    fn = trace_kernel(linear_body, "linear", surfaces, scalars)
    for instr in fn.instrs[:8]:
        print("  ", instr)
    print(f"   ... {len(fn.instrs)} IR instructions before optimization")

    run_default_pipeline(fn)
    print(f"   ... {len(fn.instrs)} after constant folding / region "
          "collapsing / dead vector removal")

    print("\n== 2. Full pipeline to Gen ISA ==")
    kernel = compile_kernel(linear_body, "linear", surfaces, scalars)
    print(f"   {kernel.num_instructions} Gen instructions, "
          f"{len(kernel.visa.vregs)} virtual registers, "
          f"{kernel.allocation.spills} spills, GRF high-water "
          f"{kernel.allocation.max_grf_bytes} bytes")

    print("\n== 3. Fig. 4: the 6x24 uchar->float select ==")
    movs = [i for i in kernel.program
            if i.opcode.value == "mov" and i.dst is not None
            and i.dst.dtype.name == "f" and i.srcs
            and getattr(i.srcs[0], "dtype", None) is not None
            and i.srcs[0].dtype.name == "ub"]
    for i, mov in enumerate(movs, 1):
        print(f"  {i}) {mov.asm()}")

    print("\n== 4. Execute the compiled binary ==")
    img = lf.make_image(48, 24)
    src = Image2DSurface(img.copy(), bytes_per_pixel=3)
    dst = Image2DSurface(img.copy(), bytes_per_pixel=3)
    for vpos in range(24 // 6):
        for hpos in range(48 // 8):
            kernel.run([src, dst], {"hpos": hpos, "vpos": vpos})
    ok = np.array_equal(dst.to_numpy(), lf.reference(img))
    print(f"   compiled kernel matches the numpy reference: {ok}")


if __name__ == "__main__":
    main()
