"""Sorting, scans and linear algebra on the simulated GPU.

Exercises the register-resident bitonic sort, the barrier-free prefix
sum, SpMV with dynamic SIMD widths, and the register-blocked SGEMM —
each against its tuned SIMT OpenCL baseline (Section VI).

Run:  python examples/sorting_and_linear_algebra.py
"""

import numpy as np

from repro.workloads import bitonic, gemm, prefix_sum, spmv
from repro.workloads.common import run_and_time, speedup


def sort_demo() -> None:
    print("== bitonic sort, 2^14 uint32 keys ==")
    keys = bitonic.make_input(14)
    cm_run = run_and_time("cm", lambda d: bitonic.run_cm(d, keys))
    ocl_run = run_and_time("ocl", lambda d: bitonic.run_ocl(d, keys))
    assert np.array_equal(cm_run.output, np.sort(keys))
    assert np.array_equal(ocl_run.output, np.sort(keys))
    print(f"  CM    : {cm_run.total_time_us:8.1f} us in "
          f"{cm_run.launches} launches (256 keys live in each GRF)")
    print(f"  OpenCL: {ocl_run.total_time_us:8.1f} us in "
          f"{ocl_run.launches} launches (one per split step)")
    print(f"  speedup: {speedup(ocl_run, cm_run):.2f}x")


def scan_demo() -> None:
    print("\n== prefix sum, 2^15 elements ==")
    v = prefix_sum.make_input(1 << 15)
    cm_run = run_and_time("cm", lambda d: prefix_sum.run_cm(d, v))
    ocl_run = run_and_time("ocl", lambda d: prefix_sum.run_ocl(d, v))
    assert np.array_equal(cm_run.output, prefix_sum.reference(v))
    cm_barriers = sum(r.timing.barriers for r in cm_run.device.runs)
    ocl_barriers = sum(r.timing.barriers for r in ocl_run.device.runs)
    print(f"  CM    : {cm_run.total_time_us:8.1f} us, "
          f"{cm_barriers} barriers")
    print(f"  OpenCL: {ocl_run.total_time_us:8.1f} us, "
          f"{ocl_barriers} barriers (SLM Blelloch-style scan)")
    print(f"  speedup: {speedup(ocl_run, cm_run):.2f}x (paper: 1.6)")


def spmv_demo() -> None:
    print("\n== SpMV: dynamic SIMD width on a power-law matrix ==")
    m = spmv.make_webbase()
    x = np.random.default_rng(1).standard_normal(m.ncols).astype(np.float32)
    ref = spmv.reference(m, x)
    dyn = run_and_time("dyn", lambda d: spmv.run_cm(d, m, x))
    fixed = run_and_time("fixed",
                         lambda d: spmv.run_cm(d, m, x, force_width=16))
    ocl_run = run_and_time("ocl", lambda d: spmv.run_ocl(d, m, x))
    assert np.allclose(dyn.output, ref, rtol=1e-3, atol=1e-3)
    print(f"  mean nnz/row: {m.nnz / m.nrows:.1f}, "
          f"empty rows: {np.mean(np.diff(m.rowptr) == 0):.0%}")
    print(f"  CM dynamic width : {dyn.total_time_us:7.1f} us")
    print(f"  CM fixed SIMD16  : {fixed.total_time_us:7.1f} us")
    print(f"  OpenCL subgroups : {ocl_run.total_time_us:7.1f} us")
    print(f"  speedup vs OpenCL: {speedup(ocl_run, dyn):.2f}x")


def gemm_demo() -> None:
    print("\n== SGEMM 256x256x256: register blocking depth ==")
    a, b, c = gemm.make_inputs(256, 256, 256)
    ref = gemm.reference(a, b, c)
    cm_run = run_and_time("cm", lambda d: gemm.run_cm_sgemm(d, a, b, c))
    ocl_run = run_and_time("ocl", lambda d: gemm.run_ocl_sgemm(d, a, b, c))
    assert np.allclose(cm_run.output, ref, rtol=1e-2, atol=1e-2)
    print(f"  CM (32x16 C block): {cm_run.total_time_us:8.1f} us")
    print(f"  OCL (16x16 block) : {ocl_run.total_time_us:8.1f} us")
    print(f"  speedup: {speedup(ocl_run, cm_run):.3f}x (paper: ~1.10)")


if __name__ == "__main__":
    sort_demo()
    scan_demo()
    spmv_demo()
    gemm_demo()
