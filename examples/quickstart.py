"""Quickstart: the CM language in five minutes.

Covers the Section IV feature tour — vector/matrix types, select
regioning, merge, boolean reductions, a first kernel — and runs it on
the simulated Gen11 device.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Device, cm


def language_tour() -> None:
    print("== CM language tour (Section IV) ==")

    # vector<short, 8> v;  matrix<int, 4, 8> m;
    v = cm.vector(cm.short, 8, [0, 1, 2, 3, 4, 5, 6, 7])
    m = cm.matrix(cm.int32, 4, 8, np.arange(32))

    # Fig. 1: v.select<4,2>(1) is an l-value referring to the odd elements.
    odd = v.select(4, 2, 1)
    print("v.select<4,2>(1)       =", odd.to_numpy())
    odd.assign([10, 30, 50, 70])          # writes through to v
    print("v after ref assignment =", v.to_numpy())

    # Fig. 1: m.select<2,2,2,4>(1,2).
    print("m.select<2,2,2,4>(1,2) =", m.select(2, 2, 2, 4, 1, 2).to_numpy())

    # replicate is a generic register gather (a free Gen region).
    v8 = cm.vector(cm.float32, 8, np.arange(8, dtype=float))
    print("v.replicate<2,4,4,0>(2)=", v8.replicate(2, 4, 4, 0, 2).to_numpy())

    # merge is a predicated update; comparisons produce ushort masks.
    big = cm.vector(cm.int32, 8, 0)
    big.merge(1, v8 > 4.0)
    print("merge(1, v > 4)        =", big.to_numpy())
    print("any lane set?          =", (v8 > 4.0).any())

    # The paper's 2x2 register transpose (Section VI-A-5).
    q = cm.vector(cm.float32, 4, [1, 2, 3, 4])
    t = cm.vector(cm.float32, 4)
    t.merge(q.replicate(2, 1, 2, 0, 0), q.replicate(2, 1, 2, 0, 2),
            [1, 0, 1, 0])
    print("2x2 transpose          =", t.to_numpy())


def first_kernel() -> None:
    print("\n== A first CM kernel: SAXPY in 64-element register chunks ==")
    n = 4096
    alpha = np.float32(2.5)
    x_host = np.arange(n, dtype=np.float32)
    y_host = np.ones(n, dtype=np.float32)

    device = Device()                       # a simulated Gen11 GT2
    xbuf = device.buffer(x_host.copy())
    ybuf = device.buffer(y_host.copy())

    @cm.cm_kernel
    def saxpy():
        t = cm.thread_x()                   # one chunk per hardware thread
        x = cm.vector(cm.float32, 64)
        y = cm.vector(cm.float32, 64)
        cm.read(xbuf, t * 256, x)           # oword block reads
        cm.read(ybuf, t * 256, y)
        y.assign(x * alpha + y)
        cm.write(ybuf, t * 256, y)

    device.run_cm(saxpy, grid=(n // 64,))
    expect = alpha * x_host + y_host
    print("correct:", np.allclose(ybuf.to_numpy(), expect))
    print(device.report())


if __name__ == "__main__":
    language_tour()
    first_kernel()
