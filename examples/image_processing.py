"""Image processing: the linear filter and histogram, CM vs OpenCL.

Reproduces the paper's running example (Sections III-VI): the same 3x3
box blur written three ways — CM with 2D block reads and matrix selects,
naive SIMT OpenCL with nine sampler gathers per pixel, and the tuned
media-block SIMT version — plus the histogram's register-vs-SLM contrast
on inputs with different contention.

Run:  python examples/image_processing.py
"""

import numpy as np

from repro.workloads import histogram as hg
from repro.workloads import linear_filter as lf
from repro.workloads.common import run_and_time, speedup


def blur_comparison() -> None:
    print("== 3x3 linear filter, 512x384 RGB ==")
    img = lf.make_image(512, 384)
    ref = lf.reference(img)

    cm_run = run_and_time("CM (Algorithm 2)", lambda d: lf.run_cm(d, img))
    naive = run_and_time("OpenCL naive (Algorithm 1)",
                         lambda d: lf.run_ocl(d, img))
    tuned = run_and_time("OpenCL + media_block_io",
                         lambda d: lf.run_ocl_optimized(d, img))

    for run in (cm_run, naive, tuned):
        ok = np.array_equal(run.output, ref)
        timing = run.device.runs[0].timing
        print(f"  {run.name:28s} {run.total_time_us:8.1f} us  "
              f"correct={ok}  bound_by={timing.bound_by}")
    print(f"  speedup vs naive OpenCL : {speedup(naive, cm_run):.2f}x")
    print(f"  speedup vs tuned OpenCL : {speedup(tuned, cm_run):.2f}x "
          f"(paper: tuned OpenCL stays below 50% of CM)")


def histogram_contention() -> None:
    print("\n== 256-bin histogram: input-dependent SLM contention ==")
    n = 1 << 20
    for maker, label in ((hg.make_random, "random pixels"),
                         (hg.make_natural, "natural image"),
                         (hg.make_homogeneous, "homogeneous background")):
        px = maker(n)
        ref = hg.reference(px)
        cm_run = run_and_time("cm", lambda d: hg.run_cm(d, px))
        ocl_run = run_and_time("ocl", lambda d: hg.run_ocl(d, px))
        assert np.array_equal(cm_run.output, ref)
        assert np.array_equal(ocl_run.output, ref)
        print(f"  {label:24s} cm={cm_run.total_time_us:7.1f} us  "
              f"ocl={ocl_run.total_time_us:7.1f} us  "
              f"speedup={speedup(ocl_run, cm_run):.2f}x")
    print("  (CM's register-file histogram is input-independent; the "
          "OpenCL SLM atomics serialize on flat images — Section VI-A-2)")


if __name__ == "__main__":
    blur_comparison()
    histogram_contention()
