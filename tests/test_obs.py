"""Instrumentation layer: registry, spans, exports, time breakdowns."""

import json

import numpy as np
import pytest

import repro.obs as obs
from repro.obs import (
    ChromeTraceSink, JsonlSink, MetricsRegistry, Observability, TeeSink,
    merge_breakdowns, trace_span,
)
from repro.obs.tracing import NULL_SPAN
from repro.sim.device import Device
from repro.workloads import gemm


# -- metrics registry -------------------------------------------------------


class TestMetricsRegistry:
    def test_label_sets_make_distinct_children(self):
        reg = MetricsRegistry()
        a = reg.counter("launches", kernel="sgemm")
        b = reg.counter("launches", kernel="spmv")
        assert a is not b
        a.inc(3)
        b.inc()
        assert reg.get("launches", kernel="sgemm").value == 3
        assert reg.get("launches", kernel="spmv").value == 1

    def test_same_labels_return_same_child(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", cache="kernel", level="l1")
        b = reg.counter("hits", level="l1", cache="kernel")  # order-free
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_counter_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_gauge_set_max(self):
        g = MetricsRegistry().gauge("peak")
        g.set_max(4)
        g.set_max(2)
        assert g.value == 4

    def test_histogram_buckets_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0), unit="us")
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(35.166666, rel=1e-5)
        assert h.buckets[-1] == float("inf")
        assert h.counts == [1, 1, 1]

    def test_snapshot_is_flat_and_labeled(self):
        reg = MetricsRegistry()
        reg.counter("n", kernel="k1").inc(2)
        reg.gauge("peak").set(7)
        snap = reg.snapshot()
        assert snap == {"n{kernel=k1}": 2, "peak": 7}

    def test_as_dict_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.histogram("h", pass_name="baling").observe(3.0)
        doc = json.loads(json.dumps(reg.as_dict()))
        assert doc["h"][0]["labels"] == {"pass_name": "baling"}
        assert doc["h"][0]["count"] == 1


# -- span tracing -----------------------------------------------------------


class TestTracing:
    def test_disabled_fast_path_returns_shared_null_span(self):
        # The module default is disabled: no allocation per span.
        assert trace_span("anything", kernel="x") is NULL_SPAN
        with trace_span("still") as s:
            s.set(attr=1)  # must be a silent no-op

    def test_span_nesting_and_chrome_export(self, tmp_path):
        with obs.observed() as o:
            with trace_span("outer", kernel="k"):
                with trace_span("inner"):
                    pass
        path = tmp_path / "trace.json"
        o.export_chrome(str(path))
        doc = json.loads(path.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        outer, inner = events
        # inner nests inside outer's interval, timestamps monotonic
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
        assert outer["args"] == {"kernel": "k"}
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)

    def test_observed_restores_previous_state(self):
        before = obs.get_observability()
        with obs.observed():
            assert obs.get_observability().enabled
        assert obs.get_observability() is before

    def test_jsonl_sink_streams_parseable_lines(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with obs.observed(sink=JsonlSink(str(path)), span_metrics=False):
            with trace_span("a"):
                pass
            with trace_span("b", n=2):
                pass
        lines = [json.loads(ln) for ln in
                 path.read_text().strip().splitlines()]
        assert [ev["name"] for ev in lines] == ["a", "b"]
        assert lines[1]["args"] == {"n": 2}

    def test_tee_sink_fans_out(self):
        chrome = ChromeTraceSink()
        chrome2 = ChromeTraceSink()
        with obs.observed(sink=TeeSink(chrome, chrome2), span_metrics=False):
            with trace_span("x"):
                pass
        assert len(chrome.events) == len(chrome2.events) == 1

    def test_span_durations_mirrored_into_registry(self):
        with obs.observed() as o:
            with trace_span("compile", kernel="k"):
                pass
        h = o.registry.get("span_duration_us", span="compile")
        assert h is not None and h.count == 1


# -- device integration -----------------------------------------------------


def _small_sgemm(device):
    a, b, c = gemm.make_inputs(32, 16, 8, seed=5)
    return gemm.run_cm_sgemm(device, a, b, c), gemm.reference(a, b, c)


class TestDeviceIntegration:
    def test_breakdown_buckets_sum_to_kernel_time(self):
        dev = Device(obs=Observability())
        out, ref = _small_sgemm(dev)
        assert np.allclose(out, ref, atol=1e-3)
        run = dev.runs[0]
        assert run.breakdown is not None
        total = sum(run.breakdown.buckets.values())
        assert total == pytest.approx(run.timing.time_us, rel=0.01)
        assert "alu" in run.breakdown.buckets
        # image reads are labeled per bound surface
        assert any(k.startswith("load:img") for k in run.breakdown.buckets)

    def test_breakdowns_off_when_disabled(self):
        dev = Device()  # module default: disabled observability
        _small_sgemm(dev)
        assert dev.runs[0].breakdown is None

    def test_compiled_path_breakdown_and_spans(self):
        a, b, c = gemm.make_inputs(16, 16, 8, seed=7)
        with obs.observed() as o:
            dev = Device()
            out = gemm.run_cm_sgemm_compiled(dev, a, b, c)
        assert np.allclose(out, gemm.reference(a, b, c, 1.0, 1.0), atol=1e-3)
        run = dev.runs[0]
        assert sum(run.breakdown.buckets.values()) == pytest.approx(
            run.timing.time_us, rel=0.01)
        names = {e["name"] for e in o.chrome.events}
        assert "compile" in names and "dispatch" in names
        assert any(n.startswith("pass:") for n in names)
        # per-kernel counters land in the shared registry
        launches = o.registry.get("kernel_launches", kernel="cm_sgemm_jit")
        assert launches is not None and launches.value == 1

    def test_merge_breakdowns_accumulates_launches(self):
        dev = Device(obs=Observability())
        _small_sgemm(dev)
        _small_sgemm(dev)
        merged = merge_breakdowns([r.breakdown for r in dev.runs])
        assert merged.launches == 2
        assert merged.time_us == pytest.approx(
            sum(r.timing.time_us for r in dev.runs))
        assert sum(merged.buckets.values()) == pytest.approx(
            merged.time_us, rel=0.01)

    def test_peak_live_traces_tracks_real_high_water(self):
        a, b, c = gemm.make_inputs(16, 16, 8, seed=7)

        def launch(chunk_threads):
            dev = Device()
            kern = dev.compile(gemm._jit_gemm_body(8), "cm_sgemm_jit",
                               gemm._JIT_SIG, ["tx", "ty"])
            surfs = [dev.image2d(m.copy(), bytes_per_pixel=4)
                     for m in (a, b, c)]
            # wide=False: chunk_threads retirement is a sequential-path
            # internal (the wide path keeps a whole chunk live by design).
            dev.run_compiled(kern, (2, 2), surfs,
                             scalars=lambda t: {"tx": t[0], "ty": t[1]},
                             chunk_threads=chunk_threads, wide=False)
            return dev

        # chunk of 1: traces retire immediately, peak is exactly 1 (the
        # pre-fix code clamped with max(..., len(live)) only at retire,
        # so this case already worked; the streaming eager path below is
        # the one that used to hard-code 1 even for 0-thread grids).
        assert launch(1).profile.peak_live_traces == 1
        # chunk of 3 over 4 threads: 3 live before the first retire
        assert launch(3).profile.peak_live_traces == 3
        # chunk larger than the grid: all 4 live at the end
        assert launch(64).profile.peak_live_traces == 4

    def test_eager_path_streams_with_single_live_trace(self):
        dev = Device()
        _small_sgemm(dev)
        assert dev.profile.peak_live_traces == 1
        assert dev.profile.threads_run == 1

    def test_profile_is_registry_backed(self):
        dev = Device()
        _small_sgemm(dev)
        snap = dev.profile.registry.snapshot()
        assert snap["device_threads_run"] == dev.profile.threads_run
        assert snap["device_peak_live_traces"] == 1

    def test_cache_hit_ratio_in_report(self):
        a, b, c = gemm.make_inputs(16, 16, 8, seed=7)
        dev = Device()
        for _ in range(4):
            gemm.run_cm_sgemm_compiled(dev, a, b, c)
        assert dev.profile.compile_cache_misses == 1
        assert dev.profile.compile_cache_hits == 3
        assert "(75% hit rate)" in dev.report()

    def test_cache_metrics_mirrored_when_enabled(self):
        a, b, c = gemm.make_inputs(16, 16, 8, seed=7)
        with obs.observed() as o:
            dev = Device()
            gemm.run_cm_sgemm_compiled(dev, a, b, c)
            gemm.run_cm_sgemm_compiled(dev, a, b, c)
        assert o.registry.get("kernel_cache_misses").value == 1
        assert o.registry.get("kernel_cache_hits").value == 1


# -- profiler CLI -----------------------------------------------------------


class TestProfileReport:
    def test_gemm_profile_document(self, tmp_path):
        from repro.report.profile import profile_workload, render_report

        trace_path = tmp_path / "trace.json"
        doc = profile_workload("gemm", quick=True,
                               trace_path=str(trace_path))
        kernels = {k["kernel"]: k for k in doc["kernels"]}
        assert "cm_sgemm" in kernels and "cm_sgemm_jit" in kernels
        for k in kernels.values():
            assert sum(k["buckets_us"].values()) == pytest.approx(
                k["time_us"], rel=0.01)
        # exported trace loads and contains compile + dispatch spans
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "X"}
        assert {"compile", "dispatch"} <= names
        text = render_report(doc)
        assert "cm_sgemm" in text and "(bucket sum)" in text
        # the JSON half of the doc survives serialization
        json.dumps({k: v for k, v in doc.items()
                    if not k.startswith("_")})

    def test_unknown_workload_raises(self):
        from repro.report.profile import profile_workload

        with pytest.raises(KeyError):
            profile_workload("nope")
